//! The §4.3 two-player minimax game, solved three ways: nested
//! maximiser/minimiser handlers sharing one loss (the paper's way), the
//! §2.1 selection-monad product, and direct backward induction.
//!
//! ```text
//! cargo run --example minimax
//! ```

use selc_games::bimatrix::Matrix;
use selc_games::minimax::{minimax_handler, minimax_selection};

fn main() {
    // The paper's table:      B: Left  B: Right
    //             A: Left        5        3
    //             A: Right       2        9
    let m = Matrix::paper_example();

    let ((hr, hc), hv) = minimax_handler(&m);
    println!("handlers : A plays {}, B plays {}, value {hv}", name(hr), name(hc));
    assert_eq!(((hr, hc), hv), ((0, 1), 3.0)); // (Left, Right) with loss 3

    let (sp, sv) = minimax_selection(&m);
    println!("selection: A plays {}, B plays {}, value {sv}", name(sp.0), name(sp.1));

    let (br, bc, bv) = m.maximin();
    println!("backward : A plays {}, B plays {}, value {bv}", name(br), name(bc));

    assert_eq!((sp, sv), ((br, bc), bv));
    assert_eq!(((hr, hc), hv), ((br, bc), bv));

    // A larger random game: all three still agree.
    let big = Matrix::random(8, 8, 7);
    let (hp, hv) = minimax_handler(&big);
    let (sp, sv) = minimax_selection(&big);
    let (r, c, v) = big.maximin();
    assert_eq!((hp, hv), ((r, c), v));
    assert_eq!((sp, sv), ((r, c), v));
    println!("8x8 random game: value {v:.3} at ({r}, {c}) — all solvers agree");

    println!("minimax OK");
}

fn name(i: usize) -> &'static str {
    if i == 0 {
        "Left"
    } else {
        "Right"
    }
}
