//! The §4.3 SGD example: linear regression trained by the
//! gradient-descent *handler* (`foldM (λp (x,y) → lreset $ hOpt $
//! linearReg p x y)`), compared against hand-coded SGD and the
//! closed-form least-squares fit.
//!
//! ```text
//! cargo run --example linear_regression
//! ```

use selc_ml::dataset::Dataset;
use selc_ml::linreg::{train_handler_sgd, train_tape_sgd};

fn main() {
    let data = Dataset::linear(64, 2.0, 1.0, 0.05, 42);
    println!("dataset: n = {}, truth w = 2, b = 1, noise 0.05", data.points.len());

    let (lw, lb) = data.least_squares();
    println!("least squares     : w = {lw:.4}, b = {lb:.4}, mse = {:.6}", data.mse(lw, lb));

    let (hw, hb) = train_handler_sgd(&data, (0.0, 0.0), 0.05, 20);
    println!("handler SGD (hOpt): w = {hw:.4}, b = {hb:.4}, mse = {:.6}", data.mse(hw, hb));

    let (tw, tb) = train_tape_sgd(&data, (0.0, 0.0), 0.05, 20);
    println!("tape SGD baseline : w = {tw:.4}, b = {tb:.4}, mse = {:.6}", data.mse(tw, tb));

    assert!((hw - tw).abs() < 1e-3, "handler and tape SGD must agree");
    assert!((hb - tb).abs() < 1e-3, "handler and tape SGD must agree");
    assert!((hw - lw).abs() < 0.1, "SGD approaches the least-squares fit");
    assert!((hb - lb).abs() < 0.1, "SGD approaches the least-squares fit");

    println!("linear_regression OK");
}
