//! Quickstart: the §2.3 running example, end to end.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Declares a binary-choice effect, writes the paper's `pgm`, and handles
//! it twice — with an argmin handler (the paper's choice) and an argmax
//! handler — to show how the *same program* yields different computations
//! under different selection strategies.

use selc::{effect, handle, loss, perform, Handler, Sel};

effect! {
    /// Binary choice (§2.3).
    pub effect NDet {
        /// Choose a boolean.
        op Decide : () => bool;
    }
}

/// `pgm ≜ b ← decide(); i ← if b then 1 else 2; loss(2·i);
///        if b then 'a' else 'b'`
fn pgm() -> Sel<f64, char> {
    perform::<f64, Decide>(()).and_then(|b| {
        let i = if b { 1.0 } else { 2.0 };
        loss(2.0 * i).map(move |_| if b { 'a' } else { 'b' })
    })
}

/// A handler that probes both futures through the *choice continuation*
/// and resumes with the one whose loss wins under `pick_first`.
fn chooser(pick_first: fn(f64, f64) -> bool) -> Handler<f64, char, char> {
    Handler::builder::<NDet>()
        .on::<Decide>(move |(), l, k| {
            l.at(true).and_then(move |y| {
                let (l, k) = (l.clone(), k.clone());
                l.at(false).and_then(move |z| {
                    if pick_first(y, z) {
                        k.resume(true)
                    } else {
                        k.resume(false)
                    }
                })
            })
        })
        .build_identity()
}

fn main() {
    let argmin = chooser(|y, z| y <= z);
    let (cost, result) = handle(&argmin, pgm()).run_unwrap();
    println!("argmin handler: result {result:?}, loss {cost}");
    assert_eq!((result, cost), ('a', 2.0));

    let argmax = chooser(|y, z| y >= z);
    let (cost, result) = handle(&argmax, pgm()).run_unwrap();
    println!("argmax handler: result {result:?}, loss {cost}");
    assert_eq!((result, cost), ('b', 4.0));

    // The §2.2 all-results handler: resume with both booleans, collect.
    let all: Handler<f64, bool, Vec<bool>> = Handler::builder::<NDet>()
        .on::<Decide>(|(), _l, k| {
            k.resume(true).and_then(move |ts: Vec<bool>| {
                let k = k.clone();
                k.resume(false).map(move |fs| {
                    let mut out = ts.clone();
                    out.extend(fs);
                    out
                })
            })
        })
        .ret(|b| Sel::pure(vec![b]))
        .build();
    let two_decides =
        perform::<f64, Decide>(()).and_then(|x| perform::<f64, Decide>(()).map(move |y| x && y));
    let (_, results) = handle(&all, two_decides).run_unwrap();
    println!("all-results handler: {results:?}");
    assert_eq!(results, vec![true, false, false, false]);

    println!("quickstart OK");
}
