//! The §4.3 prisoner's dilemma: best-response dynamics as the `hNash`
//! handler, iterated to a Nash equilibrium.
//!
//! ```text
//! cargo run --example nash
//! ```

use selc_games::bimatrix::Bimatrix;
use selc_games::nash::{solve_nash, Step, Strategy};

fn main() {
    let game = Bimatrix::prisoners_dilemma();
    println!("prisoner's dilemma (years of sentence):");
    println!("                 B defects   B cooperates");
    println!("  A defects        (3,3)        (0,5)");
    println!("  A cooperates     (5,0)        (1,1)");

    // The paper: runSel $ game (Move Right) (Move Right)
    let ((a, b), steps) = solve_nash(&game, (Strategy::Cooperate, Strategy::Cooperate));
    println!("from (cooperate, cooperate): reached {a:?}, {b:?} in {steps} steps");
    assert_eq!((a, b), (Step::Stay(Strategy::Defect), Step::Stay(Strategy::Defect)));
    assert_eq!(steps, 2);

    // The fixed point is the game's unique pure Nash equilibrium.
    let nash = game.pure_nash_equilibria();
    assert_eq!(nash, vec![(0, 0)]);
    println!("enumeration baseline confirms the unique pure Nash: defect/defect");

    // From any start, the dynamics end at an equilibrium.
    for start in [
        (Strategy::Defect, Strategy::Defect),
        (Strategy::Defect, Strategy::Cooperate),
        (Strategy::Cooperate, Strategy::Defect),
    ] {
        let ((a, b), n) = solve_nash(&game, start);
        assert!(game.is_pure_nash(a.strategy().index(), b.strategy().index()));
        println!("from {start:?}: equilibrium after {n} steps");
    }

    println!("nash OK");
}
