//! The `selc-engine` execution layer, end to end: parallel root-split
//! minimax, branch-and-bound hyperparameter tuning, batched `tuneLR`
//! with memoised probes, the `selc-cache` shared-memoisation layer
//! (shared-cache tuning, transposition minimax), and parallel n-queens.
//!
//! ```sh
//! SELC_THREADS=4 SELC_CACHE_SHARDS=8 cargo run --release --example parallel_search
//! ```

use selc_engine::{configured_threads, ParallelEngine, SequentialEngine};
use selc_games::bimatrix::Matrix;
use selc_games::parallel::{minimax_root_split_stats, queens_parallel};
use selc_games::queens::is_solution;
use selc_games::transposition::{solve_root_split, SymTree};
use selc_ml::dataset::Dataset;
use selc_ml::optimize::gd_handler_tuned;
use selc_ml::parallel::{tune_lr_parallel, tune_lr_parallel_cached, tune_training_run};

fn main() {
    println!("worker pool: {} threads (SELC_THREADS to override)", configured_threads());

    // 1. Root-split minimax: each worker solves the minimiser's reply to
    //    one row with the ordinary hmin handler; the winner is
    //    bit-identical to the sequential hmax ∘ hmin nesting.
    let table = Matrix::random(8, 8, 42);
    let engine = ParallelEngine::auto();
    let ((row, col), value, outcome) = minimax_root_split_stats(&table, &engine);
    let (srow, scol, svalue) = table.maximin();
    assert_eq!(((row, col), value), ((srow, scol), svalue));
    println!(
        "minimax 8x8: play ({row}, {col}), value {value:.3} — {} rows evaluated, {} pruned",
        outcome.stats.evaluated, outcome.stats.pruned
    );

    // 2. Branch-and-bound tuning over whole SGD training runs: diverging
    //    rates are aborted as soon as their running loss is dominated.
    let data = Dataset::linear(24, 2.0, -1.0, 0.05, 3);
    let grid = vec![0.02, 1.4, 1.6, 0.05, 1.8, 2.0, 0.08, 1.2];
    let tuned = tune_training_run(&engine, grid.clone(), &data, (0.0, 0.0), 3);
    let sequential = tune_training_run(&SequentialEngine::exhaustive(), grid, &data, (0.0, 0.0), 3);
    assert_eq!(tuned.alpha, sequential.alpha);
    println!(
        "training-run grid: rate {} (total loss {:.3}) — {} runs finished, {} aborted early",
        tuned.alpha, tuned.err, tuned.stats.evaluated, tuned.stats.pruned
    );

    // 3. Batched tuneLR: the paper's grid-search handler, its grid split
    //    into batches replayed on workers; duplicate rates inside a
    //    batch are answered by the MemoChoice cache.
    let program = || {
        let prog = selc::perform::<f64, selc_ml::optimize::Optimize>(vec![0.0]).and_then(|p| {
            let e = p[0] - 3.0;
            selc::loss(e * e).map(move |_| p.clone())
        });
        selc::handle(&gd_handler_tuned(), prog)
    };
    let out = tune_lr_parallel(&engine, vec![1.0, 0.5, 1.0, 0.5, 0.25, 0.25], 2, program);
    println!(
        "batched tuneLR: rate {} (err {:.3}) — cache: {} real probes, {} hits",
        out.alpha, out.err, out.stats.cache.misses, out.stats.cache.hits
    );

    // 3b. The same tuner against a *shared* cache (SELC_CACHE_SHARDS /
    //     SELC_CACHE_CAP shape it): rates duplicated across batches are
    //     probed once globally, and a second search is answered entirely
    //     from the cache.
    let cache = selc::ShardedCache::shared_from_env();
    let grid = vec![1.0, 0.5, 1.0, 0.5, 0.25, 0.25];
    let cold = tune_lr_parallel_cached(&engine, grid.clone(), 2, program, &cache);
    let warm = tune_lr_parallel_cached(&engine, grid, 2, program, &cache);
    assert_eq!((cold.alpha, cold.err), (warm.alpha, warm.err));
    println!(
        "shared-cache tuneLR: rate {} — cold {} misses, warm {} misses / {} hits ({}% hit rate)",
        warm.alpha,
        cold.stats.cache.misses,
        warm.stats.cache.misses,
        warm.stats.cache.hits,
        (warm.stats.cache.hit_rate() * 100.0).round()
    );

    // 3c. Transposition minimax: an alternating game whose payoffs are
    //     move-order-invariant, solved once per *canonical state* from a
    //     cache shared by all workers.
    let tree = SymTree::new(4, 6, 5);
    let tcache = selc_games::transposition::TransCache::from_env();
    let (mv, value, outcome) = solve_root_split(&tree, &engine, &tcache);
    assert_eq!(value, tree.value_backward());
    println!(
        "transposition minimax (4^6 tree): move {mv}, value {value:.2} — {} states cached, {} hits",
        tcache.len(),
        outcome.stats.cache.hits
    );

    // 4. Parallel n-queens via the root-split product of selection
    //    functions.
    let n = 6;
    let placement = queens_parallel(n);
    assert!(is_solution(&placement, n));
    println!("queens {n}: {placement:?}");

    println!("parallel search OK");
}
