//! The §4.3 hyperparameter example: the learning rate as an effect,
//! served either by `readLR` (a fixed rate) or by `tuneLR` (grid search
//! through the choice continuation, never resuming).
//!
//! ```text
//! cargo run --example hyperparameter
//! ```

use selc::{handle, loss, perform, Sel};
use selc_ml::hyper::{read_lr, tune_lr};
use selc_ml::optimize::{gd_handler_tuned, Optimize};

/// One gradient step on `(p − 3)²` from `p0 = 0`, learning rate supplied
/// by an enclosing LR handler.
fn step_from_zero() -> Sel<f64, Vec<f64>> {
    let prog = perform::<f64, Optimize>(vec![0.0]).and_then(|p| {
        let e = p[0] - 3.0;
        loss(e * e).map(move |_| p.clone())
    });
    handle(&gd_handler_tuned(), prog)
}

fn main() {
    // Fixed rate 0.1: gradient at 0 is −6, so one step lands at 0.6.
    let (final_loss, p) = handle(&read_lr(0.1), step_from_zero()).run_unwrap();
    println!("readLR 0.1 : p' = {:.3}, squared error {final_loss:.3}", p[0]);
    assert!((p[0] - 0.6).abs() < 1e-3);

    // Grid search: 0.5 lands exactly on the minimum, 1.0 overshoots.
    let (_, best) = handle(&tune_lr(vec![1.0, 0.5, 0.05]), step_from_zero()).run_unwrap();
    println!("tuneLR grid {{1.0, 0.5, 0.05}} picks α = {best}");
    assert_eq!(best, 0.5);

    // A finer grid refines the choice (argmin of (3 − 6α)² over the grid).
    let grid: Vec<f64> = (1..=10).map(|i| i as f64 * 0.1).collect();
    let (_, best) = handle(&tune_lr(grid), step_from_zero()).run_unwrap();
    println!("tuneLR grid 0.1..1.0 picks α = {best}");
    assert_eq!(best, 0.5);

    println!("hyperparameter OK");
}
