//! The §4.3 greedy password example: `runSel $ hmax password`.
//!
//! ```text
//! cargo run --example password
//! ```

use selc_ml::password::{password_baseline, run_password};

fn main() {
    let candidates: Vec<String> = ["aaa", "aabb", "abc"].iter().map(|s| (*s).to_owned()).collect();

    let (reward, message) = run_password(candidates.clone());
    println!("{message}   (reward {reward})");
    assert_eq!(message, "password is abc");
    assert_eq!(reward, 12.0);

    // The handler agrees with a direct greedy baseline.
    let (breward, bmessage) = password_baseline(&candidates);
    assert_eq!((reward, message), (breward, bmessage));

    // A bigger pool: criteria are len(s) + distinct(s)².
    let pool: Vec<String> =
        ["qwerty", "zz", "abcdefg", "aaaaaaaaaa", "xyzw"].iter().map(|s| (*s).to_owned()).collect();
    let (r, m) = run_password(pool);
    println!("{m}   (reward {r})");
    assert_eq!(m, "password is abcdefg"); // 7 + 49

    println!("password OK");
}
