//! A tour of the λC calculus implementation: typechecking, small-step
//! traces (the §3.3 worked example), termination checking, and the
//! denotational semantics agreeing with the interpreter.
//!
//! ```text
//! cargo run --example lambda_c_tour
//! ```

use lambda_c::bigstep::{eval_closed, eval_traced};
use lambda_c::examples;
use lambda_c::syntax::Expr;
use lambda_c::typecheck::check_program;
use selc_denote::check_adequacy;

fn main() {
    // ---- §2.3 pgm under the argmin handler --------------------------
    let ex = examples::pgm_with_argmin_handler();
    let ty = check_program(&ex.sig, &ex.expr, &ex.eff).expect("pgm typechecks");
    println!("pgm : {ty} ! {}", ex.eff);

    let g = Expr::zero_cont(ex.ty.clone(), ex.eff.clone()).rc();
    let (trace, out) =
        eval_traced(&ex.sig, &g, &ex.eff, ex.expr.clone(), 100_000).expect("pgm evaluates");
    println!(
        "evaluates in {} steps to {} with loss {} (paper: 'a' with loss 2)",
        out.steps, out.terminal, out.loss
    );
    assert_eq!(out.terminal.to_string(), "'a'");
    assert_eq!(out.loss.as_scalar(), 2.0);

    // show the first few transitions of the §3.3 worked reduction
    println!("first transitions:");
    for step in trace.iter().take(3) {
        let line = step.expr.to_string();
        let short = if line.len() > 110 { format!("{}…", &line[..110]) } else { line };
        println!("  --{}-> {short}", step.loss);
    }

    // ---- well-foundedness (§3.4) -------------------------------------
    let levels = ex.sig.check_well_founded().expect("pgm's signature is hierarchical");
    println!("effect levels: {levels:?}");

    let moo = examples::moo_divergent();
    let err = moo.sig.check_well_founded().expect_err("moo must be rejected");
    println!("moo rejected: {err}");

    // ---- the other examples ------------------------------------------
    for (name, ex) in [
        ("decide_all", examples::decide_all()),
        ("counter", examples::counter()),
        ("minimax", examples::minimax()),
        ("password", examples::password()),
    ] {
        let out = eval_closed(&ex.sig, ex.expr.clone(), ex.ty.clone(), ex.eff.clone())
            .expect("example evaluates");
        println!("{name:11} ⇒ {} (loss {}, {} steps)", out.terminal, out.loss, out.steps);
    }

    // ---- adequacy (Theorems 5.4/5.5) ----------------------------------
    check_adequacy(&ex.sig, &ex.expr, &ex.ty, &ex.eff, 3)
        .expect("denotational semantics agrees with the interpreter");
    println!("adequacy check passed: S[pgm] L[0] = (2, 'a')");

    println!("lambda_c_tour OK");
}
