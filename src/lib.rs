//! Umbrella crate for the *Handling the Selection Monad* reproduction.
//!
//! Re-exports every workspace crate so that the runnable examples under
//! `examples/` and the cross-crate integration tests under `tests/` can use
//! one coherent namespace. See `README.md` for a tour and `DESIGN.md` for
//! the system inventory.

pub use lambda_c;
pub use lambda_rt;
pub use selc;
pub use selc_autodiff as autodiff;
pub use selc_denote as denote;
pub use selc_games as games;
pub use selc_ml as ml;
pub use selection;
