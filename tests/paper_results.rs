//! End-to-end assertions of every concrete result the paper reports,
//! across all layers of the reproduction. This is the machine-checked
//! version of EXPERIMENTS.md.

use lambda_c::examples;
use lambda_c::prim::{value_to_ground, Ground};
use selc_games::bimatrix::{Bimatrix, Matrix};
use selc_games::minimax::{minimax_handler, minimax_selection};
use selc_games::nash::{solve_nash, Step, Strategy};
use selc_ml::dataset::Dataset;
use selc_ml::linreg::train_handler_sgd;
use selc_ml::password::run_password;

fn run_lc(ex: &examples::ExampleProgram) -> lambda_c::EvalOutcome {
    lambda_c::check_program(&ex.sig, &ex.expr, &ex.eff).expect("typechecks");
    lambda_c::eval_closed(&ex.sig, ex.expr.clone(), ex.ty.clone(), ex.eff.clone())
        .expect("evaluates")
}

/// §2.2: `[True, False, False, False]`.
#[test]
fn e1_decide_all_results() {
    let out = run_lc(&examples::decide_all());
    let g = value_to_ground(&out.terminal).unwrap();
    assert_eq!(
        g,
        Ground::List(vec![
            Ground::bool(true),
            Ground::bool(false),
            Ground::bool(false),
            Ground::bool(false),
        ])
    );
}

/// §2.3: `pgm` under the argmin handler gives `'a'` with loss 2 — in the
/// calculus, in the library (exercised via the quickstart example code
/// path), and denotationally (Thm 5.5).
#[test]
fn e2_pgm_argmin() {
    let ex = examples::pgm_with_argmin_handler();
    let out = run_lc(&ex);
    assert_eq!(out.terminal.to_string(), "'a'");
    assert_eq!(out.loss, lambda_c::LossVal::scalar(2.0));
    selc_denote::check_adequacy(&ex.sig, &ex.expr, &ex.ty, &ex.eff, 3).unwrap();
}

/// §4.3: the password example gives `"password is abc"`, both in the λC
/// encoding and through the library's `Max` effect.
#[test]
fn e3_password() {
    let out = run_lc(&examples::password());
    assert_eq!(out.terminal.to_string(), "\"password is abc\"");
    assert_eq!(out.loss, lambda_c::LossVal::scalar(12.0));

    let (reward, msg) =
        run_password(["aaa", "aabb", "abc"].iter().map(|s| (*s).to_owned()).collect());
    assert_eq!(msg, "password is abc");
    assert_eq!(reward, 12.0);
}

/// §4.3: handler-based SGD converges to the least-squares line.
#[test]
fn e4_sgd_converges() {
    let data = Dataset::linear(48, 2.0, 1.0, 0.0, 7);
    let (w, b) = train_handler_sgd(&data, (0.0, 0.0), 0.05, 30);
    let (lw, lb) = data.least_squares();
    assert!((w - lw).abs() < 0.05, "w {w} vs {lw}");
    assert!((b - lb).abs() < 0.05, "b {b} vs {lb}");
}

/// §4.3: `tuneLR` picks the rate with the smaller downstream loss — see
/// `selc-ml`'s unit tests for the concrete grid; here we assert the
/// integration through the optimizer.
#[test]
fn e5_tune_lr() {
    use selc::{handle, loss, perform};
    let prog = perform::<f64, selc_ml::optimize::Optimize>(vec![0.0]).and_then(|p| {
        let e = p[0] - 3.0;
        loss(e * e).map(move |_| p.clone())
    });
    let inner = handle(&selc_ml::optimize::gd_handler_tuned(), prog);
    let (_, alpha) = handle(&selc_ml::hyper::tune_lr(vec![1.0, 0.5]), inner).run_unwrap();
    assert_eq!(alpha, 0.5);
}

/// §4.3: `tuneLR` in the calculus agrees with the library: same grid, same
/// winner, and the non-resuming handler records no loss in either layer.
#[test]
fn e5b_tune_lr_cross_layer() {
    // λC version
    let ex = lambda_c::examples::tune_lr(1.0, 0.5);
    let out = run_lc(&ex);
    assert_eq!(out.terminal, lambda_c::Expr::lossc(0.5));
    assert!(out.loss.is_zero());

    // library version on the same optimisation shape: err(α) = (3 − 6α)²
    use selc::{handle, loss, perform, Sel};
    let step: Sel<f64, f64> = perform::<f64, selc_ml::hyper::Lrate>(()).and_then(|alpha| {
        let err = (3.0 - 6.0 * alpha) * (3.0 - 6.0 * alpha);
        loss(err).map(move |_| err)
    });
    let (l, best) = handle(&selc_ml::hyper::tune_lr(vec![1.0, 0.5]), step).run_unwrap();
    assert_eq!(best, 0.5);
    assert_eq!(l, 0.0);
}

/// §4.3: minimax on [[5,3],[2,9]] gives (Left, Right) with loss 3, for the
/// handler pair, the selection product, backward induction, and the λC
/// encoding.
#[test]
fn e6_minimax() {
    let m = Matrix::paper_example();
    assert_eq!(minimax_handler(&m), ((0, 1), 3.0));
    assert_eq!(minimax_selection(&m), ((0, 1), 3.0));
    assert_eq!(m.maximin(), (0, 1, 3.0));

    let out = run_lc(&examples::minimax());
    let g = value_to_ground(&out.terminal).unwrap();
    assert_eq!(g, Ground::Tuple(vec![Ground::bool(true), Ground::bool(false)]));
    assert_eq!(out.loss, lambda_c::LossVal::scalar(3.0));
}

/// §4.3: the prisoner's dilemma reaches (Stay Left, Stay Left) — defect/
/// defect — in 2 steps, and it is the unique pure Nash equilibrium.
#[test]
fn e7_nash() {
    let g = Bimatrix::prisoners_dilemma();
    let ((a, b), n) = solve_nash(&g, (Strategy::Cooperate, Strategy::Cooperate));
    assert_eq!((a, b), (Step::Stay(Strategy::Defect), Step::Stay(Strategy::Defect)));
    assert_eq!(n, 2);
    assert_eq!(g.pure_nash_equilibria(), vec![(0, 0)]);
}

/// §2.1: the one-move game solved by the Kleisli extension of argmax.
#[test]
fn e8_selection_monad_game() {
    use selection::{argmax, argmin_by, LossFn, Sel};
    let eval = |x: usize, y: usize| [[5.0_f64, 3.0], [2.0, 9.0]][x][y];
    let f = move |x: usize| {
        Sel::new(move |g: LossFn<(usize, usize), f64>| {
            let y = argmin_by(vec![0usize, 1], |y| g(&(x, *y)));
            (x, y)
        })
    };
    let minimax = argmax(vec![0usize, 1]).and_then(f);
    assert_eq!(minimax.select(move |&(x, y)| eval(x, y)), (0, 1));
    assert_eq!(minimax.loss(move |&(x, y)| eval(x, y)), 3.0);
}

/// §3.3's worked reduction: the trace of `pgm` ends with `'a'` and the
/// single loss-2 emission the paper computes.
#[test]
fn e9_worked_reduction_trace() {
    let ex = examples::pgm_with_argmin_handler();
    let g = lambda_c::Expr::zero_cont(ex.ty.clone(), ex.eff.clone()).rc();
    let (trace, out) =
        lambda_c::bigstep::eval_traced(&ex.sig, &g, &ex.eff, ex.expr.clone(), 100_000).unwrap();
    assert_eq!(out.loss, lambda_c::LossVal::scalar(2.0));
    // exactly one non-zero loss emission on the chosen path
    let emissions: Vec<&lambda_c::LossVal> =
        trace.iter().map(|s| &s.loss).filter(|l| !l.is_zero()).collect();
    assert_eq!(emissions.len(), 1);
    assert_eq!(*emissions[0], lambda_c::LossVal::scalar(2.0));
}

/// §3.4: `moo` is rejected by the well-foundedness check and diverges.
#[test]
fn e10_moo() {
    let ex = examples::moo_divergent();
    assert!(ex.sig.check_well_founded().is_err());
    let g = lambda_c::Expr::zero_cont(ex.ty.clone(), ex.eff.clone()).rc();
    let r = lambda_c::eval(&ex.sig, &g, &ex.eff, ex.expr.clone(), 200);
    assert!(matches!(r, Err(lambda_c::EvalError::OutOfFuel { .. })));
}

/// Theorems 5.4/5.5: adequacy on every runnable paper example.
#[test]
fn e11_adequacy_on_all_examples() {
    for ex in [
        examples::pgm_with_argmin_handler(),
        examples::decide_all(),
        examples::counter(),
        examples::minimax(),
        examples::password(),
    ] {
        selc_denote::check_adequacy(&ex.sig, &ex.expr, &ex.ty, &ex.eff, 3)
            .unwrap_or_else(|e| panic!("{e}"));
    }
}
