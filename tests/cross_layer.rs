//! Cross-layer differential testing: the same *choice programs* are
//! interpreted (a) by the λC small-step machine (`lambda-c`) and (b) by
//! the `selc` library, and must produce identical losses and results.
//!
//! The program family is random binary decision trees: every internal
//! node performs `decide()`, records a branch-dependent loss, and
//! descends; leaves record a final loss and return a character. All
//! trees are handled by the loss-minimising handler of §2.3, so both
//! layers must pick the globally cheapest root-to-leaf path (the choice
//! continuation sees the whole future).

use lambda_c::build as lc;
use lambda_c::syntax::Expr;
use lambda_c::types::{BaseTy, Effect, Type};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use selc::{handle, loss, perform, Handler, Sel};

selc::effect! {
    effect NDet {
        op Decide : () => bool;
    }
}

#[derive(Clone, Debug)]
enum DTree {
    Leaf { result: char, extra: f64 },
    Node { on_true: f64, on_false: f64, t: Box<DTree>, f: Box<DTree> },
}

impl DTree {
    fn random(rng: &mut StdRng, depth: u32) -> DTree {
        if depth == 0 {
            DTree::Leaf {
                result: if rng.gen_bool(0.5) { 'a' } else { 'b' },
                extra: rng.gen_range(0..8) as f64,
            }
        } else {
            DTree::Node {
                on_true: rng.gen_range(0..8) as f64,
                on_false: rng.gen_range(0..8) as f64,
                t: Box::new(DTree::random(rng, depth - 1)),
                f: Box::new(DTree::random(rng, depth - 1)),
            }
        }
    }

    /// The cheapest root-to-leaf cost and its result (ties prefer the
    /// `true` branch, like the `y <= z` handlers).
    fn optimum(&self) -> (f64, char) {
        match self {
            DTree::Leaf { result, extra } => (*extra, *result),
            DTree::Node { on_true, on_false, t, f } => {
                let (ct, rt) = t.optimum();
                let (cf, rf) = f.optimum();
                let total_t = on_true + ct;
                let total_f = on_false + cf;
                if total_t <= total_f {
                    (total_t, rt)
                } else {
                    (total_f, rf)
                }
            }
        }
    }

    /// The tree as a λC expression of type `char ! {amb}`.
    fn to_lambda_c(&self) -> Expr {
        let eamb = Effect::single("amb");
        match self {
            DTree::Leaf { result, extra } => {
                lc::seq(eamb, Type::unit(), lc::loss(lc::lc(*extra)), lc::ch(*result))
            }
            DTree::Node { on_true, on_false, t, f } => lc::let_(
                eamb.clone(),
                "b",
                Type::bool(),
                lc::op("decide", lc::unit()),
                lc::seq(
                    eamb,
                    Type::unit(),
                    lc::loss(lc::if_(lc::v("b"), lc::lc(*on_true), lc::lc(*on_false))),
                    lc::if_(lc::v("b"), t.to_lambda_c(), f.to_lambda_c()),
                ),
            ),
        }
    }

    /// The tree as a `selc` computation.
    fn to_sel(&self) -> Sel<f64, char> {
        match self {
            DTree::Leaf { result, extra } => {
                let r = *result;
                loss(*extra).map(move |_| r)
            }
            DTree::Node { on_true, on_false, t, f } => {
                let (on_true, on_false) = (*on_true, *on_false);
                let (t, f) = (t.clone(), f.clone());
                perform::<f64, Decide>(()).and_then(move |b| {
                    let cost = if b { on_true } else { on_false };
                    let (t, f) = (t.clone(), f.clone());
                    loss(cost).and_then(move |_| if b { t.to_sel() } else { f.to_sel() })
                })
            }
        }
    }
}

/// λC argmin handler for `amb` at result type `char`.
fn lc_argmin_handler() -> lambda_c::syntax::Handler {
    use lc::*;
    let e0 = Effect::empty();
    let chr = Type::Base(BaseTy::Char);
    HandlerBuilder::new("amb", chr.clone(), chr, e0.clone())
        .on(
            "decide",
            "p",
            "x",
            "l",
            "k",
            let_(
                e0.clone(),
                "y",
                Type::loss(),
                app(v("l"), pair(v("p"), Expr::tt())),
                let_(
                    e0,
                    "z",
                    Type::loss(),
                    app(v("l"), pair(v("p"), Expr::ff())),
                    if_(
                        leq(v("y"), v("z")),
                        app(v("k"), pair(v("p"), Expr::tt())),
                        app(v("k"), pair(v("p"), Expr::ff())),
                    ),
                ),
            ),
        )
        .build()
}

/// selc argmin handler.
fn sel_argmin_handler() -> Handler<f64, char, char> {
    Handler::builder::<NDet>()
        .on::<Decide>(|(), l, k| {
            l.at(true).and_then(move |y| {
                let (l, k) = (l.clone(), k.clone());
                l.at(false).and_then(move |z| if y <= z { k.resume(true) } else { k.resume(false) })
            })
        })
        .build_identity()
}

fn lambda_c_run(tree: &DTree) -> (f64, char) {
    let mut sig = lambda_c::Signature::new();
    sig.declare(
        "amb",
        vec![("decide".into(), lambda_c::OpSig { arg: Type::unit(), ret: Type::bool() })],
    )
    .unwrap();
    let prog = lc::handle0(lc_argmin_handler(), tree.to_lambda_c());
    lambda_c::check_program(&sig, &prog, &Effect::empty()).expect("tree program typechecks");
    let out = lambda_c::eval_closed(&sig, prog, Type::Base(BaseTy::Char), Effect::empty())
        .expect("tree program evaluates");
    let c = match out.terminal {
        Expr::Const(lambda_c::Const::Char(c)) => c,
        other => panic!("expected a char, got {other}"),
    };
    (out.loss.as_scalar(), c)
}

fn selc_run(tree: &DTree) -> (f64, char) {
    handle(&sel_argmin_handler(), tree.to_sel()).run_unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Both layers pick the same (optimal) path and report the same loss —
    /// and both match the direct dynamic-programming optimum.
    #[test]
    fn calculus_and_library_agree_on_decision_trees(seed in 0u64..1_000_000, depth in 1u32..4) {
        let mut rng = StdRng::seed_from_u64(seed);
        let tree = DTree::random(&mut rng, depth);
        let (lc_loss, lc_result) = lambda_c_run(&tree);
        let (sel_loss, sel_result) = selc_run(&tree);
        let (opt_loss, opt_result) = tree.optimum();
        prop_assert_eq!(lc_result, sel_result, "results diverge on {:?}", tree);
        prop_assert!((lc_loss - sel_loss).abs() < 1e-9, "losses diverge on {:?}", tree);
        prop_assert_eq!(lc_result, opt_result, "calculus missed the optimum on {:?}", tree);
        prop_assert!((lc_loss - opt_loss).abs() < 1e-9, "loss not optimal on {:?}", tree);
    }
}

#[test]
fn fixed_tree_sanity() {
    // decide(); true → loss 1, leaf 'a' (+0); false → loss 0, leaf 'b' (+2)
    let tree = DTree::Node {
        on_true: 1.0,
        on_false: 0.0,
        t: Box::new(DTree::Leaf { result: 'a', extra: 0.0 }),
        f: Box::new(DTree::Leaf { result: 'b', extra: 2.0 }),
    };
    assert_eq!(tree.optimum(), (1.0, 'a'));
    assert_eq!(lambda_c_run(&tree), (1.0, 'a'));
    assert_eq!(selc_run(&tree), (1.0, 'a'));
}
