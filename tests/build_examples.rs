//! Workspace smoke test: all examples under `examples/` compile, and the
//! quickstart runs to completion.
//!
//! Uses the same `cargo` that launched the test (`CARGO` env), sharing the
//! target directory, so in CI this mostly re-validates cached artifacts.

use std::path::Path;
use std::process::Command;

fn cargo() -> Command {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
    let mut c = Command::new(cargo);
    c.current_dir(env!("CARGO_MANIFEST_DIR"));
    c
}

/// Every `examples/*.rs` file has a matching auto-discovered example
/// target, and they all compile.
#[test]
fn all_examples_compile() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("examples");
    let found: Vec<String> = std::fs::read_dir(dir)
        .expect("examples/ exists")
        .filter_map(|e| {
            let p = e.unwrap().path();
            (p.extension().is_some_and(|x| x == "rs"))
                .then(|| p.file_stem().unwrap().to_string_lossy().into_owned())
        })
        .collect();
    assert!(found.len() >= 7, "expected the seven seed examples, found {found:?}");

    let out = cargo().args(["build", "--examples"]).output().expect("cargo runs");
    assert!(
        out.status.success(),
        "cargo build --examples failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

/// The quickstart example runs to completion and prints its final marker.
#[test]
fn quickstart_runs_to_completion() {
    let out = cargo().args(["run", "-q", "--example", "quickstart"]).output().expect("cargo runs");
    assert!(
        out.status.success(),
        "quickstart exited nonzero:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("quickstart OK"), "unexpected quickstart output:\n{stdout}");
}
