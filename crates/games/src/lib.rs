//! Game-theory substrate for §2.1 and §4.3 of *Handling the Selection
//! Monad*: minimax play and Nash equilibria, each implemented both with
//! choice-continuation handlers (the paper's way) and with conventional
//! baselines (enumeration, backward induction, selection-function
//! products) for differential testing and benchmarking.
//!
//! * [`bimatrix`] — two-player matrix games, pure-Nash enumeration,
//!   best-response machinery;
//! * [`minimax`] — the §4.3 minimax example generalised to arbitrary
//!   tables and move counts: `Max`/`Min` effects, handler solution,
//!   backward-induction baseline, selection-product baseline;
//! * [`nash`] — the §4.3 prisoner's-dilemma `hNash` handler (one-sided
//!   improvement steps iterated to a fixed point) plus enumeration
//!   baseline;
//! * [`queens`] — n-queens via products of selection functions (the
//!   algorithm-design lineage the paper cites: Escardó–Oliva,
//!   Hartmann–Gibbons);
//! * [`alternating`] — multi-round alternating game trees: handler-driven
//!   backward induction vs. an explicit negamax baseline;
//! * [`parallel`] — the same games on the `selc-engine` worker pool:
//!   root-split minimax (with branch-and-bound row pruning) and
//!   root-split queens, bit-identical to their sequential counterparts;
//! * [`transposition`] — transposition-table minimax over `selc-cache`:
//!   alternating games keyed on canonicalised state, repeated subtrees
//!   answered from a cache shared across engine workers and runs.

pub mod alternating;
pub mod bimatrix;
pub mod minimax;
pub mod nash;
pub mod parallel;
pub mod queens;
pub mod transposition;
