//! Multi-round alternating games: the §4.3 minimax example extended from
//! one move each to a full game tree of alternating moves.
//!
//! The correct generalisation nests **one handler per ply**, outermost
//! handler for the first mover — exactly how the paper nests
//! `hmax $ hmin` for its two-ply game. Each ply's choice continuation
//! then resolves the whole subtree below it (all later plies are handled
//! *inside* the probed resumption), which is backward induction.
//!
//! Sharing a single handler between two plies of the same player is *not*
//! the same game: an op of ply 2 surfacing inside ply 1's probe escapes
//! past the prober to the shared outer handler, whose own choice
//! continuation then spans the prober's subsequent clause logic. That is
//! faithful calculus behaviour (choice continuations are global until
//! localised) but it is not backward induction —
//! [`GameTree::solve_shared_handlers`] exhibits it and the tests pin down
//! a case where the two diverge.

use crate::minimax::{hmax, hmin, MaxMove, MinMove};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use selc::{effect, handle, loss, perform, Choice, Handler, Sel};
use selc_cache::ShardedCache;
use selc_obs::{trace, SpanLabel};
use std::rc::Rc;
use std::sync::LazyLock;

/// One flagged-table alpha-beta solve, root to resolution; the span
/// argument is the tree depth.
static AB_SOLVE_SPAN: SpanLabel = SpanLabel::new("games.ab_solve");

/// Leaves the flagged-table solvers actually evaluated (0 on a warm
/// repeat — the gap between this and `games.ab_solves` is the served
/// game path's warmth, end to end).
static AB_LEAVES: LazyLock<selc_obs::Counter> =
    LazyLock::new(|| selc_obs::metrics::counter("games.ab_leaves"));
static AB_SOLVES: LazyLock<selc_obs::Counter> =
    LazyLock::new(|| selc_obs::metrics::counter("games.ab_solves"));
static AB_CANCELLED: LazyLock<selc_obs::Counter> =
    LazyLock::new(|| selc_obs::metrics::counter("games.ab_cancelled"));

/// How much a stored alpha–beta resolution can be trusted on a later
/// visit — the minimax mirror of the engine's exact/bound subtree
/// summaries (`selc_cache::SubtreeSummary`).
///
/// Classification is against the node's *original* window `(α₀, β₀)`
/// under the strict-cutoff discipline: values inside the **closed**
/// window `[α₀, β₀]` are exact (a strict cutoff only ever skips
/// subtrees that strictly lose, so boundary values are still resolved
/// in full, ties included), values strictly outside it are one-sided
/// bounds produced by a cut somewhere below.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AbFlag {
    /// `value` is the true minimax value and `play` the backward-
    /// induction play (leftmost ties). Reusable under any window.
    Exact,
    /// The node was cut from below: the true value is `>= value`.
    /// Reusable only to re-trigger a cut, when `value > beta`.
    Lower,
    /// Symmetric: the true value is `<= value`. Reusable only when
    /// `value < alpha`.
    Upper,
}

/// One transposition entry: a node's resolved `(play, value)` and how
/// far it can be trusted ([`AbFlag`]).
#[derive(Clone, Debug, PartialEq)]
pub struct AbEntry {
    /// The best full root-to-leaf move path found below the node.
    pub play: Vec<usize>,
    /// The node's minimax value (exact or a one-sided bound, per `flag`).
    pub value: f64,
    /// How much of the window search the entry replaces.
    pub flag: AbFlag,
}

/// A transposition table for [`GameTree::solve_alphabeta_tt`], keyed by
/// the move path that names the node. Paths carry no tree identity, so
/// one handle serves **one tree per epoch**: call
/// [`ShardedCache::advance_epoch`] before pointing it at a different
/// tree (entries then lazily die, exactly like the engine caches).
pub type AbCache = ShardedCache<Vec<usize>, AbEntry>;

effect! {
    /// Ply-0 move (maximiser).
    pub effect Ply0 {
        /// Choose among `n` moves.
        op Move0 : usize => usize;
    }
}
effect! {
    /// Ply-1 move (minimiser).
    pub effect Ply1 {
        /// Choose among `n` moves.
        op Move1 : usize => usize;
    }
}
effect! {
    /// Ply-2 move (maximiser).
    pub effect Ply2 {
        /// Choose among `n` moves.
        op Move2 : usize => usize;
    }
}
effect! {
    /// Ply-3 move (minimiser).
    pub effect Ply3 {
        /// Choose among `n` moves.
        op Move3 : usize => usize;
    }
}

/// Maximum supported depth of [`GameTree::solve_handlers`] (one static
/// effect per ply).
pub const MAX_DEPTH: usize = 4;

fn pick_extreme(l: &Choice<f64, usize>, n: usize, maximise: bool) -> Sel<f64, usize> {
    fn go(
        l: Choice<f64, usize>,
        n: usize,
        maximise: bool,
        i: usize,
        best: Option<(usize, f64)>,
    ) -> Sel<f64, usize> {
        if i == n {
            return Sel::pure(best.expect("no moves").0);
        }
        l.at(i).and_then(move |li| {
            let better = match best {
                None => true,
                Some((_, bv)) => {
                    if maximise {
                        li > bv
                    } else {
                        li < bv
                    }
                }
            };
            let next = if better { Some((i, li)) } else { best };
            go(l.clone(), n, maximise, i + 1, next)
        })
    }
    go(l.clone(), n, maximise, 0, None)
}

macro_rules! ply_handler {
    ($name:ident, $op:ident, $maximise:expr) => {
        fn $name<B: Clone + 'static>() -> Handler<f64, B, B> {
            Handler::builder::<<$op as selc::Operation>::Effect>()
                .on::<$op>(|n, l, k| pick_extreme(&l, n, $maximise).and_then(move |m| k.resume(m)))
                .build_identity()
        }
    };
}

ply_handler!(h_ply0, Move0, true);
ply_handler!(h_ply1, Move1, false);
ply_handler!(h_ply2, Move2, true);
ply_handler!(h_ply3, Move3, false);

/// A complete game tree with `branching^depth` leaves, maximiser to move
/// first, leaf values indexed by the move path.
#[derive(Clone, Debug)]
pub struct GameTree {
    /// Moves available at every node.
    pub branching: usize,
    /// Number of plies (at most [`MAX_DEPTH`] for the handler solver).
    pub depth: usize,
    /// Leaf values in lexicographic path order.
    pub leaves: Vec<f64>,
}

impl GameTree {
    /// A random game tree.
    ///
    /// # Panics
    ///
    /// Panics if `branching == 0` or `depth == 0`.
    pub fn random(branching: usize, depth: usize, seed: u64) -> GameTree {
        assert!(branching > 0 && depth > 0, "degenerate game tree");
        let mut rng = StdRng::seed_from_u64(seed);
        let n = branching.pow(depth as u32);
        let leaves = (0..n).map(|_| rng.gen_range(0.0..100.0)).collect();
        GameTree { branching, depth, leaves }
    }

    /// The leaf value at a full move path.
    pub fn leaf(&self, path: &[usize]) -> f64 {
        let mut idx = 0;
        for m in path {
            idx = idx * self.branching + m;
        }
        self.leaves[idx]
    }

    /// Explicit backward induction (negamax-style) — the baseline. The
    /// maximiser moves on even plies; ties break towards smaller move
    /// indices at every node.
    pub fn solve_backward(&self) -> (Vec<usize>, f64) {
        fn go(t: &GameTree, path: &mut Vec<usize>) -> (Vec<usize>, f64) {
            if path.len() == t.depth {
                return (path.clone(), t.leaf(path));
            }
            let maximising = path.len().is_multiple_of(2);
            let mut best: Option<(Vec<usize>, f64)> = None;
            for m in 0..t.branching {
                path.push(m);
                let (p, v) = go(t, path);
                path.pop();
                let better = match &best {
                    None => true,
                    Some((_, bv)) => {
                        if maximising {
                            v > *bv
                        } else {
                            v < *bv
                        }
                    }
                };
                if better {
                    best = Some((p, v));
                }
            }
            best.expect("branching > 0")
        }
        go(self, &mut Vec::new())
    }

    /// Strict-cutoff alpha–beta: backward induction that skips a
    /// subtree only when its value falls *strictly* outside the
    /// `(alpha, beta)` window — the minimax analogue of the engine's
    /// strict-domination pruning. A node cut at `v > beta` (maximiser)
    /// strictly loses at the minimising ancestor that achieved `beta`,
    /// so it can neither win nor *tie* there; nodes on a tie boundary
    /// are never cut. The returned play and value are therefore
    /// bit-identical to [`GameTree::solve_backward`], leftmost
    /// tie-breaking included. Works at any depth (no handler-effect
    /// limit).
    pub fn solve_alphabeta(&self) -> (Vec<usize>, f64) {
        let (play, value, _) = self.solve_alphabeta_stats();
        (play, value)
    }

    /// [`GameTree::solve_alphabeta`] plus the number of leaves actually
    /// evaluated (what the window cuts saved).
    pub fn solve_alphabeta_stats(&self) -> (Vec<usize>, f64, u64) {
        let mut path = Vec::new();
        let mut leaves = 0;
        let (play, value) =
            self.alphabeta(&mut path, f64::NEG_INFINITY, f64::INFINITY, &mut leaves);
        (play, value, leaves)
    }

    /// Solves the subgame below the fixed move `prefix` with local
    /// strict-cutoff alpha–beta (a fresh window — cross-subtree bounds
    /// would make the cut set depend on sibling timing). Building block
    /// of the parallel full-tree solver in [`crate::parallel`].
    pub fn solve_alphabeta_from(&self, prefix: &[usize]) -> (Vec<usize>, f64) {
        let mut path = prefix.to_vec();
        let mut leaves = 0;
        self.alphabeta(&mut path, f64::NEG_INFINITY, f64::INFINITY, &mut leaves)
    }

    fn alphabeta(
        &self,
        path: &mut Vec<usize>,
        alpha: f64,
        beta: f64,
        leaves: &mut u64,
    ) -> (Vec<usize>, f64) {
        if path.len() == self.depth {
            *leaves += 1;
            return (path.clone(), self.leaf(path));
        }
        let maximising = path.len().is_multiple_of(2);
        let (mut alpha, mut beta) = (alpha, beta);
        let mut best: Option<(Vec<usize>, f64)> = None;
        for m in 0..self.branching {
            path.push(m);
            let (p, v) = self.alphabeta(path, alpha, beta, leaves);
            path.pop();
            let better = match &best {
                None => true,
                Some((_, bv)) => {
                    if maximising {
                        v > *bv
                    } else {
                        v < *bv
                    }
                }
            };
            if better {
                best = Some((p, v));
            }
            let bv = best.as_ref().expect("just set").1;
            if maximising {
                alpha = alpha.max(bv);
                if bv > beta {
                    break; // strictly loses at the min ancestor achieving beta
                }
            } else {
                beta = beta.min(bv);
                if bv < alpha {
                    break; // strictly loses at the max ancestor achieving alpha
                }
            }
        }
        best.expect("branching > 0")
    }

    /// [`GameTree::solve_alphabeta`] through a flagged transposition
    /// table: every interior resolution is stored as an [`AbEntry`] and
    /// later visits probe before searching — `Exact` entries answer
    /// outright, `Lower`/`Upper` entries re-trigger the cut they came
    /// from when they still clear the live window. The root's window is
    /// infinite, so the root always stores `Exact` and a warm repeat is
    /// O(1): one probe, zero leaves.
    ///
    /// Bit-identity with [`GameTree::solve_backward`] (play *and*
    /// value, leftmost ties) is preserved because bound entries are
    /// reused only strictly outside the live window — positions the
    /// strict-cutoff search discards or cuts on anyway — while values
    /// inside the closed window always come from `Exact` entries or a
    /// full sub-search.
    pub fn solve_alphabeta_tt(&self, cache: &AbCache) -> (Vec<usize>, f64) {
        let (play, value, _) = self.solve_alphabeta_tt_stats(cache);
        (play, value)
    }

    /// [`GameTree::solve_alphabeta_tt`] plus the number of leaves
    /// actually evaluated (0 on a warm repeat).
    pub fn solve_alphabeta_tt_stats(&self, cache: &AbCache) -> (Vec<usize>, f64, u64) {
        let _span = trace::span(&AB_SOLVE_SPAN, self.depth as u64);
        let mut path = Vec::new();
        let mut leaves = 0;
        let (play, value) =
            self.alphabeta_tt(&mut path, f64::NEG_INFINITY, f64::INFINITY, &mut leaves, cache);
        AB_SOLVES.inc();
        AB_LEAVES.add(leaves);
        (play, value, leaves)
    }

    /// [`GameTree::solve_alphabeta_tt_stats`] under a
    /// `selc_engine::CancelToken`, checked at every interior node like
    /// the tree engine's walker. Returns `None` when the token fired
    /// mid-solve: minimax has no sound "best seen so far" (an unexplored
    /// sibling can change every ancestor's value), so a cancelled solve
    /// yields nothing rather than a wrong play. Soundness against the
    /// table: an aborted node returns **before** computing or storing a
    /// value, and the abort propagates straight up, so no entry derived
    /// from a partially-searched node is ever stored — entries written
    /// by completed siblings earlier in the solve are real resolutions
    /// and stay valid for the next request.
    pub fn solve_alphabeta_tt_cancellable(
        &self,
        cache: &AbCache,
        cancel: &selc_engine::CancelToken,
    ) -> Option<(Vec<usize>, f64, u64)> {
        let _span = trace::span(&AB_SOLVE_SPAN, self.depth as u64);
        let mut path = Vec::new();
        let mut leaves = 0;
        let solved = self.alphabeta_tt_cancellable_at(
            &mut path,
            f64::NEG_INFINITY,
            f64::INFINITY,
            &mut leaves,
            cache,
            cancel,
        );
        AB_LEAVES.add(leaves);
        match solved {
            Some((play, value)) => {
                AB_SOLVES.inc();
                Some((play, value, leaves))
            }
            None => {
                AB_CANCELLED.inc();
                None
            }
        }
    }

    fn alphabeta_tt_cancellable_at(
        &self,
        path: &mut Vec<usize>,
        alpha0: f64,
        beta0: f64,
        leaves: &mut u64,
        cache: &AbCache,
        cancel: &selc_engine::CancelToken,
    ) -> Option<(Vec<usize>, f64)> {
        if path.len() == self.depth {
            *leaves += 1;
            return Some((path.clone(), self.leaf(path)));
        }
        if cancel.is_cancelled() {
            return None; // nothing computed here, nothing stored
        }
        if let Some(e) = cache.lookup(path) {
            let usable = match e.flag {
                AbFlag::Exact => true,
                AbFlag::Lower => e.value > beta0,
                AbFlag::Upper => e.value < alpha0,
            };
            if usable {
                return Some((e.play, e.value));
            }
        }
        let maximising = path.len().is_multiple_of(2);
        let (mut alpha, mut beta) = (alpha0, beta0);
        let mut best: Option<(Vec<usize>, f64)> = None;
        for m in 0..self.branching {
            path.push(m);
            let r = self.alphabeta_tt_cancellable_at(path, alpha, beta, leaves, cache, cancel);
            path.pop();
            let (p, v) = r?; // a cancelled child unwinds the whole solve
            let better = match &best {
                None => true,
                Some((_, bv)) => {
                    if maximising {
                        v > *bv
                    } else {
                        v < *bv
                    }
                }
            };
            if better {
                best = Some((p, v));
            }
            let bv = best.as_ref().expect("just set").1;
            if maximising {
                alpha = alpha.max(bv);
                if bv > beta {
                    break;
                }
            } else {
                beta = beta.min(bv);
                if bv < alpha {
                    break;
                }
            }
        }
        let (play, value) = best.expect("branching > 0");
        let flag = if value > beta0 {
            AbFlag::Lower
        } else if value < alpha0 {
            AbFlag::Upper
        } else {
            AbFlag::Exact
        };
        cache.store(path.clone(), AbEntry { play: play.clone(), value, flag });
        Some((play, value))
    }

    fn alphabeta_tt(
        &self,
        path: &mut Vec<usize>,
        alpha0: f64,
        beta0: f64,
        leaves: &mut u64,
        cache: &AbCache,
    ) -> (Vec<usize>, f64) {
        if path.len() == self.depth {
            *leaves += 1;
            return (path.clone(), self.leaf(path));
        }
        if let Some(e) = cache.lookup(path) {
            // An `Exact` hit substitutes the true resolution wherever
            // the fresh search would have produced one; a bound hit is
            // honoured only when it clears the *live* window strictly,
            // i.e. exactly when the fresh search's fail-soft value
            // would land on the same side and trigger the same cut.
            let usable = match e.flag {
                AbFlag::Exact => true,
                AbFlag::Lower => e.value > beta0,
                AbFlag::Upper => e.value < alpha0,
            };
            if usable {
                return (e.play, e.value);
            }
        }
        let maximising = path.len().is_multiple_of(2);
        let (mut alpha, mut beta) = (alpha0, beta0);
        let mut best: Option<(Vec<usize>, f64)> = None;
        for m in 0..self.branching {
            path.push(m);
            let (p, v) = self.alphabeta_tt(path, alpha, beta, leaves, cache);
            path.pop();
            let better = match &best {
                None => true,
                Some((_, bv)) => {
                    if maximising {
                        v > *bv
                    } else {
                        v < *bv
                    }
                }
            };
            if better {
                best = Some((p, v));
            }
            let bv = best.as_ref().expect("just set").1;
            if maximising {
                alpha = alpha.max(bv);
                if bv > beta {
                    break;
                }
            } else {
                beta = beta.min(bv);
                if bv < alpha {
                    break;
                }
            }
        }
        let (play, value) = best.expect("branching > 0");
        let flag = if value > beta0 {
            AbFlag::Lower
        } else if value < alpha0 {
            AbFlag::Upper
        } else {
            AbFlag::Exact
        };
        cache.store(path.clone(), AbEntry { play: play.clone(), value, flag });
        (play, value)
    }

    /// The game as a `Sel` program over the per-ply effects.
    fn program(&self) -> Sel<f64, Vec<usize>> {
        fn go(t: Rc<GameTree>, path: Vec<usize>) -> Sel<f64, Vec<usize>> {
            if path.len() == t.depth {
                let v = t.leaf(&path);
                return loss(v).map(move |_| path.clone());
            }
            let b = t.branching;
            let step = move |m: usize, t: Rc<GameTree>, mut p: Vec<usize>| {
                p.push(m);
                go(t, p)
            };
            match path.len() {
                0 => {
                    perform::<f64, Move0>(b).and_then(move |m| step(m, Rc::clone(&t), path.clone()))
                }
                1 => {
                    perform::<f64, Move1>(b).and_then(move |m| step(m, Rc::clone(&t), path.clone()))
                }
                2 => {
                    perform::<f64, Move2>(b).and_then(move |m| step(m, Rc::clone(&t), path.clone()))
                }
                _ => {
                    perform::<f64, Move3>(b).and_then(move |m| step(m, Rc::clone(&t), path.clone()))
                }
            }
        }
        go(Rc::new(self.clone()), Vec::new())
    }

    /// Solves the game with one handler per ply, outermost first mover —
    /// exact backward induction. Returns `(play, value)`.
    ///
    /// # Panics
    ///
    /// Panics if `depth > MAX_DEPTH`.
    pub fn solve_handlers(&self) -> (Vec<usize>, f64) {
        assert!(self.depth <= MAX_DEPTH, "per-ply handlers support depth <= {MAX_DEPTH}");
        let prog = self.program();
        let prog = handle(&h_ply3(), prog);
        let prog = handle(&h_ply2(), prog);
        let prog = handle(&h_ply1(), prog);
        let prog = handle(&h_ply0(), prog);
        let (v, play) = prog.run_unwrap();
        (play, v)
    }

    /// The *shared-handler* variant: one `hmax` for all maximiser plies
    /// and one `hmin` for all minimiser plies. For depth ≤ 2 this equals
    /// backward induction (it is the paper's own nesting); for deeper
    /// trees a later op surfacing inside an earlier probe escapes to the
    /// shared handler and the dynamics differ — see module docs.
    pub fn solve_shared_handlers(&self) -> (Vec<usize>, f64) {
        fn go(t: Rc<GameTree>, path: Vec<usize>) -> Sel<f64, Vec<usize>> {
            if path.len() == t.depth {
                let v = t.leaf(&path);
                return loss(v).map(move |_| path.clone());
            }
            let b = t.branching;
            if path.len().is_multiple_of(2) {
                perform::<f64, MaxMove>(b).and_then(move |m| {
                    let mut p = path.clone();
                    p.push(m);
                    go(Rc::clone(&t), p)
                })
            } else {
                perform::<f64, MinMove>(b).and_then(move |m| {
                    let mut p = path.clone();
                    p.push(m);
                    go(Rc::clone(&t), p)
                })
            }
        }
        let prog = go(Rc::new(self.clone()), Vec::new());
        let (v, play) = handle(&hmax(), handle(&hmin(), prog)).run_unwrap();
        (play, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_two_matches_paper_shape() {
        // [[5,3],[2,9]] as a depth-2, branching-2 tree
        let t = GameTree { branching: 2, depth: 2, leaves: vec![5.0, 3.0, 2.0, 9.0] };
        assert_eq!(t.solve_backward(), (vec![0, 1], 3.0));
        assert_eq!(t.solve_handlers(), (vec![0, 1], 3.0)); // (Left, Right)
        assert_eq!(t.solve_shared_handlers(), (vec![0, 1], 3.0));
    }

    #[test]
    fn per_ply_handlers_match_backward_induction() {
        for seed in 0..10 {
            for depth in [2usize, 3, 4] {
                let t = GameTree::random(2, depth, seed);
                let (play, v) = t.solve_handlers();
                let (bplay, bv) = t.solve_backward();
                assert_eq!(v, bv, "seed {seed}, depth {depth}");
                assert_eq!(play, bplay, "seed {seed}, depth {depth}");
                assert_eq!(t.leaf(&play), v);
            }
        }
    }

    #[test]
    fn shared_handlers_agree_at_depth_two() {
        for seed in 0..10 {
            let t = GameTree::random(3, 2, seed);
            assert_eq!(t.solve_shared_handlers().1, t.solve_backward().1, "seed {seed}");
        }
    }

    #[test]
    fn shared_handlers_can_diverge_at_depth_three() {
        // Documented divergence: with shared handlers, ply-2 max ops
        // surfacing inside ply-1 min probes escape to the shared hmax.
        let mut diverged = false;
        for seed in 0..10 {
            let t = GameTree::random(2, 3, seed);
            if t.solve_shared_handlers().1 != t.solve_backward().1 {
                diverged = true;
                break;
            }
        }
        assert!(diverged, "expected at least one divergence across seeds");
    }

    /// A tree with leaves drawn from a tiny integer set, so ties abound
    /// at every level.
    fn tied_tree(branching: usize, depth: usize, seed: u64) -> GameTree {
        let mut t = GameTree::random(branching, depth, seed);
        for leaf in &mut t.leaves {
            *leaf = (*leaf / 20.0).floor(); // values in {0..4}: heavy ties
        }
        t
    }

    #[test]
    fn alphabeta_matches_backward_induction_value_and_play() {
        for seed in 0..15 {
            for (branching, depth) in [(2, 3), (2, 5), (3, 4), (4, 2), (2, 8)] {
                let t = GameTree::random(branching, depth, seed);
                assert_eq!(
                    t.solve_alphabeta(),
                    t.solve_backward(),
                    "seed {seed} b {branching} d {depth}"
                );
            }
        }
    }

    #[test]
    fn alphabeta_breaks_ties_leftmost_like_backward_induction() {
        for seed in 0..20 {
            let t = tied_tree(3, 5, seed);
            assert_eq!(t.solve_alphabeta(), t.solve_backward(), "seed {seed}");
        }
    }

    #[test]
    fn alphabeta_actually_cuts() {
        let t = GameTree::random(4, 6, 9);
        let (_, _, leaves) = t.solve_alphabeta_stats();
        let total = t.leaves.len() as u64;
        assert!(leaves < total, "window cuts must skip leaves: {leaves}/{total}");
        // And a depth-1 tree degenerates to a full scan.
        let t1 = GameTree::random(5, 1, 0);
        let (_, _, l1) = t1.solve_alphabeta_stats();
        assert_eq!(l1, 5);
    }

    #[test]
    fn alphabeta_from_a_prefix_solves_the_subgame() {
        let t = GameTree::random(2, 4, 3);
        let (play, value) = t.solve_alphabeta_from(&[1, 0]);
        assert_eq!(&play[..2], &[1, 0], "the prefix is kept");
        // The subgame below [1, 0] restarts with the maximiser (ply 2):
        // check against a brute-force scan of the 4 completions.
        let mut best: Option<(Vec<usize>, f64)> = None;
        for m2 in 0..2 {
            let mut worst: Option<(Vec<usize>, f64)> = None;
            for m3 in 0..2 {
                let p = vec![1, 0, m2, m3];
                let v = t.leaf(&p);
                if worst.as_ref().is_none_or(|(_, wv)| v < *wv) {
                    worst = Some((p, v));
                }
            }
            let w = worst.expect("two moves");
            if best.as_ref().is_none_or(|(_, bv)| w.1 > *bv) {
                best = Some(w);
            }
        }
        assert_eq!((play, value), best.expect("two moves"));
    }

    #[test]
    fn flagged_table_matches_backward_induction_cold_and_warm() {
        for seed in 0..15 {
            for (branching, depth) in [(2, 3), (2, 5), (3, 4), (4, 2), (2, 8)] {
                let t = GameTree::random(branching, depth, seed);
                let reference = t.solve_backward();
                let cache = AbCache::unbounded(4);
                assert_eq!(
                    t.solve_alphabeta_tt(&cache),
                    reference,
                    "cold, seed {seed} b {branching} d {depth}"
                );
                assert_eq!(
                    t.solve_alphabeta_tt(&cache),
                    reference,
                    "warm, seed {seed} b {branching} d {depth}"
                );
            }
        }
    }

    #[test]
    fn flagged_table_breaks_ties_leftmost_like_backward_induction() {
        for seed in 0..20 {
            let t = tied_tree(3, 5, seed);
            let reference = t.solve_backward();
            let cache = AbCache::unbounded(4);
            assert_eq!(t.solve_alphabeta_tt(&cache), reference, "cold, seed {seed}");
            assert_eq!(t.solve_alphabeta_tt(&cache), reference, "warm, seed {seed}");
        }
    }

    #[test]
    fn warm_repeat_answers_from_the_root_entry() {
        let t = GameTree::random(3, 6, 7);
        let cache = AbCache::unbounded(4);
        let (play, value, cold_leaves) = t.solve_alphabeta_tt_stats(&cache);
        assert!(cold_leaves > 0);
        // The root window is infinite, so the root entry is Exact and a
        // warm repeat resolves at the root: zero leaves evaluated.
        let (wplay, wvalue, warm_leaves) = t.solve_alphabeta_tt_stats(&cache);
        assert_eq!((wplay, wvalue), (play, value));
        assert_eq!(warm_leaves, 0, "warm repeat must be answered from the root entry");
    }

    #[test]
    fn epoch_bump_retires_entries_for_the_next_tree() {
        // One handle serves one tree per epoch: bump it and the same
        // keys must resolve the *new* tree from scratch.
        let a = GameTree::random(2, 6, 11);
        let b = GameTree::random(2, 6, 12);
        let cache = AbCache::unbounded(4);
        assert_eq!(t_solve(&a, &cache), a.solve_backward());
        cache.advance_epoch();
        let (play, value, leaves) = b.solve_alphabeta_tt_stats(&cache);
        assert!(leaves > 0, "stale entries must not answer the new tree");
        assert_eq!((play, value), b.solve_backward());
        let (_, _, warm) = b.solve_alphabeta_tt_stats(&cache);
        assert_eq!(warm, 0);
    }

    fn t_solve(t: &GameTree, cache: &AbCache) -> (Vec<usize>, f64) {
        t.solve_alphabeta_tt(cache)
    }

    #[test]
    fn cancellable_solver_matches_the_plain_one_under_a_never_token() {
        for seed in 0..10 {
            let t = GameTree::random(3, 5, seed);
            let reference = t.solve_backward();
            let cache = AbCache::unbounded(4);
            let (play, value, _) = t
                .solve_alphabeta_tt_cancellable(&cache, &selc_engine::CancelToken::never())
                .expect("never token cannot cancel");
            assert_eq!((play, value), reference, "seed {seed}");
            // And the entries it stored warm the plain solver.
            let (_, _, warm) = t.solve_alphabeta_tt_stats(&cache);
            assert_eq!(warm, 0, "seed {seed}");
        }
    }

    #[test]
    fn cancelled_solves_return_none_without_poisoning_the_table() {
        let t = GameTree::random(3, 6, 5);
        let reference = t.solve_backward();
        let cache = AbCache::unbounded(4);
        let dead = selc_engine::CancelToken::never();
        dead.cancel();
        assert_eq!(t.solve_alphabeta_tt_cancellable(&cache, &dead), None);
        // A token that fires mid-solve (after some entries are stored)
        // must also abort without a wrong answer or a poisoned entry:
        // simulate by cancelling between two solves of sibling subgames.
        let mid = selc_engine::CancelToken::never();
        let warmup = GameTree::random(3, 6, 5);
        let _ = warmup.solve_alphabeta_tt_cancellable(&cache, &mid);
        mid.cancel();
        assert_eq!(t.solve_alphabeta_tt_cancellable(&cache, &mid), None);
        // Whatever the aborted runs left behind, an un-cancelled solve
        // on the same handle is still bit-identical to the reference.
        let (play, value, _) = t.solve_alphabeta_tt_stats(&cache);
        assert_eq!((play, value), reference);
    }

    #[test]
    fn tiny_capacity_eviction_stays_bit_identical() {
        // A capacity-8 table churns constantly on a 4^4 tree; evictions
        // may cost warmth but never correctness.
        for seed in 0..10 {
            let t = GameTree::random(4, 4, seed);
            let reference = t.solve_backward();
            let cache = AbCache::clock_lru(2, 8);
            for round in 0..3 {
                assert_eq!(t.solve_alphabeta_tt(&cache), reference, "seed {seed} round {round}");
            }
        }
    }

    #[test]
    fn three_way_branching() {
        let t = GameTree::random(3, 3, 4);
        assert_eq!(t.solve_handlers().1, t.solve_backward().1);
    }

    #[test]
    #[should_panic(expected = "depth <= 4")]
    fn depth_five_rejected_by_handler_solver() {
        let t = GameTree::random(2, 5, 0);
        let _ = t.solve_handlers();
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn zero_depth_rejected() {
        let _ = GameTree::random(2, 0, 0);
    }
}
