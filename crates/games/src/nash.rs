//! The Nash-equilibrium example (§4.3): best-response dynamics as a
//! handler.
//!
//! Strategies are the paper's `Left` (defect) / `Right` (cooperate); game
//! states are `Step`s recording whether a player just moved or stayed. The
//! `hNash` handler probes three futures through the choice continuation —
//! stay/stay, A-flips, B-flips — and lets the first player who can
//! strictly improve do so. Iterating under `lreset` until both players
//! `Stay` reaches a pure Nash equilibrium.
//!
//! Losses are *pairs* `(f64, f64)` — one component per prisoner — using
//! the product loss monoid; `fst`/`snd` of the paper are the components.
//!
//! One fidelity note: the paper's `game` returns the *pre-fixpoint* pair
//! `(a, b)` but reports the output `(Stay Left, Stay Left)`; we return the
//! fixed-point round's own result, which is what the reported output (and
//! the equilibrium semantics) requires.

use crate::bimatrix::Bimatrix;
use selc::{effect, handle, loss, perform, Handler, Sel};
use std::rc::Rc;

/// A pure strategy: the paper's `Left` is [`Strategy::Defect`], `Right` is
/// [`Strategy::Cooperate`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// The paper's `Left`.
    Defect,
    /// The paper's `Right`.
    Cooperate,
}

impl Strategy {
    /// The other strategy (the paper's `move`).
    pub fn flipped(self) -> Strategy {
        match self {
            Strategy::Defect => Strategy::Cooperate,
            Strategy::Cooperate => Strategy::Defect,
        }
    }

    /// Row/column index into a [`Bimatrix`] (`fromEnum`).
    pub fn index(self) -> usize {
        match self {
            Strategy::Defect => 0,
            Strategy::Cooperate => 1,
        }
    }
}

/// A game step: did the player just change strategy, or hold?
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Step {
    /// The player switched to this strategy.
    Move(Strategy),
    /// The player held this strategy.
    Stay(Strategy),
}

impl Step {
    /// The underlying strategy (the paper's `getStrtgy`).
    pub fn strategy(self) -> Strategy {
        match self {
            Step::Move(s) | Step::Stay(s) => s,
        }
    }

    /// Is this a `Stay`?
    pub fn is_stay(self) -> bool {
        matches!(self, Step::Stay(_))
    }
}

effect! {
    /// The play effect: given both players' current steps, produce their
    /// next steps.
    pub effect PlayEff {
        /// One adjustment round.
        op Play : (Step, Step) => (Step, Step);
    }
}

/// Pair loss: `(A's sentence, B's sentence)`.
pub type PairLoss = (f64, f64);

/// The `hNash` handler: one unilateral improvement per round, A first.
pub fn h_nash<B: Clone + 'static>() -> Handler<PairLoss, B, B> {
    Handler::builder::<PlayEff>()
        .on::<Play>(|(a, b), l, k| {
            let a1 = a.strategy();
            let b1 = b.strategy();
            let a2 = a1.flipped();
            let b2 = b1.flipped();
            l.at((Step::Stay(a1), Step::Stay(b1))).and_then(move |l1: PairLoss| {
                let (l, k) = (l.clone(), k.clone());
                l.at((Step::Stay(a2), Step::Stay(b1))).and_then(move |l2| {
                    let (l, k) = (l.clone(), k.clone());
                    l.at((Step::Stay(a1), Step::Stay(b2))).and_then(move |l3| {
                        let k = k.clone();
                        if l2.0 < l1.0 {
                            k.resume((Step::Move(a2), Step::Stay(b1)))
                        } else if l3.1 < l1.1 {
                            k.resume((Step::Stay(a1), Step::Move(b2)))
                        } else {
                            k.resume((Step::Stay(a1), Step::Stay(b1)))
                        }
                    })
                })
            })
        })
        .build_identity()
}

/// One round of the game: perform `play`, record the loss table entry for
/// the resulting strategies, return the steps.
pub fn round(game: Rc<Bimatrix>, a: Step, b: Step) -> Sel<PairLoss, (Step, Step)> {
    perform::<PairLoss, Play>((a, b)).and_then(move |(a1, b1)| {
        let entry = game.entries[a1.strategy().index()][b1.strategy().index()];
        loss(entry).map(move |_| (a1, b1))
    })
}

/// The paper's recursive `game`, as one monadic computation: each round is
/// `lreset $ hNash $ round`, recursing until both players stay.
pub fn game(g: Rc<Bimatrix>, a: Step, b: Step, fuel: usize) -> Sel<PairLoss, (Step, Step)> {
    handle(&h_nash(), round(Rc::clone(&g), a, b)).lreset().and_then(move |(a1, b1)| {
        if (a1.is_stay() && b1.is_stay()) || fuel == 0 {
            Sel::pure((a1, b1))
        } else {
            game(Rc::clone(&g), a1, b1, fuel - 1).lreset()
        }
    })
}

/// Runs best-response dynamics from `start` to the fixed point. Returns
/// the final steps and the number of *improvement* rounds taken.
pub fn solve_nash(g: &Bimatrix, start: (Strategy, Strategy)) -> ((Step, Step), usize) {
    let g = Rc::new(g.clone());
    let mut a = Step::Move(start.0);
    let mut b = Step::Move(start.1);
    let mut steps = 0usize;
    // 2×2 best-response dynamics with one mover per round terminates well
    // within |states| rounds; cap generously.
    for _ in 0..16 {
        let prog = handle(&h_nash(), round(Rc::clone(&g), a, b)).lreset();
        let (_, (a1, b1)) = prog.run_unwrap();
        if a1.is_stay() && b1.is_stay() {
            return ((a1, b1), steps);
        }
        steps += 1;
        a = a1;
        b = b1;
    }
    ((a, b), steps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prisoners_dilemma_reaches_defect_defect_in_two_steps() {
        // §4.3: runSel $ game (Move Right) (Move Right) gives
        // (Stay Left, Stay Left) in 2 steps.
        let g = Bimatrix::prisoners_dilemma();
        let (steps, n) = solve_nash(&g, (Strategy::Cooperate, Strategy::Cooperate));
        assert_eq!(steps, (Step::Stay(Strategy::Defect), Step::Stay(Strategy::Defect)));
        assert_eq!(n, 2);
    }

    #[test]
    fn monadic_game_matches_imperative_solver() {
        let g = Rc::new(Bimatrix::prisoners_dilemma());
        let prog = game(
            Rc::clone(&g),
            Step::Move(Strategy::Cooperate),
            Step::Move(Strategy::Cooperate),
            16,
        );
        let (_, result) = prog.run_unwrap();
        assert_eq!(result, (Step::Stay(Strategy::Defect), Step::Stay(Strategy::Defect)));
    }

    #[test]
    fn fixpoint_is_a_pure_nash_equilibrium() {
        let g = Bimatrix::prisoners_dilemma();
        let ((a, b), _) = solve_nash(&g, (Strategy::Defect, Strategy::Cooperate));
        assert!(g.is_pure_nash(a.strategy().index(), b.strategy().index()));
    }

    #[test]
    fn handler_trajectory_matches_best_response_baseline() {
        // On random 2×2 games with a pure Nash reachable from the start,
        // the handler's fixed point is a pure Nash equilibrium and agrees
        // with the index-level dynamics.
        for seed in 0..30 {
            let g = Bimatrix::random(2, 2, seed);
            if g.pure_nash_equilibria().is_empty() {
                continue; // dynamics may cycle; the cap stops them
            }
            let ((a, b), _) = solve_nash(&g, (Strategy::Cooperate, Strategy::Cooperate));
            let idx = (a.strategy().index(), b.strategy().index());
            let traj = g.best_response_dynamics((1, 1), 16);
            assert_eq!(idx, *traj.last().unwrap(), "seed {seed}");
            assert!(g.is_pure_nash(idx.0, idx.1), "seed {seed}");
        }
    }

    #[test]
    fn already_at_equilibrium_stays_put() {
        let g = Bimatrix::prisoners_dilemma();
        let ((a, b), n) = solve_nash(&g, (Strategy::Defect, Strategy::Defect));
        assert_eq!((a.strategy(), b.strategy()), (Strategy::Defect, Strategy::Defect));
        assert_eq!(n, 0);
    }

    #[test]
    fn strategy_helpers() {
        assert_eq!(Strategy::Defect.flipped(), Strategy::Cooperate);
        assert_eq!(Strategy::Cooperate.index(), 1);
        assert!(Step::Stay(Strategy::Defect).is_stay());
        assert!(!Step::Move(Strategy::Defect).is_stay());
        assert_eq!(Step::Move(Strategy::Cooperate).strategy(), Strategy::Cooperate);
    }
}
