//! Transposition-table minimax: alternating games whose repeated
//! subtrees are answered from a shared [`selc_cache::ShardedCache`]
//! keyed on **canonicalised game state**.
//!
//! The classic game-tree fact this module exploits: when distinct move
//! *orders* reach the same position (a transposition), the subtree below
//! is the same game, so its backward-induction value can be computed
//! once and reused. [`SymTree`] makes that structure explicit — its
//! leaf payoffs depend only on the *multiset* of moves played, so every
//! permutation of a move prefix roots an identical subgame and the
//! canonical state is simply the sorted move prefix. (The move parity,
//! i.e. whose turn it is, is determined by the prefix length, so the
//! sorted prefix is the whole state.) An induction on depth then gives
//! the soundness fact the cache relies on: `value(path)` is a function
//! of `sorted(path)` alone.
//!
//! A complete tree has `b^d` nodes at depth `d` but only
//! `C(d + b − 1, d)` distinct canonical states — for `b = 4, d = 8`
//! that is 65 536 positions collapsing onto 165 states, which is why the
//! `e13_cache` bench shows order-of-magnitude wins. Workers of a
//! root-split engine search share one cache handle, so a subtree proved
//! under root move `a` is reused under root move `b` — exactly the
//! cross-worker reuse `selc-engine`'s `SharedBound` provides for bounds,
//! now for values.
//!
//! Determinism: cached values are bit-identical to recomputed ones
//! (same leaf hashes, same fold), so cached, uncached, bounded-cache,
//! and parallel solvers all return the same value and principal play —
//! the tests and `crates/games/tests` hold them to it.

use selc_cache::{CacheStats, ShardedCache};
use selc_engine::{CandidateEval, Engine, Outcome, SharedBound};

/// Canonical game state: the sorted move prefix.
pub type TransKey = Vec<u8>;

/// A transposition table for [`SymTree`] solving: canonical state →
/// backward-induction value.
pub type TransCache = ShardedCache<TransKey, f64>;

/// A complete alternating game tree (maximiser moves first) whose leaf
/// payoff depends only on the multiset of moves played — the
/// order-invariance that makes transpositions exact.
#[derive(Clone, Debug)]
pub struct SymTree {
    /// Moves available at every node (≤ 255 so a move fits a byte).
    pub branching: usize,
    /// Number of plies.
    pub depth: usize,
    seed: u64,
}

/// splitmix64 — the same mixer the vendored `rand` uses; enough to make
/// leaf payoffs look arbitrary while staying a pure function of the
/// canonical state.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SymTree {
    /// A game with `branching` moves per node, `depth` plies, and leaf
    /// payoffs derived from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `branching` is 0 or exceeds 255, or if `depth` is 0.
    #[must_use]
    pub fn new(branching: usize, depth: usize, seed: u64) -> SymTree {
        assert!((1..=255).contains(&branching), "branching must fit a byte and be positive");
        assert!(depth >= 1, "degenerate game tree");
        SymTree { branching, depth, seed }
    }

    /// The payoff of a completed game — a pure function of the
    /// *multiset* of moves in `path` (two decimal digits in `0..100`).
    #[must_use]
    pub fn leaf(&self, path: &[u8]) -> f64 {
        let mut canon = path.to_vec();
        canon.sort_unstable();
        self.leaf_canonical(&canon)
    }

    fn leaf_canonical(&self, sorted: &[u8]) -> f64 {
        let mut h = mix(self.seed);
        for &m in sorted {
            h = mix(h ^ u64::from(m));
        }
        (h % 10_000) as f64 / 100.0
    }

    /// Backward-induction value of the node at `path`, optionally
    /// answering repeated canonical states from `cache`. Ties break
    /// towards the smaller move index at every node (strict
    /// improvement), matching every other solver in this crate.
    fn node_value(&self, path: &mut Vec<u8>, cache: Option<&TransCache>) -> f64 {
        if path.len() == self.depth {
            let mut canon = path.clone();
            canon.sort_unstable();
            return self.leaf_canonical(&canon);
        }
        let key = cache.map(|c| {
            let mut canon = path.clone();
            canon.sort_unstable();
            (c, canon)
        });
        if let Some((c, k)) = &key {
            if let Some(v) = c.lookup(k) {
                return v;
            }
        }
        let v = self.best_child(path, cache).1;
        if let Some((c, k)) = key {
            c.store(k, v);
        }
        v
    }

    /// The best move at the node `path` and that move's subgame value —
    /// the one arg-best fold every solver shares: the player on turn is
    /// the path-length parity, improvement is strict, so ties break
    /// towards the smaller move index.
    fn best_child(&self, path: &mut Vec<u8>, cache: Option<&TransCache>) -> (u8, f64) {
        let maximising = path.len().is_multiple_of(2);
        let mut best: Option<(u8, f64)> = None;
        for m in 0..self.branching as u8 {
            path.push(m);
            let v = self.node_value(path, cache);
            path.pop();
            let better = match best {
                None => true,
                Some((_, b)) => {
                    if maximising {
                        v > b
                    } else {
                        v < b
                    }
                }
            };
            if better {
                best = Some((m, v));
            }
        }
        best.expect("branching > 0")
    }

    /// The game value by plain backward induction — the exponential
    /// baseline and differential-test oracle.
    #[must_use]
    pub fn value_backward(&self) -> f64 {
        self.node_value(&mut Vec::new(), None)
    }

    /// The game value with a transposition table: each distinct
    /// canonical state is solved once. Bit-identical to
    /// [`value_backward`](Self::value_backward).
    #[must_use]
    pub fn value_transposition(&self, cache: &TransCache) -> f64 {
        self.node_value(&mut Vec::new(), Some(cache))
    }

    /// The principal play (best move at every node, ties towards the
    /// smaller move) and its value. With a cache the walk reuses solved
    /// subtrees; without one it is the exponential baseline. Both return
    /// the identical play.
    #[must_use]
    pub fn principal_play(&self, cache: Option<&TransCache>) -> (Vec<u8>, f64) {
        let mut path = Vec::new();
        let value = self.node_value(&mut Vec::new(), cache);
        while path.len() < self.depth {
            let (m, _) = self.best_child(&mut path, cache);
            path.push(m);
        }
        (path, value)
    }
}

/// Root-move evaluator for the engine: candidate `m` is the maximiser's
/// first move, scored by the *negated* subgame value (the engine
/// minimises), every worker solving subtrees through one shared
/// transposition table.
struct RootEval<'a> {
    tree: &'a SymTree,
    cache: &'a TransCache,
    base: CacheStats,
}

impl CandidateEval<f64> for RootEval<'_> {
    fn eval(&self, m: usize, _bound: &SharedBound<f64>) -> Option<f64> {
        let mut path = vec![m as u8];
        Some(-self.tree.node_value(&mut path, Some(self.cache)))
    }

    fn cache_stats(&self) -> CacheStats {
        self.cache.stats().since(&self.base)
    }
}

/// Root-split transposition minimax: distributes the maximiser's first
/// moves over the engine's pool, all workers sharing `cache` — a
/// subtree solved under one root move answers its transpositions under
/// every other. Returns `(best first move, game value, outcome)`;
/// move and value are bit-identical to the sequential solvers, and
/// `outcome.stats.cache` carries this search's share of the shared
/// handle's hits/misses/evictions.
pub fn solve_root_split(
    tree: &SymTree,
    engine: &impl Engine,
    cache: &TransCache,
) -> (usize, f64, Outcome<f64>) {
    let eval = RootEval { tree, cache, base: cache.stats() };
    let outcome = engine.search(tree.branching, &eval).expect("branching > 0");
    (outcome.index, -outcome.loss, outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use selc_engine::{ParallelEngine, SequentialEngine};

    #[test]
    fn leaves_are_order_invariant() {
        let t = SymTree::new(4, 5, 7);
        assert_eq!(t.leaf(&[0, 1, 2, 3, 1]), t.leaf(&[3, 1, 1, 2, 0]));
        assert_ne!(t.leaf(&[0, 0, 0, 0, 0]), t.leaf(&[1, 1, 1, 1, 1]), "payoffs vary");
    }

    #[test]
    fn transposition_value_is_bit_identical_to_backward_induction() {
        for seed in 0..8 {
            for (b, d) in [(2, 4), (3, 5), (4, 4)] {
                let t = SymTree::new(b, d, seed);
                let oracle = t.value_backward();
                let cache = TransCache::unbounded(4);
                assert_eq!(t.value_transposition(&cache), oracle, "seed {seed} b{b} d{d}");
                // Warm cache: the repeat solve is one root lookup.
                let before = cache.stats();
                assert_eq!(t.value_transposition(&cache), oracle);
                let delta = cache.stats().since(&before);
                assert_eq!((delta.hits, delta.misses), (1, 0), "seed {seed} b{b} d{d}");
            }
        }
    }

    #[test]
    fn transpositions_actually_collapse_the_tree() {
        let t = SymTree::new(3, 6, 1);
        let cache = TransCache::unbounded(4);
        let _ = t.value_transposition(&cache);
        // 3^0 + … + 3^5 = 364 internal nodes, but only C(k+2, 2) states
        // per level k — the cache stores one entry per *state*.
        let internal_nodes: usize = (0..6).map(|k| 3usize.pow(k)).sum();
        assert!(cache.len() < internal_nodes / 4, "cache holds {} entries", cache.len());
        assert!(cache.stats().hits > 0, "repeated states were answered from cache");
    }

    #[test]
    fn bounded_cache_and_shard_counts_do_not_change_the_value() {
        for seed in [3, 11] {
            let t = SymTree::new(3, 5, seed);
            let oracle = t.value_backward();
            for shards in [1, 2, 8] {
                let unbounded = TransCache::unbounded(shards);
                assert_eq!(t.value_transposition(&unbounded), oracle, "shards {shards}");
                // Capacity 4: almost everything is evicted and recomputed.
                let tiny = TransCache::clock_lru(shards, 4);
                assert_eq!(t.value_transposition(&tiny), oracle, "tiny cap, shards {shards}");
                assert!(tiny.stats().evictions > 0, "cap 4 must evict: {:?}", tiny.stats());
            }
        }
    }

    #[test]
    fn principal_play_is_cache_invariant_and_realises_the_value() {
        for seed in 0..5 {
            let t = SymTree::new(3, 4, seed);
            let (play, value) = t.principal_play(None);
            let cache = TransCache::unbounded(2);
            let (cached_play, cached_value) = t.principal_play(Some(&cache));
            assert_eq!(play, cached_play, "seed {seed}");
            assert_eq!(value, cached_value, "seed {seed}");
            assert_eq!(t.leaf(&play), value, "the principal play realises the game value");
        }
    }

    #[test]
    fn root_split_matches_sequential_solvers_across_engines() {
        for seed in 0..5 {
            let t = SymTree::new(4, 4, seed);
            let oracle_value = t.value_backward();
            let (oracle_play, _) = t.principal_play(None);
            for prune in [false, true] {
                for threads in [1, 2, 4] {
                    let cache = TransCache::unbounded(4);
                    let eng = ParallelEngine { threads, chunk: 1, prune };
                    let (mv, value, outcome) = solve_root_split(&t, &eng, &cache);
                    assert_eq!(value, oracle_value, "seed {seed} threads {threads}");
                    assert_eq!(mv, usize::from(oracle_play[0]), "seed {seed} threads {threads}");
                    assert_eq!(
                        outcome.stats.cache.lookups(),
                        outcome.stats.cache.hits + outcome.stats.cache.misses
                    );
                }
            }
            let cache = TransCache::unbounded(4);
            let (mv, value, _) = solve_root_split(&t, &SequentialEngine::exhaustive(), &cache);
            assert_eq!((mv, value), (usize::from(oracle_play[0]), oracle_value));
        }
    }

    #[test]
    fn warm_cache_serves_a_repeat_root_split_and_epochs_reset_it() {
        let t = SymTree::new(3, 5, 9);
        let cache = TransCache::unbounded(4);
        let eng = ParallelEngine::with_threads(2);
        let (mv1, v1, first) = solve_root_split(&t, &eng, &cache);
        assert!(first.stats.cache.misses > 0);
        let (mv2, v2, second) = solve_root_split(&t, &eng, &cache);
        assert_eq!((mv1, v1), (mv2, v2));
        assert_eq!(second.stats.cache.misses, 0, "every subtree served from cache");
        assert_eq!(second.stats.cache.hits, 3, "one root lookup per first move");

        cache.advance_epoch();
        let (mv3, v3, third) = solve_root_split(&t, &eng, &cache);
        assert_eq!((mv1, v1), (mv3, v3));
        assert!(third.stats.cache.misses > 0, "post-epoch search recomputes");
    }
}
