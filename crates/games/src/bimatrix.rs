//! Two-player matrix games.
//!
//! A [`Bimatrix`] stores a pair of losses per joint action (row player,
//! column player) — the prisoner's dilemma of §4.3 is the canonical
//! example. For zero-sum single tables use [`Matrix`].

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A single-payoff matrix game (both players see the same loss; row
/// maximises, column minimises — the §4.3 minimax setting).
#[derive(Clone, Debug, PartialEq)]
pub struct Matrix {
    /// `entries[r][c]` is the loss at joint action `(r, c)`.
    pub entries: Vec<Vec<f64>>,
}

impl Matrix {
    /// Builds from rows.
    ///
    /// # Panics
    ///
    /// Panics on an empty or ragged table.
    pub fn new(entries: Vec<Vec<f64>>) -> Matrix {
        assert!(!entries.is_empty(), "empty matrix");
        let w = entries[0].len();
        assert!(w > 0 && entries.iter().all(|r| r.len() == w), "ragged matrix");
        Matrix { entries }
    }

    /// The §4.3 example table `[[5,3],[2,9]]`.
    pub fn paper_example() -> Matrix {
        Matrix::new(vec![vec![5.0, 3.0], vec![2.0, 9.0]])
    }

    /// A random matrix with entries in `[0, 10)`.
    pub fn random(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        Matrix::new(
            (0..rows).map(|_| (0..cols).map(|_| rng.gen_range(0.0..10.0)).collect()).collect(),
        )
    }

    /// Number of row moves.
    pub fn rows(&self) -> usize {
        self.entries.len()
    }

    /// Number of column moves.
    pub fn cols(&self) -> usize {
        self.entries[0].len()
    }

    /// Maximin solution by direct backward induction: the row maximiser
    /// assumes the column minimiser replies optimally. Returns
    /// `(row, col, value)`; ties break towards smaller indices.
    pub fn maximin(&self) -> (usize, usize, f64) {
        let best_reply = |r: usize| -> (usize, f64) {
            let mut bc = 0;
            for c in 1..self.cols() {
                if self.entries[r][c] < self.entries[r][bc] {
                    bc = c;
                }
            }
            (bc, self.entries[r][bc])
        };
        let mut br = 0;
        let (mut bc, mut bv) = best_reply(0);
        for r in 1..self.rows() {
            let (c, v) = best_reply(r);
            if v > bv {
                br = r;
                bc = c;
                bv = v;
            }
        }
        (br, bc, bv)
    }
}

/// A bimatrix game: per-player losses for each joint action.
#[derive(Clone, Debug, PartialEq)]
pub struct Bimatrix {
    /// `entries[r][c] = (loss_row, loss_col)`.
    pub entries: Vec<Vec<(f64, f64)>>,
}

impl Bimatrix {
    /// Builds from rows.
    ///
    /// # Panics
    ///
    /// Panics on an empty or ragged table.
    pub fn new(entries: Vec<Vec<(f64, f64)>>) -> Bimatrix {
        assert!(!entries.is_empty(), "empty bimatrix");
        let w = entries[0].len();
        assert!(w > 0 && entries.iter().all(|r| r.len() == w), "ragged bimatrix");
        Bimatrix { entries }
    }

    /// The §4.3 prisoner's dilemma: rows/cols are (defect, cooperate),
    /// losses are prison years `[[(3,3),(0,5)],[(5,0),(1,1)]]`.
    pub fn prisoners_dilemma() -> Bimatrix {
        Bimatrix::new(vec![vec![(3.0, 3.0), (0.0, 5.0)], vec![(5.0, 0.0), (1.0, 1.0)]])
    }

    /// A random bimatrix with losses in `[0, 10)`.
    pub fn random(rows: usize, cols: usize, seed: u64) -> Bimatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        Bimatrix::new(
            (0..rows)
                .map(|_| {
                    (0..cols)
                        .map(|_| (rng.gen_range(0.0..10.0), rng.gen_range(0.0..10.0)))
                        .collect()
                })
                .collect(),
        )
    }

    /// Number of row moves.
    pub fn rows(&self) -> usize {
        self.entries.len()
    }

    /// Number of column moves.
    pub fn cols(&self) -> usize {
        self.entries[0].len()
    }

    /// Is `(r, c)` a pure Nash equilibrium (no unilateral deviation
    /// strictly improves — i.e. lowers — the deviator's loss)?
    pub fn is_pure_nash(&self, r: usize, c: usize) -> bool {
        let (lr, lc) = self.entries[r][c];
        (0..self.rows()).all(|r2| self.entries[r2][c].0 >= lr)
            && (0..self.cols()).all(|c2| self.entries[r][c2].1 >= lc)
    }

    /// All pure Nash equilibria, by enumeration (the baseline for E7).
    pub fn pure_nash_equilibria(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for r in 0..self.rows() {
            for c in 0..self.cols() {
                if self.is_pure_nash(r, c) {
                    out.push((r, c));
                }
            }
        }
        out
    }

    /// One round of (row-first) best-response dynamics from `(r, c)`:
    /// the row player switches iff it strictly improves; otherwise the
    /// column player; otherwise the state is a fixed point.
    pub fn best_response_step(&self, r: usize, c: usize) -> (usize, usize) {
        let mut br = r;
        for r2 in 0..self.rows() {
            if self.entries[r2][c].0 < self.entries[br][c].0 {
                br = r2;
            }
        }
        if br != r {
            return (br, c);
        }
        let mut bc = c;
        for c2 in 0..self.cols() {
            if self.entries[r][c2].1 < self.entries[r][bc].1 {
                bc = c2;
            }
        }
        (r, bc)
    }

    /// Iterates [`Bimatrix::best_response_step`] until a fixed point or
    /// `max_steps`. Returns the trajectory (including the start).
    pub fn best_response_dynamics(
        &self,
        start: (usize, usize),
        max_steps: usize,
    ) -> Vec<(usize, usize)> {
        let mut traj = vec![start];
        let (mut r, mut c) = start;
        for _ in 0..max_steps {
            let (r2, c2) = self.best_response_step(r, c);
            if (r2, c2) == (r, c) {
                break;
            }
            traj.push((r2, c2));
            r = r2;
            c = c2;
        }
        traj
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_matrix_maximin_is_left_right() {
        let m = Matrix::paper_example();
        let (r, c, v) = m.maximin();
        assert_eq!((r, c), (0, 1));
        assert_eq!(v, 3.0);
    }

    #[test]
    fn prisoners_dilemma_unique_nash_is_defect_defect() {
        let g = Bimatrix::prisoners_dilemma();
        assert_eq!(g.pure_nash_equilibria(), vec![(0, 0)]);
        assert!(g.is_pure_nash(0, 0));
        assert!(!g.is_pure_nash(1, 1)); // cooperate/cooperate is not Nash
    }

    #[test]
    fn best_response_dynamics_reach_defect_defect() {
        let g = Bimatrix::prisoners_dilemma();
        let traj = g.best_response_dynamics((1, 1), 10);
        assert_eq!(*traj.last().unwrap(), (0, 0));
        assert!(traj.len() <= 3, "{traj:?}");
    }

    #[test]
    fn matching_pennies_has_no_pure_nash() {
        // zero-sum mismatch game
        let g = Bimatrix::new(vec![vec![(0.0, 1.0), (1.0, 0.0)], vec![(1.0, 0.0), (0.0, 1.0)]]);
        assert!(g.pure_nash_equilibria().is_empty());
    }

    #[test]
    fn random_games_are_deterministic_per_seed() {
        assert_eq!(Bimatrix::random(3, 4, 9), Bimatrix::random(3, 4, 9));
        assert_ne!(Bimatrix::random(3, 4, 9), Bimatrix::random(3, 4, 10));
        assert_eq!(Matrix::random(2, 2, 1), Matrix::random(2, 2, 1));
    }

    #[test]
    fn maximin_on_random_matrices_matches_bruteforce() {
        for seed in 0..20 {
            let m = Matrix::random(4, 5, seed);
            let (r, c, v) = m.maximin();
            // brute force
            let reply =
                |r: usize| (0..m.cols()).map(|c| m.entries[r][c]).fold(f64::INFINITY, f64::min);
            let best = (0..m.rows()).map(reply).fold(f64::NEG_INFINITY, f64::max);
            assert_eq!(v, best, "seed {seed}");
            assert_eq!(m.entries[r][c], v);
        }
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_matrix_rejected() {
        let _ = Matrix::new(vec![vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_bimatrix_rejected() {
        let _ = Bimatrix::new(vec![]);
    }
}
