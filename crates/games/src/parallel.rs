//! Engine-backed game solving: root-split parallel minimax and parallel
//! n-queens.
//!
//! The root split is the classic parallelisation of backward induction:
//! the first mover's candidates are independent subgames, so each worker
//! replays "fix root move `a`, solve the rest with the usual handlers"
//! locally (handler programs are `Rc` trees and cannot cross threads —
//! they ship as factories, see `selc::ReplaySpace`). The engine's
//! deterministic `(loss, index)` reduction keeps the chosen play
//! bit-identical to the sequential `hmax ∘ hmin` nesting, and its
//! branch-and-bound bound prunes rows whose best conceivable value
//! (the row maximum) cannot beat a value some worker already achieved.

use crate::alternating::GameTree;
use crate::bimatrix::Matrix;
use crate::minimax::{hmin, MinMove};
use selc::{handle, loss, perform, Sel};
use selc_engine::{
    parallel_subtrees, search_programs, CandidateEval, Engine, Outcome, ParallelEngine, SharedBound,
};
use std::sync::Arc;

/// The subgame after the maximiser fixes row `a`: the minimiser moves,
/// the joint loss is recorded, and the chosen column is returned.
fn subgame(table: Arc<Matrix>, a: usize) -> Sel<f64, usize> {
    let cols = table.cols();
    perform::<f64, MinMove>(cols).and_then(move |b| loss(table.entries[a][b]).map(move |_| b))
}

/// Per-row evaluator: replays `handle(hmin, subgame(a))` and scores row
/// `a` by the *negated* game value (the engine minimises; the root
/// player maximises). `lower_bound` is `-(row minimum)`: for a matrix
/// game the subgame value *is* the row minimum, so a cheap scan (no
/// handler machinery, no future replays) gives a tight bound and rows
/// that cannot strictly beat the incumbent value never pay for handler
/// evaluation. Tightness is fine for soundness — strict domination
/// (`lb > best`) still never drops a tying row. In deeper games, where
/// no exact scan exists, a heuristic bound slots into the same hook.
struct RowEval {
    table: Arc<Matrix>,
}

impl CandidateEval<f64> for RowEval {
    fn eval(&self, a: usize, _bound: &SharedBound<f64>) -> Option<f64> {
        let (value, _col) = handle(&hmin(), subgame(Arc::clone(&self.table), a)).run_unwrap();
        Some(-value)
    }

    fn lower_bound(&self, a: usize) -> Option<f64> {
        let row_min = self.table.entries[a].iter().copied().fold(f64::INFINITY, f64::min);
        Some(-row_min)
    }
}

/// Root-split parallel minimax: distributes the maximiser's rows over
/// the engine's worker pool, each worker solving the minimiser's reply
/// with the ordinary `hmin` handler. Returns `((row, col), value)`,
/// bit-identical to [`crate::minimax::minimax_handler`].
pub fn minimax_root_split(table: &Matrix, engine: &impl Engine) -> ((usize, usize), f64) {
    let (play, value, _) = minimax_root_split_stats(table, engine);
    (play, value)
}

/// [`minimax_root_split`] plus the engine's search telemetry (how many
/// rows were evaluated vs. pruned by the shared bound).
pub fn minimax_root_split_stats(
    table: &Matrix,
    engine: &impl Engine,
) -> ((usize, usize), f64, Outcome<f64>) {
    let table = Arc::new(table.clone());
    let eval = RowEval { table: Arc::clone(&table) };
    let outcome = engine.search(table.rows(), &eval).expect("matrices are non-empty");
    let a = outcome.index;
    // Replay the winning subgame once for the minimiser's reply (pure,
    // so this reproduces exactly the value the search scored).
    let (value, b) = handle(&hmin(), subgame(table, a)).run_unwrap();
    ((a, b), value, outcome)
}

/// Root-split parallel minimax with the default (`SELC_THREADS`) pool.
pub fn minimax_parallel(table: &Matrix) -> ((usize, usize), f64) {
    minimax_root_split(table, &ParallelEngine::auto())
}

/// Parallel n-queens: splits the first queen's column over the worker
/// pool; each worker finishes the board with the usual product of
/// per-row `argmin` selections under the global attack-count loss.
/// Returns the same placement as [`crate::queens::queens_selection`].
pub fn queens_parallel(n: usize) -> Vec<usize> {
    queens_parallel_with(&ParallelEngine::auto(), n)
}

/// [`queens_parallel`] with an explicit engine.
pub fn queens_parallel_with(engine: &impl Engine, n: usize) -> Vec<usize> {
    use selection::product::Stage;
    use std::rc::Rc;
    let rest = move || -> Vec<Stage<usize, f64>> {
        (1..n)
            .map(|_| {
                Rc::new(move |_: &[usize]| selection::argmin((0..n).collect::<Vec<usize>>()))
                    as Stage<usize, f64>
            })
            .collect()
    };
    selection::par::par_product_root_with(engine, (0..n).collect(), rest, |p: &[usize]| {
        crate::queens::attacks(p) as f64
    })
}

/// Full-tree parallel alpha–beta: where [`minimax_root_split`] stops at
/// the first mover's moves, this distributes *every* subtree at `split`
/// plies — `branching^split` independent work items claimed from the
/// engine's saturating subtree queue ([`parallel_subtrees`], the same
/// distribution the λC tree search uses) — and solves each with local
/// strict-cutoff alpha–beta ([`GameTree::solve_alphabeta_from`]).
/// Subtree results come back in lexicographic move order and the shared
/// top plies fold by backward induction over that fixed order, so the
/// play and value are bit-identical to [`GameTree::solve_backward`]
/// regardless of worker timing. `threads == 0` means `SELC_THREADS`.
///
/// # Panics
///
/// Panics on a degenerate tree (`solve_backward` panics identically).
pub fn alphabeta_parallel(t: &GameTree, threads: usize, split: usize) -> (Vec<usize>, f64) {
    let split = split.min(t.depth);
    let count = t.branching.pow(split as u32);
    let results = parallel_subtrees(threads, count, |i| {
        // Decode work item `i` into its move prefix, most significant
        // ply first (lexicographic order = move order at every level).
        let mut prefix = vec![0_usize; split];
        let mut rem = i;
        for slot in prefix.iter_mut().rev() {
            *slot = rem % t.branching;
            rem /= t.branching;
        }
        t.solve_alphabeta_from(&prefix)
    });
    // Fold the shared top plies: at ply `p` the maximiser moves iff `p`
    // is even, ties towards the smaller move index — the in-order scan
    // below keeps the first of equals, which *is* the smaller move.
    let mut level = results;
    for p in (0..split).rev() {
        let maximising = p % 2 == 0;
        level = level
            .chunks(t.branching)
            .map(|group| {
                group
                    .iter()
                    .fold(None::<&(Vec<usize>, f64)>, |best, cand| match best {
                        None => Some(cand),
                        Some(b)
                            if (maximising && cand.1 > b.1) || (!maximising && cand.1 < b.1) =>
                        {
                            Some(cand)
                        }
                        keep => keep,
                    })
                    .expect("branching > 0")
                    .clone()
            })
            .collect();
    }
    level.into_iter().next().expect("one root result")
}

/// Demonstration wrapper used by the example and benches: replays a
/// whole minimax table search as a family of `Sel` programs through
/// [`selc_engine::search_programs`], returning the winning row's value.
pub fn minimax_best_row_value(table: &Matrix, engine: &impl Engine) -> (usize, f64) {
    let rows = table.rows();
    let table = Arc::new(table.clone());
    let factory = move |a: usize| {
        let t = Arc::clone(&table);
        handle(&hmin(), subgame(t, a)).map_loss(|l| -l)
    };
    let (outcome, _col) = search_programs(engine, rows, factory)
        .unwrap_or_else(|| unreachable!("matrices are non-empty"));
    (outcome.index, -outcome.loss)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minimax::{minimax_handler, minimax_selection};
    use crate::queens::{attacks, queens_selection};
    use selc_engine::SequentialEngine;

    #[test]
    fn root_split_solves_the_paper_example() {
        let m = Matrix::paper_example();
        assert_eq!(minimax_parallel(&m), ((0, 1), 3.0));
    }

    #[test]
    fn root_split_matches_all_sequential_solvers_on_random_tables() {
        for seed in 0..25 {
            let m = Matrix::random(5, 4, seed);
            let expected = minimax_handler(&m);
            assert_eq!(minimax_selection(&m), expected, "seed {seed}");
            for threads in [1, 2, 4] {
                for prune in [false, true] {
                    let eng = ParallelEngine { threads, chunk: 1, prune };
                    assert_eq!(
                        minimax_root_split(&m, &eng),
                        expected,
                        "seed {seed} threads {threads} prune {prune}"
                    );
                }
            }
            assert_eq!(
                minimax_root_split(&m, &SequentialEngine::pruning()),
                expected,
                "seed {seed} sequential+prune"
            );
        }
    }

    #[test]
    fn pruning_skips_dominated_rows() {
        // Row 0 achieves value 5; rows 1.. have maxima below 5, so with a
        // chunk covering row 0 first the rest are pruned.
        let mut rows = vec![vec![5.0, 6.0, 7.0]];
        for i in 0..6 {
            rows.push(vec![1.0 + f64::from(i) * 0.1; 3]);
        }
        let m = Matrix::new(rows);
        let (play, value, outcome) = minimax_root_split_stats(&m, &SequentialEngine::pruning());
        assert_eq!((play, value), ((0, 0), 5.0));
        assert_eq!(outcome.stats.pruned, 6, "stats: {:?}", outcome.stats);
    }

    #[test]
    fn queens_parallel_matches_selection_product() {
        for n in [1, 4, 5] {
            let par = queens_parallel(n);
            let seq = queens_selection(n);
            assert_eq!(par, seq, "n = {n}");
        }
        // Unsolvable boards still minimise attacks identically.
        assert_eq!(attacks(&queens_parallel(3)), 1);
        assert_eq!(queens_parallel(3), queens_selection(3));
    }

    #[test]
    fn parallel_alphabeta_matches_backward_induction_across_splits() {
        for seed in 0..8 {
            for (branching, depth) in [(2, 5), (3, 4)] {
                let t = GameTree::random(branching, depth, seed);
                let expected = t.solve_backward();
                for threads in [1, 2, 4] {
                    for split in [0, 1, 2, 3] {
                        assert_eq!(
                            alphabeta_parallel(&t, threads, split),
                            expected,
                            "seed {seed} b {branching} d {depth} threads {threads} split {split}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn parallel_alphabeta_keeps_leftmost_ties_under_contention() {
        // All-equal leaves: every play ties, and the leftmost must win
        // no matter how workers interleave.
        let t = GameTree { branching: 3, depth: 4, leaves: vec![1.0; 81] };
        let expected = t.solve_backward();
        assert_eq!(expected.0, vec![0, 0, 0, 0]);
        for _ in 0..5 {
            assert_eq!(alphabeta_parallel(&t, 4, 2), expected);
        }
    }

    #[test]
    fn parallel_alphabeta_split_deeper_than_the_tree_is_clamped() {
        let t = GameTree::random(2, 2, 1);
        assert_eq!(alphabeta_parallel(&t, 2, 9), t.solve_backward());
    }

    #[test]
    fn best_row_value_agrees_with_maximin() {
        for seed in 0..10 {
            let m = Matrix::random(4, 4, seed);
            let (row, value) = minimax_best_row_value(&m, &ParallelEngine::with_threads(2));
            let (br, _bc, bv) = m.maximin();
            assert_eq!((row, value), (br, bv), "seed {seed}");
        }
    }
}
