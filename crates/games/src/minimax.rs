//! Minimax two-player games (§4.3), three ways:
//!
//! 1. [`minimax_handler`] — the paper's solution: a `Max` effect for the
//!    maximiser and a `Min` effect for the minimiser, each handled by a
//!    chooser that probes its choice continuation over every move ("note
//!    how the loss is shared by two handlers");
//! 2. [`minimax_selection`] — the §2.1 solution: Kleisli extension /
//!    product of `argmax` and `argmin` selection functions;
//! 3. [`Matrix::maximin`](crate::bimatrix::Matrix::maximin) — direct
//!    backward induction (baseline).

use crate::bimatrix::Matrix;
use selc::{effect, handle, loss, perform, Choice, Handler, Sel};
use selection::{argmax, argmin, product};
use std::rc::Rc;

effect! {
    /// The maximiser's move effect (`Max` in §4.3): choose one of `n`
    /// moves.
    pub effect MaxEff {
        /// Choose a move index from `0..n`.
        op MaxMove : usize => usize;
    }
}

effect! {
    /// The minimiser's move effect (`Min` in §4.3).
    pub effect MinEff {
        /// Choose a move index from `0..n`.
        op MinMove : usize => usize;
    }
}

/// Effectful argmax over `0..n` through a choice continuation
/// (the paper's `maxWith l [moves]`).
fn pick_extreme(l: &Choice<f64, usize>, n: usize, maximise: bool) -> Sel<f64, usize> {
    fn go(
        l: Choice<f64, usize>,
        n: usize,
        maximise: bool,
        i: usize,
        best: Option<(usize, f64)>,
    ) -> Sel<f64, usize> {
        if i == n {
            return Sel::pure(best.expect("no moves").0);
        }
        l.at(i).and_then(move |li| {
            let better = match best {
                None => true,
                Some((_, bv)) => {
                    if maximise {
                        li > bv
                    } else {
                        li < bv
                    }
                }
            };
            let next = if better { Some((i, li)) } else { best };
            go(l.clone(), n, maximise, i + 1, next)
        })
    }
    go(l.clone(), n, maximise, 0, None)
}

/// The maximiser's handler `hmax`: probe every move, resume with the
/// loss-maximising one.
pub fn hmax<B: Clone + 'static>() -> Handler<f64, B, B> {
    Handler::builder::<MaxEff>()
        .on::<MaxMove>(|n, l, k| pick_extreme(&l, n, true).and_then(move |m| k.resume(m)))
        .build_identity()
}

/// The minimiser's handler `hmin`.
pub fn hmin<B: Clone + 'static>() -> Handler<f64, B, B> {
    Handler::builder::<MinEff>()
        .on::<MinMove>(|n, l, k| pick_extreme(&l, n, false).and_then(move |m| k.resume(m)))
        .build_identity()
}

/// The §4.3 minimax program for an arbitrary loss table:
///
/// ```text
/// minimax = do a ← perform max moves; b ← perform min moves;
///              loss (table !! a !! b); return (a, b)
/// ```
///
/// solved as `runSel $ hmax $ hmin minimax`. Returns
/// `((row, col), value)`.
pub fn minimax_handler(table: &Matrix) -> ((usize, usize), f64) {
    let t = Rc::new(table.clone());
    let rows = table.rows();
    let cols = table.cols();
    let game = perform::<f64, MaxMove>(rows).and_then(move |a| {
        let t = Rc::clone(&t);
        perform::<f64, MinMove>(cols).and_then(move |b| loss(t.entries[a][b]).map(move |_| (a, b)))
    });
    let (v, play) = handle(&hmax(), handle(&hmin(), game)).run_unwrap();
    (play, v)
}

/// The §2.1 solution via the selection monad: the product of `argmax`
/// (rows) and `argmin` (columns) applied to the evaluation function.
pub fn minimax_selection(table: &Matrix) -> ((usize, usize), f64) {
    let rows: Vec<usize> = (0..table.rows()).collect();
    let cols: Vec<usize> = (0..table.cols()).collect();
    let s = product::pair(argmax(rows), argmin(cols));
    let t = table.clone();
    let pair = s.select(move |&(r, c)| t.entries[r][c]);
    let value = table.entries[pair.0][pair.1];
    (pair, value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_all_three_ways() {
        let m = Matrix::paper_example();
        let (hp, hv) = minimax_handler(&m);
        let (sp, sv) = minimax_selection(&m);
        let (br, bc, bv) = m.maximin();
        assert_eq!(hp, (0, 1), "handler plays (Left, Right)");
        assert_eq!(hv, 3.0);
        assert_eq!(sp, (0, 1));
        assert_eq!(sv, 3.0);
        assert_eq!((br, bc, bv), (0, 1, 3.0));
    }

    #[test]
    fn three_solvers_agree_on_random_tables() {
        for seed in 0..25 {
            let m = Matrix::random(3, 4, seed);
            let (hp, hv) = minimax_handler(&m);
            let (sp, sv) = minimax_selection(&m);
            let (br, bc, bv) = m.maximin();
            assert_eq!(hv, bv, "seed {seed}: handler value vs backward induction");
            assert_eq!(sv, bv, "seed {seed}: selection value vs backward induction");
            assert_eq!(hp, (br, bc), "seed {seed}: handler play");
            assert_eq!(sp, (br, bc), "seed {seed}: selection play");
        }
    }

    #[test]
    fn asymmetric_dimensions() {
        let m = Matrix::new(vec![vec![1.0, 2.0, 0.5], vec![4.0, 0.1, 3.0]]);
        // row 0: min 0.5; row 1: min 0.1 → maximiser picks row 0, col 2
        let (p, v) = minimax_handler(&m);
        assert_eq!(p, (0, 2));
        assert_eq!(v, 0.5);
    }

    #[test]
    fn single_move_game() {
        let m = Matrix::new(vec![vec![7.0]]);
        assert_eq!(minimax_handler(&m), ((0, 0), 7.0));
        assert_eq!(minimax_selection(&m), ((0, 0), 7.0));
    }
}
