//! n-queens via products of selection functions.
//!
//! The selection monad's algorithm-design lineage (Escardó–Oliva;
//! Hartmann–Gibbons, both cited in §1) solves search problems by taking
//! the product of one selection function per decision: each row's argmin
//! selection, given the global "number of attacks" loss, implements
//! exhaustive backward induction. A classic backtracking solver serves as
//! the baseline.

use selection::{argmin, product};
use std::rc::Rc;

/// Number of attacking queen pairs in `placement` (one column per row).
pub fn attacks(placement: &[usize]) -> usize {
    let mut count = 0;
    for i in 0..placement.len() {
        for j in (i + 1)..placement.len() {
            let (ci, cj) = (placement[i] as i64, placement[j] as i64);
            if ci == cj || (ci - cj).abs() == (j - i) as i64 {
                count += 1;
            }
        }
    }
    count
}

/// Is the placement a solution?
pub fn is_solution(placement: &[usize], n: usize) -> bool {
    placement.len() == n && attacks(placement) == 0
}

/// Solves n-queens with the product of per-row `argmin` selection
/// functions under the global attack-count loss. Exhaustive (`n^n` loss
/// probes) — fine for the small `n` the benchmarks sweep.
pub fn queens_selection(n: usize) -> Vec<usize> {
    let stages: Vec<product::Stage<usize, f64>> = (0..n)
        .map(|_| {
            Rc::new(move |_: &[usize]| argmin((0..n).collect::<Vec<usize>>()))
                as product::Stage<usize, f64>
        })
        .collect();
    let s = product::big_product_dep(stages);
    s.select(|p: &Vec<usize>| attacks(p) as f64)
}

/// Classic backtracking baseline. Returns the first solution in
/// lexicographic order, or `None`.
pub fn queens_backtracking(n: usize) -> Option<Vec<usize>> {
    fn safe(p: &[usize], col: usize) -> bool {
        let row = p.len();
        p.iter()
            .enumerate()
            .all(|(r, &c)| c != col && (col as i64 - c as i64).abs() != (row - r) as i64)
    }
    fn go(p: &mut Vec<usize>, n: usize) -> bool {
        if p.len() == n {
            return true;
        }
        for col in 0..n {
            if safe(p, col) {
                p.push(col);
                if go(p, n) {
                    return true;
                }
                p.pop();
            }
        }
        false
    }
    let mut p = Vec::new();
    go(&mut p, n).then_some(p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attack_counting() {
        assert_eq!(attacks(&[0, 0]), 1); // same column
        assert_eq!(attacks(&[0, 1]), 1); // diagonal
        assert_eq!(attacks(&[0, 2]), 0);
        assert_eq!(attacks(&[0, 1, 2]), 3); // all on one diagonal
    }

    #[test]
    fn backtracking_solves_classic_sizes() {
        for n in [1, 4, 5, 6, 8] {
            let s = queens_backtracking(n).unwrap_or_else(|| panic!("n = {n}"));
            assert!(is_solution(&s, n), "n = {n}: {s:?}");
        }
        assert!(queens_backtracking(2).is_none());
        assert!(queens_backtracking(3).is_none());
    }

    #[test]
    fn selection_product_solves_small_boards() {
        for n in [1, 4, 5] {
            let s = queens_selection(n);
            assert!(is_solution(&s, n), "n = {n}: {s:?} ({} attacks)", attacks(&s));
        }
    }

    #[test]
    fn selection_product_minimises_even_when_unsolvable() {
        // n = 2 and 3 have no solution; the product still returns a
        // placement with the minimal number of attacks (1).
        let s2 = queens_selection(2);
        assert_eq!(attacks(&s2), 1);
        let s3 = queens_selection(3);
        assert_eq!(attacks(&s3), 1);
    }
}
