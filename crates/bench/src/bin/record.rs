//! `selc-bench-record`: runs the bench suite and snapshots the medians.
//!
//! Invokes `cargo bench -p selc-bench` (optionally a single `--bench`
//! target), parses the vendored harness's per-bench median lines, and
//! writes `BENCH_<n>.json` at the repo root — `<n>` auto-increments past
//! the largest existing snapshot, so the perf trajectory accumulates one
//! file per recording:
//!
//! ```sh
//! cargo run -p selc-bench --bin selc-bench-record --release
//! cargo run -p selc-bench --bin selc-bench-record --release -- --bench e12_parallel
//! ```
//!
//! JSON schema: `{"schema": 1, "recorded_at_unix": <secs>,
//! "benches": {"<label>": <median ns/iter>}}`.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::Command;

fn repo_root() -> PathBuf {
    // crates/bench/ → repo root is two levels up.
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().expect("repo root exists")
}

/// Parses one harness output line of the form
/// `label median 123.4 ns/iter (min …, max …, N iters x M samples)`.
fn parse_line(line: &str) -> Option<(String, f64)> {
    let (label, rest) = line.split_once(" median ")?;
    let median = rest.split_whitespace().next()?.parse::<f64>().ok()?;
    rest.contains("ns/iter").then(|| (label.trim().to_string(), median))
}

fn next_snapshot_path(root: &Path) -> PathBuf {
    let mut max_n = 0_u64;
    if let Ok(entries) = std::fs::read_dir(root) {
        for e in entries.flatten() {
            let name = e.file_name();
            let name = name.to_string_lossy();
            if let Some(n) = name.strip_prefix("BENCH_").and_then(|s| s.strip_suffix(".json")) {
                if let Ok(n) = n.parse::<u64>() {
                    max_n = max_n.max(n);
                }
            }
        }
    }
    root.join(format!("BENCH_{}.json", max_n + 1))
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
    let root = repo_root();

    let mut cmd = Command::new(cargo);
    cmd.current_dir(&root).args(["bench", "-p", "selc-bench"]);
    let mut rest = args.iter();
    while let Some(a) = rest.next() {
        if a == "--bench" {
            let target = rest.next().expect("--bench needs a target name");
            cmd.args(["--bench", target]);
        } else {
            panic!("unknown argument {a:?}; usage: selc-bench-record [--bench <target>]");
        }
    }
    eprintln!("running {cmd:?} …");
    let out = cmd.output().expect("cargo bench runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "cargo bench failed:\n{}\n{}",
        stdout,
        String::from_utf8_lossy(&out.stderr)
    );

    let benches: BTreeMap<String, f64> = stdout.lines().filter_map(parse_line).collect();
    assert!(!benches.is_empty(), "no bench medians found in output:\n{stdout}");

    let recorded_at = std::time::SystemTime::UNIX_EPOCH.elapsed().map(|d| d.as_secs()).unwrap_or(0);
    let mut json = String::from("{\n  \"schema\": 1,\n");
    json.push_str(&format!("  \"recorded_at_unix\": {recorded_at},\n  \"benches\": {{\n"));
    let body: Vec<String> = benches
        .iter()
        .map(|(label, median)| format!("    \"{}\": {median:.1}", json_escape(label)))
        .collect();
    json.push_str(&body.join(",\n"));
    json.push_str("\n  }\n}\n");

    let path = next_snapshot_path(&root);
    std::fs::write(&path, json).expect("snapshot written");
    println!("recorded {} benches to {}", benches.len(), path.display());
}
