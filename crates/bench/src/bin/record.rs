//! `selc-bench-record`: runs the bench suite and snapshots the medians.
//!
//! Invokes `cargo bench -p selc-bench` (optionally a single `--bench`
//! target), parses the vendored harness's per-bench median lines, and
//! writes `BENCH_<n>.json` at the repo root — `<n>` auto-increments past
//! the largest existing snapshot, so the perf trajectory accumulates one
//! file per recording:
//!
//! ```sh
//! cargo run -p selc-bench --bin selc-bench-record --release
//! cargo run -p selc-bench --bin selc-bench-record --release -- --bench e12_parallel
//! ```
//!
//! JSON schema 6: `{"schema": 6, "recorded_at_unix": <secs>,
//! "selc_threads": <resolved worker count>, "host_parallelism": <what
//! the OS reports>, "benches": {"<label>": <median ns/iter>}, "cache":
//! {"<label>": {"hits": …, "misses": …, "insertions": …,
//! "evictions": …}}, "summary": {"<label>": {"exact_hits": …,
//! "bound_hits": …, "misses": …, "exact_installs": …,
//! "bound_installs": …}}, "serve": {"<label>":
//! {"searches_per_sec": …, "requests": …, "elapsed_ms": …,
//! "p50_us": …, "p99_us": …}}}` — the `cache` section collects the
//! `<label> cache hits=… misses=…` lines cached bench families (e13+)
//! print after timing, so snapshots carry hit rates alongside medians;
//! the `summary` section (schema 4) collects the
//! `<label> summary exact_hits=…` lines the subtree-summary family
//! (e16) prints, so warm-path O(depth) claims stay auditable; and the
//! `serve` section (schema 5) collects the `<label> serve
//! searches_per_sec=…` throughput lines the service family (e17)
//! prints; and the `metrics` section (schema 6) collects the `<label>
//! metrics p50_us=… p90_us=… p99_us=…` lines e17 derives from a
//! scraped server-side latency histogram, so the registry's view of
//! the service sits next to the client-measured one in the same
//! snapshot. Stat lines the recorder does *not* recognise — an unknown
//! section word, or a known section whose pairs fail to parse (schema
//! drift) — are called out on stderr instead of silently dropped, so a
//! renamed counter can never vanish from snapshots unnoticed.
//! The two parallelism fields (schema 3) record the recording *host*:
//! `host_parallelism` is what the OS could actually run concurrently,
//! and `selc_threads` is the `SELC_THREADS` knob resolved exactly as the
//! engine resolves it (it governs `::auto()`-sized pools; bench families
//! that pin an explicit pool — e12–e15 mostly pin 4 workers — say so in
//! their labels). The point is interpretability: a "4-worker" row next
//! to `host_parallelism: 1` measured thread *interleaving*, not scaling.

use std::collections::BTreeMap;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::process::Command;

/// Prints a usage-style error and exits non-zero (no panic backtraces
/// for operator mistakes).
fn fail(msg: &str) -> ! {
    eprintln!("selc-bench-record: {msg}");
    std::process::exit(2);
}

fn repo_root() -> PathBuf {
    // crates/bench/ → repo root is two levels up.
    let base = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    base.canonicalize().unwrap_or_else(|e| {
        fail(&format!(
            "cannot resolve the repo root from {} ({e}); run from a checkout of the workspace",
            base.display()
        ))
    })
}

/// Parses one harness output line of the form
/// `label median 123.4 ns/iter (min …, max …, N iters x M samples)`.
fn parse_line(line: &str) -> Option<(String, f64)> {
    let (label, rest) = line.split_once(" median ")?;
    let median = rest.split_whitespace().next()?.parse::<f64>().ok()?;
    rest.contains("ns/iter").then(|| (label.trim().to_string(), median))
}

/// Parses one cache-stats line of the form
/// `label cache hits=1 misses=2 insertions=2 evictions=0 hit_rate=0.333`.
fn parse_cache_line(line: &str) -> Option<(String, [u64; 4])> {
    let (label, rest) = line.split_once(" cache ")?;
    let mut out = [0_u64; 4];
    let mut seen = 0;
    for pair in rest.split_whitespace() {
        let (k, v) = pair.split_once('=')?;
        let slot = match k {
            "hits" => 0,
            "misses" => 1,
            "insertions" => 2,
            "evictions" => 3,
            _ => continue, // hit_rate is derived; recompute on read
        };
        out[slot] = v.parse::<u64>().ok()?;
        seen += 1;
    }
    (seen == 4).then(|| (label.trim().to_string(), out))
}

/// Parses one summary-stats line of the form
/// `label summary exact_hits=1 bound_hits=0 misses=0 exact_installs=0
/// bound_installs=0`.
fn parse_summary_line(line: &str) -> Option<(String, [u64; 5])> {
    let (label, rest) = line.split_once(" summary ")?;
    let mut out = [0_u64; 5];
    let mut seen = 0;
    for pair in rest.split_whitespace() {
        let (k, v) = pair.split_once('=')?;
        let slot = match k {
            "exact_hits" => 0,
            "bound_hits" => 1,
            "misses" => 2,
            "exact_installs" => 3,
            "bound_installs" => 4,
            _ => continue,
        };
        out[slot] = v.parse::<u64>().ok()?;
        seen += 1;
    }
    (seen == 5).then(|| (label.trim().to_string(), out))
}

/// Parses one serve-throughput line of the form
/// `label serve searches_per_sec=142.1 requests=24 elapsed_ms=168.9
/// p50_us=7012 p99_us=7311`. Rates and times are floats; counts are
/// integers but parse through `f64` uniformly (they are small enough
/// to be exact).
fn parse_serve_line(line: &str) -> Option<(String, [f64; 5])> {
    let (label, rest) = line.split_once(" serve ")?;
    let mut out = [0_f64; 5];
    let mut seen = 0;
    for pair in rest.split_whitespace() {
        let (k, v) = pair.split_once('=')?;
        let slot = match k {
            "searches_per_sec" => 0,
            "requests" => 1,
            "elapsed_ms" => 2,
            "p50_us" => 3,
            "p99_us" => 4,
            _ => continue,
        };
        out[slot] = v.parse::<f64>().ok()?;
        seen += 1;
    }
    (seen == 5).then(|| (label.trim().to_string(), out))
}

/// Parses one scraped-metrics line of the form
/// `label metrics p50_us=42 p90_us=90 p99_us=130` — bucket-floor
/// percentiles of the server's own latency histogram. Integers on the
/// wire, but `f64` uniformly like the serve section (small enough to
/// be exact).
fn parse_metrics_line(line: &str) -> Option<(String, [f64; 3])> {
    let (label, rest) = line.split_once(" metrics ")?;
    let mut out = [0_f64; 3];
    let mut seen = 0;
    for pair in rest.split_whitespace() {
        let (k, v) = pair.split_once('=')?;
        let slot = match k {
            "p50_us" => 0,
            "p90_us" => 1,
            "p99_us" => 2,
            _ => continue,
        };
        out[slot] = v.parse::<f64>().ok()?;
        seen += 1;
    }
    (seen == 3).then(|| (label.trim().to_string(), out))
}

/// Recognises the *shape* of a stats line — `<label…> <section> k=v
/// [k=v …]` — and returns its section word. Bench labels never contain
/// `=`, so the first `k=v` token marks where the pairs start and the
/// token before it is the section. Median lines (`… median 1.2
/// ns/iter (…)`) have no `k=v` run and fall through to `None`.
fn stat_section(line: &str) -> Option<&str> {
    let tokens: Vec<&str> = line.split_whitespace().collect();
    let first_kv =
        tokens.iter().position(|t| t.split_once('=').is_some_and(|(k, _)| !k.is_empty()))?;
    // Need a label (≥1 token), a section token, and all-pairs after it.
    if first_kv < 2 || !tokens[first_kv..].iter().all(|t| t.contains('=')) {
        return None;
    }
    Some(tokens[first_kv - 1])
}

/// Flags every stats-shaped line the typed parsers will not pick up:
/// unknown sections, and known sections that no longer parse (schema
/// drift). Returns the warnings so `main` can print them and tests can
/// assert them.
fn unparsed_stat_warnings(stdout: &str) -> Vec<String> {
    let mut warnings = Vec::new();
    for line in stdout.lines() {
        let Some(section) = stat_section(line) else { continue };
        let parsed = match section {
            "cache" => parse_cache_line(line).is_some(),
            "summary" => parse_summary_line(line).is_some(),
            "serve" => parse_serve_line(line).is_some(),
            "metrics" => parse_metrics_line(line).is_some(),
            _ => {
                warnings.push(format!("unknown stat section {section:?} — not recorded: {line}"));
                continue;
            }
        };
        if !parsed {
            warnings.push(format!(
                "stat line in section {section:?} failed to parse (schema drift?) — not recorded: {line}"
            ));
        }
    }
    warnings
}

fn next_snapshot_number(root: &Path) -> u64 {
    let mut max_n = 0_u64;
    if let Ok(entries) = std::fs::read_dir(root) {
        for e in entries.flatten() {
            let name = e.file_name();
            let name = name.to_string_lossy();
            if let Some(n) = name.strip_prefix("BENCH_").and_then(|s| s.strip_suffix(".json")) {
                if let Ok(n) = n.parse::<u64>() {
                    max_n = max_n.max(n);
                }
            }
        }
    }
    max_n
}

/// Writes the snapshot to the next free `BENCH_<n>.json`, creating the
/// file with `create_new` so a concurrently-written snapshot (another
/// recorder racing past the directory scan) is never clobbered — on
/// collision the number advances and the write retries.
fn write_snapshot(root: &Path, json: &str) -> PathBuf {
    let mut n = next_snapshot_number(root) + 1;
    loop {
        let path = root.join(format!("BENCH_{n}.json"));
        match std::fs::File::create_new(&path) {
            Ok(mut f) => {
                f.write_all(json.as_bytes())
                    .unwrap_or_else(|e| fail(&format!("cannot write {}: {e}", path.display())));
                return path;
            }
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => n += 1,
            Err(e) => fail(&format!("cannot create {}: {e}", path.display())),
        }
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
    let root = repo_root();

    let mut cmd = Command::new(cargo);
    cmd.current_dir(&root).args(["bench", "-p", "selc-bench"]);
    let mut rest = args.iter();
    while let Some(a) = rest.next() {
        if a == "--bench" {
            let Some(target) = rest.next() else {
                fail("--bench needs a target name; usage: selc-bench-record [--bench <target>]");
            };
            cmd.args(["--bench", target]);
        } else {
            fail(&format!("unknown argument {a:?}; usage: selc-bench-record [--bench <target>]"));
        }
    }
    eprintln!("running {cmd:?} …");
    let out = cmd.output().unwrap_or_else(|e| fail(&format!("cannot run cargo bench ({e})")));
    let stdout = String::from_utf8_lossy(&out.stdout);
    if !out.status.success() {
        fail(&format!("cargo bench failed:\n{}\n{}", stdout, String::from_utf8_lossy(&out.stderr)));
    }

    let benches: BTreeMap<String, f64> = stdout.lines().filter_map(parse_line).collect();
    if benches.is_empty() {
        fail(&format!("no bench medians found in output:\n{stdout}"));
    }
    let cache: BTreeMap<String, [u64; 4]> = stdout.lines().filter_map(parse_cache_line).collect();
    let summary: BTreeMap<String, [u64; 5]> =
        stdout.lines().filter_map(parse_summary_line).collect();
    let serve: BTreeMap<String, [f64; 5]> = stdout.lines().filter_map(parse_serve_line).collect();
    let scraped: BTreeMap<String, [f64; 3]> =
        stdout.lines().filter_map(parse_metrics_line).collect();
    for warning in unparsed_stat_warnings(&stdout) {
        eprintln!("selc-bench-record: warning: {warning}");
    }

    let recorded_at = std::time::SystemTime::UNIX_EPOCH.elapsed().map(|d| d.as_secs()).unwrap_or(0);
    // The engine's own worker-count resolution (`SELC_THREADS`, else the
    // hardware), without linking the engine into the recorder.
    let host = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let threads = selc::env::env_usize("SELC_THREADS").unwrap_or(host);
    let mut json = String::from("{\n  \"schema\": 6,\n");
    json.push_str(&format!("  \"recorded_at_unix\": {recorded_at},\n"));
    json.push_str(&format!("  \"selc_threads\": {threads},\n"));
    json.push_str(&format!("  \"host_parallelism\": {host},\n  \"benches\": {{\n"));
    let body: Vec<String> = benches
        .iter()
        .map(|(label, median)| format!("    \"{}\": {median:.1}", json_escape(label)))
        .collect();
    json.push_str(&body.join(",\n"));
    json.push_str("\n  }");
    if !cache.is_empty() {
        json.push_str(",\n  \"cache\": {\n");
        let body: Vec<String> = cache
            .iter()
            .map(|(label, [h, m, i, e])| {
                format!(
                    "    \"{}\": {{\"hits\": {h}, \"misses\": {m}, \"insertions\": {i}, \"evictions\": {e}}}",
                    json_escape(label)
                )
            })
            .collect();
        json.push_str(&body.join(",\n"));
        json.push_str("\n  }");
    }
    if !summary.is_empty() {
        json.push_str(",\n  \"summary\": {\n");
        let body: Vec<String> = summary
            .iter()
            .map(|(label, [eh, bh, m, ei, bi])| {
                format!(
                    "    \"{}\": {{\"exact_hits\": {eh}, \"bound_hits\": {bh}, \"misses\": {m}, \"exact_installs\": {ei}, \"bound_installs\": {bi}}}",
                    json_escape(label)
                )
            })
            .collect();
        json.push_str(&body.join(",\n"));
        json.push_str("\n  }");
    }
    if !serve.is_empty() {
        json.push_str(",\n  \"serve\": {\n");
        let body: Vec<String> = serve
            .iter()
            .map(|(label, [sps, req, ms, p50, p99])| {
                format!(
                    "    \"{}\": {{\"searches_per_sec\": {sps:.1}, \"requests\": {req:.0}, \"elapsed_ms\": {ms:.1}, \"p50_us\": {p50:.0}, \"p99_us\": {p99:.0}}}",
                    json_escape(label)
                )
            })
            .collect();
        json.push_str(&body.join(",\n"));
        json.push_str("\n  }");
    }
    if !scraped.is_empty() {
        json.push_str(",\n  \"metrics\": {\n");
        let body: Vec<String> = scraped
            .iter()
            .map(|(label, [p50, p90, p99])| {
                format!(
                    "    \"{}\": {{\"p50_us\": {p50:.0}, \"p90_us\": {p90:.0}, \"p99_us\": {p99:.0}}}",
                    json_escape(label)
                )
            })
            .collect();
        json.push_str(&body.join(",\n"));
        json.push_str("\n  }");
    }
    json.push_str("\n}\n");

    let path = write_snapshot(&root, &json);
    println!("recorded {} benches to {}", benches.len(), path.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    const CACHE_LINE: &str =
        "e13_cache/warm cache hits=10 misses=2 insertions=2 evictions=0 hit_rate=0.833";
    const SUMMARY_LINE: &str = "e16_summaries/probing18/tree_cached_warm summary \
         exact_hits=4 bound_hits=0 misses=1 exact_installs=0 bound_installs=0";
    const SERVE_LINE: &str = "e17_serve/clients4/warm serve \
         searches_per_sec=1423.5 requests=256 elapsed_ms=179.8 p50_us=680 p99_us=2410";
    const METRICS_LINE: &str = "e17_serve/clients4/warm metrics p50_us=42 p90_us=90 p99_us=130";

    #[test]
    fn serve_lines_parse_into_the_five_metrics() {
        let (label, [sps, req, ms, p50, p99]) = parse_serve_line(SERVE_LINE).expect("parses");
        assert_eq!(label, "e17_serve/clients4/warm");
        assert_eq!((sps, req, ms), (1423.5, 256.0, 179.8));
        assert_eq!((p50, p99), (680.0, 2410.0));
        assert_eq!(parse_serve_line("x serve searches_per_sec=1"), None, "missing fields");
        assert_eq!(parse_serve_line(CACHE_LINE), None, "wrong section");
    }

    #[test]
    fn metrics_lines_parse_into_the_three_percentiles() {
        let (label, [p50, p90, p99]) = parse_metrics_line(METRICS_LINE).expect("parses");
        assert_eq!(label, "e17_serve/clients4/warm");
        assert_eq!((p50, p90, p99), (42.0, 90.0, 130.0));
        assert_eq!(parse_metrics_line("x metrics p50_us=1"), None, "missing fields");
        assert_eq!(parse_metrics_line(SERVE_LINE), None, "wrong section");
        // The regression the section exists to catch: a renamed
        // percentile key must surface as a schema-drift warning, not
        // vanish from snapshots.
        let drifted = "e17_serve/clients4/warm metrics p50_us=42 p95_us=90 p99_us=130\n";
        let warnings = unparsed_stat_warnings(drifted);
        assert_eq!(warnings.len(), 1);
        assert!(warnings[0].contains("schema drift"), "{warnings:?}");
    }

    #[test]
    fn known_stat_lines_produce_no_warnings() {
        let stdout =
            format!("{CACHE_LINE}\n{SUMMARY_LINE}\n{SERVE_LINE}\n{METRICS_LINE}\nsome prose\n");
        assert_eq!(unparsed_stat_warnings(&stdout), Vec::<String>::new());
    }

    #[test]
    fn unknown_stat_sections_are_warned_about_not_silently_dropped() {
        // The regression: a bench printing a new section (here `memo`)
        // used to vanish without a trace.
        let stdout = "e18_future/foo memo probes=9 hits=3\n";
        let warnings = unparsed_stat_warnings(stdout);
        assert_eq!(warnings.len(), 1);
        assert!(warnings[0].contains("unknown stat section \"memo\""), "{warnings:?}");
    }

    #[test]
    fn schema_drift_in_a_known_section_is_warned_about() {
        // A renamed counter makes the typed parser miss: flag it.
        let stdout = "e13_cache/warm cache hitz=10 misses=2 insertions=2 evictions=0\n";
        let warnings = unparsed_stat_warnings(stdout);
        assert_eq!(warnings.len(), 1);
        assert!(warnings[0].contains("schema drift"), "{warnings:?}");
    }

    #[test]
    fn non_stat_lines_are_not_mistaken_for_stat_lines() {
        // Median lines, prose, and `k=v`-less chatter must not warn.
        let stdout = "e16_summaries/probing18/tree_cached_warm median 1816.0 ns/iter (min 1716.0, max 1916.0, 2 iters x 2 samples)\n\
             running 5 tests\nusing seed=42\n";
        assert_eq!(unparsed_stat_warnings(stdout), Vec::<String>::new());
    }
}
