//! `selc-bench-record`: runs the bench suite and snapshots the medians.
//!
//! Invokes `cargo bench -p selc-bench` (optionally a single `--bench`
//! target), parses the vendored harness's per-bench median lines, and
//! writes `BENCH_<n>.json` at the repo root — `<n>` auto-increments past
//! the largest existing snapshot, so the perf trajectory accumulates one
//! file per recording:
//!
//! ```sh
//! cargo run -p selc-bench --bin selc-bench-record --release
//! cargo run -p selc-bench --bin selc-bench-record --release -- --bench e12_parallel
//! ```
//!
//! JSON schema: `{"schema": 2, "recorded_at_unix": <secs>,
//! "benches": {"<label>": <median ns/iter>}, "cache": {"<label>":
//! {"hits": …, "misses": …, "insertions": …, "evictions": …}}}` — the
//! `cache` section collects the `<label> cache hits=… misses=…` lines
//! cached bench families (e13) print after timing, so snapshots carry
//! hit rates alongside medians.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::Command;

fn repo_root() -> PathBuf {
    // crates/bench/ → repo root is two levels up.
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().expect("repo root exists")
}

/// Parses one harness output line of the form
/// `label median 123.4 ns/iter (min …, max …, N iters x M samples)`.
fn parse_line(line: &str) -> Option<(String, f64)> {
    let (label, rest) = line.split_once(" median ")?;
    let median = rest.split_whitespace().next()?.parse::<f64>().ok()?;
    rest.contains("ns/iter").then(|| (label.trim().to_string(), median))
}

/// Parses one cache-stats line of the form
/// `label cache hits=1 misses=2 insertions=2 evictions=0 hit_rate=0.333`.
fn parse_cache_line(line: &str) -> Option<(String, [u64; 4])> {
    let (label, rest) = line.split_once(" cache ")?;
    let mut out = [0_u64; 4];
    let mut seen = 0;
    for pair in rest.split_whitespace() {
        let (k, v) = pair.split_once('=')?;
        let slot = match k {
            "hits" => 0,
            "misses" => 1,
            "insertions" => 2,
            "evictions" => 3,
            _ => continue, // hit_rate is derived; recompute on read
        };
        out[slot] = v.parse::<u64>().ok()?;
        seen += 1;
    }
    (seen == 4).then(|| (label.trim().to_string(), out))
}

fn next_snapshot_path(root: &Path) -> PathBuf {
    let mut max_n = 0_u64;
    if let Ok(entries) = std::fs::read_dir(root) {
        for e in entries.flatten() {
            let name = e.file_name();
            let name = name.to_string_lossy();
            if let Some(n) = name.strip_prefix("BENCH_").and_then(|s| s.strip_suffix(".json")) {
                if let Ok(n) = n.parse::<u64>() {
                    max_n = max_n.max(n);
                }
            }
        }
    }
    root.join(format!("BENCH_{}.json", max_n + 1))
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
    let root = repo_root();

    let mut cmd = Command::new(cargo);
    cmd.current_dir(&root).args(["bench", "-p", "selc-bench"]);
    let mut rest = args.iter();
    while let Some(a) = rest.next() {
        if a == "--bench" {
            let target = rest.next().expect("--bench needs a target name");
            cmd.args(["--bench", target]);
        } else {
            panic!("unknown argument {a:?}; usage: selc-bench-record [--bench <target>]");
        }
    }
    eprintln!("running {cmd:?} …");
    let out = cmd.output().expect("cargo bench runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "cargo bench failed:\n{}\n{}",
        stdout,
        String::from_utf8_lossy(&out.stderr)
    );

    let benches: BTreeMap<String, f64> = stdout.lines().filter_map(parse_line).collect();
    assert!(!benches.is_empty(), "no bench medians found in output:\n{stdout}");
    let cache: BTreeMap<String, [u64; 4]> = stdout.lines().filter_map(parse_cache_line).collect();

    let recorded_at = std::time::SystemTime::UNIX_EPOCH.elapsed().map(|d| d.as_secs()).unwrap_or(0);
    let mut json = String::from("{\n  \"schema\": 2,\n");
    json.push_str(&format!("  \"recorded_at_unix\": {recorded_at},\n  \"benches\": {{\n"));
    let body: Vec<String> = benches
        .iter()
        .map(|(label, median)| format!("    \"{}\": {median:.1}", json_escape(label)))
        .collect();
    json.push_str(&body.join(",\n"));
    json.push_str("\n  }");
    if cache.is_empty() {
        json.push_str("\n}\n");
    } else {
        json.push_str(",\n  \"cache\": {\n");
        let body: Vec<String> = cache
            .iter()
            .map(|(label, [h, m, i, e])| {
                format!(
                    "    \"{}\": {{\"hits\": {h}, \"misses\": {m}, \"insertions\": {i}, \"evictions\": {e}}}",
                    json_escape(label)
                )
            })
            .collect();
        json.push_str(&body.join(",\n"));
        json.push_str("\n  }\n}\n");
    }

    let path = next_snapshot_path(&root);
    std::fs::write(&path, json).expect("snapshot written");
    println!("recorded {} benches to {}", benches.len(), path.display());
}
