//! Shared workload builders for the benchmark harness.
//!
//! One Criterion bench target per experiment/figure lives under
//! `benches/`; see DESIGN.md's per-experiment index and EXPERIMENTS.md for
//! the recorded results. This library provides the program families the
//! benches sweep over, so bench code stays declarative.

use selc::{effect, handle, loss, perform, Handler, Sel};

effect! {
    /// Binary choice, shared across benches.
    pub effect NDet {
        /// Choose a boolean.
        op Decide : () => bool;
    }
}

/// The §2.3 argmin handler at any result type.
pub fn argmin_handler<B: Clone + 'static>() -> Handler<f64, B, B> {
    Handler::builder::<NDet>()
        .on::<Decide>(|(), l, k| {
            l.at(true).and_then(move |y| {
                let (l, k) = (l.clone(), k.clone());
                l.at(false).and_then(move |z| if y <= z { k.resume(true) } else { k.resume(false) })
            })
        })
        .build_identity()
}

/// The §2.2 all-results handler.
pub fn all_results_handler() -> Handler<f64, bool, Vec<bool>> {
    Handler::builder::<NDet>()
        .on::<Decide>(|(), _l, k| {
            k.resume(true).and_then(move |ts: Vec<bool>| {
                let k = k.clone();
                k.resume(false).map(move |fs| {
                    let mut out = ts.clone();
                    out.extend(fs);
                    out
                })
            })
        })
        .ret(|b| Sel::pure(vec![b]))
        .build()
}

/// A chain of `n` decides whose conjunction is returned (generalises the
/// §2.2 program).
pub fn decide_chain(n: usize) -> Sel<f64, bool> {
    fn go(i: usize, n: usize, acc: bool) -> Sel<f64, bool> {
        if i == n {
            return Sel::pure(acc);
        }
        perform::<f64, Decide>(()).and_then(move |b| go(i + 1, n, acc && b))
    }
    go(0, n, true)
}

/// A chain of `n` decides with per-step losses: step `i` costs `i` when
/// true, `n − i` when false. The argmin handler must thread global
/// information through the choice continuations.
pub fn costed_decide_chain(n: usize) -> Sel<f64, usize> {
    fn go(i: usize, n: usize, trues: usize) -> Sel<f64, usize> {
        if i == n {
            return Sel::pure(trues);
        }
        perform::<f64, Decide>(()).and_then(move |b| {
            let cost = if b { i as f64 } else { (n - i) as f64 };
            loss(cost).and_then(move |_| go(i + 1, n, trues + usize::from(b)))
        })
    }
    go(0, n, 0)
}

/// The §2.3 `pgm` as a library computation.
pub fn pgm_sel() -> Sel<f64, char> {
    perform::<f64, Decide>(()).and_then(|b| {
        let i = if b { 1.0 } else { 2.0 };
        loss(2.0 * i).map(move |_| if b { 'a' } else { 'b' })
    })
}

/// Runs `pgm` under the argmin handler, returning (loss, result).
pub fn run_pgm() -> (f64, char) {
    handle(&argmin_handler(), pgm_sel()).run_unwrap()
}

/// `n`-way greedy choice via a single op over index lists, with a probing
/// handler — the kernel behind the A1 overhead ablation.
pub mod nway {
    use selc::{effect, handle, loss, perform, Choice, Handler, Sel};
    use std::rc::Rc;

    effect! {
        /// Choose an index in `0..n`.
        pub effect Pick {
            /// The op.
            op PickIdx : usize => usize;
        }
    }

    fn min_with(l: &Choice<f64, usize>, n: usize) -> Sel<f64, usize> {
        fn go(l: Choice<f64, usize>, n: usize, i: usize, best: (usize, f64)) -> Sel<f64, usize> {
            if i == n {
                return Sel::pure(best.0);
            }
            l.at(i).and_then(move |li| {
                let best = if li < best.1 { (i, li) } else { best };
                go(l.clone(), n, i + 1, best)
            })
        }
        go(l.clone(), n, 0, (usize::MAX, f64::INFINITY))
    }

    /// A handler picking the loss-minimising index.
    pub fn argmin_pick_handler<B: Clone + 'static>() -> Handler<f64, B, B> {
        Handler::builder::<Pick>()
            .on::<PickIdx>(|n, l, k| min_with(&l, n).and_then(move |i| k.resume(i)))
            .build_identity()
    }

    /// `pick(n)` then record `costs[i]` — the handler must return the
    /// argmin of `costs`.
    pub fn argmin_program(costs: Rc<Vec<f64>>) -> Sel<f64, usize> {
        let n = costs.len();
        perform::<f64, PickIdx>(n).and_then(move |i| loss(costs[i]).map(move |_| i))
    }

    /// Handler-based argmin over `costs`.
    pub fn handler_argmin(costs: &Rc<Vec<f64>>) -> (f64, usize) {
        handle(&argmin_pick_handler(), argmin_program(Rc::clone(costs))).run_unwrap()
    }

    /// Direct argmin baseline.
    pub fn direct_argmin(costs: &[f64]) -> (f64, usize) {
        let mut best = 0;
        for i in 1..costs.len() {
            if costs[i] < costs[best] {
                best = i;
            }
        }
        (costs[best], best)
    }
}

/// Nested handler towers for the depth ablation (A3): `depth` stacked
/// identity-ish handlers over one costed decide chain.
pub fn nested_handler_tower(depth: usize, chain: usize) -> (f64, usize) {
    // Only the innermost handler handles NDet; the outer ones handle
    // otherwise-unused effects so nodes traverse `depth` folds.
    use selc::handle as h;
    effect! {
        effect Aux {
            op Nop : () => ();
        }
    }
    fn aux_handler<B: Clone + 'static>() -> Handler<f64, B, B> {
        Handler::builder::<Aux>().on::<Nop>(|(), _l, k| k.resume(())).build_identity()
    }
    let mut prog = h(&argmin_handler(), costed_decide_chain(chain));
    for _ in 0..depth {
        prog = h(&aux_handler(), prog);
    }
    prog.run_unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::rc::Rc;

    #[test]
    fn pgm_matches_paper() {
        assert_eq!(run_pgm(), (2.0, 'a'));
    }

    #[test]
    fn decide_chain_enumerates() {
        let (_, all) = handle(&all_results_handler(), decide_chain(2)).run_unwrap();
        assert_eq!(all, vec![true, false, false, false]);
    }

    #[test]
    fn costed_chain_picks_cheapest_path() {
        // step i: true costs i, false costs n−i; optimal: true iff i < n−i.
        let (cost, trues) = handle(&argmin_handler(), costed_decide_chain(5)).run_unwrap();
        // optimal costs: min(i, 5−i) for i=0..4 → 0+1+2+2+1 = 6; trues at i=0,1,2
        assert_eq!(cost, 6.0);
        assert_eq!(trues, 3);
    }

    #[test]
    fn nway_handler_matches_direct() {
        let costs = Rc::new(vec![3.0, 1.0, 4.0, 1.5]);
        assert_eq!(nway::handler_argmin(&costs), nway::direct_argmin(&costs));
    }

    #[test]
    fn tower_is_transparent() {
        let base = handle(&argmin_handler(), costed_decide_chain(4)).run_unwrap();
        assert_eq!(nested_handler_tower(3, 4), base);
    }
}
