//! E11 (Thm 5.4/5.5): the denotational semantics differentially checked
//! against the operational one — on the paper's pgm and on generated
//! programs.

use criterion::{criterion_group, criterion_main, Criterion};
use lambda_c::testgen::{gen_signature, ProgramGen};
use selc_denote::check_adequacy;

fn bench(c: &mut Criterion) {
    let ex = lambda_c::examples::pgm_with_argmin_handler();
    check_adequacy(&ex.sig, &ex.expr, &ex.ty, &ex.eff, 3).unwrap();
    println!("E11: S[pgm] L[0] = (2, 'a') = big-step result — adequacy holds");

    let sig = gen_signature();
    let programs: Vec<_> =
        (200..212).map(|s| ProgramGen::new(s).gen_program(3, s % 2 == 0)).collect();
    c.benchmark_group("e11_adequacy")
        .bench_function("pgm", |b| {
            b.iter(|| check_adequacy(&ex.sig, &ex.expr, &ex.ty, &ex.eff, 3).unwrap())
        })
        .bench_function("generated", |b| {
            b.iter(|| {
                for p in &programs {
                    check_adequacy(&sig, &p.expr, &p.ty, &p.eff, 2).unwrap();
                }
            })
        });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_millis(500)).warm_up_time(std::time::Duration::from_millis(200));
    targets = bench
}
criterion_main!(benches);
