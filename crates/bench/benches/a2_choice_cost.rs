//! A2 (ablation, §6): choice continuations share work with the delimited
//! continuation; each probe re-runs the future, and in a chain of probed
//! choices the futures probe recursively — cost grows *exponentially*
//! (≈3^n here: two probes plus one resumption per step). This is exactly
//! the recomputation the paper's future-work section proposes to tame
//! with memoisation and the Hartmann–Schrijvers–Gibbons generalised
//! selection monad.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use selc::handle;
use selc_bench::{argmin_handler, costed_decide_chain};

fn bench(c: &mut Criterion) {
    println!("A2: argmin probes both branches at every step; per-step probes recurse, cost ~ 3^n");
    let mut g = c.benchmark_group("a2_choice_cost");
    for n in [2usize, 4, 6, 8, 10] {
        g.bench_with_input(BenchmarkId::new("costed_chain", n), &n, |b, &n| {
            b.iter(|| {
                let out = handle(&argmin_handler(), costed_decide_chain(n)).run_unwrap();
                std::hint::black_box(out)
            });
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_millis(500)).warm_up_time(std::time::Duration::from_millis(200));
    targets = bench
}
criterion_main!(benches);
