//! E12: the `selc-engine` execution layer — sequential vs. 1/2/4/8
//! workers, branch-and-bound pruning on/off, on two workloads:
//!
//! * `hyper_grid` — grid search over whole handler-SGD training runs
//!   (`selc_ml::parallel::tune_training_run`); most rates diverge, so
//!   pruning aborts them after a few data points;
//! * `minimax_root` — root-split minimax over a random table
//!   (`selc_games::parallel::minimax_root_split`), each row's subgame
//!   solved by the ordinary `hmin` handler on a worker.
//!
//! `SELC_BENCH_SMOKE=1` shrinks every size for the CI smoke run. On a
//! single-core container the thread rows cannot beat sequential; the
//! pruning rows still must (and the differential suites pin down that
//! winners never change either way).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use selc_engine::{ParallelEngine, SequentialEngine};
use selc_games::bimatrix::Matrix;
use selc_games::parallel::minimax_root_split;
use selc_ml::dataset::Dataset;
use selc_ml::parallel::tune_training_run;

fn smoke() -> bool {
    std::env::var("SELC_BENCH_SMOKE").is_ok()
}

/// A grid whose entry 0 converges (so the bound is set immediately) and
/// where three of every four rates diverge violently.
fn rate_grid(len: usize) -> Vec<f64> {
    (0..len)
        .map(|i| if i % 4 == 0 { 0.02 + 0.01 * (i / 4) as f64 } else { 1.2 + 0.05 * i as f64 })
        .collect()
}

fn bench_hyper_grid(c: &mut Criterion) {
    let (points, epochs, grid_len) = if smoke() { (8, 1, 6) } else { (24, 3, 16) };
    let data = Dataset::linear(points, 2.0, -1.0, 0.05, 3);
    let grid = rate_grid(grid_len);
    let mut g = c.benchmark_group("e12_parallel/hyper_grid");
    g.bench_function("sequential", |b| {
        b.iter(|| {
            black_box(tune_training_run(
                &SequentialEngine::exhaustive(),
                grid.clone(),
                &data,
                (0.0, 0.0),
                epochs,
            ))
        });
    });
    g.bench_function("sequential+prune", |b| {
        b.iter(|| {
            black_box(tune_training_run(
                &SequentialEngine::pruning(),
                grid.clone(),
                &data,
                (0.0, 0.0),
                epochs,
            ))
        });
    });
    for threads in [1usize, 2, 4, 8] {
        let eng = ParallelEngine { threads, chunk: 1, prune: true };
        g.bench_function(format!("parallel{threads}+prune"), |b| {
            b.iter(|| black_box(tune_training_run(&eng, grid.clone(), &data, (0.0, 0.0), epochs)));
        });
    }
    let no_prune = ParallelEngine { threads: 4, chunk: 1, prune: false };
    g.bench_function("parallel4", |b| {
        b.iter(|| black_box(tune_training_run(&no_prune, grid.clone(), &data, (0.0, 0.0), epochs)));
    });
    g.finish();
}

fn bench_minimax_root(c: &mut Criterion) {
    let (rows, cols) = if smoke() { (4, 8) } else { (12, 40) };
    let table = Matrix::random(rows, cols, 11);
    let mut g = c.benchmark_group("e12_parallel/minimax_root");
    g.bench_function("sequential", |b| {
        b.iter(|| black_box(minimax_root_split(&table, &SequentialEngine::exhaustive())));
    });
    g.bench_function("sequential+prune", |b| {
        b.iter(|| black_box(minimax_root_split(&table, &SequentialEngine::pruning())));
    });
    for threads in [1usize, 2, 4, 8] {
        let eng = ParallelEngine { threads, chunk: 1, prune: true };
        g.bench_function(format!("parallel{threads}+prune"), |b| {
            b.iter(|| black_box(minimax_root_split(&table, &eng)));
        });
    }
    let no_prune = ParallelEngine { threads: 4, chunk: 1, prune: false };
    g.bench_function("parallel4", |b| {
        b.iter(|| black_box(minimax_root_split(&table, &no_prune)));
    });
    g.finish();
}

criterion_group!(benches, bench_hyper_grid, bench_minimax_root);
criterion_main!(benches);
