//! E1 (§2.2/§4.1): non-deterministic enumeration. Reproduces
//! `[True,False,False,False]` and times all-results enumeration as the
//! number of sequential decides grows (result count = 2^n), in both the
//! library and the λC interpreter.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use selc::handle;
use selc_bench::{all_results_handler, decide_chain};

fn bench(c: &mut Criterion) {
    // reproduce the paper's values once
    let (_, all) = handle(&all_results_handler(), decide_chain(2)).run_unwrap();
    assert_eq!(all, vec![true, false, false, false]);
    println!("E1: 2 decides enumerate {all:?} (paper: [True,False,False,False])");

    let mut g = c.benchmark_group("e1_ndet");
    for n in [2usize, 4, 8, 12] {
        g.bench_with_input(BenchmarkId::new("selc_all_results", n), &n, |b, &n| {
            b.iter(|| {
                let (_, all) = handle(&all_results_handler(), decide_chain(n)).run_unwrap();
                std::hint::black_box(all.len())
            });
        });
    }
    // the λC interpreter on the fixed §2.2 program
    let ex = lambda_c::examples::decide_all();
    g.bench_function("lambda_c_decide_all", |b| {
        b.iter(|| {
            let out =
                lambda_c::eval_closed(&ex.sig, ex.expr.clone(), ex.ty.clone(), ex.eff.clone())
                    .unwrap();
            std::hint::black_box(out.steps)
        });
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_millis(500)).warm_up_time(std::time::Duration::from_millis(200));
    targets = bench
}
criterion_main!(benches);
