//! A3 (ablation): cost of forwarding through towers of nested handlers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use selc_bench::nested_handler_tower;

fn bench(c: &mut Criterion) {
    println!("A3: nested handler towers forward unhandled nodes through each fold");
    let mut g = c.benchmark_group("a3_depth");
    for depth in [0usize, 2, 4, 8] {
        g.bench_with_input(BenchmarkId::new("tower", depth), &depth, |b, &depth| {
            b.iter(|| std::hint::black_box(nested_handler_tower(depth, 6)));
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_millis(500)).warm_up_time(std::time::Duration::from_millis(200));
    targets = bench
}
criterion_main!(benches);
