//! E15: prefix-sharing tree search vs the flat forced-path scan.
//!
//! PR 4's bridge fans a depth-`d` compiled program out as `2^d` forced
//! paths, each replayed from the root — O(2^d · d) machine segments. The
//! tree search suspends the machine at each choice point and resumes
//! both branches from the shared prefix snapshot — O(2^d) segments, one
//! per tree node. This family measures that gap on a deep probing chain
//! (the workload of E14's `decide_search`, at three times the depth),
//! cold and warm, plus the flat scan's own cached path for reference.
//!
//! After timing, cache-stat lines print for `selc-bench-record`.
//! `SELC_BENCH_SMOKE=1` shrinks the chain for CI.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use lambda_c::testgen::deep_decide_chain;
use lambda_rt::{
    search_compiled, search_compiled_cached, search_compiled_cached_unchecked,
    search_compiled_flat_cached, LcCandidates, LcTransCache,
};
use selc_cache::CacheStats;
use selc_engine::{ParallelEngine, TreeEngine};
use std::time::Duration;

fn smoke() -> bool {
    std::env::var("SELC_BENCH_SMOKE").is_ok()
}

fn report(label: &str, stats: &CacheStats) {
    println!(
        "{label} cache hits={} misses={} insertions={} evictions={} hit_rate={:.3}",
        stats.hits,
        stats.misses,
        stats.insertions,
        stats.evictions,
        stats.hit_rate()
    );
}

fn bench_tree_vs_flat(c: &mut Criterion) {
    let choices = if smoke() { 10 } else { 18 };
    let p = deep_decide_chain(choices);
    let cands = LcCandidates::new(
        lambda_c::compile(&p.expr).expect("compiles"),
        ["decide".to_owned()],
        choices,
    );
    // The PR-4 production configuration (parallel + branch-and-bound +
    // transposition table) against the tree engine at the same worker
    // count.
    let flat_eng = ParallelEngine { threads: 4, chunk: 0, prune: true };
    let tree_eng = TreeEngine::with_threads(4);

    // Bit-identical winners, asserted once before timing. Pruning runs
    // under the flow certificate, which the chain corpus always earns.
    let cert = cands.certificate().expect("chain corpus is flow-certifiable");
    let (tree_ref, tree_val) = search_compiled(&TreeEngine::sequential(), &cands).unwrap();
    let fresh = LcTransCache::unbounded(8);
    let (flat_ref, flat_val) =
        search_compiled_flat_cached(&flat_eng, &cands, &fresh, Some(cert)).unwrap();
    assert_eq!((tree_ref.index, tree_ref.loss.clone()), (flat_ref.index, flat_ref.loss));
    assert_eq!(tree_val, flat_val);
    // Certificate-driven pruning against the raw-boolean escape hatch:
    // the two entry points must stay bit-identical.
    // flow: certified (chain corpus, asserted above)
    let (unchecked_ref, unchecked_val) = search_compiled_cached_unchecked(
        &TreeEngine::with_threads(2),
        &cands,
        &LcTransCache::unbounded(8),
        true,
    )
    .unwrap();
    let (cert_ref, cert_val) = search_compiled_cached(
        &TreeEngine::with_threads(2),
        &cands,
        &LcTransCache::unbounded(8),
        Some(cert),
    )
    .unwrap();
    assert_eq!(
        (cert_ref.index, cert_ref.loss),
        (unchecked_ref.index, unchecked_ref.loss),
        "certified and unchecked pruning must agree bit-for-bit"
    );
    assert_eq!(cert_val, unchecked_val);

    let mut g = c.benchmark_group(format!("e15_tree/probing{choices}"));
    g.bench_function("flat_cached_cold", |b| {
        b.iter(|| {
            let cache = LcTransCache::unbounded(8);
            black_box(search_compiled_flat_cached(&flat_eng, &cands, &cache, Some(cert)))
        })
    });
    g.bench_function("tree_cold", |b| b.iter(|| black_box(search_compiled(&tree_eng, &cands))));
    g.bench_function("tree_cached_cold", |b| {
        b.iter(|| {
            let cache = LcTransCache::unbounded(8);
            black_box(search_compiled_cached(&tree_eng, &cands, &cache, Some(cert)))
        })
    });
    let warm = LcTransCache::unbounded(8);
    let _ = search_compiled_cached(&tree_eng, &cands, &warm, None);
    g.bench_function("tree_cached_warm", |b| {
        b.iter(|| black_box(search_compiled_cached(&tree_eng, &cands, &warm, None)))
    });
    g.finish();

    // Representative stats for the snapshot recorder: a cold pruned fill
    // on a fresh table, and a repeat search over the fully-warm one.
    let cache = LcTransCache::unbounded(8);
    let (cold, _) = search_compiled_cached(&tree_eng, &cands, &cache, Some(cert)).unwrap();
    assert_eq!(cold.index, tree_ref.index);
    report(&format!("e15_tree/probing{choices}/tree_cached_cold"), &cold.stats.cache);
    println!(
        "e15_tree/probing{choices}/tree_cached_cold search evaluated={} pruned={}",
        cold.stats.evaluated, cold.stats.pruned
    );
    let (warm_out, _) = search_compiled_cached(&tree_eng, &cands, &warm, None).unwrap();
    assert_eq!(warm_out.index, tree_ref.index);
    report(&format!("e15_tree/probing{choices}/tree_cached_warm"), &warm_out.stats.cache);

    // With `SELC_TRACE=<path>` set, every engine worker recorded
    // claim/eval/subtree spans into its ring during the runs above;
    // dump them as chrome://tracing JSON (the CI smoke parses the file
    // back to prove it is well-formed).
    match selc_obs::trace::flush_if_configured() {
        Ok(Some((path, events))) => println!("e15_tree trace: flushed {events} events to {path}"),
        Ok(None) => {}
        Err(e) => eprintln!("e15_tree trace: flush failed: {e}"),
    }
}

criterion_group! {
    name = benches;
    // The flat cold scan replays 2^18 paths per iteration; two samples
    // of one iteration each keep the recording honest without an
    // hour-long run.
    config = Criterion::default().sample_size(2).measurement_time(Duration::from_millis(200)).warm_up_time(Duration::from_millis(50));
    targets = bench_tree_vs_flat
}
criterion_main!(benches);
