//! A4 (extensions): the future-work features built on top of the paper —
//! GAN-style saddle training with paired descent/ascent handlers,
//! alternating game trees with per-ply handlers vs. negamax, polynomial
//! regression, and probe memoisation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use selc_games::alternating::GameTree;
use selc_ml::polyreg::{train_poly_sgd, PolyDataset};
use selc_ml::saddle::train;

fn bench(c: &mut Criterion) {
    // reproduce the extension results once
    let (x, y) = train(
        |x: &[f64], y: &[f64]| (x[0] - 1.0).powi(2) - (y[0] - 2.0).powi(2),
        vec![0.0],
        vec![0.0],
        0.2,
        60,
    );
    assert!((x[0] - 1.0).abs() < 1e-3 && (y[0] - 2.0).abs() < 1e-3);
    println!("A4: descent/ascent handlers find the saddle (1, 2)");

    let t = GameTree::random(2, 4, 11);
    assert_eq!(t.solve_handlers().1, t.solve_backward().1);
    println!("A4: per-ply handlers = backward induction at depth 4");

    let mut g = c.benchmark_group("a4_extensions");
    g.bench_function("saddle_10_rounds", |b| {
        b.iter(|| {
            std::hint::black_box(train(
                |x: &[f64], y: &[f64]| (x[0] - 1.0).powi(2) - (y[0] - 2.0).powi(2),
                vec![0.0],
                vec![0.0],
                0.2,
                10,
            ))
        })
    });
    for depth in [2usize, 3, 4] {
        let t = GameTree::random(2, depth, 5);
        g.bench_with_input(BenchmarkId::new("game_tree_handlers", depth), &t, |b, t| {
            b.iter(|| std::hint::black_box(t.solve_handlers()));
        });
        g.bench_with_input(BenchmarkId::new("game_tree_negamax", depth), &t, |b, t| {
            b.iter(|| std::hint::black_box(t.solve_backward()));
        });
    }
    let d = PolyDataset::generate(32, vec![0.5, 1.0, -0.8], 0.0, 9);
    g.bench_function("polyreg_epoch", |b| {
        b.iter(|| std::hint::black_box(train_poly_sgd(&d, 2, 0.08, 1)));
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_millis(500)).warm_up_time(std::time::Duration::from_millis(200));
    targets = bench
}
criterion_main!(benches);
