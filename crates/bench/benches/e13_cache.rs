//! E13: the `selc-cache` memoisation subsystem — cache off vs. unbounded
//! vs. bounded, on two repeated-subproblem workloads:
//!
//! * `transposition` — minimax over a [`SymTree`] (leaf payoffs
//!   move-order-invariant, so `b^d` nodes collapse onto the multiset
//!   states): plain backward induction against transposition-table
//!   solves with an unbounded cache, a bounded (CLOCK, forced-eviction)
//!   cache, and a warm persistent cache (the cross-run reuse case);
//! * `hyper_grid` — the batched `tuneLR` tuner over a grid with heavy
//!   rate duplication: per-batch local memoisation (the PR-2 baseline)
//!   against the shared rate cache, cold, warm, and bounded.
//!
//! After timing, each workload prints one `… cache hits=… misses=…`
//! line per cached configuration; `selc-bench-record` parses these into
//! the `cache` section of `BENCH_<n>.json`, so snapshots carry hit
//! rates alongside medians. `SELC_BENCH_SMOKE=1` shrinks every size for
//! the CI smoke run.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use selc_cache::{CacheStats, ShardedCache, SharedCache};
use selc_engine::ParallelEngine;
use selc_games::transposition::{solve_root_split, SymTree, TransCache};
use selc_ml::parallel::{tune_lr_parallel, tune_lr_parallel_cached};
use std::sync::Arc;

fn smoke() -> bool {
    std::env::var("SELC_BENCH_SMOKE").is_ok()
}

fn engine() -> ParallelEngine {
    ParallelEngine { threads: 4, chunk: 1, prune: false }
}

/// One `label cache hits=… …` line per cached configuration, for the
/// snapshot recorder.
fn report(label: &str, stats: &CacheStats) {
    println!(
        "{label} cache hits={} misses={} insertions={} evictions={} hit_rate={:.3}",
        stats.hits,
        stats.misses,
        stats.insertions,
        stats.evictions,
        stats.hit_rate()
    );
}

fn bench_transposition(c: &mut Criterion) {
    let (branching, depth) = if smoke() { (3, 5) } else { (4, 8) };
    let tree = SymTree::new(branching, depth, 5);
    let bounded_cap = 64;
    let mut g = c.benchmark_group("e13_cache/transposition");
    g.bench_function("uncached", |b| {
        b.iter(|| black_box(tree.value_backward()));
    });
    g.bench_function("unbounded_cold", |b| {
        b.iter(|| {
            let cache = TransCache::unbounded(4);
            black_box(tree.value_transposition(&cache))
        });
    });
    g.bench_function(format!("bounded{bounded_cap}_cold"), |b| {
        b.iter(|| {
            let cache = TransCache::clock_lru(4, bounded_cap);
            black_box(tree.value_transposition(&cache))
        });
    });
    let warm = TransCache::unbounded(4);
    let _ = tree.value_transposition(&warm);
    g.bench_function("unbounded_warm", |b| {
        b.iter(|| black_box(tree.value_transposition(&warm)));
    });
    g.bench_function("root_split_cold", |b| {
        b.iter(|| {
            let cache = TransCache::unbounded(4);
            black_box(solve_root_split(&tree, &engine(), &cache))
        });
    });
    g.finish();

    // Representative stats per configuration (one fresh solve each).
    let cache = TransCache::unbounded(4);
    let expected = tree.value_backward();
    assert_eq!(tree.value_transposition(&cache), expected);
    report("e13_cache/transposition/unbounded_cold", &cache.stats());
    let bounded = TransCache::clock_lru(4, bounded_cap);
    assert_eq!(tree.value_transposition(&bounded), expected);
    report(&format!("e13_cache/transposition/bounded{bounded_cap}_cold"), &bounded.stats());
    let before = warm.stats();
    assert_eq!(tree.value_transposition(&warm), expected);
    report("e13_cache/transposition/unbounded_warm", &warm.stats().since(&before));
}

/// A grid with heavy duplication: `len` entries drawn from 4 distinct
/// rates — the duplicate-rate workload where shared caching pays.
fn dup_grid(len: usize) -> Vec<f64> {
    (0..len).map(|i| [0.5, 0.25, 0.1, 0.75][i % 4]).collect()
}

fn bench_hyper_grid(c: &mut Criterion) {
    let (grid_len, steps) = if smoke() { (8, 200) } else { (24, 4000) };
    let grid = dup_grid(grid_len);
    // The future behind the Lrate op is a whole (simulated) training
    // run — the expensive rate evaluation the cache is meant to share.
    let program = move || {
        selc::perform::<f64, selc_ml::hyper::Lrate>(()).and_then(move |alpha| {
            let mut p = 0.0_f64;
            for _ in 0..steps {
                p -= alpha * 2.0 * (p - 3.0);
            }
            let e = p - 3.0;
            selc::loss(e * e).map(move |_| p)
        })
    };
    let eng = engine();
    let mut g = c.benchmark_group("e13_cache/hyper_grid");
    g.bench_function("uncached", |b| {
        b.iter(|| black_box(tune_lr_parallel(&eng, grid.clone(), 1, program)));
    });
    g.bench_function("cached_cold", |b| {
        b.iter(|| {
            let cache: SharedCache<u64, f64> = Arc::new(ShardedCache::unbounded(4));
            black_box(tune_lr_parallel_cached(&eng, grid.clone(), 1, program, &cache))
        });
    });
    g.bench_function("cached_bounded2", |b| {
        b.iter(|| {
            let cache: SharedCache<u64, f64> = Arc::new(ShardedCache::clock_lru(2, 2));
            black_box(tune_lr_parallel_cached(&eng, grid.clone(), 1, program, &cache))
        });
    });
    let warm: SharedCache<u64, f64> = Arc::new(ShardedCache::unbounded(4));
    let _ = tune_lr_parallel_cached(&eng, grid.clone(), 1, program, &warm);
    g.bench_function("cached_warm", |b| {
        b.iter(|| black_box(tune_lr_parallel_cached(&eng, grid.clone(), 1, program, &warm)));
    });
    g.finish();

    let uncached = tune_lr_parallel(&eng, grid.clone(), 1, program);
    let cache: SharedCache<u64, f64> = Arc::new(ShardedCache::unbounded(4));
    let cold = tune_lr_parallel_cached(&eng, grid.clone(), 1, program, &cache);
    assert_eq!(cold.alpha, uncached.alpha, "cached and uncached winners agree");
    report("e13_cache/hyper_grid/cached_cold", &cold.stats.cache);
    let warm_out = tune_lr_parallel_cached(&eng, grid, 1, program, &cache);
    assert_eq!(warm_out.alpha, uncached.alpha);
    report("e13_cache/hyper_grid/cached_warm", &warm_out.stats.cache);
}

criterion_group!(benches, bench_transposition, bench_hyper_grid);
criterion_main!(benches);
