//! E5 (§4.3): hyperparameter grid search with `tuneLR` — the handler
//! that probes every rate through the choice continuation and never
//! resumes. Sweeps the grid size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use selc::{handle, loss, perform, Sel};
use selc_ml::hyper::tune_lr;
use selc_ml::optimize::{gd_handler_tuned, Optimize};

fn step_prog() -> Sel<f64, Vec<f64>> {
    let prog = perform::<f64, Optimize>(vec![0.0]).and_then(|p| {
        let e = p[0] - 3.0;
        loss(e * e).map(move |_| p.clone())
    });
    handle(&gd_handler_tuned(), prog)
}

fn bench(c: &mut Criterion) {
    let (_, alpha) = handle(&tune_lr(vec![1.0, 0.5]), step_prog()).run_unwrap();
    assert_eq!(alpha, 0.5);
    println!("E5: tuneLR {{1.0, 0.5}} picks 0.5 (paper: the rate with smaller loss)");

    let mut g = c.benchmark_group("e5_hyper");
    for n in [2usize, 8, 32] {
        let grid: Vec<f64> = (1..=n).map(|i| i as f64 / n as f64).collect();
        g.bench_with_input(BenchmarkId::new("tune_lr", n), &grid, |b, grid| {
            b.iter(|| {
                let (_, a) = handle(&tune_lr(grid.clone()), step_prog()).run_unwrap();
                std::hint::black_box(a)
            });
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_millis(500)).warm_up_time(std::time::Duration::from_millis(200));
    targets = bench
}
criterion_main!(benches);
