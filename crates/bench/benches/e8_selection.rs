//! E8 (§2.1): the pure selection monad — one-move games via Kleisli
//! extension and the Escardó–Oliva product, swept over move counts, plus
//! n-queens via iterated products.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use selc_games::queens::{queens_backtracking, queens_selection};
use selection::{argmax, argmin, product};

fn bench(c: &mut Criterion) {
    let table = [[5.0_f64, 3.0], [2.0, 9.0]];
    let s = product::pair(argmax(vec![0usize, 1]), argmin(vec![0usize, 1]));
    assert_eq!(s.select(move |&(x, y)| table[x][y]), (0, 1));
    println!("E8: §2.1 product solves the one-move game: (Left, Right)");

    let mut g = c.benchmark_group("e8_selection");
    for d in [2usize, 8, 32] {
        g.bench_with_input(BenchmarkId::new("pair_product", d), &d, |b, &d| {
            let rows: Vec<usize> = (0..d).collect();
            let cols: Vec<usize> = (0..d).collect();
            b.iter(|| {
                let s = product::pair(argmax(rows.clone()), argmin(cols.clone()));
                std::hint::black_box(s.select(move |&(x, y)| ((x * 7 + y * 3) % 11) as f64))
            });
        });
    }
    for n in [4usize, 5] {
        g.bench_with_input(BenchmarkId::new("queens_selection", n), &n, |b, &n| {
            b.iter(|| std::hint::black_box(queens_selection(n)));
        });
        g.bench_with_input(BenchmarkId::new("queens_backtracking", n), &n, |b, &n| {
            b.iter(|| std::hint::black_box(queens_backtracking(n)));
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_millis(500)).warm_up_time(std::time::Duration::from_millis(200));
    targets = bench
}
criterion_main!(benches);
