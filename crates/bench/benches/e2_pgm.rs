//! E2 (§2.3): the running example `pgm` under the argmin handler —
//! library vs. λC small-step interpreter. Reproduces result 'a', loss 2.

use criterion::{criterion_group, criterion_main, Criterion};
use selc_bench::run_pgm;

fn bench(c: &mut Criterion) {
    assert_eq!(run_pgm(), (2.0, 'a'));
    let ex = lambda_c::examples::pgm_with_argmin_handler();
    let out =
        lambda_c::eval_closed(&ex.sig, ex.expr.clone(), ex.ty.clone(), ex.eff.clone()).unwrap();
    println!("E2: pgm = ('a', loss 2); library OK, interpreter OK in {} steps", out.steps);

    c.benchmark_group("e2_pgm")
        .bench_function("selc_library", |b| b.iter(|| std::hint::black_box(run_pgm())))
        .bench_function("lambda_c_interpreter", |b| {
            b.iter(|| {
                let out =
                    lambda_c::eval_closed(&ex.sig, ex.expr.clone(), ex.ty.clone(), ex.eff.clone())
                        .unwrap();
                std::hint::black_box(out.steps)
            })
        });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_millis(500)).warm_up_time(std::time::Duration::from_millis(200));
    targets = bench
}
criterion_main!(benches);
