//! E17: served search throughput — sessions, deadlines, warm tenants.
//!
//! The service's pitch is that warmth outlives requests: a tenant's
//! second identical search is answered from subtree summaries over a
//! socket round-trip, not recomputed. This family spawns an in-process
//! `selc-serve` on an ephemeral loopback port and measures end-to-end
//! request throughput at 1/2/4/8 concurrent clients, **cold** (every
//! request a fresh tenant, so every search recomputes and refills) vs
//! **warm** (all requests repeat one pre-warmed tenant, so every search
//! is a summary probe plus protocol overhead).
//!
//! Before any timing, winners are gated bit-identical — loss bits *and*
//! index — against the direct sequential flat scan, and a 1ms-deadline
//! request on a deep chain must come back `Timeout` while the session
//! keeps serving; a throughput number for a server that returns wrong
//! or hung answers would be noise.
//!
//! After timing, `<label> serve searches_per_sec=… requests=…
//! elapsed_ms=… p50_us=… p99_us=…` lines print for `selc-bench-record`
//! (schema 5), plus the usual criterion median for the warm
//! single-request path, plus a `<label> metrics p50_us=…` line
//! (schema 6) scraped from the *server's* latency histogram over the
//! protocol — the registry's view next to the client's in the same
//! snapshot. `SELC_BENCH_SMOKE=1` shrinks the workload.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use selc_serve::{Client, Response, ServeConfig, Server, Workload};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

fn smoke() -> bool {
    std::env::var("SELC_BENCH_SMOKE").is_ok()
}

/// Fresh-tenant ids for cold requests, disjoint from the warm tenant.
static NEXT_TENANT: AtomicU64 = AtomicU64::new(1000);

const WARM_TENANT: u64 = 1;

fn expect_ok(resp: Response) -> (u64, f64) {
    match resp {
        Response::Ok { index, loss, .. } => (index, loss),
        other => panic!("expected Ok, got {other:?}"),
    }
}

/// The direct (no server, no cache) reference winner.
fn direct_chain(choices: u8) -> (u64, f64) {
    let p = lambda_c::testgen::deep_decide_chain(u32::from(choices));
    let cands = lambda_rt::LcCandidates::new(
        lambda_c::compile(&p.expr).expect("testgen chains compile"),
        ["decide".to_owned()],
        u32::from(choices),
    );
    let (out, _) =
        lambda_rt::search_compiled_flat(&selc_engine::SequentialEngine::exhaustive(), &cands)
            .expect("non-empty space");
    (out.index as u64, out.loss.0.as_scalar())
}

/// Drives `clients` concurrent loopback clients for `per_client`
/// requests each and prints the schema-5 stats line.
fn throughput(
    addr: std::net::SocketAddr,
    label: &str,
    clients: usize,
    per_client: usize,
    w: Workload,
    warm: bool,
) {
    let started = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|_| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let mut lat_us = Vec::with_capacity(per_client);
                for _ in 0..per_client {
                    let tenant = if warm {
                        WARM_TENANT
                    } else {
                        NEXT_TENANT.fetch_add(1, Ordering::Relaxed)
                    };
                    let t0 = Instant::now();
                    let resp = client.search(tenant, w, 0).expect("search");
                    lat_us.push(u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX));
                    assert!(matches!(resp, Response::Ok { .. }), "got {resp:?}");
                }
                lat_us
            })
        })
        .collect();
    let mut lat_us: Vec<u64> = Vec::new();
    for h in handles {
        lat_us.extend(h.join().expect("client thread"));
    }
    let elapsed = started.elapsed();
    lat_us.sort_unstable();
    let requests = lat_us.len();
    let pct = |p: usize| lat_us[(requests - 1) * p / 100];
    let per_sec = requests as f64 / elapsed.as_secs_f64();
    println!(
        "{label} serve searches_per_sec={per_sec:.1} requests={requests} elapsed_ms={:.1} p50_us={} p99_us={}",
        elapsed.as_secs_f64() * 1e3,
        pct(50),
        pct(99),
    );
}

fn bench_serve(c: &mut Criterion) {
    let choices: u8 = if smoke() { 8 } else { 12 };
    let server =
        Server::spawn(ServeConfig::loopback(8, 64)).expect("bind an ephemeral loopback port");
    let addr = server.addr();
    let w = Workload::Chain { choices };

    // Bit-identity gate before any timing: served == direct, cold and
    // warm alike (the warm repeat also pre-warms WARM_TENANT).
    let (ref_index, ref_loss) = direct_chain(choices);
    let mut gate = Client::connect(addr).expect("connect");
    for round in ["cold", "warm"] {
        let (index, loss) = expect_ok(gate.search(WARM_TENANT, w, 0).expect("gate search"));
        assert_eq!(
            (index, loss.to_bits()),
            (ref_index, ref_loss.to_bits()),
            "served {round} winner must be bit-identical to the direct scan"
        );
    }
    // Liveness gate: a 1ms deadline on a deep cold chain times out and
    // the session keeps answering.
    let deep = Workload::Chain { choices: if smoke() { 16 } else { 18 } };
    let resp = gate.search(NEXT_TENANT.fetch_add(1, Ordering::Relaxed), deep, 1).expect("deadline");
    assert!(matches!(resp, Response::Timeout { .. }), "expected Timeout, got {resp:?}");
    let (index, _) = expect_ok(gate.search(WARM_TENANT, w, 0).expect("post-timeout search"));
    assert_eq!(index, ref_index, "session must keep serving after a timeout");

    // The headline numbers: throughput at 1/2/4/8 concurrent clients,
    // cold tenants vs the one warm tenant.
    let per_client_cold = if smoke() { 3 } else { 6 };
    let per_client_warm = if smoke() { 16 } else { 64 };
    for clients in [1usize, 2, 4, 8] {
        throughput(
            addr,
            &format!("e17_serve/clients{clients}/cold"),
            clients,
            per_client_cold,
            w,
            false,
        );
        throughput(
            addr,
            &format!("e17_serve/clients{clients}/warm"),
            clients,
            per_client_warm,
            w,
            true,
        );
    }

    // A criterion median for the snapshot: one warm request end-to-end
    // (socket round-trip + summary probe).
    let mut g = c.benchmark_group(format!("e17_serve/chain{choices}"));
    let mut client = Client::connect(addr).expect("connect");
    g.bench_function("warm_request", |b| {
        b.iter(|| black_box(client.search(WARM_TENANT, w, 0).expect("warm request")))
    });
    g.finish();

    // The server's own view of the same traffic: scrape the registry
    // over the protocol and print the chain-latency percentiles as a
    // schema-6 `metrics` line. The server records unless
    // `SELC_METRICS=0` (overhead runs) asked it not to, in which case
    // the histogram is empty and there is nothing to print.
    let resp = client.metrics().expect("metrics scrape");
    let Response::Metrics(wire) = resp else { panic!("expected Metrics, got {resp:?}") };
    let hist = wire.to_snapshot().histogram("serve.latency_us.chain");
    if let (Some(p50), Some(p90), Some(p99)) =
        (hist.percentile(50), hist.percentile(90), hist.percentile(99))
    {
        println!("e17_serve/chain{choices}/scraped metrics p50_us={p50} p90_us={p90} p99_us={p99}");
    }
}

criterion_group! {
    name = benches;
    // Each cold iteration refills a tenant from scratch; small samples
    // keep the recording honest without a marathon run.
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_millis(400)).warm_up_time(Duration::from_millis(100));
    targets = bench_serve
}
criterion_main!(benches);
