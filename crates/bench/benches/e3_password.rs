//! E3 (§4.3): greedy password selection. Reproduces "password is abc"
//! and sweeps the candidate-list size for the handler vs. the direct
//! greedy baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use selc_ml::password::{password_baseline, run_password};

fn candidates(n: usize) -> Vec<String> {
    // distinct rewards: longer suffixes of the alphabet
    (0..n)
        .map(|i| {
            let len = 1 + i % 24;
            ('a'..='z').take(len).collect::<String>() + &"x".repeat(i % 3)
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    let (reward, msg) = run_password(vec!["aaa".into(), "aabb".into(), "abc".into()]);
    assert_eq!((reward, msg.as_str()), (12.0, "password is abc"));
    println!("E3: {msg} (reward {reward}) — paper: password is abc");

    let mut g = c.benchmark_group("e3_password");
    for n in [4usize, 32, 256] {
        let cs = candidates(n);
        g.bench_with_input(BenchmarkId::new("handler", n), &cs, |b, cs| {
            b.iter(|| std::hint::black_box(run_password(cs.clone())));
        });
        g.bench_with_input(BenchmarkId::new("baseline", n), &cs, |b, cs| {
            b.iter(|| std::hint::black_box(password_baseline(cs)));
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_millis(500)).warm_up_time(std::time::Duration::from_millis(200));
    targets = bench
}
criterion_main!(benches);
