//! E16: subtree summaries — warm repeats in O(depth), not O(leaves).
//!
//! BENCH_4 exposed the warm path as the slow path: the leaf-only
//! transposition table made a warm repeat of the cached tree search walk
//! all 2^18 candidates again (1.05s of probes against 107ms for a cold
//! pruned fill). Interior-node summaries collapse that walk: an exact
//! summary answers its whole subtree in one probe, so a warm repeat
//! touches O(depth) positions. This family times the same 18-decision
//! probing chain as E15, cold and warm, with summaries on and off, and
//! rides the flagged alpha–beta transposition table (the minimax face of
//! the same design) alongside. Winners are asserted bit-identical —
//! loss *and* index — between summarised, plain, and sequential
//! searches before any timing runs.
//!
//! After timing, cache- and summary-stat lines print for
//! `selc-bench-record` (schema 4). `SELC_BENCH_SMOKE=1` shrinks the
//! workloads for CI.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use lambda_c::testgen::deep_decide_chain;
use lambda_rt::{search_compiled, search_compiled_cached, LcCandidates, LcTransCache};
use selc_cache::{CacheStats, SummaryStats};
use selc_engine::TreeEngine;
use selc_games::alternating::{AbCache, GameTree};
use std::time::{Duration, Instant};

fn smoke() -> bool {
    std::env::var("SELC_BENCH_SMOKE").is_ok()
}

fn report_cache(label: &str, stats: &CacheStats) {
    println!(
        "{label} cache hits={} misses={} insertions={} evictions={} hit_rate={:.3}",
        stats.hits,
        stats.misses,
        stats.insertions,
        stats.evictions,
        stats.hit_rate()
    );
}

fn report_summary(label: &str, stats: &SummaryStats) {
    println!(
        "{label} summary exact_hits={} bound_hits={} misses={} exact_installs={} bound_installs={}",
        stats.exact_hits,
        stats.bound_hits,
        stats.misses,
        stats.exact_installs,
        stats.bound_installs
    );
}

fn bench_summaries(c: &mut Criterion) {
    let choices = if smoke() { 10 } else { 18 };
    let p = deep_decide_chain(choices);
    let cands = LcCandidates::new(
        lambda_c::compile(&p.expr).expect("compiles"),
        ["decide".to_owned()],
        choices,
    );
    let summarised = TreeEngine::with_threads(4);
    let plain = TreeEngine::with_threads(4).without_summaries();

    // Bit-identity gate: summarised == plain == sequential, over cold
    // and warm tables alike, before anything is timed.
    let (reference, ref_val) = search_compiled(&TreeEngine::sequential(), &cands).unwrap();
    let cert = cands.certificate().expect("chain corpus is flow-certifiable");
    let warm = LcTransCache::unbounded(8);
    for (engine, what) in [(&summarised, "summarised"), (&plain, "plain")] {
        for round in ["cold", "warm"] {
            let (out, v) = search_compiled_cached(engine, &cands, &warm, None).unwrap();
            assert_eq!(
                (out.index, out.loss.clone()),
                (reference.index, reference.loss.clone()),
                "{what} {round} winner"
            );
            assert_eq!(v, ref_val, "{what} {round} value");
        }
    }

    // The acceptance target, measured outright: a warm summarised
    // repeat must run ≥50× under BENCH_4's 1.05s warm path (21ms) — it
    // is an O(depth) walk, so the margin is enormous.
    let t0 = Instant::now();
    let _ = black_box(search_compiled_cached(&summarised, &cands, &warm, None));
    let elapsed = t0.elapsed();
    assert!(
        elapsed < Duration::from_millis(21),
        "warm summarised repeat must be O(depth): took {elapsed:?}"
    );

    let mut g = c.benchmark_group(format!("e16_summaries/probing{choices}"));
    g.bench_function("tree_cached_cold", |b| {
        b.iter(|| {
            let cache = LcTransCache::unbounded(8);
            black_box(search_compiled_cached(&summarised, &cands, &cache, Some(cert)))
        })
    });
    // The BENCH_4 pathology, reproduced for the before/after spread: a
    // warm repeat that may only use leaf entries…
    g.bench_function("tree_cached_warm_plain", |b| {
        b.iter(|| black_box(search_compiled_cached(&plain, &cands, &warm, None)))
    });
    // …against the same table answered through its subtree summaries.
    g.bench_function("tree_cached_warm", |b| {
        b.iter(|| black_box(search_compiled_cached(&summarised, &cands, &warm, None)))
    });
    g.finish();

    // Representative stats for the snapshot recorder: a cold-table fill
    // (the space's shared best-seen cell is already armed by this point,
    // so the pruned fill is itself seeded) and the fully-warm summarised
    // repeat.
    let cache = LcTransCache::unbounded(8);
    let (cold, _) = search_compiled_cached(&summarised, &cands, &cache, Some(cert)).unwrap();
    assert_eq!(cold.index, reference.index);
    report_cache(&format!("e16_summaries/probing{choices}/tree_cached_cold"), &cold.stats.cache);
    report_summary(
        &format!("e16_summaries/probing{choices}/tree_cached_cold"),
        &cold.stats.summary,
    );
    let (warm_out, _) = search_compiled_cached(&summarised, &cands, &warm, None).unwrap();
    assert_eq!(warm_out.index, reference.index);
    report_cache(
        &format!("e16_summaries/probing{choices}/tree_cached_warm"),
        &warm_out.stats.cache,
    );
    report_summary(
        &format!("e16_summaries/probing{choices}/tree_cached_warm"),
        &warm_out.stats.summary,
    );
}

fn bench_alphabeta_tt(c: &mut Criterion) {
    let depth = if smoke() { 5 } else { 9 };
    let t = GameTree::random(4, depth, 42);
    let reference = t.solve_backward();
    let warm = AbCache::unbounded(8);
    assert_eq!(t.solve_alphabeta_tt(&warm), reference, "flagged table == backward induction");
    assert_eq!(t.solve_alphabeta_tt(&warm), reference, "warm repeat");

    let mut g = c.benchmark_group(format!("e16_summaries/game4x{depth}"));
    g.bench_function("alphabeta", |b| b.iter(|| black_box(t.solve_alphabeta())));
    g.bench_function("alphabeta_tt_cold", |b| {
        b.iter(|| {
            let cache = AbCache::unbounded(8);
            black_box(t.solve_alphabeta_tt(&cache))
        })
    });
    g.bench_function("alphabeta_tt_warm", |b| b.iter(|| black_box(t.solve_alphabeta_tt(&warm))));
    g.finish();

    // One warm repeat's probe economics (delta against the bench churn):
    // a single root hit, zero leaves.
    let base = warm.stats();
    let (_, _, warm_leaves) = t.solve_alphabeta_tt_stats(&warm);
    assert_eq!(warm_leaves, 0, "warm repeats answer from the root entry");
    report_cache(
        &format!("e16_summaries/game4x{depth}/alphabeta_tt_warm"),
        &warm.stats().since(&base),
    );
}

criterion_group! {
    name = benches;
    // Cold fills walk 2^18 leaves per iteration; small sample counts
    // keep the recording honest without an hour-long run.
    config = Criterion::default().sample_size(2).measurement_time(Duration::from_millis(200)).warm_up_time(Duration::from_millis(50));
    targets = bench_summaries, bench_alphabeta_tt
}
criterion_main!(benches);
