//! A1 (ablation): what does selecting through a handler cost relative to
//! a direct argmin? Sweeps the number of candidates; the handler probes
//! each candidate through its choice continuation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use selc_bench::nway::{direct_argmin, handler_argmin};
use std::rc::Rc;

fn bench(c: &mut Criterion) {
    let costs = Rc::new(vec![3.0, 1.0, 4.0, 1.5]);
    assert_eq!(handler_argmin(&costs), direct_argmin(&costs));
    println!("A1: handler argmin == direct argmin; measuring the abstraction cost");

    let mut g = c.benchmark_group("a1_overhead");
    for n in [4usize, 64, 512] {
        let costs: Rc<Vec<f64>> =
            Rc::new((0..n).map(|i| ((i * 2654435761) % 1000) as f64).collect());
        g.bench_with_input(BenchmarkId::new("handler", n), &costs, |b, costs| {
            b.iter(|| std::hint::black_box(handler_argmin(costs)));
        });
        g.bench_with_input(BenchmarkId::new("direct", n), &costs, |b, costs| {
            b.iter(|| std::hint::black_box(direct_argmin(costs)));
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_millis(500)).warm_up_time(std::time::Duration::from_millis(200));
    targets = bench
}
criterion_main!(benches);
