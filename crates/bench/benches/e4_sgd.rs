//! E4 (§4.3): SGD linear regression — gradient-descent handler vs.
//! hand-coded tape SGD vs. closed-form least squares. Asserts the
//! convergence shape and times one epoch at several dataset sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use selc_ml::dataset::Dataset;
use selc_ml::linreg::{train_handler_sgd, train_tape_sgd};

fn bench(c: &mut Criterion) {
    let d = Dataset::linear(64, 2.0, 1.0, 0.0, 3);
    let (hw, hb) = train_handler_sgd(&d, (0.0, 0.0), 0.05, 20);
    let (lw, lb) = d.least_squares();
    assert!((hw - lw).abs() < 0.05 && (hb - lb).abs() < 0.05);
    println!("E4: handler SGD (w,b)=({hw:.3},{hb:.3}) vs least squares ({lw:.3},{lb:.3})");

    let mut g = c.benchmark_group("e4_sgd");
    for n in [16usize, 64, 256] {
        let d = Dataset::linear(n, 2.0, 1.0, 0.05, 11);
        g.bench_with_input(BenchmarkId::new("handler_epoch", n), &d, |b, d| {
            b.iter(|| std::hint::black_box(train_handler_sgd(d, (0.0, 0.0), 0.05, 1)));
        });
        g.bench_with_input(BenchmarkId::new("tape_epoch", n), &d, |b, d| {
            b.iter(|| std::hint::black_box(train_tape_sgd(d, (0.0, 0.0), 0.05, 1)));
        });
        g.bench_with_input(BenchmarkId::new("least_squares", n), &d, |b, d| {
            b.iter(|| std::hint::black_box(d.least_squares()));
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_millis(500)).warm_up_time(std::time::Duration::from_millis(200));
    targets = bench
}
criterion_main!(benches);
