//! E14: the λC bridge — the paper's calculus as an engine workload.
//!
//! Two questions, each on paper examples and `testgen` deep programs:
//!
//! * **Evaluator cost** — Fig-6 smallstep (explicit step loop), Fig-7
//!   bigstep (the fueled iterator), and the compiled environment machine
//!   on the *same* programs: what does clone-and-rename substitution
//!   cost against closures + persistent environments?
//! * **Search cost** — for argmin-chooser programs, the handler's own
//!   probing evaluation (exponential re-evaluation of futures) against
//!   the bridge's engine search over forced decision paths: sequential
//!   exhaustive, and parallel + branch-and-bound + transposition-cached.
//!
//! After timing, the cached search prints `… cache hits=…` lines for
//! `selc-bench-record`. `SELC_BENCH_SMOKE=1` shrinks sizes for CI.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use lambda_c::bigstep::{eval_closed, DEFAULT_FUEL};
use lambda_c::smallstep::{step, StepResult};
use lambda_c::syntax::Expr;
use lambda_c::testgen::{deep_decide_chain, deep_let_chain, gen_signature, GenProgram};
use lambda_c::{compile, machine, CompiledProgram, LossVal, Signature};
use lambda_rt::{search_compiled_flat, search_compiled_flat_cached, LcCandidates, LcTransCache};
use selc_cache::CacheStats;
use selc_engine::{ParallelEngine, SequentialEngine};

fn smoke() -> bool {
    std::env::var("SELC_BENCH_SMOKE").is_ok()
}

fn report(label: &str, stats: &CacheStats) {
    println!(
        "{label} cache hits={} misses={} insertions={} evictions={} hit_rate={:.3}",
        stats.hits,
        stats.misses,
        stats.insertions,
        stats.evictions,
        stats.hit_rate()
    );
}

/// The explicit Fig-6 loop (materialising every intermediate term).
fn smallstep_loss(sig: &Signature, p: &GenProgram) -> LossVal {
    let g = Expr::zero_cont(p.ty.clone(), p.eff.clone()).rc();
    let mut cur = p.expr.clone();
    let mut total = LossVal::zero();
    for _ in 0..DEFAULT_FUEL {
        match step(sig, &g, &p.eff, &cur).expect("steps") {
            StepResult::Step { loss, expr } => {
                total = total.add(&loss);
                cur = expr;
            }
            _ => return total,
        }
    }
    panic!("out of fuel");
}

fn bigstep_loss(sig: &Signature, p: &GenProgram) -> LossVal {
    eval_closed(sig, p.expr.clone(), p.ty.clone(), p.eff.clone()).expect("evaluates").loss
}

fn machine_loss(c: &CompiledProgram) -> LossVal {
    machine::run(c).expect("runs").loss
}

/// Evaluator comparison on one program, with equality asserted once.
fn bench_evaluators(c: &mut Criterion, family: &str, sig: &Signature, p: &GenProgram) {
    let compiled = compile(&p.expr).expect("compiles");
    let reference = bigstep_loss(sig, p);
    assert_eq!(smallstep_loss(sig, p), reference, "{family}: smallstep agrees");
    assert_eq!(machine_loss(&compiled), reference, "{family}: compiled agrees");

    let mut g = c.benchmark_group(format!("e14_lambda/{family}"));
    g.bench_function("smallstep", |b| b.iter(|| black_box(smallstep_loss(sig, p))));
    g.bench_function("bigstep", |b| b.iter(|| black_box(bigstep_loss(sig, p))));
    g.bench_function("compiled", |b| b.iter(|| black_box(machine_loss(&compiled))));
    g.finish();
}

fn bench_paper_examples(c: &mut Criterion) {
    let ex = lambda_c::examples::pgm_with_argmin_handler();
    let p = GenProgram { expr: ex.expr, ty: ex.ty, eff: ex.eff };
    bench_evaluators(c, "pgm", &ex.sig, &p);

    let ex = lambda_c::examples::password();
    let p = GenProgram { expr: ex.expr, ty: ex.ty, eff: ex.eff };
    bench_evaluators(c, "password", &ex.sig, &p);
}

fn bench_deep_let(c: &mut Criterion) {
    let sig = gen_signature();
    let depth = if smoke() { 64 } else { 256 };
    bench_evaluators(c, "deep_let", &sig, &deep_let_chain(depth));
}

fn bench_decide_chain(c: &mut Criterion) {
    let sig = gen_signature();
    // The reference interpreters re-evaluate O(3^choices) futures, so the
    // chain stays modest even in the full run (the machine and the
    // engine search would happily take far more).
    let choices = if smoke() { 4 } else { 6 };
    let p = deep_decide_chain(choices);
    bench_evaluators(c, "decide_chain", &sig, &p);

    // The search side: the probing handler's own evaluation explores
    // O(2^choices) futures by re-evaluation; the bridge fans the same
    // argmin over forced paths on the engine.
    let reference = bigstep_loss(&sig, &p);
    let cands =
        LcCandidates::new(compile(&p.expr).expect("compiles"), ["decide".to_owned()], choices);
    let seq = SequentialEngine::exhaustive();
    let par = ParallelEngine { threads: 4, chunk: 1, prune: true };
    let (out, _) = search_compiled_flat(&seq, &cands).unwrap();
    assert_eq!(out.loss.0, reference, "engine argmin == handler semantics");
    let cert = cands.certificate().expect("chain corpus is flow-certifiable");

    let mut g = c.benchmark_group("e14_lambda/decide_search");
    g.bench_function("machine_probing", |b| {
        let compiled = compile(&p.expr).expect("compiles");
        b.iter(|| black_box(machine_loss(&compiled)))
    });
    g.bench_function("search_seq", |b| b.iter(|| black_box(search_compiled_flat(&seq, &cands))));
    g.bench_function("search_par_cached_cold", |b| {
        b.iter(|| {
            let cache = LcTransCache::unbounded(4);
            black_box(search_compiled_flat_cached(&par, &cands, &cache, Some(cert)))
        })
    });
    let warm = LcTransCache::unbounded(4);
    let _ = search_compiled_flat_cached(&seq, &cands, &warm, None);
    g.bench_function("search_par_cached_warm", |b| {
        b.iter(|| black_box(search_compiled_flat_cached(&par, &cands, &warm, None)))
    });
    g.finish();

    // Representative stats for the snapshot recorder (no abandonment, so
    // cold fills the whole space and warm hits every candidate).
    let cache = LcTransCache::unbounded(4);
    let (cold, _) = search_compiled_flat_cached(&par, &cands, &cache, None).unwrap();
    assert_eq!(cold.loss.0, reference);
    report("e14_lambda/decide_search/par_cached_cold", &cold.stats.cache);
    let (warm_out, _) = search_compiled_flat_cached(&par, &cands, &cache, None).unwrap();
    assert_eq!(warm_out.loss.0, reference);
    report("e14_lambda/decide_search/par_cached_warm", &warm_out.stats.cache);
    let (pruned, _) =
        search_compiled_flat_cached(&par, &cands, &LcTransCache::unbounded(4), Some(cert)).unwrap();
    assert_eq!(pruned.loss.0, reference);
    println!(
        "e14_lambda/decide_search/pruning evaluated={} pruned={}",
        pruned.stats.evaluated, pruned.stats.pruned
    );
}

criterion_group!(benches, bench_paper_examples, bench_deep_let, bench_decide_chain);
criterion_main!(benches);
