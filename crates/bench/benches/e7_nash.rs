//! E7 (§4.3): prisoner's dilemma via the `hNash` handler. Reproduces
//! (Stay Left, Stay Left) in 2 steps; times the handler dynamics vs.
//! enumeration on random games.

use criterion::{criterion_group, criterion_main, Criterion};
use selc_games::bimatrix::Bimatrix;
use selc_games::nash::{solve_nash, Step, Strategy};

fn bench(c: &mut Criterion) {
    let pd = Bimatrix::prisoners_dilemma();
    let ((a, b), n) = solve_nash(&pd, (Strategy::Cooperate, Strategy::Cooperate));
    assert_eq!((a, b), (Step::Stay(Strategy::Defect), Step::Stay(Strategy::Defect)));
    assert_eq!(n, 2);
    println!("E7: prisoner's dilemma → (Stay Defect, Stay Defect) in {n} steps (paper: 2)");

    let games: Vec<Bimatrix> = (0..16).map(|s| Bimatrix::random(2, 2, s)).collect();
    c.benchmark_group("e7_nash")
        .bench_function("hNash_pd", |b| {
            b.iter(|| {
                std::hint::black_box(solve_nash(&pd, (Strategy::Cooperate, Strategy::Cooperate)))
            })
        })
        .bench_function("hNash_random_2x2", |b| {
            b.iter(|| {
                for g in &games {
                    std::hint::black_box(solve_nash(g, (Strategy::Cooperate, Strategy::Defect)));
                }
            })
        })
        .bench_function("enumeration_random_2x2", |b| {
            b.iter(|| {
                for g in &games {
                    std::hint::black_box(g.pure_nash_equilibria());
                }
            })
        });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_millis(500)).warm_up_time(std::time::Duration::from_millis(200));
    targets = bench
}
criterion_main!(benches);
