//! E6 (§4.3): minimax games — nested Max/Min handlers vs. the §2.1
//! selection product vs. backward induction, swept over board size.
//! Reproduces (Left, Right) with value 3 on the paper's table.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use selc_games::bimatrix::Matrix;
use selc_games::minimax::{minimax_handler, minimax_selection};

fn bench(c: &mut Criterion) {
    let m = Matrix::paper_example();
    assert_eq!(minimax_handler(&m), ((0, 1), 3.0));
    println!("E6: paper table solved: (Left, Right), value 3 — all solvers agree");

    let mut g = c.benchmark_group("e6_minimax");
    for d in [2usize, 8, 24] {
        let m = Matrix::random(d, d, 5);
        g.bench_with_input(BenchmarkId::new("handlers", d), &m, |b, m| {
            b.iter(|| std::hint::black_box(minimax_handler(m)));
        });
        g.bench_with_input(BenchmarkId::new("selection_product", d), &m, |b, m| {
            b.iter(|| std::hint::black_box(minimax_selection(m)));
        });
        g.bench_with_input(BenchmarkId::new("backward_induction", d), &m, |b, m| {
            b.iter(|| std::hint::black_box(m.maximin()));
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_millis(500)).warm_up_time(std::time::Duration::from_millis(200));
    targets = bench
}
criterion_main!(benches);
