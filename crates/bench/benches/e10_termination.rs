//! E10 (§3.4): the well-foundedness check and fuel-bounded divergence
//! detection on `moo`, plus termination of generated hierarchical
//! programs (Theorem 3.5 in the small).

use criterion::{criterion_group, criterion_main, Criterion};
use lambda_c::testgen::{gen_signature, ProgramGen};

fn bench(c: &mut Criterion) {
    let moo = lambda_c::examples::moo_divergent();
    assert!(moo.sig.check_well_founded().is_err());
    println!("E10: moo rejected by the well-foundedness check; hierarchical programs terminate");

    let sig = gen_signature();
    c.benchmark_group("e10_termination")
        .bench_function("well_foundedness_check", |b| {
            b.iter(|| {
                std::hint::black_box(sig.check_well_founded().unwrap());
                std::hint::black_box(moo.sig.check_well_founded().err());
            })
        })
        .bench_function("moo_fuel_200", |b| {
            let g = lambda_c::Expr::zero_cont(moo.ty.clone(), moo.eff.clone()).rc();
            b.iter(|| {
                std::hint::black_box(
                    lambda_c::eval(&moo.sig, &g, &moo.eff, moo.expr.clone(), 200).is_err(),
                )
            })
        })
        .bench_function("generated_terminate", |b| {
            let programs: Vec<_> =
                (100..116).map(|s| ProgramGen::new(s).gen_program(4, false)).collect();
            b.iter(|| {
                for p in &programs {
                    let g = lambda_c::Expr::zero_cont(p.ty.clone(), p.eff.clone()).rc();
                    let out = lambda_c::eval(&sig, &g, &p.eff, p.expr.clone(), 1_000_000).unwrap();
                    std::hint::black_box(out.steps);
                }
            })
        });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_millis(500)).warm_up_time(std::time::Duration::from_millis(200));
    targets = bench
}
criterion_main!(benches);
