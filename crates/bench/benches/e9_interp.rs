//! E9 (§3.3): λC interpreter throughput — steps per second on the worked
//! example and on generated programs (typecheck + evaluate).

use criterion::{criterion_group, criterion_main, Criterion};
use lambda_c::testgen::{gen_signature, ProgramGen};

fn bench(c: &mut Criterion) {
    let ex = lambda_c::examples::pgm_with_argmin_handler();
    let out =
        lambda_c::eval_closed(&ex.sig, ex.expr.clone(), ex.ty.clone(), ex.eff.clone()).unwrap();
    println!("E9: pgm reduces in {} small steps", out.steps);

    let sig = gen_signature();
    let programs: Vec<_> = (0..24).map(|s| ProgramGen::new(s).gen_program(4, false)).collect();

    c.benchmark_group("e9_interp")
        .bench_function("pgm_eval", |b| {
            b.iter(|| {
                let out =
                    lambda_c::eval_closed(&ex.sig, ex.expr.clone(), ex.ty.clone(), ex.eff.clone())
                        .unwrap();
                std::hint::black_box(out.steps)
            })
        })
        .bench_function("generated_typecheck", |b| {
            b.iter(|| {
                for p in &programs {
                    std::hint::black_box(lambda_c::check_program(&sig, &p.expr, &p.eff).unwrap());
                }
            })
        })
        .bench_function("generated_eval", |b| {
            b.iter(|| {
                for p in &programs {
                    let g = lambda_c::Expr::zero_cont(p.ty.clone(), p.eff.clone()).rc();
                    let out = lambda_c::eval(&sig, &g, &p.eff, p.expr.clone(), 1_000_000).unwrap();
                    std::hint::black_box(out.steps);
                }
            })
        });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_millis(500)).warm_up_time(std::time::Duration::from_millis(200));
    targets = bench
}
criterion_main!(benches);
