//! The `SELC_CACHE_SHARDS` / `SELC_CACHE_CAP` / `SELC_SUMMARIES` knobs,
//! tested in their own process so the env mutation cannot race other
//! tests (the same discipline as `selc-engine`'s `env_threads.rs`).

use selc_cache::env::{
    configured_capacity, configured_shards, env_usize, summaries_enabled, CACHE_CAP_ENV,
    CACHE_SHARDS_ENV, DEFAULT_SHARDS, SUMMARIES_ENV,
};
use selc_cache::ShardedCache;

#[test]
fn cache_env_knobs_shape_from_env_caches() {
    // Pinned knobs: 3 shards, capacity 4 → bounded cache that evicts.
    std::env::set_var(CACHE_SHARDS_ENV, "3");
    std::env::set_var(CACHE_CAP_ENV, "4");
    assert_eq!(configured_shards(), 3);
    assert_eq!(configured_capacity(), Some(4));
    let c: ShardedCache<u64, u64> = ShardedCache::from_env();
    assert_eq!(c.shard_count(), 3);
    for k in 0..64 {
        c.store(k, k);
    }
    assert!(c.stats().evictions > 0, "cap 4 must evict under 64 stores: {:?}", c.stats());

    // Cap 0 or garbage → unbounded; garbage shards → default count.
    std::env::set_var(CACHE_CAP_ENV, "0");
    assert_eq!(configured_capacity(), None);
    std::env::set_var(CACHE_CAP_ENV, "not-a-number");
    assert_eq!(configured_capacity(), None);
    std::env::set_var(CACHE_SHARDS_ENV, "zero-ish");
    assert_eq!(configured_shards(), DEFAULT_SHARDS);

    // Unset → unbounded, default shards; from_env never evicts then.
    std::env::remove_var(CACHE_CAP_ENV);
    std::env::remove_var(CACHE_SHARDS_ENV);
    assert_eq!(configured_capacity(), None);
    assert_eq!(configured_shards(), DEFAULT_SHARDS);
    let c: ShardedCache<u64, u64> = ShardedCache::from_env();
    assert_eq!(c.shard_count(), DEFAULT_SHARDS);
    for k in 0..256 {
        c.store(k, k);
    }
    assert_eq!(c.len(), 256);
    assert_eq!(c.stats().evictions, 0);

    // The shared parser itself.
    std::env::set_var(CACHE_CAP_ENV, "  17 ");
    assert_eq!(env_usize(CACHE_CAP_ENV), Some(17), "trimmed parse");
    std::env::remove_var(CACHE_CAP_ENV);

    // SELC_SUMMARIES: default-on toggle, off only on an explicit no.
    std::env::remove_var(SUMMARIES_ENV);
    assert!(summaries_enabled(), "unset means on");
    for off in ["0", "false", " OFF ", "no"] {
        std::env::set_var(SUMMARIES_ENV, off);
        assert!(!summaries_enabled(), "{off:?} must disable summaries");
    }
    for on in ["1", "", "yes", "anything-else"] {
        std::env::set_var(SUMMARIES_ENV, on);
        assert!(summaries_enabled(), "{on:?} must leave summaries on");
    }
    std::env::remove_var(SUMMARIES_ENV);
}
