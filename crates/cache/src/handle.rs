//! The handle abstraction: what a memoising call site talks to.
//!
//! `selc::MemoChoice` (and any other probe-memoising code) is generic
//! over a [`CacheHandle`] — interior-mutable, shared-by-clone lookup
//! and store. Two families implement it:
//!
//! * [`LocalCache`](crate::local::LocalCache) — the per-activation
//!   `Rc<RefCell<HashMap>>` cache the seed's `MemoChoice` hard-wired,
//!   now just one backend among others (single-threaded, unbounded,
//!   dies with the activation);
//! * [`ShardedCache`](crate::sharded::ShardedCache) — the concurrent
//!   transposition table, shared across workers/activations/runs as an
//!   [`Arc`](std::sync::Arc) ([`SharedCache`](crate::sharded::SharedCache)).
//!
//! # Sharing contract
//!
//! A handle may only be shared between call sites whose cached
//! computation agrees on every key: same key ⇒ same (bit-identical)
//! value. Probe replays of one program factory satisfy this by purity;
//! reusing one handle across *different* programs requires either
//! distinct keys or an [`advance_epoch`](crate::sharded::ShardedCache::advance_epoch)
//! between them.

use crate::stats::CacheStats;
use std::hash::Hash;
use std::sync::Arc;

/// Interior-mutable cache access: lookups and stores through `&self`.
pub trait CacheHandle<K, V> {
    /// The cached value for `key`, if present.
    fn lookup(&self, key: &K) -> Option<V>;

    /// Stores `key → value`.
    fn store(&self, key: K, value: V);

    /// This handle's counters so far. For a shared handle these are the
    /// *global* counters (all sharers), not one call site's slice — use
    /// [`CacheStats::since`] with a snapshot for per-search deltas.
    fn stats(&self) -> CacheStats;
}

impl<K, V> CacheHandle<K, V> for crate::sharded::ShardedCache<K, V>
where
    K: Eq + Hash + Send + 'static,
    V: Clone + Send + 'static,
{
    fn lookup(&self, key: &K) -> Option<V> {
        crate::sharded::ShardedCache::lookup(self, key)
    }

    fn store(&self, key: K, value: V) {
        crate::sharded::ShardedCache::store(self, key, value);
    }

    fn stats(&self) -> CacheStats {
        crate::sharded::ShardedCache::stats(self)
    }
}

/// Shared handles delegate: `Arc<C>` is a handle wherever `C` is. This
/// is how a [`SharedCache`](crate::sharded::SharedCache) clone rides
/// into a worker's locally rebuilt handler.
impl<K, V, C: CacheHandle<K, V>> CacheHandle<K, V> for Arc<C> {
    fn lookup(&self, key: &K) -> Option<V> {
        (**self).lookup(key)
    }

    fn store(&self, key: K, value: V) {
        (**self).store(key, value);
    }

    fn stats(&self) -> CacheStats {
        (**self).stats()
    }
}

impl<K, V, C: CacheHandle<K, V>> CacheHandle<K, V> for std::rc::Rc<C> {
    fn lookup(&self, key: &K) -> Option<V> {
        (**self).lookup(key)
    }

    fn store(&self, key: K, value: V) {
        (**self).store(key, value);
    }

    fn stats(&self) -> CacheStats {
        (**self).stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sharded::ShardedCache;

    fn exercise(h: &impl CacheHandle<u32, f64>) {
        assert_eq!(h.lookup(&1), None);
        h.store(1, 2.5);
        assert_eq!(h.lookup(&1), Some(2.5));
        let s = h.stats();
        assert_eq!((s.hits, s.misses, s.insertions), (1, 1, 1));
    }

    #[test]
    fn sharded_cache_is_a_handle_directly_and_behind_arc() {
        exercise(&ShardedCache::unbounded(2));
        exercise(&Arc::new(ShardedCache::unbounded(2)));
    }

    #[test]
    fn rc_delegation() {
        exercise(&std::rc::Rc::new(ShardedCache::unbounded(1)));
    }
}
