//! # selc-cache — sharded concurrent memoisation for selection search
//!
//! The paper's §6 names memoisation as the mitigation for the selection
//! handler's probe/resume recomputation, and `selc::MemoChoice`
//! implements the per-activation half: one clause invocation, one
//! cache. This crate is the other half — evaluated work as a **shared,
//! concurrent, evictable resource**: transposition tables that live
//! across workers (the `selc-engine` pool), across handler activations
//! (replays of one program factory), and across whole runs (repeated
//! searches over the same space). It is the first piece of cross-run
//! state in the workspace — the prerequisite for any future serving
//! layer (Abadi–Plotkin's *Smart Choices* reuse of choice/cost
//! evaluations at system scale).
//!
//! The pieces:
//!
//! * [`ShardedCache`] — N mutex-guarded shards selected by a
//!   deterministic key hash; epoch invalidation for reusing one cache
//!   across searches ([`ShardedCache::advance_epoch`]); shared as a
//!   cheap-clone [`SharedCache`] (`Arc`).
//! * [`CacheBackend`] — the per-shard storage policy: [`Unbounded`]
//!   (plain hash map) or the bounded [`ClockLru`] (second-chance
//!   eviction). Eviction costs recomputation, never correctness — a
//!   miss just means "compute it again".
//! * [`CacheHandle`] — what memoising call sites are generic over;
//!   implemented by [`ShardedCache`] (and `Arc`/`Rc` of it) and by the
//!   single-threaded per-activation [`LocalCache`].
//! * [`CacheStats`] — hits/misses/insertions/evictions, mergeable per
//!   shard and per worker; flows into `selc-engine::SearchStats`.
//! * [`SubtreeSummary`] / [`SummaryStats`] — interior-node subtree
//!   summaries for tree search: exact entries carry a subtree's argmin,
//!   bound entries a lower bound from a pruned walk (see [`summary`]).
//! * [`env`] — the `SELC_CACHE_SHARDS` / `SELC_CACHE_CAP` /
//!   `SELC_SUMMARIES` knobs and the one environment parser
//!   (`env_usize`) shared with `SELC_THREADS`.
//!
//! This crate has no dependencies (not even on `selc`); `selc` builds
//! its probe memoisation on top of it.

pub mod backend;
pub mod env;
pub mod handle;
pub mod local;
pub mod sharded;
pub mod stats;
pub mod summary;

pub use backend::{CacheBackend, ClockLru, Unbounded};
pub use handle::CacheHandle;
pub use local::LocalCache;
pub use sharded::{ShardedCache, SharedCache};
pub use stats::CacheStats;
pub use summary::{SubtreeSummary, SummaryStats};
