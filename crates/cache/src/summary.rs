//! Subtree summaries: interior-node cache entries for tree search.
//!
//! A leaf transposition entry remembers what one *candidate* evaluated
//! to; a [`SubtreeSummary`] remembers what a whole *subtree* reduced to —
//! the argmin `(loss, representative leaf index)` of every candidate
//! under one decision prefix. A warm repeat of a tree search that finds
//! a summary at an interior node skips the entire subtree in O(1)
//! instead of re-walking its leaves, which is what turns warm repeats
//! into O(depth) walks.
//!
//! # Exact vs. bound entries
//!
//! The `exact` flag carries the soundness story for summaries produced
//! under branch-and-bound pruning:
//!
//! * `exact == true` — the subtree was **fully evaluated** (no pruning
//!   cut any part of it). `loss`/`index` are its true argmin under the
//!   deterministic `(loss, index)` reduction, ties to the smallest
//!   index, and a probe may return them as the subtree's answer.
//! * `exact == false` — pruning cut the subtree, so its visited minimum
//!   may overstate the true argmin of the *skipped* parts. `loss` is
//!   then only a **lower bound** on every candidate beneath the prefix
//!   (the min of the visited leaves and the skipped subtrees' own lower
//!   bounds). A probe must never return it as an answer, but it is a
//!   sound pruning hint: if the stored bound is strictly dominated by an
//!   achieved loss, no candidate in the subtree can win or tie, and the
//!   whole subtree may be skipped — the same strict-domination condition
//!   as the engine's `SharedBound`.
//!
//! The same exact/bound split is the minimax transposition-flag story
//! (Exact / Lower / Upper bound entries) `selc-games` uses for its
//! alpha–beta table; summaries are its argmin specialisation.
//!
//! [`SummaryStats`] counts summary traffic separately from the leaf
//! counters in [`crate::CacheStats`]: an exact hit saves a whole
//! subtree, a leaf hit saves one candidate, and benchmarks need to see
//! the difference.

/// The cached reduction of one decision-prefix subtree. `L` is the loss
/// type; `index` is the flat candidate index of the subtree's winner
/// under the engine's canonical (smallest representative) crediting.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SubtreeSummary<L> {
    /// The subtree's argmin loss (`exact`), or a lower bound on every
    /// candidate beneath the prefix (`!exact`).
    pub loss: L,
    /// Flat index of the best *visited* leaf (the winner when `exact`;
    /// informational for bound entries).
    pub index: u64,
    /// Whether the subtree was fully evaluated when the entry was
    /// installed (see module docs).
    pub exact: bool,
}

impl<L> SubtreeSummary<L> {
    /// An exact entry: the subtree's true argmin.
    pub fn exact(loss: L, index: u64) -> SubtreeSummary<L> {
        SubtreeSummary { loss, index, exact: true }
    }

    /// A bound entry: a lower bound on every candidate beneath the
    /// prefix, with the best visited index as a hint.
    pub fn bound(loss: L, index: u64) -> SubtreeSummary<L> {
        SubtreeSummary { loss, index, exact: false }
    }
}

/// Counters describing what a search's summary probes and installs did.
/// Mergeable per worker and per search, like [`crate::CacheStats`], and
/// carried next to it in `selc-engine`'s `SearchStats`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SummaryStats {
    /// Interior-node probes answered by an exact entry (a whole subtree
    /// skipped with its argmin returned).
    pub exact_hits: u64,
    /// Probes answered by a bound entry (usable as a pruning hint only).
    pub bound_hits: u64,
    /// Probes that found nothing.
    pub misses: u64,
    /// Exact entries installed on the way back up.
    pub exact_installs: u64,
    /// Bound entries installed for pruned subtrees.
    pub bound_installs: u64,
}

impl SummaryStats {
    /// Component-wise sum, for aggregating workers or searches.
    #[must_use]
    pub fn merged(&self, other: &SummaryStats) -> SummaryStats {
        SummaryStats {
            exact_hits: self.exact_hits + other.exact_hits,
            bound_hits: self.bound_hits + other.bound_hits,
            misses: self.misses + other.misses,
            exact_installs: self.exact_installs + other.exact_installs,
            bound_installs: self.bound_installs + other.bound_installs,
        }
    }

    /// Total probes (hits of either flavour + misses).
    #[must_use]
    pub fn probes(&self) -> u64 {
        self.exact_hits + self.bound_hits + self.misses
    }

    /// Total installs (exact + bound).
    #[must_use]
    pub fn installs(&self) -> u64 {
        self.exact_installs + self.bound_installs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_the_flag() {
        assert!(SubtreeSummary::exact(1.5, 4).exact);
        assert!(!SubtreeSummary::bound(1.5, 4).exact);
        assert_eq!(SubtreeSummary::exact(2.0, 7).index, 7);
    }

    #[test]
    fn stats_merge_componentwise() {
        let a = SummaryStats {
            exact_hits: 1,
            bound_hits: 2,
            misses: 3,
            exact_installs: 4,
            bound_installs: 5,
        };
        let b = SummaryStats {
            exact_hits: 10,
            bound_hits: 20,
            misses: 30,
            exact_installs: 40,
            bound_installs: 50,
        };
        let m = a.merged(&b);
        assert_eq!(
            m,
            SummaryStats {
                exact_hits: 11,
                bound_hits: 22,
                misses: 33,
                exact_installs: 44,
                bound_installs: 55,
            }
        );
        assert_eq!(a.merged(&SummaryStats::default()), a);
        assert_eq!(m.probes(), 11 + 22 + 33);
        assert_eq!(m.installs(), 44 + 55);
    }
}
