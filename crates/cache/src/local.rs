//! The per-activation cache: single-threaded, unbounded, shared by
//! `Rc` clone — the backend `selc::MemoChoice` used to hard-wire.
//!
//! A [`LocalCache`] lives and dies with one handler-clause activation:
//! probes sequenced earlier in the clause fill it, later probes of the
//! same candidate hit it, and nothing outlives the activation. Clones
//! share state (they are `Rc` handles onto one map), matching the way
//! choice continuations and their memo wrappers are cloned through
//! `and_then` chains.

use crate::handle::CacheHandle;
use crate::stats::CacheStats;
use std::cell::RefCell;
use std::collections::HashMap;
use std::hash::Hash;
use std::rc::Rc;

struct Inner<K, V> {
    map: HashMap<K, V>,
    stats: CacheStats,
}

/// A single-threaded unbounded cache handle; clones share one map.
pub struct LocalCache<K, V> {
    inner: Rc<RefCell<Inner<K, V>>>,
}

impl<K, V> Clone for LocalCache<K, V> {
    fn clone(&self) -> Self {
        LocalCache { inner: Rc::clone(&self.inner) }
    }
}

impl<K, V> Default for LocalCache<K, V> {
    fn default() -> Self {
        LocalCache::new()
    }
}

impl<K, V> LocalCache<K, V> {
    /// An empty per-activation cache.
    #[must_use]
    pub fn new() -> LocalCache<K, V> {
        LocalCache {
            inner: Rc::new(RefCell::new(Inner {
                map: HashMap::new(),
                stats: CacheStats::default(),
            })),
        }
    }

    /// Number of live entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.borrow().map.len()
    }

    /// No live entries?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<K: Eq + Hash, V: Clone> CacheHandle<K, V> for LocalCache<K, V> {
    fn lookup(&self, key: &K) -> Option<V> {
        let mut inner = self.inner.borrow_mut();
        match inner.map.get(key).cloned() {
            Some(v) => {
                inner.stats.hits += 1;
                Some(v)
            }
            None => {
                inner.stats.misses += 1;
                None
            }
        }
    }

    fn store(&self, key: K, value: V) {
        let mut inner = self.inner.borrow_mut();
        inner.stats.insertions += 1;
        inner.map.insert(key, value);
    }

    fn stats(&self) -> CacheStats {
        self.inner.borrow().stats
    }
}

impl<K, V> std::fmt::Debug for LocalCache<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LocalCache").field("len", &self.len()).finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_state() {
        let a: LocalCache<u32, u32> = LocalCache::new();
        let b = a.clone();
        a.store(1, 10);
        assert_eq!(b.lookup(&1), Some(10));
        assert_eq!(b.len(), 1);
        let s = a.stats();
        assert_eq!((s.hits, s.misses, s.insertions, s.evictions), (1, 0, 1, 0));
    }

    #[test]
    fn misses_are_counted() {
        let c: LocalCache<u32, u32> = LocalCache::new();
        assert_eq!(c.lookup(&9), None);
        assert_eq!(c.stats().misses, 1);
        assert!(c.is_empty());
    }
}
