//! The concurrent cache: N mutex-guarded shards selected by key hash,
//! with epoch invalidation for reusing one cache across searches.
//!
//! Sharding bounds contention instead of eliminating it: two workers
//! only serialise when their keys hash to the same shard, so lock hold
//! times stay at one backend operation and throughput scales with the
//! shard count. The shard for a key is a pure function of the key (a
//! deterministic SipHash), so *which* values a lookup can see never
//! depends on thread interleaving — with an unbounded backend the cache
//! contents are a plain function of the set of stores performed, and the
//! differential suites exploit that to demand shard-count invariance.
//!
//! # Epoch invalidation
//!
//! [`ShardedCache::advance_epoch`] logically empties the whole cache in
//! one atomic bump. Shards notice lazily: each shard records the epoch
//! it last served, and the first access under a newer epoch clears the
//! shard's backend (counting the dropped entries as evictions) before
//! proceeding. The contract: entries stored under epoch *e* are
//! invisible under every epoch > *e*. Use it when the meaning of the
//! keys changes — a new program, a new loss function, a new dataset —
//! while reusing the allocation and the handle.

use crate::backend::{CacheBackend, ClockLru, Unbounded};
use crate::stats::CacheStats;
use selc_check::sync::atomic::{AtomicU64, Ordering};
use selc_check::sync::{Mutex, MutexGuard, TryLockError};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Process-global mirrors of the per-cache [`CacheStats`] counters,
/// plus the shard-lock contention telemetry no per-cache view can
/// express (a wait is a property of the *moment*, not of any one
/// handle). Registered lazily, recorded only when `selc_obs` metrics
/// are enabled — the disabled path never touches this struct.
struct CacheMetrics {
    hits: selc_obs::Counter,
    misses: selc_obs::Counter,
    insertions: selc_obs::Counter,
    evictions: selc_obs::Counter,
    lock_contended: selc_obs::Counter,
    lock_wait_ns: selc_obs::Histogram,
}

fn cache_metrics() -> &'static CacheMetrics {
    static METRICS: OnceLock<CacheMetrics> = OnceLock::new();
    METRICS.get_or_init(|| CacheMetrics {
        hits: selc_obs::metrics::counter("cache.hits"),
        misses: selc_obs::metrics::counter("cache.misses"),
        insertions: selc_obs::metrics::counter("cache.insertions"),
        evictions: selc_obs::metrics::counter("cache.evictions"),
        lock_contended: selc_obs::metrics::counter("cache.shard_lock_contended"),
        lock_wait_ns: selc_obs::metrics::histogram("cache.shard_lock_wait_ns"),
    })
}

/// Locks a shard, timing the wait when the lock was contended. The
/// uncontended path (metrics on or off) stays one atomic acquire: with
/// metrics on it is a `try_lock` that usually succeeds, and only the
/// `WouldBlock` slow path pays for an `Instant` pair and a histogram
/// record — per-shard lock-wait telemetry priced entirely on the
/// contended moments it exists to expose.
fn lock_shard<S>(m: &Mutex<S>) -> MutexGuard<'_, S> {
    if selc_obs::metrics_enabled() {
        match m.try_lock() {
            Ok(guard) => return guard,
            Err(TryLockError::WouldBlock) => {
                let start = Instant::now();
                let guard = m.lock().expect("cache shard poisoned");
                let waited = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
                let metrics = cache_metrics();
                metrics.lock_contended.inc();
                metrics.lock_wait_ns.record(waited);
                return guard;
            }
            Err(TryLockError::Poisoned(_)) => panic!("cache shard poisoned"),
        }
    }
    m.lock().expect("cache shard poisoned")
}

/// The canonical shared handle: a [`ShardedCache`] behind an [`Arc`],
/// cheap to clone into worker closures and handler factories.
pub type SharedCache<K, V> = Arc<ShardedCache<K, V>>;

/// One shard: a backend plus the epoch it last served and its counters.
struct Shard<K, V> {
    backend: Box<dyn CacheBackend<K, V>>,
    epoch: u64,
    stats: CacheStats,
}

impl<K, V> Shard<K, V> {
    /// Clears the backend, counting the drops as evictions in both the
    /// per-cache stats and the process-global metrics mirror.
    fn drop_all(&mut self) {
        let dropped = self.backend.clear() as u64;
        self.stats.evictions += dropped;
        if dropped > 0 && selc_obs::metrics_enabled() {
            cache_metrics().evictions.add(dropped);
        }
    }

    /// Applies a pending epoch bump: entries from older epochs vanish
    /// (counted as evictions) before the shard serves anything.
    fn sync_epoch(&mut self, current: u64) {
        if self.epoch != current {
            self.drop_all();
            self.epoch = current;
        }
    }
}

/// A sharded concurrent memoisation cache (transposition table).
///
/// `Send + Sync` whenever `K` and `V` are `Send`; share it across
/// workers as a [`SharedCache`]. All values are stored by clone —
/// selection-search caches hold losses and other small copyable scores.
pub struct ShardedCache<K, V> {
    shards: Vec<Mutex<Shard<K, V>>>,
    epoch: AtomicU64,
}

impl<K, V> ShardedCache<K, V>
where
    K: Eq + Hash + Send + 'static,
    V: Clone + Send + 'static,
{
    /// A cache of `shards` unbounded shards.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    #[must_use]
    pub fn unbounded(shards: usize) -> ShardedCache<K, V> {
        ShardedCache::with_backends(shards, || Box::new(Unbounded::new()))
    }

    /// A cache with per-shard backends built by `factory`.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    #[must_use]
    pub fn with_backends(
        shards: usize,
        factory: impl Fn() -> Box<dyn CacheBackend<K, V>>,
    ) -> ShardedCache<K, V> {
        assert!(shards >= 1, "ShardedCache needs at least one shard");
        let shards = (0..shards)
            .map(|_| {
                Mutex::new(Shard { backend: factory(), epoch: 0, stats: CacheStats::default() })
            })
            .collect();
        ShardedCache { shards, epoch: AtomicU64::new(0) }
    }

    /// The shard a key lives in — a pure function of the key, so lookups
    /// are deterministic and shard counts only affect contention, never
    /// contents (for unbounded backends).
    fn shard_index(&self, key: &K) -> usize {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() % self.shards.len() as u64) as usize
    }

    /// Locks a key's shard, applying any pending epoch invalidation
    /// first (dropped entries count as evictions).
    fn shard(&self, key: &K) -> MutexGuard<'_, Shard<K, V>> {
        let mut guard = lock_shard(&self.shards[self.shard_index(key)]);
        // ordering: Acquire — pairs with the Release in `advance_epoch`:
        // a shard that observes the bumped epoch also observes everything
        // the bumping thread did before invalidating (e.g. the new
        // program being installed), so it never clears and then serves a
        // stale value that was stored after the bump it missed.
        guard.sync_epoch(self.epoch.load(Ordering::Acquire));
        guard
    }

    /// The cached value for `key`, if present under the current epoch.
    pub fn lookup(&self, key: &K) -> Option<V> {
        let mut shard = self.shard(key);
        let found = shard.backend.get(key);
        match &found {
            Some(_) => shard.stats.hits += 1,
            None => shard.stats.misses += 1,
        }
        drop(shard);
        if selc_obs::metrics_enabled() {
            let metrics = cache_metrics();
            match &found {
                Some(_) => metrics.hits.inc(),
                None => metrics.misses.inc(),
            }
        }
        found
    }

    /// Stores `key → value` under the current epoch.
    pub fn store(&self, key: K, value: V) {
        let mut shard = self.shard(&key);
        shard.stats.insertions += 1;
        let evicted = shard.backend.insert(key, value);
        if evicted {
            shard.stats.evictions += 1;
        }
        drop(shard);
        if selc_obs::metrics_enabled() {
            let metrics = cache_metrics();
            metrics.insertions.inc();
            if evicted {
                metrics.evictions.inc();
            }
        }
    }

    /// The cached value for `key`, computing and storing it on a miss.
    ///
    /// The shard lock is **not** held while `compute` runs (so `compute`
    /// may recurse into the same cache — transposition solvers do). Two
    /// threads may therefore race to compute the same key; both stores
    /// land and the last wins, which is harmless exactly when `compute`
    /// is pure — the contract of every selection-search cache here.
    pub fn get_or_insert_with(&self, key: K, compute: impl FnOnce() -> V) -> V {
        if let Some(v) = self.lookup(&key) {
            return v;
        }
        let v = compute();
        self.store(key, v.clone());
        v
    }

    /// Logically empties the cache: entries stored under earlier epochs
    /// become invisible, and each shard physically clears on its next
    /// access. Returns the new epoch.
    pub fn advance_epoch(&self) -> u64 {
        // ordering: Release — publishes everything the bumping thread
        // wrote before invalidating; pairs with the Acquire loads in
        // `shard` and `for_each_shard` (see the comment in `shard`).
        self.epoch.fetch_add(1, Ordering::Release) + 1
    }

    /// The current epoch (starts at 0).
    pub fn epoch(&self) -> u64 {
        // ordering: Acquire — callers compare epochs across handles and
        // expect the writes that preceded an observed bump to be visible.
        self.epoch.load(Ordering::Acquire)
    }

    /// Live entries across all shards (after applying pending epoch
    /// invalidation).
    pub fn len(&self) -> usize {
        self.for_each_shard(|s| s.backend.len()).into_iter().sum()
    }

    /// No live entries?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Merged counters across all shards.
    pub fn stats(&self) -> CacheStats {
        self.for_each_shard(|s| s.stats)
            .into_iter()
            .fold(CacheStats::default(), |acc, s| acc.merged(&s))
    }

    /// Per-shard counters, in shard order — the mergeable view
    /// [`stats`](Self::stats) folds over.
    pub fn shard_stats(&self) -> Vec<CacheStats> {
        self.for_each_shard(|s| s.stats)
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Physically clears every shard now, without changing the epoch.
    /// Dropped entries count as evictions.
    pub fn clear(&self) {
        self.for_each_shard(Shard::drop_all);
    }

    /// Runs `f` under each shard's lock in shard order, applying pending
    /// epoch invalidation first so observations are epoch-consistent.
    fn for_each_shard<T>(&self, mut f: impl FnMut(&mut Shard<K, V>) -> T) -> Vec<T> {
        // ordering: Acquire — same pairing as the load in `shard`.
        let current = self.epoch.load(Ordering::Acquire);
        self.shards
            .iter()
            .map(|m| {
                let mut guard = lock_shard(m);
                guard.sync_epoch(current);
                f(&mut guard)
            })
            .collect()
    }
}

impl<K, V> ShardedCache<K, V>
where
    K: Clone + Eq + Hash + Send + 'static,
    V: Clone + Send + 'static,
{
    /// A bounded cache: CLOCK backends whose capacities sum to **at
    /// most** `total_capacity` (and to no less than
    /// `total_capacity − shards + 1`). The shard count is clamped to
    /// the capacity so every shard holds at least one entry — a tiny
    /// cap therefore really is tiny, whatever `SELC_CACHE_SHARDS`
    /// says, which is what the CI forced-eviction job relies on.
    ///
    /// # Panics
    ///
    /// Panics if `shards` or `total_capacity` is zero.
    #[must_use]
    pub fn clock_lru(shards: usize, total_capacity: usize) -> ShardedCache<K, V> {
        assert!(total_capacity >= 1, "bounded cache needs capacity >= 1");
        assert!(shards >= 1, "ShardedCache needs at least one shard");
        let shards = shards.min(total_capacity);
        let per_shard = total_capacity / shards;
        ShardedCache::with_backends(shards, move || Box::new(ClockLru::new(per_shard)))
    }

    /// The environment-configured cache: `SELC_CACHE_SHARDS` shards
    /// (default [`crate::env::DEFAULT_SHARDS`]), bounded to
    /// `SELC_CACHE_CAP` entries when that knob is set and positive,
    /// unbounded otherwise. Every cached entry point that does not take
    /// an explicit cache builds one of these, so the two knobs govern
    /// the whole workspace just like `SELC_THREADS` does for pools.
    #[must_use]
    pub fn from_env() -> ShardedCache<K, V> {
        let shards = crate::env::configured_shards();
        match crate::env::configured_capacity() {
            Some(cap) => ShardedCache::clock_lru(shards, cap),
            None => ShardedCache::unbounded(shards),
        }
    }

    /// [`from_env`](Self::from_env), already wrapped for sharing.
    #[must_use]
    pub fn shared_from_env() -> SharedCache<K, V> {
        Arc::new(ShardedCache::from_env())
    }
}

impl<K, V> std::fmt::Debug for ShardedCache<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedCache")
            .field("shards", &self.shards.len())
            // ordering: Relaxed — diagnostic snapshot only.
            .field("epoch", &self.epoch.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_store_roundtrip_and_stats() {
        let c: ShardedCache<u32, f64> = ShardedCache::unbounded(4);
        assert_eq!(c.lookup(&7), None);
        c.store(7, 0.5);
        assert_eq!(c.lookup(&7), Some(0.5));
        assert_eq!(c.len(), 1);
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.insertions, s.evictions), (1, 1, 1, 0));
        assert_eq!(
            c.shard_stats().into_iter().fold(CacheStats::default(), |a, s| a.merged(&s)),
            s,
            "shard stats merge to the totals"
        );
    }

    #[test]
    fn get_or_insert_with_computes_once_per_key() {
        let c: ShardedCache<u32, u64> = ShardedCache::unbounded(2);
        let mut computed = 0;
        for _ in 0..3 {
            let v = c.get_or_insert_with(9, || {
                computed += 1;
                42
            });
            assert_eq!(v, 42);
        }
        assert_eq!(computed, 1);
    }

    #[test]
    fn contents_are_shard_count_invariant() {
        // Same stores → same lookups, whatever the shard count.
        for shards in [1, 2, 3, 8, 17] {
            let c: ShardedCache<u64, u64> = ShardedCache::unbounded(shards);
            for k in 0..100 {
                c.store(k, k * k);
            }
            for k in 0..100 {
                assert_eq!(c.lookup(&k), Some(k * k), "shards = {shards}");
            }
            assert_eq!(c.lookup(&1000), None);
            assert_eq!(c.len(), 100, "shards = {shards}");
        }
    }

    #[test]
    fn advance_epoch_invalidates_lazily() {
        let c: ShardedCache<u32, u32> = ShardedCache::unbounded(2);
        c.store(1, 1);
        c.store(2, 2);
        assert_eq!(c.advance_epoch(), 1);
        assert_eq!(c.lookup(&1), None, "old-epoch entries are invisible");
        assert_eq!(c.lookup(&2), None);
        assert!(c.is_empty());
        // The drops were counted as evictions.
        assert_eq!(c.stats().evictions, 2);
        // The cache is usable under the new epoch.
        c.store(1, 10);
        assert_eq!(c.lookup(&1), Some(10));
        assert_eq!(c.epoch(), 1);
    }

    #[test]
    fn bounded_cache_evicts_and_counts() {
        let c: ShardedCache<u64, u64> = ShardedCache::clock_lru(2, 4);
        for k in 0..32 {
            c.store(k, k);
        }
        assert!(c.len() <= 4, "len {} exceeds total capacity", c.len());
        assert!(c.stats().evictions >= 28, "stats: {:?}", c.stats());
    }

    #[test]
    fn clear_empties_without_epoch_change() {
        let c: ShardedCache<u32, u32> = ShardedCache::unbounded(3);
        c.store(5, 5);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.epoch(), 0);
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn concurrent_mixed_workload_is_consistent() {
        let c: SharedCache<u64, u64> = Arc::new(ShardedCache::unbounded(4));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for i in 0..250u64 {
                        let k = (t * 250 + i) % 100;
                        let v = c.get_or_insert_with(k, || k * 3);
                        assert_eq!(v, k * 3, "cached value corrupted");
                    }
                });
            }
        });
        assert_eq!(c.len(), 100);
        for k in 0..100 {
            assert_eq!(c.lookup(&k), Some(k * 3));
        }
        let s = c.stats();
        assert_eq!(s.lookups(), 1000 + 100, "4×250 worker lookups + 100 checks");
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = ShardedCache::<u32, u32>::unbounded(0);
    }
}

/// Exhaustive small-schedule verification under the `selc_check` model
/// checker (`RUSTFLAGS="--cfg selc_model" cargo test -p selc-cache`).
#[cfg(all(test, selc_model))]
mod model_tests {
    use super::*;
    use selc_check::model::{check, spawn, Options};

    /// Epoch-bump tenant isolation on every interleaving: once a reader
    /// *observes* the bumped epoch, no lookup through any handle can
    /// return a value stored under the old epoch — the tenant that
    /// triggered the bump never sees the previous tenant's entries.
    #[test]
    fn model_epoch_bump_isolates_old_entries_on_every_schedule() {
        check("cache-epoch-isolation", Options::default(), || {
            let c: SharedCache<u32, u32> = Arc::new(ShardedCache::unbounded(1));
            c.store(7, 100); // the previous tenant's entry, epoch 0
            let bumper = {
                let c = Arc::clone(&c);
                spawn(move || c.advance_epoch())
            };
            let reader = {
                let c = Arc::clone(&c);
                spawn(move || {
                    let epoch_seen = c.epoch();
                    let v = c.lookup(&7);
                    assert!(
                        !(epoch_seen >= 1 && v == Some(100)),
                        "a reader that observed the bump saw an old-epoch value"
                    );
                })
            };
            bumper.join();
            reader.join();
            // The bump is joined: the old entry is gone unconditionally.
            assert_eq!(c.epoch(), 1);
            assert_eq!(c.lookup(&7), None, "old-epoch entries are invisible after the bump");
        });
    }
}
