//! Cache telemetry: one counter block for every cache in the system.
//!
//! [`CacheStats`] subsumes the old per-activation `MemoStats` of
//! `selc::memo` (its `probes` counter is exactly [`CacheStats::misses`]:
//! every uncached probe is a lookup miss followed by a real run). The
//! counters are mergeable — per shard, per worker, per search — so one
//! coherent hit/miss/eviction block can flow from a single shard all the
//! way up into `selc-engine`'s `SearchStats`.

/// Counters describing what a cache did: lookups that hit, lookups that
/// missed, entries inserted, and entries evicted (by a bounded backend
/// reaching capacity, or by epoch invalidation clearing a shard).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that found nothing (the caller then recomputes).
    pub misses: u64,
    /// Entries stored.
    pub insertions: u64,
    /// Entries removed to make room (bounded backends) or dropped by
    /// epoch invalidation.
    pub evictions: u64,
}

impl CacheStats {
    /// Component-wise sum, for aggregating shards, workers, or searches.
    #[must_use]
    pub fn merged(&self, other: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
            insertions: self.insertions + other.insertions,
            evictions: self.evictions + other.evictions,
        }
    }

    /// Component-wise saturating difference: the activity *since* an
    /// earlier snapshot of the same (monotone) counters. Used to report
    /// one search's share of a long-lived shared cache.
    #[must_use]
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            insertions: self.insertions.saturating_sub(earlier.insertions),
            evictions: self.evictions.saturating_sub(earlier.evictions),
        }
    }

    /// Total lookups (hits + misses).
    #[must_use]
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of lookups answered from the cache (`0.0` when no lookup
    /// happened yet).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let n = self.lookups();
        if n == 0 {
            0.0
        } else {
            self.hits as f64 / n as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merged_sums_componentwise() {
        let a = CacheStats { hits: 1, misses: 2, insertions: 3, evictions: 4 };
        let b = CacheStats { hits: 10, misses: 20, insertions: 30, evictions: 40 };
        assert_eq!(
            a.merged(&b),
            CacheStats { hits: 11, misses: 22, insertions: 33, evictions: 44 }
        );
        assert_eq!(a.merged(&CacheStats::default()), a);
    }

    #[test]
    fn since_subtracts_a_snapshot() {
        let before = CacheStats { hits: 5, misses: 5, insertions: 5, evictions: 0 };
        let after = CacheStats { hits: 8, misses: 6, insertions: 6, evictions: 2 };
        assert_eq!(
            after.since(&before),
            CacheStats { hits: 3, misses: 1, insertions: 1, evictions: 2 }
        );
        // Saturating: a fresh cache "since" an old busy one is zero, not
        // a wrap-around.
        assert_eq!(CacheStats::default().since(&after), CacheStats::default());
    }

    #[test]
    fn hit_rate_is_hits_over_lookups() {
        let s = CacheStats { hits: 3, misses: 1, insertions: 1, evictions: 0 };
        assert_eq!(s.lookups(), 4);
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }
}
