//! Cache configuration knobs — and the one env parser the workspace
//! shares.
//!
//! Two variables govern every cached entry point that does not take an
//! explicit cache, exactly as `SELC_THREADS` governs every pool:
//!
//! * `SELC_CACHE_SHARDS` — shard count of environment-built caches
//!   (default [`DEFAULT_SHARDS`]);
//! * `SELC_CACHE_CAP` — total entry capacity; unset, unparsable, or `0`
//!   means unbounded, any positive value selects the bounded CLOCK
//!   backend (CI pins a tiny cap to force eviction through the
//!   differential suites).
//!
//! [`env_usize`] is the shared parsing helper: `selc-engine`'s
//! `configured_threads` (via the `selc::env` re-export), the two knobs
//! above, and `selc-serve`'s `SELC_SERVE_{PORT,WORKERS,MAX_SESSIONS}`
//! all go through it, so "positive integer, trimmed, anything else is
//! as-if-unset" is decided in exactly one place. The serve knob *names*
//! live here too ([`SERVE_PORT_ENV`] and friends) so every `SELC_*`
//! variable the workspace reads is greppable from one module; their
//! defaults are the serve crate's business.

/// Names of the observability knobs — owned by `selc_obs` (the one
/// crate below this one), re-exported here so every `SELC_*` variable
/// the workspace reads stays greppable from this module: `SELC_METRICS`
/// toggles metric recording, `SELC_TRACE=<path>` enables span tracing
/// and names the chrome://tracing flush target.
pub use selc_obs::{METRICS_ENV, TRACE_ENV};

/// Name of the shard-count variable.
pub const CACHE_SHARDS_ENV: &str = "SELC_CACHE_SHARDS";

/// Name of the capacity variable.
pub const CACHE_CAP_ENV: &str = "SELC_CACHE_CAP";

/// Name of the subtree-summary toggle.
pub const SUMMARIES_ENV: &str = "SELC_SUMMARIES";

/// Name of the `selc-serve` listen-port variable.
pub const SERVE_PORT_ENV: &str = "SELC_SERVE_PORT";

/// Name of the `selc-serve` worker-count variable.
pub const SERVE_WORKERS_ENV: &str = "SELC_SERVE_WORKERS";

/// Name of the `selc-serve` admission-limit variable.
pub const SERVE_MAX_SESSIONS_ENV: &str = "SELC_SERVE_MAX_SESSIONS";

/// Shard count when `SELC_CACHE_SHARDS` is unset: enough to keep a
/// handful of workers from serialising, small enough to stay cheap to
/// merge stats over.
pub const DEFAULT_SHARDS: usize = 16;

/// Parses environment variable `name` as a **positive** `usize`.
/// Returns `None` when the variable is unset, empty, zero, or not a
/// (trimmed) integer — for every `SELC_*` knob, "not a positive count"
/// means "as if unset", and this helper is the one place that rule
/// lives.
#[must_use]
pub fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok()?.trim().parse::<usize>().ok().filter(|n| *n >= 1)
}

/// Shard count for environment-built caches: `SELC_CACHE_SHARDS` if set
/// to a positive integer, else [`DEFAULT_SHARDS`].
#[must_use]
pub fn configured_shards() -> usize {
    env_usize(CACHE_SHARDS_ENV).unwrap_or(DEFAULT_SHARDS)
}

/// Total capacity for environment-built caches: `Some(n)` when
/// `SELC_CACHE_CAP` is set to a positive integer, `None` (unbounded)
/// otherwise — including an explicit `0`.
#[must_use]
pub fn configured_capacity() -> Option<usize> {
    env_usize(CACHE_CAP_ENV)
}

/// Whether tree searches should probe and install interior-node subtree
/// summaries: on unless `SELC_SUMMARIES` is set to `0`, `false`, `off`,
/// or `no` (case-insensitive). The polarity is inverted relative to the
/// count knobs because summaries are a default-on optimisation whose
/// off switch exists for differential testing and bisection; anything
/// unrecognised is "as if unset" (on), matching the other knobs' rule.
#[must_use]
pub fn summaries_enabled() -> bool {
    match std::env::var(SUMMARIES_ENV) {
        Ok(v) => !matches!(v.trim().to_ascii_lowercase().as_str(), "0" | "false" | "off" | "no"),
        Err(_) => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Process-environment mutation lives in tests/env_knobs.rs (its own
    // test binary, so it cannot race other tests); here only the pure
    // parsing contract via unset/garbage-free defaults.
    #[test]
    fn unset_variable_parses_to_none() {
        assert_eq!(env_usize("SELC_CACHE_TEST_SURELY_UNSET"), None);
    }
}
