//! Per-shard storage policies: the [`CacheBackend`] trait and its two
//! implementations, [`Unbounded`] and the bounded [`ClockLru`].
//!
//! A backend is plain single-threaded storage — `ShardedCache` supplies
//! the concurrency (one backend per mutex-guarded shard) and the
//! telemetry (the shard counts hits/misses/insertions/evictions around
//! backend calls). Eviction is a *space* policy, never a correctness
//! one: a selection search consulting a cache treats a miss as "compute
//! it again", so an evicted entry can cost recomputation but can never
//! change a winner (the soundness argument in `DESIGN.md`).

use std::collections::HashMap;
use std::hash::Hash;

/// Single-shard storage: what to keep and what to drop.
///
/// `get` takes `&mut self` so recency-tracking backends can update their
/// bookkeeping (the clock's referenced bits) on a hit.
pub trait CacheBackend<K, V>: Send {
    /// The cached value for `key`, if present.
    fn get(&mut self, key: &K) -> Option<V>;

    /// Stores `key → value`, returning `true` if an existing entry had
    /// to be evicted to make room (never for an update in place).
    fn insert(&mut self, key: K, value: V) -> bool;

    /// Number of live entries.
    fn len(&self) -> usize;

    /// No live entries?
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every entry, returning how many were dropped (epoch
    /// invalidation reports these as evictions).
    fn clear(&mut self) -> usize;
}

/// The unbounded backend: a plain hash map, nothing ever evicted.
#[derive(Debug, Default)]
pub struct Unbounded<K, V> {
    map: HashMap<K, V>,
}

impl<K, V> Unbounded<K, V> {
    /// An empty unbounded backend.
    #[must_use]
    pub fn new() -> Unbounded<K, V> {
        Unbounded { map: HashMap::new() }
    }
}

impl<K, V> CacheBackend<K, V> for Unbounded<K, V>
where
    K: Eq + Hash + Send,
    V: Clone + Send,
{
    fn get(&mut self, key: &K) -> Option<V> {
        self.map.get(key).cloned()
    }

    fn insert(&mut self, key: K, value: V) -> bool {
        self.map.insert(key, value);
        false
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn clear(&mut self) -> usize {
        let n = self.map.len();
        self.map.clear();
        n
    }
}

/// One clock slot: an entry plus its second-chance bit.
#[derive(Debug)]
struct Slot<K, V> {
    key: K,
    value: V,
    referenced: bool,
}

/// The bounded backend: CLOCK (second-chance) eviction — an LRU
/// approximation with O(1) hits and no linked-list churn. Entries sit on
/// a circular buffer; a hit sets the entry's referenced bit; when the
/// cache is full, a sweeping hand clears referenced bits until it finds
/// an unreferenced victim to replace.
#[derive(Debug)]
pub struct ClockLru<K, V> {
    capacity: usize,
    slots: Vec<Slot<K, V>>,
    index: HashMap<K, usize>,
    hand: usize,
}

impl<K: Clone + Eq + Hash, V> ClockLru<K, V> {
    /// A bounded backend holding at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> ClockLru<K, V> {
        assert!(capacity >= 1, "ClockLru needs capacity >= 1");
        ClockLru {
            capacity,
            slots: Vec::with_capacity(capacity.min(1024)),
            index: HashMap::new(),
            hand: 0,
        }
    }

    /// The configured capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Advances the hand to a victim slot, giving referenced entries
    /// their second chance. Terminates: each pass clears one bit, so
    /// after at most one full sweep some slot is unreferenced.
    fn victim(&mut self) -> usize {
        loop {
            let i = self.hand;
            self.hand = (self.hand + 1) % self.slots.len();
            if self.slots[i].referenced {
                self.slots[i].referenced = false;
            } else {
                return i;
            }
        }
    }
}

impl<K, V> CacheBackend<K, V> for ClockLru<K, V>
where
    K: Clone + Eq + Hash + Send,
    V: Clone + Send,
{
    fn get(&mut self, key: &K) -> Option<V> {
        let &i = self.index.get(key)?;
        self.slots[i].referenced = true;
        Some(self.slots[i].value.clone())
    }

    fn insert(&mut self, key: K, value: V) -> bool {
        if let Some(&i) = self.index.get(&key) {
            self.slots[i].value = value;
            self.slots[i].referenced = true;
            return false;
        }
        if self.slots.len() < self.capacity {
            self.index.insert(key.clone(), self.slots.len());
            self.slots.push(Slot { key, value, referenced: true });
            return false;
        }
        let i = self.victim();
        self.index.remove(&self.slots[i].key);
        self.index.insert(key.clone(), i);
        self.slots[i] = Slot { key, value, referenced: true };
        true
    }

    fn len(&self) -> usize {
        self.slots.len()
    }

    fn clear(&mut self) -> usize {
        let n = self.slots.len();
        self.slots.clear();
        self.index.clear();
        self.hand = 0;
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_never_evicts() {
        let mut b: Unbounded<u32, u32> = Unbounded::new();
        for i in 0..1000 {
            assert!(!b.insert(i, i * 2));
        }
        assert_eq!(b.len(), 1000);
        assert_eq!(b.get(&500), Some(1000));
        assert_eq!(b.get(&1001), None);
        assert_eq!(b.clear(), 1000);
        assert!(b.is_empty());
    }

    #[test]
    fn clock_update_in_place_is_not_an_eviction() {
        let mut b: ClockLru<u32, u32> = ClockLru::new(2);
        assert!(!b.insert(1, 10));
        assert!(!b.insert(1, 11), "update in place");
        assert_eq!(b.get(&1), Some(11));
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn clock_evicts_at_capacity() {
        let mut b: ClockLru<u32, u32> = ClockLru::new(2);
        assert!(!b.insert(1, 1));
        assert!(!b.insert(2, 2));
        assert!(b.insert(3, 3), "third insert must evict");
        assert_eq!(b.len(), 2);
        assert_eq!(b.get(&3), Some(3), "new entry is resident");
        let residents = [1u32, 2].iter().filter(|k| b.get(k).is_some()).count();
        assert_eq!(residents, 1, "exactly one old entry survived");
    }

    #[test]
    fn clock_second_chance_prefers_unreferenced_victims() {
        let mut b: ClockLru<u32, u32> = ClockLru::new(2);
        b.insert(1, 1);
        b.insert(2, 2);
        // Both referenced: the sweep clears both bits and evicts slot 0
        // (key 1), leaving [3 (referenced), 2 (unreferenced)].
        assert!(b.insert(3, 3));
        assert_eq!(b.get(&1), None);
        assert_eq!(b.get(&2), Some(2));
        // Hit 2 but not 3 … then the next insert's victim is whichever
        // entry is unreferenced when the hand reaches it.
        let mut b: ClockLru<u32, u32> = ClockLru::new(2);
        b.insert(1, 1);
        b.insert(2, 2);
        b.insert(3, 3); // state: [3 (ref), 2 (unref)], hand on slot 1
        assert!(b.insert(4, 4), "evicts the unreferenced 2, not the fresh 3");
        assert_eq!(b.get(&3), Some(3));
        assert_eq!(b.get(&2), None);
        assert_eq!(b.get(&4), Some(4));
    }

    #[test]
    fn clock_clear_resets_everything() {
        let mut b: ClockLru<u32, u32> = ClockLru::new(3);
        for i in 0..3 {
            b.insert(i, i);
        }
        assert_eq!(b.clear(), 3);
        assert!(b.is_empty());
        assert!(!b.insert(9, 9));
        assert_eq!(b.get(&9), Some(9));
    }

    #[test]
    #[should_panic(expected = "capacity >= 1")]
    fn zero_capacity_rejected() {
        let _ = ClockLru::<u32, u32>::new(0);
    }
}
