//! NaN/±0 property suite for the ML workloads: every comparison on
//! estimates and data follows the workspace total order (`total_cmp`,
//! the policy the λC bridge set for losses and payoffs), so adversarial
//! floats can never make a result depend on enumeration order — and
//! never panic a sort.

use proptest::prelude::*;
use selc_ml::bandit::{epsilon_greedy, Arms};
use selc_ml::dataset::Dataset;

/// A float drawn from the adversarial corner: NaN, both zeros, and a few
/// ordinary values.
fn weird_f64() -> impl Strategy<Value = f64> {
    prop_oneof![
        Just(f64::NAN),
        Just(0.0),
        Just(-0.0),
        Just(f64::INFINITY),
        // Dyadic values: sums and averages of repeat pulls stay exact,
        // so estimates cannot drift between rounds.
        (0u32..50).prop_map(|x| f64::from(x) / 16.0),
    ]
}

/// The reference argmin under the total order, ties to the smallest
/// index — what a deterministic exploit step must pick.
fn total_order_argmin(xs: &[f64]) -> usize {
    let mut best = 0;
    for (i, x) in xs.iter().enumerate().skip(1) {
        if x.total_cmp(&xs[best]) == std::cmp::Ordering::Less {
            best = i;
        }
    }
    best
}

proptest! {
    /// Pure exploitation (ε = 0, no noise) must settle on the
    /// total-order argmin of the arm means, whatever mix of NaN/±0/∞
    /// the means contain and wherever those arms sit.
    #[test]
    fn exploitation_picks_the_total_order_argmin(
        means in proptest::collection::vec(weird_f64(), 1..6)
    ) {
        let n = means.len();
        let arms = Arms::new(means.clone(), 0.0);
        let (_, chosen) = epsilon_greedy(&arms, n + 12, 0.0, 7);
        // With zero noise each arm's estimate is its accumulated mean —
        // note the accumulator starts at +0.0, so a -0.0 mean estimates
        // as +0.0 (IEEE addition), which is what the agent compares.
        let estimates: Vec<f64> = means.iter().map(|m| (0.0 + m) / 1.0).collect();
        let expected = total_order_argmin(&estimates);
        prop_assert!(
            chosen[n..].iter().all(|&a| a == expected),
            "means {means:?}: chose {chosen:?}, expected arm {expected}"
        );
    }

    /// Shuffling NaN/±0 data must neither panic nor lose a point:
    /// bit-level multiset equality under the total-order sort.
    #[test]
    fn shuffle_preserves_weird_points_bitwise(
        xs in proptest::collection::vec((weird_f64(), weird_f64()), 1..12),
        seed in 0u64..32
    ) {
        let d = Dataset { points: xs, true_w: 0.0, true_b: 0.0 };
        let s = d.shuffled(seed);
        let key = |v: &[(f64, f64)]| {
            let mut bits: Vec<(u64, u64)> =
                v.iter().map(|p| (p.0.to_bits(), p.1.to_bits())).collect();
            bits.sort_unstable();
            bits
        };
        prop_assert_eq!(key(&d.points), key(&s.points));
        // And the loss surface stays total: mse never panics (it may be
        // NaN, which the search layers order deterministically).
        let _ = s.mse(1.0, -0.5);
    }
}
