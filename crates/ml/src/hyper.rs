//! Hyperparameter optimisation (§4.3 "Hyperparameters").
//!
//! The learning rate becomes its own effect `LR { lrate :: Op () Float }`.
//! [`read_lr`] resumes with a fixed rate; [`tune_lr`] implements the
//! paper's grid search: it probes the loss of each candidate rate through
//! the choice continuation and returns the best one **without resuming the
//! computation** — the handler's result is the chosen rate.

use selc::{effect, Handler, MemoChoice, Sel};

effect! {
    /// The learning-rate hyperparameter effect.
    pub effect Lr {
        /// Request the current learning rate.
        op Lrate : () => f64;
    }
}

/// A handler that always returns the fixed learning rate `alpha`
/// (the paper's `readLR α`).
pub fn read_lr<B: Clone + 'static>(alpha: f64) -> Handler<f64, B, B> {
    Handler::builder::<Lr>().on::<Lrate>(move |(), _l, k| k.resume(alpha)).build_identity()
}

/// Sequences memoised probes of every rate in `grid`, returning the
/// `(rate, error)` pair that minimises the probed error (ties towards
/// the earliest grid entry — the scan every engine adapter must match).
/// Shared by [`tune_lr`] and the chunked parallel tuner in
/// `crate::parallel`.
/// Generic over the memo's cache handle `C`, so the same scan runs
/// against a per-activation [`selc::LocalCache`] (the sequential tuner)
/// or a [`selc::SharedCache`] shared across engine workers (the cached
/// parallel tuner).
pub fn probe_grid_argmin<C>(
    memo: &MemoChoice<f64, f64, u64, C>,
    grid: Vec<f64>,
) -> Sel<f64, (f64, f64)>
where
    C: selc::CacheHandle<u64, f64> + Clone + 'static,
{
    fn go<C: selc::CacheHandle<u64, f64> + Clone + 'static>(
        m: MemoChoice<f64, f64, u64, C>,
        grid: std::rc::Rc<Vec<f64>>,
        i: usize,
        best: (f64, f64),
    ) -> Sel<f64, (f64, f64)> {
        if i == grid.len() {
            return Sel::pure(best);
        }
        let alpha = grid[i];
        m.at(alpha).and_then(move |err| {
            let best = if err < best.1 { (alpha, err) } else { best };
            go(m.clone(), std::rc::Rc::clone(&grid), i + 1, best)
        })
    }
    assert!(!grid.is_empty(), "probe_grid_argmin needs at least one candidate rate");
    let default = grid[0];
    go(memo.clone(), std::rc::Rc::new(grid), 0, (default, f64::INFINITY))
}

/// The paper's `tuneLR (α1, α2)` generalised to a grid: probes the loss of
/// running the rest of the computation with each candidate rate and
/// *returns* (rather than resumes with) the one with the least loss. The
/// return clause returns the first candidate, matching
/// `handlerRet (λ_ → return α1)`.
///
/// Probes go through a [`MemoChoice`] keyed on the rate's bits, so a grid
/// with duplicate rates runs the future once per *distinct* rate.
///
/// # Panics
///
/// Panics if the grid is empty.
pub fn tune_lr<A: Clone + 'static>(grid: Vec<f64>) -> Handler<f64, A, f64> {
    assert!(!grid.is_empty(), "tune_lr needs at least one candidate rate");
    let default = grid[0];
    Handler::builder::<Lr>()
        .on::<Lrate>(move |(), l, _k| {
            // err_i ← l α_i for each candidate; return the argmin.
            let memo = MemoChoice::with_key(&l, |r: &f64| r.to_bits());
            probe_grid_argmin(&memo, grid.clone()).map(|(alpha, _err)| alpha)
        })
        .ret(move |_a| Sel::pure(default))
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimize::{gd_handler_tuned, Optimize};
    use selc::{handle, loss, perform};

    /// One gd step on `(p − 3)²` from `p0`, with the rate served by an
    /// outer LR handler.
    fn step_prog(p0: f64) -> Sel<f64, Vec<f64>> {
        let prog = perform::<f64, Optimize>(vec![p0]).and_then(|p| {
            let e = p[0] - 3.0;
            loss(e * e).map(move |_| p.clone())
        });
        handle(&gd_handler_tuned(), prog)
    }

    #[test]
    fn read_lr_serves_fixed_rate() {
        let (_, p) = handle(&read_lr(0.1), step_prog(0.0)).run_unwrap();
        assert!((p[0] - 0.6).abs() < 1e-4, "{p:?}");
    }

    #[test]
    fn tune_lr_picks_the_rate_with_smaller_loss() {
        // From p=0 on (p−3)²: rate 1.0 overshoots to 6 (loss 9), rate 1/6
        // lands at 1 (loss 4), rate 0.5 lands exactly at 3 (loss 0).
        let h = tune_lr(vec![1.0, 0.5]);
        let (_, alpha) = handle(&h, step_prog(0.0)).run_unwrap();
        assert_eq!(alpha, 0.5);
    }

    #[test]
    fn tune_lr_grid_order_does_not_matter_for_strict_winner() {
        let a = handle(&tune_lr(vec![0.5, 1.0]), step_prog(0.0)).run_unwrap().1;
        let b = handle(&tune_lr(vec![1.0, 0.5]), step_prog(0.0)).run_unwrap().1;
        assert_eq!(a, 0.5);
        assert_eq!(b, 0.5);
    }

    #[test]
    fn tune_lr_never_resumes_so_result_is_a_rate() {
        // The handled computation returns Vec<f64>, but the handler's
        // result type is f64 — the chosen rate. If the program performs no
        // lrate at all, the return clause yields the first candidate.
        let h = tune_lr(vec![0.25, 0.75]);
        let prog: Sel<f64, Vec<f64>> = Sel::pure(vec![]);
        let (_, alpha) = handle(&h, prog).run_unwrap();
        assert_eq!(alpha, 0.25);
    }

    #[test]
    #[should_panic(expected = "at least one candidate")]
    fn empty_grid_panics() {
        let _ = tune_lr::<f64>(vec![]);
    }

    #[test]
    fn duplicate_rates_probe_once() {
        // The future bumps a counter per run; with memoised probes the
        // duplicated 0.5 and 1.0 entries cost nothing extra.
        use std::cell::RefCell;
        use std::rc::Rc;
        let runs = Rc::new(RefCell::new(0u64));
        let c = Rc::clone(&runs);
        let prog = perform::<f64, Lrate>(()).and_then(move |alpha| {
            *c.borrow_mut() += 1;
            let p = 0.0 - alpha * 2.0 * (0.0 - 3.0); // one gd step from 0
            let e = p - 3.0;
            loss(e * e).map(move |_| vec![p])
        });
        let h = tune_lr(vec![1.0, 0.5, 1.0, 0.5, 0.5]);
        let (_, alpha) = handle(&h, prog).run_unwrap();
        assert_eq!(alpha, 0.5);
        assert_eq!(*runs.borrow(), 2, "one future run per distinct rate");
    }
}
