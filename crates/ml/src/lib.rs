//! ML substrate for the §4.3 experiments of *Handling the Selection
//! Monad*: optimisation-by-handler (SGD), hyperparameter tuning, greedy
//! selection, and a bandit example (§6 relates the design to RL).
//!
//! Each module pairs the paper's handler-based implementation with one or
//! more conventional baselines, so the benchmark harness can compare
//! *shape* (who converges, to what, at what overhead):
//!
//! * [`dataset`] — synthetic regression workloads;
//! * [`optimize`] — the `Opt` effect and the gradient-descent handler
//!   `hOpt` (choice-continuation differentiation via finite differences);
//! * [`linreg`] — linear regression three ways: handler SGD, hand-coded
//!   SGD (reverse-mode tape), closed-form least squares;
//! * [`hyper`] — the `LR` hyperparameter effect with `read_lr` and the
//!   grid-searching `tune_lr` handler (which never resumes);
//! * [`password`] — the greedy `Max` effect and the password example;
//! * [`bandit`] — greedy full-information bandit via choice continuations
//!   vs. an ε-greedy baseline;
//! * [`saddle`] — GAN-style min-max training: descent and ascent handlers
//!   sharing one recorded value function (§4.3's GAN remark);
//! * [`parallel`] — hyperparameter search on the `selc-engine` worker
//!   pool: chunked parallel `tuneLR` (replay per worker, memoised batch
//!   probes) and branch-and-bound tuning over whole training runs.

pub mod bandit;
pub mod dataset;
pub mod hyper;
pub mod linreg;
pub mod optimize;
pub mod parallel;
pub mod password;
pub mod polyreg;
pub mod saddle;
