//! Greedy selection: the `Max` effect and the password example (§4.3).
//!
//! The `Max` handler probes the choice continuation for every candidate
//! and resumes with the loss-maximising one (`maxWith l x; k b`) — losses
//! read as *rewards* here, exactly as the paper notes.

use selc::{effect, handle, loss, perform, Choice, Handler, Sel};

effect! {
    /// Greedy selection from a candidate list (§4.3's `Max`).
    pub effect Max {
        /// Pick a string from the candidates, maximising the reward.
        op PickMax : Vec<String> => String;
    }
}

/// Probes all `candidates` through the choice continuation and returns the
/// reward-maximising one (ties towards earlier candidates). Effectful
/// `maxWith`.
///
/// # Panics
///
/// The returned computation panics when run on an empty candidate list.
pub fn max_with(l: &Choice<f64, String>, candidates: Vec<String>) -> Sel<f64, String> {
    fn go(
        l: Choice<f64, String>,
        cands: std::rc::Rc<Vec<String>>,
        i: usize,
        best: Option<(String, f64)>,
    ) -> Sel<f64, String> {
        if i == cands.len() {
            let (b, _) = best.expect("max_with over an empty candidate list");
            return Sel::pure(b);
        }
        let cand = cands[i].clone();
        l.at(cand.clone()).and_then(move |r| {
            let better = match &best {
                None => true,
                Some((_, br)) => r > *br,
            };
            let next = if better { Some((cand.clone(), r)) } else { best.clone() };
            go(l.clone(), std::rc::Rc::clone(&cands), i + 1, next)
        })
    }
    go(l.clone(), std::rc::Rc::new(candidates), 0, None)
}

/// The greedy handler `hmax`: `max ↦ λx l k. b ← maxWith l x; k b`.
pub fn hmax<B: Clone + 'static>() -> Handler<f64, B, B> {
    Handler::builder::<Max>()
        .on::<PickMax>(|cands, l, k| max_with(&l, cands).and_then(move |b| k.resume(b)))
        .build_identity()
}

/// Reward criterion `len s` (§4.3).
pub fn len_reward(s: &str) -> Sel<f64, ()> {
    loss(s.chars().count() as f64)
}

/// Reward criterion `distinct s`²: the squared number of distinct
/// characters (§4.3).
pub fn distinct_reward(s: &str) -> Sel<f64, ()> {
    let d = s.chars().collect::<std::collections::BTreeSet<_>>().len() as f64;
    loss(d * d)
}

/// The paper's `password` program over the given candidates:
/// pick, record `len` and `distinct²` rewards, return
/// `"password is " ++ s`.
pub fn password_program(candidates: Vec<String>) -> Sel<f64, String> {
    perform::<f64, PickMax>(candidates).and_then(|s| {
        len_reward(&s).then(distinct_reward(&s)).map(move |_| format!("password is {s}"))
    })
}

/// Runs the password example end to end: `runSel $ hmax password`.
pub fn run_password(candidates: Vec<String>) -> (f64, String) {
    handle(&hmax(), password_program(candidates)).run_unwrap()
}

/// Baseline: direct (handler-free) greedy choice with the same criteria.
pub fn password_baseline(candidates: &[String]) -> (f64, String) {
    let score = |s: &str| {
        let d = s.chars().collect::<std::collections::BTreeSet<_>>().len() as f64;
        s.chars().count() as f64 + d * d
    };
    assert!(!candidates.is_empty(), "empty candidate list");
    let mut best = &candidates[0];
    for c in &candidates[1..] {
        if score(c) > score(best) {
            best = c;
        }
    }
    (score(best), format!("password is {best}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cands(xs: &[&str]) -> Vec<String> {
        xs.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn paper_example_picks_abc() {
        let (reward, msg) = run_password(cands(&["aaa", "aabb", "abc"]));
        assert_eq!(msg, "password is abc");
        // len 3 + distinct 3² = 12
        assert_eq!(reward, 12.0);
    }

    #[test]
    fn handler_matches_baseline_on_many_inputs() {
        let lists = [
            cands(&["aaa", "aabb", "abc"]),
            cands(&["x", "xy", "xyz", "xxxx"]),
            cands(&["qqqq", "qrst"]),
            cands(&["a"]),
        ];
        for cs in lists {
            let (hr, hm) = run_password(cs.clone());
            let (br, bm) = password_baseline(&cs);
            assert_eq!(hm, bm, "candidates {cs:?}");
            assert_eq!(hr, br, "candidates {cs:?}");
        }
    }

    #[test]
    fn ties_break_towards_earlier_candidates() {
        let (_, msg) = run_password(cands(&["ab", "cd"]));
        assert_eq!(msg, "password is ab");
    }

    #[test]
    fn rewards_accumulate_only_for_chosen_candidate() {
        // The probes of non-chosen candidates must not pollute the total.
        let (reward, _) = run_password(cands(&["zz", "yyy"]));
        // yyy: len 3 + distinct 1 = 4; zz: 2 + 1 = 3 → picks yyy, total 4
        assert_eq!(reward, 4.0);
    }

    #[test]
    #[should_panic(expected = "empty candidate list")]
    fn empty_candidates_panic() {
        let _ = run_password(vec![]);
    }
}
