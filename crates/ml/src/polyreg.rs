//! Polynomial regression: the §4.3 recipe beyond one variable.
//!
//! The paper trains `f(x) = w·x + b`; nothing in the design is specific to
//! two parameters, so this module fits degree-`d` polynomials with the
//! same `Opt` effect and gradient-descent handler — the choice
//! continuation is differentiated at `d+1` points per step. The baseline
//! is exact least squares via the normal equations (Gaussian
//! elimination, built here from scratch).

use crate::optimize::{gd_handler, Optimize};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use selc::{handle, loss, perform, Sel};

/// Evaluates a polynomial with coefficients in increasing degree order.
pub fn poly_eval(coeffs: &[f64], x: f64) -> f64 {
    coeffs.iter().rev().fold(0.0, |acc, c| acc * x + c)
}

/// A polynomial-regression dataset `y = p(x) + noise`.
#[derive(Clone, Debug)]
pub struct PolyDataset {
    /// `(x, y)` pairs.
    pub points: Vec<(f64, f64)>,
    /// Ground-truth coefficients (increasing degree).
    pub truth: Vec<f64>,
}

impl PolyDataset {
    /// Generates `n` points of the polynomial with the given coefficients
    /// plus uniform noise of amplitude `noise`.
    pub fn generate(n: usize, truth: Vec<f64>, noise: f64, seed: u64) -> PolyDataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let points = (0..n)
            .map(|_| {
                let x: f64 = rng.gen_range(-1.5..1.5);
                (x, poly_eval(&truth, x) + noise * (rng.gen::<f64>() - 0.5))
            })
            .collect();
        PolyDataset { points, truth }
    }

    /// Mean squared error of the coefficients on this dataset.
    pub fn mse(&self, coeffs: &[f64]) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points
            .iter()
            .map(|&(x, y)| {
                let e = poly_eval(coeffs, x) - y;
                e * e
            })
            .sum::<f64>()
            / self.points.len() as f64
    }

    /// Exact least squares of degree `deg` via the normal equations.
    ///
    /// # Panics
    ///
    /// Panics if the system is singular (degenerate data).
    pub fn least_squares(&self, deg: usize) -> Vec<f64> {
        let m = deg + 1;
        // A^T A and A^T y for the Vandermonde matrix A.
        let mut ata = vec![vec![0.0; m]; m];
        let mut aty = vec![0.0; m];
        for &(x, y) in &self.points {
            let mut powers = Vec::with_capacity(m);
            let mut p = 1.0;
            for _ in 0..m {
                powers.push(p);
                p *= x;
            }
            for i in 0..m {
                aty[i] += powers[i] * y;
                for j in 0..m {
                    ata[i][j] += powers[i] * powers[j];
                }
            }
        }
        gaussian_solve(ata, aty)
    }
}

/// Solves `A x = b` by Gaussian elimination with partial pivoting.
///
/// # Panics
///
/// Panics on singular systems.
pub fn gaussian_solve(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Vec<f64> {
    let n = b.len();
    for col in 0..n {
        // pivot
        let mut piv = col;
        for r in (col + 1)..n {
            if a[r][col].abs() > a[piv][col].abs() {
                piv = r;
            }
        }
        assert!(a[piv][col].abs() > 1e-12, "singular system");
        a.swap(col, piv);
        b.swap(col, piv);
        // eliminate
        let pivot_row = a[col].clone();
        for r in (col + 1)..n {
            let f = a[r][col] / pivot_row[col];
            for (cell, pv) in a[r][col..].iter_mut().zip(&pivot_row[col..]) {
                *cell -= f * pv;
            }
            b[r] -= f * b[col];
        }
    }
    // back substitution
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut s = b[row];
        for c in (row + 1)..n {
            s -= a[row][c] * x[c];
        }
        x[row] = s / a[row][row];
    }
    x
}

/// The `polyReg` program: ask the optimiser for new coefficients, record
/// the squared error on this data point, return them.
pub fn poly_reg(coeffs: Vec<f64>, x: f64, target: f64) -> Sel<f64, Vec<f64>> {
    perform::<f64, Optimize>(coeffs).and_then(move |p| {
        let y = poly_eval(&p, x);
        loss((target - y) * (target - y)).map(move |_| p.clone())
    })
}

/// Handler-SGD training over the dataset (epochs × points steps, each an
/// independent `lreset` round, as in §4.3).
pub fn train_poly_sgd(data: &PolyDataset, deg: usize, lr: f64, epochs: usize) -> Vec<f64> {
    let mut p = vec![0.0; deg + 1];
    let h = gd_handler(lr);
    for _ in 0..epochs {
        for &(x, y) in &data.points {
            let prog = handle(&h, poly_reg(p.clone(), x, y)).lreset();
            p = prog.run_unwrap().1;
        }
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poly_eval_horner() {
        // 1 + 2x + 3x² at x = 2 → 1 + 4 + 12 = 17
        assert_eq!(poly_eval(&[1.0, 2.0, 3.0], 2.0), 17.0);
        assert_eq!(poly_eval(&[], 5.0), 0.0);
        assert_eq!(poly_eval(&[7.0], 5.0), 7.0);
    }

    #[test]
    fn gaussian_solver_on_known_system() {
        // x + y = 3; x − y = 1 → (2, 1)
        let x = gaussian_solve(vec![vec![1.0, 1.0], vec![1.0, -1.0]], vec![3.0, 1.0]);
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "singular")]
    fn singular_system_panics() {
        let _ = gaussian_solve(vec![vec![1.0, 1.0], vec![2.0, 2.0]], vec![1.0, 2.0]);
    }

    #[test]
    fn least_squares_recovers_noiseless_quadratic() {
        let d = PolyDataset::generate(60, vec![1.0, -2.0, 0.5], 0.0, 3);
        let c = d.least_squares(2);
        assert!((c[0] - 1.0).abs() < 1e-8, "{c:?}");
        assert!((c[1] + 2.0).abs() < 1e-8, "{c:?}");
        assert!((c[2] - 0.5).abs() < 1e-8, "{c:?}");
    }

    #[test]
    fn handler_sgd_fits_a_quadratic() {
        let d = PolyDataset::generate(48, vec![0.5, 1.0, -0.8], 0.0, 9);
        let c = train_poly_sgd(&d, 2, 0.08, 60);
        let ls = d.least_squares(2);
        for i in 0..3 {
            assert!((c[i] - ls[i]).abs() < 0.15, "coef {i}: sgd {c:?} vs ls {ls:?}");
        }
        assert!(d.mse(&c) < 0.01, "mse {}", d.mse(&c));
    }

    #[test]
    fn degree_mismatch_underfits() {
        // Fitting a line to a genuine quadratic leaves residual error.
        let d = PolyDataset::generate(48, vec![0.0, 0.0, 2.0], 0.0, 4);
        let line = train_poly_sgd(&d, 1, 0.05, 40);
        let quad = train_poly_sgd(&d, 2, 0.05, 40);
        assert!(d.mse(&quad) < d.mse(&line) / 5.0, "quad {} line {}", d.mse(&quad), d.mse(&line));
    }
}
