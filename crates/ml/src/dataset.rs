//! Synthetic regression workloads.
//!
//! §4.3 trains "the simplest form of linear regression with only one
//! variable" on an unspecified dataset; we generate `y = w·x + b + noise`
//! with controllable size, ground truth, and noise so experiments are
//! reproducible and scalable.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A one-variable regression dataset.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// `(x, y)` pairs.
    pub points: Vec<(f64, f64)>,
    /// Ground-truth weight.
    pub true_w: f64,
    /// Ground-truth bias.
    pub true_b: f64,
}

impl Dataset {
    /// Generates `n` points from `y = w·x + b + N(0, noise)` with `x`
    /// uniform in `[-2, 2]`, deterministically from `seed`.
    pub fn linear(n: usize, w: f64, b: f64, noise: f64, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let points = (0..n)
            .map(|_| {
                let x: f64 = rng.gen_range(-2.0..2.0);
                // Box–Muller for approximately normal noise.
                let u1: f64 = rng.gen_range(1e-12..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                let g = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                (x, w * x + b + noise * g)
            })
            .collect();
        Dataset { points, true_w: w, true_b: b }
    }

    /// Mean squared error of the model `(w, b)` on this dataset.
    pub fn mse(&self, w: f64, b: f64) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points
            .iter()
            .map(|&(x, y)| {
                let e = w * x + b - y;
                e * e
            })
            .sum::<f64>()
            / self.points.len() as f64
    }

    /// Closed-form least-squares fit `(w, b)` — the exact baseline.
    ///
    /// # Panics
    ///
    /// Panics on an empty dataset.
    pub fn least_squares(&self) -> (f64, f64) {
        assert!(!self.points.is_empty(), "least squares of an empty dataset");
        let n = self.points.len() as f64;
        let sx: f64 = self.points.iter().map(|p| p.0).sum();
        let sy: f64 = self.points.iter().map(|p| p.1).sum();
        let sxx: f64 = self.points.iter().map(|p| p.0 * p.0).sum();
        let sxy: f64 = self.points.iter().map(|p| p.0 * p.1).sum();
        let denom = n * sxx - sx * sx;
        if denom.abs() < 1e-12 {
            return (0.0, sy / n);
        }
        let w = (n * sxy - sx * sy) / denom;
        let b = (sy - w * sx) / n;
        (w, b)
    }

    /// Shuffles the points (the paper notes shuffling introduces the
    /// stochasticity of SGD), deterministically from `seed`.
    pub fn shuffled(&self, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut points = self.points.clone();
        for i in (1..points.len()).rev() {
            let j = rng.gen_range(0..=i);
            points.swap(i, j);
        }
        Dataset { points, ..*self }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = Dataset::linear(10, 2.0, 1.0, 0.1, 42);
        let b = Dataset::linear(10, 2.0, 1.0, 0.1, 42);
        assert_eq!(a.points, b.points);
    }

    #[test]
    fn noiseless_data_lies_on_the_line() {
        let d = Dataset::linear(50, 3.0, -1.0, 0.0, 7);
        for &(x, y) in &d.points {
            assert!((y - (3.0 * x - 1.0)).abs() < 1e-12);
        }
        assert!(d.mse(3.0, -1.0) < 1e-20);
    }

    #[test]
    fn least_squares_recovers_noiseless_truth() {
        let d = Dataset::linear(100, -1.5, 0.75, 0.0, 3);
        let (w, b) = d.least_squares();
        assert!((w + 1.5).abs() < 1e-9, "w = {w}");
        assert!((b - 0.75).abs() < 1e-9, "b = {b}");
    }

    #[test]
    fn least_squares_is_near_truth_under_noise() {
        let d = Dataset::linear(2000, 2.0, 1.0, 0.05, 11);
        let (w, b) = d.least_squares();
        assert!((w - 2.0).abs() < 0.05, "w = {w}");
        assert!((b - 1.0).abs() < 0.05, "b = {b}");
    }

    /// Point sort under the workspace total order (`total_cmp` per
    /// component — `partial_cmp(..).unwrap()` here panicked outright on
    /// NaN data).
    fn sort_points(points: &mut [(f64, f64)]) {
        points.sort_by(|p, q| p.0.total_cmp(&q.0).then(p.1.total_cmp(&q.1)));
    }

    #[test]
    fn shuffle_permutes() {
        let d = Dataset::linear(100, 1.0, 0.0, 0.0, 1);
        let s = d.shuffled(2);
        assert_ne!(d.points, s.points);
        let mut a = d.points.clone();
        let mut b = s.points.clone();
        sort_points(&mut a);
        sort_points(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn shuffle_of_nan_and_signed_zero_data_does_not_panic() {
        let d = Dataset {
            points: vec![(f64::NAN, 1.0), (0.0, -0.0), (-0.0, f64::NAN), (2.0, 3.0)],
            true_w: 0.0,
            true_b: 0.0,
        };
        let s = d.shuffled(5);
        let (mut a, mut b) = (d.points.clone(), s.points.clone());
        sort_points(&mut a);
        sort_points(&mut b);
        // Bit-level multiset equality: total_cmp separates -0.0 from 0.0
        // and orders NaNs, so the sorted sequences must match bitwise.
        let bits =
            |v: &[(f64, f64)]| v.iter().map(|p| (p.0.to_bits(), p.1.to_bits())).collect::<Vec<_>>();
        assert_eq!(bits(&a), bits(&b));
    }

    #[test]
    fn mse_of_empty_is_zero() {
        let d = Dataset { points: vec![], true_w: 0.0, true_b: 0.0 };
        assert_eq!(d.mse(1.0, 1.0), 0.0);
    }
}
