//! Linear regression three ways (experiment E4, §4.3).
//!
//! 1. [`train_handler_sgd`] — the paper's program: each data point runs
//!    `lreset $ hOpt $ linearReg p x y` and the updated parameters fold
//!    into the next step (the `foldM` of §4.3).
//! 2. [`train_tape_sgd`] — hand-coded SGD with exact reverse-mode
//!    gradients (baseline).
//! 3. [`Dataset::least_squares`](crate::dataset::Dataset::least_squares)
//!    — the closed-form optimum (gold standard).
//!
//! The reproduction claim (EXPERIMENTS.md): all three land on the same
//! line on noiseless data, and 1–2 agree to finite-difference accuracy on
//! every step.

use crate::dataset::Dataset;
use crate::optimize::{gd_handler, Optimize};
use selc::{handle, loss, perform, Sel};
use selc_autodiff::tape;

/// The paper's `linearReg [w,b] x target` program: ask the optimiser for
/// new parameters, record the squared error of the *new* parameters on
/// this data point, return them.
pub fn linear_reg(params: Vec<f64>, x: f64, target: f64) -> Sel<f64, Vec<f64>> {
    perform::<f64, Optimize>(params).and_then(move |p| {
        let y = p[0] * x + p[1];
        loss((target - y) * (target - y)).map(move |_| p.clone())
    })
}

/// One handler-SGD step: `lreset $ hOpt $ linearReg p x y`, run to a value.
pub fn sgd_step(params: Vec<f64>, x: f64, target: f64, lr: f64) -> Vec<f64> {
    let prog = handle(&gd_handler(lr), linear_reg(params, x, target)).lreset();
    prog.run_unwrap().1
}

/// Full handler-based SGD training: one pass per epoch over the dataset,
/// folding [`sgd_step`] (the paper's `foldM`).
pub fn train_handler_sgd(data: &Dataset, init: (f64, f64), lr: f64, epochs: usize) -> (f64, f64) {
    let mut p = vec![init.0, init.1];
    for _ in 0..epochs {
        for &(x, y) in &data.points {
            p = sgd_step(p, x, y, lr);
        }
    }
    (p[0], p[1])
}

/// Builds the *entire* training run as one `Sel` computation — each step
/// wrapped in `lreset` exactly as the paper's `foldM` loop body — and runs
/// it once. Demonstrates that `lreset` makes per-point decisions
/// independent even within a single program.
pub fn train_handler_sgd_monadic(data: &Dataset, init: (f64, f64), lr: f64) -> (f64, f64) {
    fn go(
        points: std::rc::Rc<Vec<(f64, f64)>>,
        i: usize,
        p: Vec<f64>,
        lr: f64,
    ) -> Sel<f64, Vec<f64>> {
        if i == points.len() {
            return Sel::pure(p);
        }
        let (x, y) = points[i];
        handle(&gd_handler(lr), linear_reg(p, x, y))
            .lreset()
            .and_then(move |p2| go(std::rc::Rc::clone(&points), i + 1, p2, lr))
    }
    let prog = go(std::rc::Rc::new(data.points.clone()), 0, vec![init.0, init.1], lr);
    let (_, p) = prog.run_unwrap();
    (p[0], p[1])
}

/// Hand-coded SGD with exact reverse-mode gradients (baseline for E4).
pub fn train_tape_sgd(data: &Dataset, init: (f64, f64), lr: f64, epochs: usize) -> (f64, f64) {
    let (mut w, mut b) = init;
    for _ in 0..epochs {
        for &(x, y) in &data.points {
            let g = tape::grad(
                |t, v| {
                    let wx = t.mul_const(v[0], x);
                    let pred = t.add(wx, v[1]);
                    let err = t.sub_const(pred, y);
                    t.sq(err)
                },
                &[w, b],
            );
            w -= lr * g[0];
            b -= lr * g[1];
        }
    }
    (w, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_step_matches_tape_gradient() {
        let lr = 0.05;
        let (x, y) = (1.5, 4.0);
        let hp = sgd_step(vec![0.2, -0.3], x, y, lr);
        let d = Dataset { points: vec![(x, y)], true_w: 0.0, true_b: 0.0 };
        let tp = train_tape_sgd(&d, (0.2, -0.3), lr, 1);
        assert!((hp[0] - tp.0).abs() < 1e-4, "handler {hp:?} vs tape {tp:?}");
        assert!((hp[1] - tp.1).abs() < 1e-4, "handler {hp:?} vs tape {tp:?}");
    }

    #[test]
    fn handler_sgd_converges_on_noiseless_line() {
        let d = Dataset::linear(32, 2.0, 1.0, 0.0, 5);
        let (w, b) = train_handler_sgd(&d, (0.0, 0.0), 0.05, 40);
        assert!((w - 2.0).abs() < 0.05, "w = {w}");
        assert!((b - 1.0).abs() < 0.05, "b = {b}");
    }

    #[test]
    fn handler_and_tape_sgd_trace_the_same_trajectory() {
        let d = Dataset::linear(16, -1.0, 0.5, 0.0, 9);
        let h = train_handler_sgd(&d, (0.3, 0.3), 0.1, 3);
        let t = train_tape_sgd(&d, (0.3, 0.3), 0.1, 3);
        assert!((h.0 - t.0).abs() < 1e-3, "handler {h:?} vs tape {t:?}");
        assert!((h.1 - t.1).abs() < 1e-3, "handler {h:?} vs tape {t:?}");
    }

    #[test]
    fn handler_sgd_approaches_least_squares_under_noise() {
        let d = Dataset::linear(64, 1.2, -0.7, 0.02, 13);
        let (w, b) = train_handler_sgd(&d, (0.0, 0.0), 0.05, 30);
        let (lw, lb) = d.least_squares();
        assert!((w - lw).abs() < 0.1, "w {w} vs ls {lw}");
        assert!((b - lb).abs() < 0.1, "b {b} vs ls {lb}");
    }

    #[test]
    fn monadic_fold_matches_imperative_fold() {
        let d = Dataset::linear(24, 0.8, 0.2, 0.0, 21);
        let a = train_handler_sgd(&d, (0.0, 0.0), 0.05, 1);
        let m = train_handler_sgd_monadic(&d, (0.0, 0.0), 0.05);
        assert!((a.0 - m.0).abs() < 1e-12);
        assert!((a.1 - m.1).abs() < 1e-12);
    }

    #[test]
    fn mse_decreases_over_training() {
        let d = Dataset::linear(32, 2.0, 1.0, 0.0, 17);
        let before = d.mse(0.0, 0.0);
        let (w, b) = train_handler_sgd(&d, (0.0, 0.0), 0.05, 5);
        let after = d.mse(w, b);
        assert!(after < before / 2.0, "before {before}, after {after}");
    }
}
