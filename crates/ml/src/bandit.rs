//! Bandits: the reinforcement-learning connection (§6).
//!
//! The related-work section observes that basic RL (multi-armed bandits à
//! la Dal Lago et al.) "does not need choice continuations as action
//! losses are directly given", while richer settings benefit from them.
//! This module exhibits both sides:
//!
//! * [`greedy_probe_agent`] — a *full-information* agent whose handler
//!   probes each arm's per-round loss through the choice continuation
//!   (choice continuations as one-step lookahead);
//! * [`epsilon_greedy`] — the classic estimate-and-explore baseline that
//!   never looks ahead.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use selc::{effect, handle_with, loss, perform, Handler, Sel};

effect! {
    /// The arm-choosing effect.
    pub effect Bandit {
        /// Choose one of `n` arms (argument: number of arms).
        op ChooseArm : usize => usize;
    }
}

/// A stochastic multi-armed bandit environment with Gaussian-ish rewards.
#[derive(Clone, Debug)]
pub struct Arms {
    /// Mean loss of each arm (lower is better).
    pub means: Vec<f64>,
    noise: f64,
}

impl Arms {
    /// An environment with the given mean losses and noise amplitude.
    pub fn new(means: Vec<f64>, noise: f64) -> Arms {
        Arms { means, noise }
    }

    /// Samples the loss of pulling `arm`.
    pub fn pull(&self, arm: usize, rng: &mut StdRng) -> f64 {
        self.means[arm] + self.noise * (rng.gen::<f64>() - 0.5)
    }

    /// The optimal (least) mean loss.
    pub fn best_mean(&self) -> f64 {
        self.means.iter().copied().fold(f64::INFINITY, f64::min)
    }
}

/// One round as a `Sel` program: choose an arm, incur its (pre-sampled)
/// loss, return the arm.
fn round_program(losses: Vec<f64>) -> Sel<f64, usize> {
    let n = losses.len();
    perform::<f64, ChooseArm>(n).and_then(move |arm| loss(losses[arm]).map(move |_| arm))
}

/// A greedy full-information agent: the handler probes every arm's loss
/// for *this round* via the choice continuation and resumes with the
/// argmin. Returns `(total loss, arms chosen)` over `rounds` rounds; each
/// round is wrapped in `lreset` so probes see only their own round.
pub fn greedy_probe_agent(arms: &Arms, rounds: usize, seed: u64) -> (f64, Vec<usize>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let h: Handler<f64, usize, usize> = Handler::builder::<Bandit>()
        .on::<ChooseArm>(|n, l, k| {
            fn go(
                l: selc::Choice<f64, usize>,
                k: selc::Resume<f64, usize, usize>,
                n: usize,
                i: usize,
                best: (usize, f64),
            ) -> Sel<f64, usize> {
                if i == n {
                    return k.resume(best.0);
                }
                l.at(i).and_then(move |li| {
                    let best = if li < best.1 { (i, li) } else { best };
                    go(l.clone(), k.clone(), n, i + 1, best)
                })
            }
            go(l, k, n, 0, (0, f64::INFINITY))
        })
        .build_identity();

    let mut total = 0.0;
    let mut chosen = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let losses: Vec<f64> = (0..arms.means.len()).map(|a| arms.pull(a, &mut rng)).collect();
        let (l, arm) = handle_with(&h, (), round_program(losses)).run_unwrap();
        total += l;
        chosen.push(arm);
    }
    (total, chosen)
}

/// Classic ε-greedy baseline: estimates arm means from observed pulls,
/// explores with probability `eps`. Returns `(total loss, arms chosen)`.
pub fn epsilon_greedy(arms: &Arms, rounds: usize, eps: f64, seed: u64) -> (f64, Vec<usize>) {
    let n = arms.means.len();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sums = vec![0.0; n];
    let mut counts = vec![0u32; n];
    let mut total = 0.0;
    let mut chosen = Vec::with_capacity(rounds);
    for t in 0..rounds {
        let arm = if t < n {
            t // pull each arm once first
        } else if rng.gen::<f64>() < eps {
            rng.gen_range(0..n)
        } else {
            (0..n)
                .min_by(|&a, &b| {
                    // The workspace total order (`total_cmp`, the policy
                    // every loss comparison follows since the λC bridge):
                    // a NaN estimate ranks above every real one, so the
                    // argmin is independent of arm order — `partial_cmp
                    // → Equal` here used to make the exploit pick depend
                    // on which arm happened to be enumerated first.
                    let ea = sums[a] / f64::from(counts[a]);
                    let eb = sums[b] / f64::from(counts[b]);
                    ea.total_cmp(&eb)
                })
                .expect("n > 0")
        };
        let l = arms.pull(arm, &mut rng);
        sums[arm] += l;
        counts[arm] += 1;
        total += l;
        chosen.push(arm);
    }
    (total, chosen)
}

/// Cumulative regret of a run against the best arm's mean.
pub fn regret(arms: &Arms, total_loss: f64, rounds: usize) -> f64 {
    total_loss - arms.best_mean() * rounds as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env() -> Arms {
        Arms::new(vec![1.0, 0.2, 0.7], 0.0)
    }

    #[test]
    fn probe_agent_always_finds_the_best_arm_without_noise() {
        let (total, chosen) = greedy_probe_agent(&env(), 20, 1);
        assert!(chosen.iter().all(|&a| a == 1), "{chosen:?}");
        assert!((total - 0.2 * 20.0).abs() < 1e-9);
    }

    #[test]
    fn probe_agent_tracks_noisy_per_round_optimum() {
        let arms = Arms::new(vec![0.5, 0.5], 2.0);
        let (total, _) = greedy_probe_agent(&arms, 50, 3);
        // Full information: total must not exceed any single-arm policy.
        let mut rng = StdRng::seed_from_u64(3);
        let mut fixed = [0.0, 0.0];
        for _ in 0..50 {
            let ls: Vec<f64> = (0..2).map(|a| arms.pull(a, &mut rng)).collect();
            fixed[0] += ls[0];
            fixed[1] += ls[1];
        }
        assert!(total <= fixed[0] + 1e-9);
        assert!(total <= fixed[1] + 1e-9);
    }

    #[test]
    fn epsilon_greedy_settles_on_the_best_arm() {
        let (_, chosen) = epsilon_greedy(&env(), 300, 0.1, 5);
        let tail = &chosen[250..];
        let best = tail.iter().filter(|&&a| a == 1).count();
        assert!(best > tail.len() / 2, "best arm picked {best}/{}", tail.len());
    }

    #[test]
    fn probe_agent_beats_epsilon_greedy_on_noiseless_env() {
        let (probe_total, _) = greedy_probe_agent(&env(), 100, 7);
        let (eps_total, _) = epsilon_greedy(&env(), 100, 0.1, 7);
        assert!(probe_total < eps_total, "probe {probe_total} vs eps {eps_total}");
    }

    /// A NaN arm estimate must lose to every real one, wherever the NaN
    /// arm sits — the argmin used to collapse NaN comparisons to
    /// `Equal`, making the exploited arm depend on arm order.
    #[test]
    fn nan_estimates_never_win_regardless_of_arm_order() {
        for (means, best) in [
            (vec![f64::NAN, 0.5, f64::NAN], 1),
            (vec![0.5, f64::NAN, f64::NAN], 0),
            (vec![f64::NAN, f64::NAN, 0.5], 2),
        ] {
            let arms = Arms::new(means, 0.0);
            // eps = 0: pure exploitation after the one forced pull each.
            let (_, chosen) = epsilon_greedy(&arms, 30, 0.0, 13);
            assert!(
                chosen[arms.means.len()..].iter().all(|&a| a == best),
                "NaN arms exploited: {chosen:?} (best {best})"
            );
        }
    }

    #[test]
    fn regret_of_perfect_play_is_zero() {
        let (total, _) = greedy_probe_agent(&env(), 10, 11);
        assert!(regret(&env(), total, 10).abs() < 1e-9);
    }
}
