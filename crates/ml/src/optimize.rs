//! The `Opt` effect and the gradient-descent handler (§4.3's `hOpt`).
//!
//! ```text
//! hOpt = handler (Opt { optimize = operation (λp l k →
//!          do ds ← autodiff l p
//!             let p' = zipWith (λw d → w − 0.01·d) p ds
//!             k p') })
//! ```
//!
//! `autodiff l p` differentiates the *choice continuation* — the loss the
//! rest of the program would incur as a function of the parameters the
//! operation returns. Since `l` is an opaque effectful function, the
//! handler uses central finite differences: `2·dim` probes of `l` per
//! `optimize` (see `selc-autodiff` for validation against exact engines).

use selc::{effect, perform, Choice, Handler, Loss, Sel};

effect! {
    /// Parameter-optimisation effect (§4.3).
    pub effect Opt {
        /// Ask the optimiser for updated parameters, given current ones.
        op Optimize : Vec<f64> => Vec<f64>;
    }
}

/// Sequences probes of the choice continuation at each of `points`,
/// collecting the probed losses. (Monadic `mapM (l ·) points`.)
pub fn probe_losses<L: Loss>(l: &Choice<L, Vec<f64>>, points: Vec<Vec<f64>>) -> Sel<L, Vec<L>> {
    fn go<L: Loss>(
        l: Choice<L, Vec<f64>>,
        points: std::rc::Rc<Vec<Vec<f64>>>,
        i: usize,
        acc: Vec<L>,
    ) -> Sel<L, Vec<L>> {
        if i == points.len() {
            return Sel::pure(acc);
        }
        l.at(points[i].clone()).and_then(move |loss| {
            let mut acc = acc.clone();
            acc.push(loss);
            go(l.clone(), std::rc::Rc::clone(&points), i + 1, acc)
        })
    }
    go(l.clone(), std::rc::Rc::new(points), 0, Vec::new())
}

/// `autodiff l p` — the gradient of the choice continuation at `p` by
/// central finite differences, as an effectful computation.
pub fn autodiff(l: &Choice<f64, Vec<f64>>, p: &[f64]) -> Sel<f64, Vec<f64>> {
    let rel_step = 6.0554544523933395e-6_f64; // cbrt(f64::EPSILON)
    let dim = p.len();
    let mut points = Vec::with_capacity(2 * dim);
    let mut steps = Vec::with_capacity(dim);
    for i in 0..dim {
        let h = rel_step * p[i].abs().max(1.0);
        steps.push(h);
        let mut plus = p.to_vec();
        plus[i] += h;
        points.push(plus);
        let mut minus = p.to_vec();
        minus[i] -= h;
        points.push(minus);
    }
    probe_losses(l, points)
        .map(move |ls| (0..dim).map(|i| (ls[2 * i] - ls[2 * i + 1]) / (2.0 * steps[i])).collect())
}

/// The gradient-descent handler `hOpt` with learning rate `lr`.
pub fn gd_handler<B: Clone + 'static>(lr: f64) -> Handler<f64, B, B> {
    Handler::builder::<Opt>()
        .on::<Optimize>(move |p, l, k| {
            autodiff(&l, &p).and_then(move |ds| {
                let p2: Vec<f64> = p.iter().zip(&ds).map(|(w, d)| w - lr * d).collect();
                k.resume(p2)
            })
        })
        .build_identity()
}

/// A gradient-descent handler whose learning rate is itself requested
/// through the hyperparameter effect (§4.3 "Hyperparameters"):
/// `do ds ← autodiff l p; α ← perform lrate (); …`.
pub fn gd_handler_tuned<B: Clone + 'static>() -> Handler<f64, B, B> {
    Handler::builder::<Opt>()
        .on::<Optimize>(move |p, l, k| {
            autodiff(&l, &p).and_then(move |ds| {
                let p = p.clone();
                let k = k.clone();
                perform::<f64, crate::hyper::Lrate>(()).and_then(move |alpha| {
                    let p2: Vec<f64> = p.iter().zip(&ds).map(|(w, d)| w - alpha * d).collect();
                    k.resume(p2)
                })
            })
        })
        .build_identity()
}

#[cfg(test)]
mod tests {
    use super::*;
    use selc::{handle, loss};

    /// One optimisation step on the fixed quadratic `(p0 − 3)²`.
    fn quadratic_step(lr: f64, p0: f64) -> Vec<f64> {
        let prog = perform::<f64, Optimize>(vec![p0]).and_then(|p| {
            let e = p[0] - 3.0;
            loss(e * e).map(move |_| p.clone())
        });
        let (_, p) = handle(&gd_handler(lr), prog).run_unwrap();
        p
    }

    #[test]
    fn one_step_moves_towards_the_minimum() {
        // grad at 0 of (x−3)² is −6; step 0.1 ⇒ 0.6
        let p = quadratic_step(0.1, 0.0);
        assert!((p[0] - 0.6).abs() < 1e-4, "{p:?}");
    }

    #[test]
    fn iterating_converges_to_the_minimum() {
        let mut x = 0.0;
        for _ in 0..100 {
            x = quadratic_step(0.2, x)[0];
        }
        assert!((x - 3.0).abs() < 1e-3, "x = {x}");
    }

    #[test]
    fn probe_losses_collects_in_order() {
        let h: Handler<f64, Vec<f64>, Vec<f64>> = Handler::builder::<Opt>()
            .on::<Optimize>(|p, l, k| {
                probe_losses(&l, vec![vec![1.0], vec![2.0], vec![3.0]]).and_then(move |ls| {
                    let k = k.clone();
                    let _ = p;
                    // resume with the probed losses as "parameters"
                    k.resume(ls)
                })
            })
            .build_identity();
        // downstream loss = 10 * p[0]
        let prog = perform::<f64, Optimize>(vec![0.0])
            .and_then(|p| loss(10.0 * p[0]).map(move |_| p.clone()));
        let (_, ls) = handle(&h, prog).run_unwrap();
        assert_eq!(ls, vec![10.0, 20.0, 30.0]);
    }

    #[test]
    fn autodiff_of_downstream_quadratic() {
        let h: Handler<f64, Vec<f64>, Vec<f64>> = Handler::builder::<Opt>()
            .on::<Optimize>(|p, l, k| autodiff(&l, &p).and_then(move |g| k.resume(g)))
            .build_identity();
        // loss = (p0 − 1)² + (p1 + 2)²; at (0,0) gradient = (−2, 4)
        let prog = perform::<f64, Optimize>(vec![0.0, 0.0]).and_then(|p| {
            let v = (p[0] - 1.0) * (p[0] - 1.0) + (p[1] + 2.0) * (p[1] + 2.0);
            loss(v).map(move |_| p.clone())
        });
        let (_, g) = handle(&h, prog).run_unwrap();
        assert!((g[0] + 2.0).abs() < 1e-4, "{g:?}");
        assert!((g[1] - 4.0).abs() < 1e-4, "{g:?}");
    }
}
