//! Engine-backed hyperparameter search (§4.3 "Hyperparameters" at
//! scale): chunked parallel grid search over replayed programs, and
//! branch-and-bound training-run tuning.
//!
//! Three layers, all bit-identical in their winners to the sequential
//! scans they parallelise (for NaN-free losses — see `selection::par`
//! for the `total_cmp` vs. `<` caveat; diverging training runs may
//! reach `+∞`, which both orders treat identically, but must not reach
//! `NaN`):
//!
//! * [`grid_search`] — generic parallel argmin over a parameter grid
//!   with a plain loss closure;
//! * [`tune_lr_parallel`] — the paper's `tuneLR` distributed: the grid
//!   is split into **batches**, each worker replays the program (`Sel`
//!   trees cannot cross threads — factories do) and probes its batch
//!   through the sequential memoised tuner, and the engine merges batch
//!   winners deterministically. The per-batch [`selc::MemoChoice`]
//!   counters flow into the engine's [`SearchStats::memo`] telemetry;
//! * [`tune_training_run`] — grid search over whole SGD training runs
//!   scored by cumulative training loss, with early abort: the running
//!   loss total is monotone (squared errors are non-negative), hence a
//!   true lower bound, so a candidate whose partial total already
//!   strictly exceeds the shared best is abandoned mid-run. Diverging
//!   learning rates die after a handful of data points instead of
//!   training to completion.

use crate::dataset::Dataset;
use crate::hyper::{probe_grid_argmin, Lr};
use crate::linreg::sgd_step;
use selc::{handle, CacheStats, Handler, MemoChoice, Replay, Sel, ShardedCache, SharedCache};
use selc_engine::{
    CacheStatsSink, CancelToken, CandidateEval, Engine, Outcome, ParallelEngine, SearchResult,
    SearchStats, SharedBound,
};
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

/// The result of a parallel tuning run.
#[derive(Clone, Debug, PartialEq)]
pub struct TuneOutcome {
    /// The winning learning rate.
    pub alpha: f64,
    /// Its loss (probed error or cumulative training loss).
    pub err: f64,
    /// Engine telemetry (evaluated/pruned counts, memo probes/hits).
    pub stats: SearchStats,
}

/// Generic parallel grid search: first `params` entry minimising `loss`,
/// evaluated on the engine's pool. Same winner as a sequential
/// first-minimum scan.
///
/// # Panics
///
/// Panics if `params` is empty.
pub fn grid_search<P, F, G>(engine: &G, params: Vec<P>, loss: F) -> (P, f64, SearchStats)
where
    P: Clone + Send + Sync + 'static,
    F: Fn(&P) -> f64 + Send + Sync,
    G: Engine,
{
    assert!(!params.is_empty(), "grid_search needs at least one candidate");
    let out =
        selc_engine::minimize(engine, params.len(), |i| loss(&params[i])).expect("non-empty grid");
    (params[out.index].clone(), out.loss, out.stats)
}

/// A chunked tuner handler: probes exactly `batch` through the memoised
/// grid scan and *returns* the best `(rate, error)` pair. The handler's
/// answer for a program that never reads the rate is the batch's first
/// entry with infinite error, so empty-probe batches lose to any batch
/// that probed.
fn tune_batch_handler<A: Clone + 'static>(
    batch: Vec<f64>,
    sink: Rc<RefCell<CacheStats>>,
) -> Handler<f64, A, (f64, f64)> {
    let default = batch[0];
    Handler::builder::<Lr>()
        .on::<crate::hyper::Lrate>(move |(), l, _k| {
            let memo = MemoChoice::with_key(&l, |r: &f64| r.to_bits());
            let sink = Rc::clone(&sink);
            let m2 = memo.clone();
            probe_grid_argmin(&memo, batch.clone()).map(move |best| {
                let merged = sink.borrow().merged(&m2.stats());
                *sink.borrow_mut() = merged;
                best
            })
        })
        .ret(move |_a| Sel::pure((default, f64::INFINITY)))
        .build()
}

/// Evaluator for [`tune_lr_parallel`]: candidate `i` is the `i`-th batch
/// of the grid; its loss is the best probed error inside the batch.
struct BatchEval<P, A> {
    batches: Vec<Vec<f64>>,
    program: P,
    sink: CacheStatsSink,
    _result: std::marker::PhantomData<fn() -> A>,
}

impl<P, A> BatchEval<P, A>
where
    P: Replay<f64, A>,
    A: Clone + 'static,
{
    /// Replays the program against one batch; pure, so rerunning the
    /// winner reproduces exactly the scored pair.
    fn run_batch(&self, i: usize) -> (f64, f64, CacheStats) {
        let sink = Rc::new(RefCell::new(CacheStats::default()));
        let h = tune_batch_handler(self.batches[i].clone(), Rc::clone(&sink));
        let (_, pair) = handle(&h, self.program.build())
            .run()
            .expect("tuned program reached the top level with an unhandled operation");
        let stats = *sink.borrow();
        (pair.0, pair.1, stats)
    }
}

impl<P, A> CandidateEval<f64> for BatchEval<P, A>
where
    P: Replay<f64, A>,
    A: Clone + 'static,
{
    fn eval(&self, i: usize, _bound: &SharedBound<f64>) -> Option<f64> {
        let (_alpha, err, stats) = self.run_batch(i);
        self.sink.record(&stats);
        Some(err)
    }

    fn cache_stats(&self) -> CacheStats {
        self.sink.total()
    }
}

/// Parallel `tuneLR`: splits `grid` into batches of `batch_size`, probes
/// each batch against a fresh replay of `program` on the worker pool,
/// and merges batch winners deterministically. For programs that read
/// the rate once (the paper's pattern), the winning rate is bit-identical
/// to `handle(tune_lr(grid), program)` — both are first-strict-minimum
/// scans of the same probed errors, and batching preserves the global
/// scan order.
///
/// # Panics
///
/// Panics if `grid` is empty or `batch_size` is zero.
pub fn tune_lr_parallel<P, A, G>(
    engine: &G,
    grid: Vec<f64>,
    batch_size: usize,
    program: P,
) -> TuneOutcome
where
    P: Replay<f64, A>,
    A: Clone + 'static,
    G: Engine,
{
    assert!(!grid.is_empty(), "tune_lr_parallel needs at least one candidate rate");
    assert!(batch_size >= 1, "batch_size must be positive");
    let batches: Vec<Vec<f64>> = grid.chunks(batch_size).map(<[f64]>::to_vec).collect();
    let n = batches.len();
    let eval = BatchEval {
        batches,
        program,
        sink: CacheStatsSink::default(),
        _result: std::marker::PhantomData,
    };
    let out: Outcome<f64> = engine.search(n, &eval).expect("non-empty grid");
    let (alpha, err, _) = eval.run_batch(out.index);
    TuneOutcome { alpha, err, stats: out.stats }
}

/// The cached batch handler: like [`tune_batch_handler`], but probes go
/// through a [`SharedCache`] keyed on the rate's bits, so a rate any
/// worker (or any earlier batch, or any earlier *search*) already probed
/// is answered without running the future. Sound for replays of one
/// program factory: probing is pure, so the cached error is
/// bit-identical to a recomputed one.
fn tune_batch_handler_cached<A: Clone + 'static>(
    batch: Vec<f64>,
    cache: SharedCache<u64, f64>,
) -> Handler<f64, A, (f64, f64)> {
    let default = batch[0];
    Handler::builder::<Lr>()
        .on::<crate::hyper::Lrate>(move |(), l, _k| {
            let memo = MemoChoice::with_cache(&l, |r: &f64| r.to_bits(), Arc::clone(&cache));
            probe_grid_argmin(&memo, batch.clone())
        })
        .ret(move |_a| Sel::pure((default, f64::INFINITY)))
        .build()
}

/// Evaluator for [`tune_lr_parallel_cached`]: one batch per candidate,
/// every batch probing through one shared rate cache.
struct CachedBatchEval<P, A> {
    batches: Vec<Vec<f64>>,
    program: P,
    cache: SharedCache<u64, f64>,
    base: CacheStats,
    _result: std::marker::PhantomData<fn() -> A>,
}

impl<P, A> CachedBatchEval<P, A>
where
    P: Replay<f64, A>,
    A: Clone + 'static,
{
    fn run_batch(&self, i: usize) -> (f64, f64) {
        let h = tune_batch_handler_cached(self.batches[i].clone(), Arc::clone(&self.cache));
        let (_, pair) = handle(&h, self.program.build())
            .run()
            .expect("tuned program reached the top level with an unhandled operation");
        pair
    }
}

impl<P, A> CandidateEval<f64> for CachedBatchEval<P, A>
where
    P: Replay<f64, A>,
    A: Clone + 'static,
{
    fn eval(&self, i: usize, _bound: &SharedBound<f64>) -> Option<f64> {
        let (_alpha, err) = self.run_batch(i);
        Some(err)
    }

    fn cache_stats(&self) -> CacheStats {
        self.cache.stats().since(&self.base)
    }
}

/// [`tune_lr_parallel`] with a **shared** rate cache: rate-evaluation
/// results are shared across the batched parallel workers (and across
/// repeated calls reusing the same handle), so a rate duplicated across
/// batches — or across whole searches — runs the future once globally.
/// The winning rate stays bit-identical to the sequential
/// `handle(tune_lr(grid), program)` scan; only the amount of evaluation
/// work changes. `stats.cache` reports this search's share of the shared
/// handle's traffic.
///
/// # Panics
///
/// Panics if `grid` is empty or `batch_size` is zero.
pub fn tune_lr_parallel_cached<P, A, G>(
    engine: &G,
    grid: Vec<f64>,
    batch_size: usize,
    program: P,
    cache: &SharedCache<u64, f64>,
) -> TuneOutcome
where
    P: Replay<f64, A>,
    A: Clone + 'static,
    G: Engine,
{
    assert!(!grid.is_empty(), "tune_lr_parallel_cached needs at least one candidate rate");
    assert!(batch_size >= 1, "batch_size must be positive");
    let batches: Vec<Vec<f64>> = grid.chunks(batch_size).map(<[f64]>::to_vec).collect();
    let n = batches.len();
    let eval = CachedBatchEval {
        batches,
        program,
        cache: Arc::clone(cache),
        base: cache.stats(),
        _result: std::marker::PhantomData,
    };
    let out: Outcome<f64> = engine.search(n, &eval).expect("non-empty grid");
    let stats = out.stats;
    let (alpha, err) = eval.run_batch(out.index);
    TuneOutcome { alpha, err, stats }
}

/// Evaluator for [`tune_training_run`]: candidate `i` is `grid[i]`; its
/// loss is the cumulative squared error along a full handler-SGD
/// training run. The running total is monotone non-decreasing, so it is
/// consulted against the shared bound after every data point and the
/// run aborts (`None`) as soon as it is strictly dominated.
struct TrainEval {
    grid: Vec<f64>,
    data: Arc<Dataset>,
    init: (f64, f64),
    epochs: usize,
    prune: bool,
}

impl TrainEval {
    fn train(&self, alpha: f64, bound: Option<&SharedBound<f64>>) -> Option<f64> {
        let mut p = vec![self.init.0, self.init.1];
        let mut total = 0.0_f64;
        for _ in 0..self.epochs {
            for &(x, y) in &self.data.points {
                p = sgd_step(p, x, y, alpha);
                let e = y - (p[0] * x + p[1]);
                total += e * e;
                if let Some(b) = bound {
                    if b.dominated(&total) {
                        return None;
                    }
                }
            }
        }
        Some(total)
    }
}

impl CandidateEval<f64> for TrainEval {
    fn eval(&self, i: usize, bound: &SharedBound<f64>) -> Option<f64> {
        self.train(self.grid[i], self.prune.then_some(bound))
    }
}

/// Grid search over whole SGD training runs (handler SGD, one run per
/// rate), scored by cumulative training loss, with branch-and-bound
/// early abort of dominated runs. Returns the winning rate, its total
/// loss, and the telemetry (`stats.pruned` counts aborted runs).
///
/// # Panics
///
/// Panics if `grid` is empty.
pub fn tune_training_run<G: Engine>(
    engine: &G,
    grid: Vec<f64>,
    data: &Dataset,
    init: (f64, f64),
    epochs: usize,
) -> TuneOutcome {
    assert!(!grid.is_empty(), "tune_training_run needs at least one candidate rate");
    let n = grid.len();
    let eval = TrainEval { grid, data: Arc::new(data.clone()), init, epochs, prune: true };
    let out = engine.search(n, &eval).expect("non-empty grid");
    TuneOutcome { alpha: eval.grid[out.index], err: out.loss, stats: out.stats }
}

/// Evaluator for [`tune_training_run_cached`]: a [`TrainEval`] behind a
/// shared rate→total-loss cache. Completed runs are cached; aborted
/// (pruned) runs are not — "dominated right now" is a fact about the
/// current bound, not a loss.
struct CachedTrainEval<'c> {
    inner: TrainEval,
    cache: &'c ShardedCache<u64, f64>,
    base: CacheStats,
}

impl CandidateEval<f64> for CachedTrainEval<'_> {
    fn eval(&self, i: usize, bound: &SharedBound<f64>) -> Option<f64> {
        let key = self.inner.grid[i].to_bits();
        if let Some(total) = self.cache.lookup(&key) {
            return Some(total);
        }
        let total = self.inner.train(self.inner.grid[i], self.inner.prune.then_some(bound))?;
        self.cache.store(key, total);
        Some(total)
    }

    fn cache_stats(&self) -> CacheStats {
        self.cache.stats().since(&self.base)
    }
}

/// [`tune_training_run`] against a shared rate→total-loss cache: a rate
/// any earlier run (or concurrent worker) already trained to completion
/// is answered from the cache instead of re-training. Repeated tuning
/// over overlapping grids — the cross-run reuse pattern — pays for each
/// distinct rate once per cache epoch. Winners stay bit-identical to the
/// uncached search (cached totals are the totals the training loop
/// computed).
///
/// # Panics
///
/// Panics if `grid` is empty.
pub fn tune_training_run_cached<G: Engine>(
    engine: &G,
    grid: Vec<f64>,
    data: &Dataset,
    init: (f64, f64),
    epochs: usize,
    cache: &ShardedCache<u64, f64>,
) -> TuneOutcome {
    assert!(!grid.is_empty(), "tune_training_run_cached needs at least one candidate rate");
    let n = grid.len();
    let inner = TrainEval { grid, data: Arc::new(data.clone()), init, epochs, prune: true };
    let eval = CachedTrainEval { inner, cache, base: cache.stats() };
    let out = engine.search(n, &eval).expect("non-empty grid");
    TuneOutcome { alpha: eval.inner.grid[out.index], err: out.loss, stats: out.stats }
}

/// [`tune_training_run`] under a deadline: the engine checks `cancel`
/// candidate-by-candidate alongside the shared bound. A completed search
/// returns `Some` with the usual bit-identical winner; a cancelled one
/// returns `None` — a partial grid scan has no deterministic winner (the
/// true minimiser may sit among the unevaluated rates), so a timed-out
/// tune yields nothing rather than a rate that depends on where the
/// clock fired.
///
/// # Panics
///
/// Panics if `grid` is empty.
pub fn tune_training_run_with<G: Engine>(
    engine: &G,
    grid: Vec<f64>,
    data: &Dataset,
    init: (f64, f64),
    epochs: usize,
    cancel: &CancelToken,
) -> Option<TuneOutcome> {
    assert!(!grid.is_empty(), "tune_training_run_with needs at least one candidate rate");
    let n = grid.len();
    let eval = TrainEval { grid, data: Arc::new(data.clone()), init, epochs, prune: true };
    match engine.search_with(n, &eval, cancel) {
        SearchResult::Complete(out) => {
            let out = out.expect("non-empty grid");
            Some(TuneOutcome { alpha: eval.grid[out.index], err: out.loss, stats: out.stats })
        }
        SearchResult::Cancelled(_) => None,
    }
}

/// The default-pool (`SELC_THREADS`) entry point for
/// [`tune_training_run`].
pub fn tune_training_run_parallel(
    grid: Vec<f64>,
    data: &Dataset,
    init: (f64, f64),
    epochs: usize,
) -> TuneOutcome {
    tune_training_run(&ParallelEngine::auto(), grid, data, init, epochs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hyper::tune_lr;
    use crate::optimize::{gd_handler_tuned, Optimize};
    use selc::{loss, perform};
    use selc_engine::SequentialEngine;

    /// One gd step on `(p − 3)²` from `p0`, rate served by the LR effect.
    fn step_prog(p0: f64) -> Sel<f64, Vec<f64>> {
        let prog = perform::<f64, Optimize>(vec![p0]).and_then(|p| {
            let e = p[0] - 3.0;
            loss(e * e).map(move |_| p.clone())
        });
        handle(&gd_handler_tuned(), prog)
    }

    fn engines() -> Vec<ParallelEngine> {
        vec![
            ParallelEngine { threads: 1, chunk: 0, prune: true },
            ParallelEngine { threads: 2, chunk: 1, prune: true },
            ParallelEngine { threads: 4, chunk: 1, prune: false },
        ]
    }

    #[test]
    fn parallel_tuner_matches_sequential_tune_lr() {
        let grid = vec![1.0, 0.9, 0.5, 0.25, 0.1, 0.75];
        let (_, seq_alpha) = handle(&tune_lr(grid.clone()), step_prog(0.0)).run_unwrap();
        for eng in engines() {
            for batch in [1, 2, 3, 6, 10] {
                let out = tune_lr_parallel(&eng, grid.clone(), batch, || step_prog(0.0));
                assert_eq!(out.alpha, seq_alpha, "batch {batch}");
            }
        }
        let out = tune_lr_parallel(&SequentialEngine::exhaustive(), grid, 2, || step_prog(0.0));
        assert_eq!(out.alpha, seq_alpha);
    }

    #[test]
    fn batch_memo_hits_surface_in_engine_telemetry() {
        // Duplicates *within* a batch hit the per-batch MemoChoice cache;
        // the counters must surface through SearchStats.
        let grid = vec![0.5, 0.5, 1.0, 1.0];
        let out = tune_lr_parallel(
            &ParallelEngine { threads: 2, chunk: 1, prune: false },
            grid,
            2,
            || step_prog(0.0),
        );
        assert_eq!(out.alpha, 0.5);
        assert_eq!(out.stats.cache.misses, 2, "one real probe per distinct rate per batch");
        assert_eq!(out.stats.cache.hits, 2, "one hit per duplicated rate");
    }

    #[test]
    fn programs_that_never_read_the_rate_fall_back_to_first_entry() {
        let out = tune_lr_parallel(&ParallelEngine::with_threads(2), vec![0.25, 0.75], 1, || {
            Sel::<f64, Vec<f64>>::pure(vec![])
        });
        assert_eq!(out.alpha, 0.25);
        assert!(out.err.is_infinite());
    }

    #[test]
    fn training_run_tuner_picks_converging_rate_and_prunes_divergers() {
        let data = Dataset::linear(24, 2.0, -1.0, 0.0, 7);
        // 0.05 converges; the large rates diverge violently.
        let grid = vec![2.0, 1.5, 0.05, 1.2, 1.9];
        let seq_exhaustive =
            tune_training_run(&SequentialEngine::exhaustive(), grid.clone(), &data, (0.0, 0.0), 2);
        assert_eq!(seq_exhaustive.alpha, 0.05);
        for eng in engines() {
            let out = tune_training_run(&eng, grid.clone(), &data, (0.0, 0.0), 2);
            assert_eq!(out.alpha, seq_exhaustive.alpha);
            assert_eq!(out.err, seq_exhaustive.err, "winner loss is bit-identical");
        }
        let pruned = tune_training_run(&SequentialEngine::pruning(), grid, &data, (0.0, 0.0), 2);
        assert_eq!(pruned.alpha, 0.05);
        assert!(pruned.stats.pruned >= 1, "diverging rates abort early: {:?}", pruned.stats);
    }

    #[test]
    fn cached_tuner_matches_sequential_and_reuses_across_searches() {
        let grid = vec![1.0, 0.9, 0.5, 0.25, 0.1, 0.75];
        let (_, seq_alpha) = handle(&tune_lr(grid.clone()), step_prog(0.0)).run_unwrap();
        let cache: SharedCache<u64, f64> = Arc::new(ShardedCache::unbounded(4));
        for (round, eng) in engines().into_iter().enumerate() {
            for batch in [1, 2, 3, 6] {
                let out =
                    tune_lr_parallel_cached(&eng, grid.clone(), batch, || step_prog(0.0), &cache);
                assert_eq!(out.alpha, seq_alpha, "round {round} batch {batch}");
                if round > 0 {
                    assert_eq!(
                        out.stats.cache.misses, 0,
                        "later searches are answered entirely from the shared cache"
                    );
                }
            }
        }
        // Six distinct rates were ever really probed, across all rounds.
        assert_eq!(cache.stats().insertions, 6);
        assert!(cache.stats().hits > 0);
    }

    #[test]
    fn cached_tuner_survives_forced_eviction_bit_identically() {
        let grid = vec![1.0, 0.9, 0.5, 0.25, 0.1, 0.75, 0.5, 0.9];
        let (_, seq_alpha) = handle(&tune_lr(grid.clone()), step_prog(0.0)).run_unwrap();
        // Capacity 2 over 6 distinct rates: heavy eviction.
        let cache: SharedCache<u64, f64> = Arc::new(ShardedCache::clock_lru(2, 2));
        for eng in engines() {
            let out = tune_lr_parallel_cached(&eng, grid.clone(), 2, || step_prog(0.0), &cache);
            assert_eq!(out.alpha, seq_alpha);
        }
        assert!(cache.stats().evictions > 0, "cap 2 must evict: {:?}", cache.stats());
    }

    #[test]
    fn cached_training_run_tuner_reuses_completed_runs() {
        let data = Dataset::linear(24, 2.0, -1.0, 0.0, 7);
        let grid = vec![2.0, 1.5, 0.05, 1.2, 1.9];
        let uncached =
            tune_training_run(&SequentialEngine::exhaustive(), grid.clone(), &data, (0.0, 0.0), 2);
        let cache: ShardedCache<u64, f64> = ShardedCache::unbounded(4);
        let first = tune_training_run_cached(
            &SequentialEngine::exhaustive(),
            grid.clone(),
            &data,
            (0.0, 0.0),
            2,
            &cache,
        );
        assert_eq!((first.alpha, first.err), (uncached.alpha, uncached.err));
        assert_eq!(first.stats.cache.hits, 0);
        for eng in engines() {
            let again = tune_training_run_cached(&eng, grid.clone(), &data, (0.0, 0.0), 2, &cache);
            assert_eq!((again.alpha, again.err), (uncached.alpha, uncached.err));
            assert!(again.stats.cache.hits > 0, "warm cache answers repeat runs");
        }
        // Epoch invalidation (new dataset, say) forces re-training.
        cache.advance_epoch();
        let fresh = tune_training_run_cached(
            &SequentialEngine::exhaustive(),
            grid,
            &data,
            (0.0, 0.0),
            2,
            &cache,
        );
        assert_eq!((fresh.alpha, fresh.err), (uncached.alpha, uncached.err));
        assert_eq!(fresh.stats.cache.hits, 0, "post-epoch search recomputes");
    }

    #[test]
    fn deadline_tuner_completes_bit_identically_or_returns_none() {
        let data = Dataset::linear(24, 2.0, -1.0, 0.0, 7);
        let grid = vec![2.0, 1.5, 0.05, 1.2, 1.9];
        let reference =
            tune_training_run(&SequentialEngine::exhaustive(), grid.clone(), &data, (0.0, 0.0), 2);
        for eng in engines() {
            let done = tune_training_run_with(
                &eng,
                grid.clone(),
                &data,
                (0.0, 0.0),
                2,
                &CancelToken::never(),
            )
            .expect("never token cannot cancel");
            assert_eq!((done.alpha, done.err), (reference.alpha, reference.err));
            let dead = CancelToken::never();
            dead.cancel();
            assert_eq!(
                tune_training_run_with(&eng, grid.clone(), &data, (0.0, 0.0), 2, &dead),
                None,
                "a pre-cancelled tune must not report a winner"
            );
        }
    }

    #[test]
    fn generic_grid_search_matches_plain_scan() {
        let params: Vec<i64> = (0..50).collect();
        let (p, l, stats) = grid_search(&ParallelEngine::with_threads(3), params.clone(), |p| {
            ((p - 17) * (p - 17)) as f64
        });
        assert_eq!((p, l), (17, 0.0));
        assert_eq!(stats.evaluated, 50);
    }
}
