//! Saddle-point (GAN-style) training: `min_G max_D V(G, D)` as *two*
//! optimisation handlers sharing one loss channel.
//!
//! §4.3 observes that GAN training "is also a two-player game … the
//! discriminator is a minimizer and the generator is a maximizer". This
//! module realises that with the machinery of this library: a descent
//! handler for the minimising player's `MinStep` effect, an *ascent*
//! handler for the maximising player's `MaxStep` effect, both
//! differentiating their choice continuations — which see the same
//! recorded value function.

use crate::optimize::probe_losses;
use selc::{effect, handle, loss, perform, Choice, Handler, Sel};

effect! {
    /// The minimising player's parameter update.
    pub effect MinPlayer {
        /// Request updated parameters for the minimiser.
        op MinStep : Vec<f64> => Vec<f64>;
    }
}

effect! {
    /// The maximising player's parameter update.
    pub effect MaxPlayer {
        /// Request updated parameters for the maximiser.
        op MaxStep : Vec<f64> => Vec<f64>;
    }
}

fn grad_of_choice(l: &Choice<f64, Vec<f64>>, p: &[f64]) -> Sel<f64, Vec<f64>> {
    let h = 1e-5;
    let dim = p.len();
    let mut points = Vec::with_capacity(2 * dim);
    for i in 0..dim {
        let mut plus = p.to_vec();
        plus[i] += h;
        points.push(plus);
        let mut minus = p.to_vec();
        minus[i] -= h;
        points.push(minus);
    }
    probe_losses(l, points)
        .map(move |ls| (0..dim).map(|i| (ls[2 * i] - ls[2 * i + 1]) / (2.0 * h)).collect())
}

/// Gradient-*descent* handler for the minimising player.
pub fn descent_handler<B: Clone + 'static>(lr: f64) -> Handler<f64, B, B> {
    Handler::builder::<MinPlayer>()
        .on::<MinStep>(move |p, l, k| {
            grad_of_choice(&l, &p).and_then(move |g| {
                let p2: Vec<f64> = p.iter().zip(&g).map(|(w, d)| w - lr * d).collect();
                k.resume(p2)
            })
        })
        .build_identity()
}

/// Gradient-*ascent* handler for the maximising player.
pub fn ascent_handler<B: Clone + 'static>(lr: f64) -> Handler<f64, B, B> {
    Handler::builder::<MaxPlayer>()
        .on::<MaxStep>(move |p, l, k| {
            grad_of_choice(&l, &p).and_then(move |g| {
                let p2: Vec<f64> = p.iter().zip(&g).map(|(w, d)| w + lr * d).collect();
                k.resume(p2)
            })
        })
        .build_identity()
}

/// One simultaneous round of the game `V(x, y)`: both players request
/// updated parameters, then the shared value function is recorded once.
/// The minimiser's choice continuation sees `V` as its loss; the
/// maximiser's sees the same recorded value and climbs it.
pub fn round<V>(x: Vec<f64>, y: Vec<f64>, value: V) -> Sel<f64, (Vec<f64>, Vec<f64>)>
where
    V: Fn(&[f64], &[f64]) -> f64 + Clone + 'static,
{
    perform::<f64, MinStep>(x).and_then(move |x2| {
        let value = value.clone();
        perform::<f64, MaxStep>(y.clone()).and_then(move |y2| {
            let v = value(&x2, &y2);
            let x2 = x2.clone();
            loss(v).map(move |_| (x2.clone(), y2.clone()))
        })
    })
}

/// Runs `iters` rounds of gradient descent-ascent on `V`, each round
/// isolated with `lreset` (as in the paper's training loop).
pub fn train<V>(
    value: V,
    mut x: Vec<f64>,
    mut y: Vec<f64>,
    lr: f64,
    iters: usize,
) -> (Vec<f64>, Vec<f64>)
where
    V: Fn(&[f64], &[f64]) -> f64 + Clone + 'static,
{
    let hmin = descent_handler(lr);
    let hmax = ascent_handler(lr);
    for _ in 0..iters {
        let prog =
            handle(&hmin, handle(&hmax, round(x.clone(), y.clone(), value.clone()))).lreset();
        let (_, (x2, y2)) = prog.run_unwrap();
        x = x2;
        y = y2;
    }
    (x, y)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// V(x, y) = (x − 1)² − (y − 2)²: the unique saddle is (1, 2); the
    /// minimiser controls x, the maximiser y.
    fn quad(x: &[f64], y: &[f64]) -> f64 {
        (x[0] - 1.0).powi(2) - (y[0] - 2.0).powi(2)
    }

    #[test]
    fn descent_ascent_finds_the_saddle() {
        let (x, y) = train(quad, vec![0.0], vec![0.0], 0.2, 60);
        assert!((x[0] - 1.0).abs() < 1e-3, "x = {x:?}");
        assert!((y[0] - 2.0).abs() < 1e-3, "y = {y:?}");
    }

    #[test]
    fn one_round_moves_both_players_correctly() {
        // at (0,0): ∂V/∂x = −2 (descend ⇒ x increases), ∂V/∂y = 4 (ascend
        // ⇒ y increases).
        let (x, y) = train(quad, vec![0.0], vec![0.0], 0.1, 1);
        assert!((x[0] - 0.2).abs() < 1e-3, "x = {x:?}");
        assert!((y[0] - 0.4).abs() < 1e-3, "y = {y:?}");
    }

    #[test]
    fn value_at_saddle_is_stationary() {
        let (x, y) = train(quad, vec![1.0], vec![2.0], 0.3, 5);
        assert!((x[0] - 1.0).abs() < 1e-6);
        assert!((y[0] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn two_dimensional_players() {
        // V = |x − a|² − |y − b|² with vector players.
        let v = |x: &[f64], y: &[f64]| {
            (x[0] - 1.0).powi(2) + (x[1] + 2.0).powi(2)
                - (y[0] - 0.5).powi(2)
                - (y[1] - 1.5).powi(2)
        };
        let (x, y) = train(v, vec![0.0, 0.0], vec![0.0, 0.0], 0.2, 80);
        assert!((x[0] - 1.0).abs() < 1e-2 && (x[1] + 2.0).abs() < 1e-2, "x = {x:?}");
        assert!((y[0] - 0.5).abs() < 1e-2 && (y[1] - 1.5).abs() < 1e-2, "y = {y:?}");
    }
}
