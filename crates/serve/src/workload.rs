//! Running a validated workload against a tenant's warm state.
//!
//! This is the seam between the wire and the engines: requests are
//! validated *before* any compilation or allocation (a hostile depth
//! cannot make the server build a `2^60`-leaf tree), and execution
//! threads the session's `CancelToken` into the same entry points the
//! direct (library) callers use — `search_compiled_cached_with` for
//! chains, `solve_alphabeta_tt_cancellable` for games — so a served
//! winner is the *same computation* as a direct one, bit for bit.

use crate::protocol::{WireStats, Workload};
use crate::tenants::Tenant;
use lambda_rt::search_compiled_cached_with;
use selc_engine::{CancelToken, SearchResult, SearchStats, TreeEngine};

/// Largest decide chain the server will compile (space `2^24`).
pub const MAX_CHAIN_CHOICES: u8 = 24;

/// Largest per-ply branching factor for game workloads.
pub const MAX_GAME_BRANCHING: u8 = 8;

/// Deepest game tree the server will generate.
pub const MAX_GAME_DEPTH: u8 = 12;

/// Cap on `branching^depth` (the leaf count actually allocated).
pub const MAX_GAME_LEAVES: u64 = 1 << 20;

/// Checks a workload's parameters against the resource caps. The error
/// string goes back to the client verbatim (as `Response::Malformed`).
pub fn validate(w: &Workload) -> Result<(), String> {
    match *w {
        Workload::Chain { choices } => {
            if choices == 0 || choices > MAX_CHAIN_CHOICES {
                return Err(format!(
                    "chain choices must be 1..={MAX_CHAIN_CHOICES}, got {choices}"
                ));
            }
        }
        Workload::Game { branching, depth, seed: _ } => {
            if branching == 0 || branching > MAX_GAME_BRANCHING {
                return Err(format!(
                    "game branching must be 1..={MAX_GAME_BRANCHING}, got {branching}"
                ));
            }
            if depth == 0 || depth > MAX_GAME_DEPTH {
                return Err(format!("game depth must be 1..={MAX_GAME_DEPTH}, got {depth}"));
            }
            let leaves = (u64::from(branching)).pow(u32::from(depth));
            if leaves > MAX_GAME_LEAVES {
                return Err(format!(
                    "game size {branching}^{depth} = {leaves} leaves exceeds {MAX_GAME_LEAVES}"
                ));
            }
        }
    }
    Ok(())
}

/// What running a workload produced.
#[derive(Clone, Debug, PartialEq)]
pub enum Ran {
    /// Completed within the deadline.
    Done {
        /// Winning candidate / leaf index.
        index: u64,
        /// Its loss (game value for trees).
        loss: f64,
        /// Telemetry, including the tenant-cache deltas for this run.
        stats: WireStats,
    },
    /// The token fired first.
    TimedOut {
        /// Sound partial best, when the search model has one.
        partial: Option<(u64, f64)>,
    },
}

fn wire_stats(s: &SearchStats) -> WireStats {
    WireStats {
        evaluated: s.evaluated,
        pruned: s.pruned,
        threads: s.threads as u64,
        cache_hits: s.cache.hits,
        cache_misses: s.cache.misses,
        cache_insertions: s.cache.insertions,
        cache_evictions: s.cache.evictions,
        summary_exact_hits: s.summary.exact_hits,
        summary_bound_hits: s.summary.bound_hits,
        summary_misses: s.summary.misses,
        summary_exact_installs: s.summary.exact_installs,
        summary_bound_installs: s.summary.bound_installs,
    }
}

/// Runs a **validated** workload for `tenant` under `cancel`.
///
/// # Panics
///
/// Panics if the workload was not [`validate`]d (e.g. a zero-choice
/// chain would make the engines' non-empty-space invariants fire).
pub fn run(tenant: &Tenant, w: &Workload, cancel: &CancelToken) -> Ran {
    match *w {
        Workload::Chain { choices } => {
            let cands = tenant.chain(choices);
            let engine = TreeEngine::auto();
            // `nonneg = false`: no pruning means every interior node
            // resolves *exactly*, so the cold pass installs exact
            // subtree summaries all the way to the root — that is what
            // lets a warm repeat answer in O(depth) instead of merely
            // pruning fast, and warmth is this server's whole point.
            match search_compiled_cached_with(&engine, &cands, &tenant.lc, false, cancel) {
                SearchResult::Complete(out) => {
                    // `validate` rejects zero-choice chains, so the
                    // space is provably non-empty here; an empty argmin
                    // is a workspace bug, not a client error.
                    // selc-lint: allow(serve-no-panic)
                    let out = out.expect("validated chains have non-empty spaces");
                    Ran::Done {
                        index: out.index as u64,
                        loss: out.loss.0.as_scalar(),
                        stats: wire_stats(&out.stats),
                    }
                }
                SearchResult::Cancelled(partial) => Ran::TimedOut {
                    partial: partial.map(|o| (o.index as u64, o.loss.0.as_scalar())),
                },
            }
        }
        Workload::Game { branching, depth, seed } => {
            let entry = tenant.game(branching, depth, seed);
            let base = entry.cache.stats();
            match entry.tree.solve_alphabeta_tt_cancellable(&entry.cache, cancel) {
                Some((play, value, leaves)) => {
                    let index =
                        play.iter().fold(0u64, |acc, &m| acc * u64::from(branching) + m as u64);
                    let delta = entry.cache.stats().since(&base);
                    let stats = WireStats {
                        evaluated: leaves,
                        threads: 1,
                        cache_hits: delta.hits,
                        cache_misses: delta.misses,
                        cache_insertions: delta.insertions,
                        cache_evictions: delta.evictions,
                        ..WireStats::default()
                    };
                    Ran::Done { index, loss: value, stats }
                }
                // Minimax has no sound partial best (see the solver's
                // docs), so a timed-out game reports none.
                None => Ran::TimedOut { partial: None },
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tenants::Tenants;
    use selc_engine::SequentialEngine;

    #[test]
    fn validation_rejects_degenerate_and_oversized_workloads() {
        assert!(validate(&Workload::Chain { choices: 0 }).is_err());
        assert!(validate(&Workload::Chain { choices: 25 }).is_err());
        assert!(validate(&Workload::Chain { choices: 24 }).is_ok());
        assert!(validate(&Workload::Game { branching: 0, depth: 3, seed: 0 }).is_err());
        assert!(validate(&Workload::Game { branching: 2, depth: 0, seed: 0 }).is_err());
        assert!(validate(&Workload::Game { branching: 9, depth: 2, seed: 0 }).is_err());
        assert!(validate(&Workload::Game { branching: 8, depth: 12, seed: 0 }).is_err());
        assert!(validate(&Workload::Game { branching: 2, depth: 12, seed: 0 }).is_ok());
    }

    #[test]
    fn served_chain_winners_match_a_direct_flat_scan() {
        let tenants = Tenants::default();
        let tenant = tenants.get_or_create(1);
        let w = Workload::Chain { choices: 7 };
        let Ran::Done { index, loss, stats } = run(&tenant, &w, &CancelToken::never()) else {
            panic!("never token cannot time out");
        };
        let cands = tenant.chain(7);
        let (reference, _) =
            lambda_rt::search_compiled_flat(&SequentialEngine::exhaustive(), &cands).unwrap();
        assert_eq!(index, reference.index as u64);
        assert_eq!(loss.to_bits(), reference.loss.0.as_scalar().to_bits());
        assert!(stats.cache_insertions > 0, "cold run fills the tenant table");
        // Warm repeat: answered from the tenant's summaries.
        let Ran::Done { index: i2, loss: l2, stats: warm } =
            run(&tenant, &w, &CancelToken::never())
        else {
            panic!("warm repeat cannot time out");
        };
        assert_eq!((i2, l2.to_bits()), (index, loss.to_bits()));
        // Tiny-capacity CI runs churn the summaries out; retention
        // claims only hold when the table can hold a search.
        if selc::env::configured_capacity().is_none_or(|cap| cap >= 4096) {
            assert!(warm.summary_exact_hits > 0, "repeat answers from summaries: {warm:?}");
            assert_eq!(warm.evaluated, 0, "warm repeat replays nothing: {warm:?}");
        }
    }

    #[test]
    fn served_game_winners_match_backward_induction() {
        let tenants = Tenants::default();
        let tenant = tenants.get_or_create(2);
        let w = Workload::Game { branching: 3, depth: 5, seed: 11 };
        let Ran::Done { index, loss, stats } = run(&tenant, &w, &CancelToken::never()) else {
            panic!("never token cannot time out");
        };
        let tree = selc_games::alternating::GameTree::random(3, 5, 11);
        let (play, value) = tree.solve_backward();
        let expect = play.iter().fold(0u64, |acc, &m| acc * 3 + m as u64);
        assert_eq!((index, loss.to_bits()), (expect, value.to_bits()));
        assert!(stats.evaluated > 0);
        // Warm repeat resolves at the root entry: zero leaves.
        let Ran::Done { stats: warm, .. } = run(&tenant, &w, &CancelToken::never()) else {
            panic!("warm repeat cannot time out");
        };
        assert_eq!(warm.evaluated, 0, "warm game answered from the root Exact entry");
        assert!(warm.cache_hits > 0);
    }

    #[test]
    fn expired_tokens_time_out_both_workload_kinds() {
        let tenants = Tenants::default();
        let tenant = tenants.get_or_create(3);
        let dead = CancelToken::never();
        dead.cancel();
        assert!(matches!(
            run(&tenant, &Workload::Chain { choices: 6 }, &dead),
            Ran::TimedOut { .. }
        ));
        assert_eq!(
            run(&tenant, &Workload::Game { branching: 2, depth: 6, seed: 1 }, &dead),
            Ran::TimedOut { partial: None }
        );
        // The timeouts must not have poisoned the tenant: a real run
        // still matches the direct reference.
        let Ran::Done { index, .. } =
            run(&tenant, &Workload::Chain { choices: 6 }, &CancelToken::never())
        else {
            panic!("never token cannot time out");
        };
        let cands = tenant.chain(6);
        let (reference, _) =
            lambda_rt::search_compiled_flat(&SequentialEngine::exhaustive(), &cands).unwrap();
        assert_eq!(index, reference.index as u64);
    }
}
