//! Running a validated workload against a tenant's warm state.
//!
//! This is the seam between the wire and the engines: requests are
//! validated *before* any compilation or allocation (a hostile depth
//! cannot make the server build a `2^60`-leaf tree), and execution
//! threads the session's `CancelToken` into the same entry points the
//! direct (library) callers use — `search_compiled_cached_with` for
//! chains, `solve_alphabeta_tt_cancellable` for games — so a served
//! winner is the *same computation* as a direct one, bit for bit.

use crate::protocol::{WireStats, Workload};
use crate::tenants::Tenant;
use lambda_rt::{search_compiled_cached_with, LcCandidates};
use selc_engine::{CancelToken, SearchResult, SearchStats, TreeEngine};
use selc_obs::{metrics, Counter};
use std::sync::LazyLock;

/// Largest decide chain the server will compile (space `2^24`).
pub const MAX_CHAIN_CHOICES: u8 = 24;

/// Largest per-ply branching factor for game workloads.
pub const MAX_GAME_BRANCHING: u8 = 8;

/// Deepest game tree the server will generate.
pub const MAX_GAME_DEPTH: u8 = 12;

/// Cap on `branching^depth` (the leaf count actually allocated).
pub const MAX_GAME_LEAVES: u64 = 1 << 20;

/// Workload-layer registry handles: which warmth policy chain runs
/// chose, and how many compiled programs the flow guard refused. All
/// of these ride along in a `Metrics` response (the snapshot serialises
/// the whole registry), so a scraper can see a tenant population's
/// prune-eligibility without a protocol change.
struct FlowMetrics {
    policy_certified_prune: Counter,
    policy_exact_summaries: Counter,
    shape_rejected: Counter,
}

static FLOW_METRICS: LazyLock<FlowMetrics> = LazyLock::new(|| FlowMetrics {
    policy_certified_prune: metrics::counter("serve.policy.certified_prune"),
    policy_exact_summaries: metrics::counter("serve.policy.exact_summaries"),
    shape_rejected: metrics::counter("serve.flow.shape_rejected"),
});

/// How a chain search uses the tenant's transposition table.
///
/// The two goods are in tension: mid-run pruning abandons dominated
/// subtrees, which is the fastest route to a winner but leaves those
/// subtrees without exact summaries; an unpruned pass resolves every
/// interior node exactly, so the cold run installs exact summaries all
/// the way to the root and a warm repeat answers in O(depth). The
/// server used to hard-code the warmth side of that trade; now the
/// choice is explicit and driven by what is actually known.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WarmthPolicy {
    /// Certificate-backed mid-run pruning: only available when
    /// `lambda_c::flow` certified the program's losses non-negative,
    /// and only chosen when the request is deadline-bound — a client
    /// racing a clock wants time-to-winner, not future warmth.
    CertifiedPrune,
    /// No pruning: the cold pass pays full price so repeats are
    /// O(depth). The default, and the only option for programs the
    /// flow analysis could not certify.
    ExactSummaries,
}

impl WarmthPolicy {
    /// Picks the policy from the flow verdict and the request shape.
    pub fn choose(certified: bool, deadline_bound: bool) -> WarmthPolicy {
        if certified && deadline_bound {
            WarmthPolicy::CertifiedPrune
        } else {
            WarmthPolicy::ExactSummaries
        }
    }
}

/// Flow-derived depth guard for compiled chain programs.
///
/// `validate` caps the *requested* parameter; this caps what the
/// compiled program actually does. The static decision-shape analysis
/// bounds how many decision ops any forced path can resolve, so a
/// generator bug (or a future user-supplied program) whose true depth
/// exceeds the cap — or cannot be bounded at all — is refused before
/// the engine builds its tree.
pub fn check_decision_shape(cands: &LcCandidates) -> Result<(), String> {
    let shape = cands.flow_report().shape;
    match shape.max {
        Some(max) if max <= u64::from(MAX_CHAIN_CHOICES) => Ok(()),
        Some(max) => Err(format!(
            "chain program resolves up to {max} decisions, exceeding {MAX_CHAIN_CHOICES}"
        )),
        None => Err("chain program's decision count is statically unbounded".to_owned()),
    }
}

/// Checks a workload's parameters against the resource caps. The error
/// string goes back to the client verbatim (as `Response::Malformed`).
pub fn validate(w: &Workload) -> Result<(), String> {
    match *w {
        Workload::Chain { choices } => {
            if choices == 0 || choices > MAX_CHAIN_CHOICES {
                return Err(format!(
                    "chain choices must be 1..={MAX_CHAIN_CHOICES}, got {choices}"
                ));
            }
        }
        Workload::Game { branching, depth, seed: _ } => {
            if branching == 0 || branching > MAX_GAME_BRANCHING {
                return Err(format!(
                    "game branching must be 1..={MAX_GAME_BRANCHING}, got {branching}"
                ));
            }
            if depth == 0 || depth > MAX_GAME_DEPTH {
                return Err(format!("game depth must be 1..={MAX_GAME_DEPTH}, got {depth}"));
            }
            let leaves = (u64::from(branching)).pow(u32::from(depth));
            if leaves > MAX_GAME_LEAVES {
                return Err(format!(
                    "game size {branching}^{depth} = {leaves} leaves exceeds {MAX_GAME_LEAVES}"
                ));
            }
        }
    }
    Ok(())
}

/// What running a workload produced.
#[derive(Clone, Debug, PartialEq)]
pub enum Ran {
    /// Completed within the deadline.
    Done {
        /// Winning candidate / leaf index.
        index: u64,
        /// Its loss (game value for trees).
        loss: f64,
        /// Telemetry, including the tenant-cache deltas for this run.
        stats: WireStats,
    },
    /// The token fired first.
    TimedOut {
        /// Sound partial best, when the search model has one.
        partial: Option<(u64, f64)>,
    },
    /// The compiled program failed the flow-derived shape guard. The
    /// string goes back to the client as `Response::Malformed`, same
    /// as a parameter-level `validate` failure.
    Rejected(String),
}

fn wire_stats(s: &SearchStats) -> WireStats {
    WireStats {
        evaluated: s.evaluated,
        pruned: s.pruned,
        threads: s.threads as u64,
        cache_hits: s.cache.hits,
        cache_misses: s.cache.misses,
        cache_insertions: s.cache.insertions,
        cache_evictions: s.cache.evictions,
        summary_exact_hits: s.summary.exact_hits,
        summary_bound_hits: s.summary.bound_hits,
        summary_misses: s.summary.misses,
        summary_exact_installs: s.summary.exact_installs,
        summary_bound_installs: s.summary.bound_installs,
    }
}

/// Runs a **validated** workload for `tenant` under `cancel`.
/// `deadline_bound` is whether the request carried a real deadline
/// (`deadline_ms > 0`); it feeds the [`WarmthPolicy`] choice.
///
/// # Panics
///
/// Panics if the workload was not [`validate`]d (e.g. a zero-choice
/// chain would make the engines' non-empty-space invariants fire).
pub fn run(tenant: &Tenant, w: &Workload, cancel: &CancelToken, deadline_bound: bool) -> Ran {
    match *w {
        Workload::Chain { choices } => {
            let cands = tenant.chain(choices);
            if let Err(msg) = check_decision_shape(&cands) {
                FLOW_METRICS.shape_rejected.inc();
                return Ran::Rejected(msg);
            }
            let engine = TreeEngine::auto();
            // Prune only behind a flow certificate *and* a live
            // deadline: an uncertified program must not prune at all
            // (negative losses would make pruning unsound), and an
            // unhurried request prefers exact summaries — the unpruned
            // cold pass is what lets a warm repeat answer in O(depth),
            // and warmth is this server's whole point.
            let policy = WarmthPolicy::choose(cands.flow_report().certified(), deadline_bound);
            let cert = match policy {
                WarmthPolicy::CertifiedPrune => {
                    FLOW_METRICS.policy_certified_prune.inc();
                    cands.certificate()
                }
                WarmthPolicy::ExactSummaries => {
                    FLOW_METRICS.policy_exact_summaries.inc();
                    None
                }
            };
            match search_compiled_cached_with(&engine, &cands, &tenant.lc, cert, cancel) {
                SearchResult::Complete(out) => {
                    // `validate` rejects zero-choice chains, so the
                    // space is provably non-empty here; an empty argmin
                    // is a workspace bug, not a client error.
                    // selc-lint: allow(serve-no-panic)
                    let out = out.expect("validated chains have non-empty spaces");
                    Ran::Done {
                        index: out.index as u64,
                        loss: out.loss.0.as_scalar(),
                        stats: wire_stats(&out.stats),
                    }
                }
                SearchResult::Cancelled(partial) => Ran::TimedOut {
                    partial: partial.map(|o| (o.index as u64, o.loss.0.as_scalar())),
                },
            }
        }
        Workload::Game { branching, depth, seed } => {
            let entry = tenant.game(branching, depth, seed);
            let base = entry.cache.stats();
            match entry.tree.solve_alphabeta_tt_cancellable(&entry.cache, cancel) {
                Some((play, value, leaves)) => {
                    let index =
                        play.iter().fold(0u64, |acc, &m| acc * u64::from(branching) + m as u64);
                    let delta = entry.cache.stats().since(&base);
                    let stats = WireStats {
                        evaluated: leaves,
                        threads: 1,
                        cache_hits: delta.hits,
                        cache_misses: delta.misses,
                        cache_insertions: delta.insertions,
                        cache_evictions: delta.evictions,
                        ..WireStats::default()
                    };
                    Ran::Done { index, loss: value, stats }
                }
                // Minimax has no sound partial best (see the solver's
                // docs), so a timed-out game reports none.
                None => Ran::TimedOut { partial: None },
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tenants::Tenants;
    use selc_engine::SequentialEngine;

    #[test]
    fn validation_rejects_degenerate_and_oversized_workloads() {
        assert!(validate(&Workload::Chain { choices: 0 }).is_err());
        assert!(validate(&Workload::Chain { choices: 25 }).is_err());
        assert!(validate(&Workload::Chain { choices: 24 }).is_ok());
        assert!(validate(&Workload::Game { branching: 0, depth: 3, seed: 0 }).is_err());
        assert!(validate(&Workload::Game { branching: 2, depth: 0, seed: 0 }).is_err());
        assert!(validate(&Workload::Game { branching: 9, depth: 2, seed: 0 }).is_err());
        assert!(validate(&Workload::Game { branching: 8, depth: 12, seed: 0 }).is_err());
        assert!(validate(&Workload::Game { branching: 2, depth: 12, seed: 0 }).is_ok());
    }

    #[test]
    fn warmth_policy_prunes_only_certified_deadline_bound_requests() {
        use WarmthPolicy::{CertifiedPrune, ExactSummaries};
        assert_eq!(WarmthPolicy::choose(true, true), CertifiedPrune);
        assert_eq!(WarmthPolicy::choose(true, false), ExactSummaries);
        assert_eq!(WarmthPolicy::choose(false, true), ExactSummaries);
        assert_eq!(WarmthPolicy::choose(false, false), ExactSummaries);
    }

    #[test]
    fn shape_guard_accepts_served_chains_and_refuses_over_deep_programs() {
        let tenants = Tenants::default();
        let tenant = tenants.get_or_create(9);
        assert!(check_decision_shape(&tenant.chain(MAX_CHAIN_CHOICES)).is_ok());
        // A program whose *actual* static decision depth exceeds the
        // cap is refused even though nothing at the parameter layer
        // could have caught it.
        let deep = lambda_c::testgen::deep_decide_chain(u32::from(MAX_CHAIN_CHOICES) + 6);
        let compiled = lambda_c::compile(&deep.expr).expect("testgen chains compile");
        let cands = lambda_rt::LcCandidates::new(
            compiled,
            ["decide".to_owned()],
            u32::from(MAX_CHAIN_CHOICES) + 6,
        );
        let err = check_decision_shape(&cands).unwrap_err();
        assert!(err.contains("exceeding"), "unexpected message: {err}");
    }

    #[test]
    fn deadline_bound_certified_chains_prune_and_keep_the_exact_winner() {
        let tenants = Tenants::default();
        let tenant = tenants.get_or_create(8);
        let w = Workload::Chain { choices: 8 };
        let cands = tenant.chain(8);
        assert!(cands.certificate().is_some(), "the served chain corpus must be flow-certifiable");
        // deadline_bound = true with a certified program takes the
        // CertifiedPrune arm; the winner must still be bit-identical
        // to the exhaustive reference.
        let Ran::Done { index, loss, .. } = run(&tenant, &w, &CancelToken::never(), true) else {
            panic!("never token cannot time out");
        };
        let (reference, _) =
            lambda_rt::search_compiled_flat(&SequentialEngine::exhaustive(), &cands).unwrap();
        assert_eq!(index, reference.index as u64);
        assert_eq!(loss.to_bits(), reference.loss.0.as_scalar().to_bits());
    }

    #[test]
    fn served_chain_winners_match_a_direct_flat_scan() {
        let tenants = Tenants::default();
        let tenant = tenants.get_or_create(1);
        let w = Workload::Chain { choices: 7 };
        let Ran::Done { index, loss, stats } = run(&tenant, &w, &CancelToken::never(), false)
        else {
            panic!("never token cannot time out");
        };
        let cands = tenant.chain(7);
        let (reference, _) =
            lambda_rt::search_compiled_flat(&SequentialEngine::exhaustive(), &cands).unwrap();
        assert_eq!(index, reference.index as u64);
        assert_eq!(loss.to_bits(), reference.loss.0.as_scalar().to_bits());
        assert!(stats.cache_insertions > 0, "cold run fills the tenant table");
        // Warm repeat: answered from the tenant's summaries.
        let Ran::Done { index: i2, loss: l2, stats: warm } =
            run(&tenant, &w, &CancelToken::never(), false)
        else {
            panic!("warm repeat cannot time out");
        };
        assert_eq!((i2, l2.to_bits()), (index, loss.to_bits()));
        // Tiny-capacity CI runs churn the summaries out; retention
        // claims only hold when the table can hold a search.
        if selc::env::configured_capacity().is_none_or(|cap| cap >= 4096) {
            assert!(warm.summary_exact_hits > 0, "repeat answers from summaries: {warm:?}");
            assert_eq!(warm.evaluated, 0, "warm repeat replays nothing: {warm:?}");
        }
    }

    #[test]
    fn served_game_winners_match_backward_induction() {
        let tenants = Tenants::default();
        let tenant = tenants.get_or_create(2);
        let w = Workload::Game { branching: 3, depth: 5, seed: 11 };
        let Ran::Done { index, loss, stats } = run(&tenant, &w, &CancelToken::never(), false)
        else {
            panic!("never token cannot time out");
        };
        let tree = selc_games::alternating::GameTree::random(3, 5, 11);
        let (play, value) = tree.solve_backward();
        let expect = play.iter().fold(0u64, |acc, &m| acc * 3 + m as u64);
        assert_eq!((index, loss.to_bits()), (expect, value.to_bits()));
        assert!(stats.evaluated > 0);
        // Warm repeat resolves at the root entry: zero leaves.
        let Ran::Done { stats: warm, .. } = run(&tenant, &w, &CancelToken::never(), false) else {
            panic!("warm repeat cannot time out");
        };
        assert_eq!(warm.evaluated, 0, "warm game answered from the root Exact entry");
        assert!(warm.cache_hits > 0);
    }

    #[test]
    fn expired_tokens_time_out_both_workload_kinds() {
        let tenants = Tenants::default();
        let tenant = tenants.get_or_create(3);
        let dead = CancelToken::never();
        dead.cancel();
        assert!(matches!(
            run(&tenant, &Workload::Chain { choices: 6 }, &dead, false),
            Ran::TimedOut { .. }
        ));
        assert_eq!(
            run(&tenant, &Workload::Game { branching: 2, depth: 6, seed: 1 }, &dead, false),
            Ran::TimedOut { partial: None }
        );
        // The timeouts must not have poisoned the tenant: a real run
        // still matches the direct reference.
        let Ran::Done { index, .. } =
            run(&tenant, &Workload::Chain { choices: 6 }, &CancelToken::never(), false)
        else {
            panic!("never token cannot time out");
        };
        let cands = tenant.chain(6);
        let (reference, _) =
            lambda_rt::search_compiled_flat(&SequentialEngine::exhaustive(), &cands).unwrap();
        assert_eq!(index, reference.index as u64);
    }
}
