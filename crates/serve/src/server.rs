//! The server: accept loop, admission control, session workers.
//!
//! Anatomy of a running server:
//!
//! * **Accept loop** (one thread) — accepts connections and applies
//!   *admission control*: while [`ServeConfig::max_sessions`] sessions
//!   are live, a new connection is answered `Busy` and closed without
//!   ever reaching a worker, so overload degrades to fast refusals
//!   instead of unbounded queueing.
//! * **Session queue** — admitted connections wait in a `VecDeque`
//!   under a condvar.
//! * **Worker pool** ([`ServeConfig::workers`] threads) — each worker
//!   owns one session at a time and serves its requests sequentially;
//!   a session holds its worker until the client hangs up, so
//!   `workers` bounds *concurrent searches* and `max_sessions` bounds
//!   *open connections*.
//!
//! Deadlines and disconnects both flow through one `CancelToken` per
//! search: the token's deadline is the request's `deadline_ms`, and a
//! per-request watcher thread peeks the socket while the search runs,
//! firing the same token if the client vanishes — the fix for workers
//! grinding through a search whose caller is gone. Cancellation is
//! safe to trigger at any moment: the engines guarantee a cancelled
//! walk installs no cache summaries (see `DESIGN.md`), so a timed-out
//! request leaves its tenant's warmth exactly as it found it. Watcher
//! threads are *tracked*: the session signals them done (they wake
//! immediately off a condvar, not a poll), finished handles are reaped
//! as new ones spawn, and shutdown joins every straggler — the server
//! never accumulates detached threads.
//!
//! The server is also where the workspace's metrics default flips
//! **on**: a daemon you cannot scrape is blind, so `Server::spawn`
//! enables recording unless `SELC_METRICS=0` explicitly asks for the
//! zero-overhead path (overhead benches do). Live state travels as
//! gauges (`serve.queue_depth`, `serve.active_watchers`), refusals and
//! aborts as counters, and per-op end-to-end latency as log2
//! histograms, all scrapeable via a `Metrics` request.

use crate::protocol::{read_frame, write_frame, Request, Response, WireMetrics, Workload};
use crate::tenants::Tenants;
use crate::workload::{self, Ran};
use selc::env::{env_usize, SERVE_MAX_SESSIONS_ENV, SERVE_PORT_ENV, SERVE_WORKERS_ENV};
use selc_engine::{configured_threads, CancelToken};
use selc_obs::{metrics, Counter, Gauge, Histogram};
use std::collections::{HashMap, VecDeque};
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, LazyLock, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// Default listen port (loopback only): "SELC" on a phone keypad, mod
/// the registered range.
pub const DEFAULT_PORT: u16 = 7352;

/// Default admission limit when `SELC_SERVE_MAX_SESSIONS` is unset.
pub const DEFAULT_MAX_SESSIONS: usize = 32;

/// How often a request's disconnect watcher polls the socket.
const WATCH_INTERVAL: Duration = Duration::from_millis(25);

/// The serve layer's registry handles, resolved once. Every member is
/// an `Arc` clone of the registry's metric, so recording is an atomic
/// op (or a no-op while metrics are disabled).
struct ServeMetrics {
    queue_depth: Gauge,
    active_watchers: Gauge,
    admission_rejects: Counter,
    deadline_timeouts: Counter,
    disconnect_cancels: Counter,
    requests: Counter,
    latency_chain: Histogram,
    latency_game: Histogram,
    latency_bump_epoch: Histogram,
    latency_metrics: Histogram,
}

static SERVE_METRICS: LazyLock<ServeMetrics> = LazyLock::new(|| ServeMetrics {
    queue_depth: metrics::gauge("serve.queue_depth"),
    active_watchers: metrics::gauge("serve.active_watchers"),
    admission_rejects: metrics::counter("serve.admission_rejects"),
    deadline_timeouts: metrics::counter("serve.deadline_timeouts"),
    disconnect_cancels: metrics::counter("serve.disconnect_cancels"),
    requests: metrics::counter("serve.requests"),
    latency_chain: metrics::histogram("serve.latency_us.chain"),
    latency_game: metrics::histogram("serve.latency_us.game"),
    latency_bump_epoch: metrics::histogram("serve.latency_us.bump_epoch"),
    latency_metrics: metrics::histogram("serve.latency_us.metrics"),
});

/// Server configuration, defaulted from the `SELC_SERVE_*` knobs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServeConfig {
    /// Listen port on `127.0.0.1`; `0` asks the OS for an ephemeral
    /// port (tests and benches do this and read it back from
    /// [`ServerHandle::addr`]).
    pub port: u16,
    /// Session-worker threads — the number of *concurrent sessions
    /// being served*; each search inside a session parallelises
    /// further via `SELC_THREADS`.
    pub workers: usize,
    /// Admission limit: connections beyond this many live sessions are
    /// refused with `Busy`.
    pub max_sessions: usize,
}

impl ServeConfig {
    /// Reads `SELC_SERVE_PORT`, `SELC_SERVE_WORKERS` (default: the
    /// `SELC_THREADS` pool width), and `SELC_SERVE_MAX_SESSIONS`, under
    /// the workspace's usual "anything but a positive integer is
    /// as-if-unset" rule.
    #[must_use]
    pub fn from_env() -> ServeConfig {
        let port =
            env_usize(SERVE_PORT_ENV).and_then(|p| u16::try_from(p).ok()).unwrap_or(DEFAULT_PORT);
        ServeConfig {
            port,
            workers: env_usize(SERVE_WORKERS_ENV).unwrap_or_else(configured_threads),
            max_sessions: env_usize(SERVE_MAX_SESSIONS_ENV).unwrap_or(DEFAULT_MAX_SESSIONS),
        }
    }

    /// An ephemeral-port config for in-process use (tests, benches).
    #[must_use]
    pub fn loopback(workers: usize, max_sessions: usize) -> ServeConfig {
        ServeConfig { port: 0, workers, max_sessions }
    }
}

/// State shared by the accept loop, the workers, and the handle.
struct Shared {
    tenants: Tenants,
    queue: Mutex<VecDeque<TcpStream>>,
    available: Condvar,
    /// Sessions admitted and not yet finished (counted from the accept
    /// loop's enqueue to the worker's hang-up).
    active: AtomicUsize,
    shutdown: AtomicBool,
    /// Clones of live session sockets, so shutdown can force-close
    /// them and unblock workers parked in `read_frame`.
    open: Mutex<HashMap<u64, TcpStream>>,
    next_session: AtomicU64,
    /// Handles of the per-request disconnect watchers, reaped as new
    /// ones register and joined at shutdown — bounded by in-flight
    /// requests, not request count.
    watchers: Mutex<Vec<thread::JoinHandle<()>>>,
}

impl Shared {
    fn shutting_down(&self) -> bool {
        // ordering: Acquire — pairs with the AcqRel swap in `shutdown`:
        // a thread that observes the flag also observes everything the
        // shutting-down thread published before raising it.
        self.shutdown.load(Ordering::Acquire)
    }

    fn track_watcher(&self, handle: thread::JoinHandle<()>) {
        let mut watchers = lock_clean(&self.watchers);
        reap_finished(&mut watchers);
        watchers.push(handle);
    }
}

/// Locks `m`, continuing through poison: a panicking worker must not
/// cascade into every sibling that touches the same queue or map. The
/// guarded structures stay structurally valid mid-panic (pushes and
/// removes are not interruptible by Rust panics at observable points),
/// and a daemon's job is to keep serving.
pub(crate) fn lock_clean<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Joins (not just drops) every finished handle in place: a joined
/// watcher is provably gone, which is what [`Server::active_watchers`]
/// counts and the leak test asserts on.
fn reap_finished(watchers: &mut Vec<thread::JoinHandle<()>>) {
    let mut i = 0;
    while i < watchers.len() {
        if watchers[i].is_finished() {
            let _ = watchers.swap_remove(i).join();
        } else {
            i += 1;
        }
    }
}

/// Completion handshake between a session worker and its request's
/// disconnect watcher: the worker flips `done` and rings the bell, so
/// a watcher waiting out a poll interval wakes immediately instead of
/// sleeping the interval to its end.
struct WatchSignal {
    done: Mutex<bool>,
    bell: Condvar,
}

impl WatchSignal {
    fn new() -> WatchSignal {
        WatchSignal { done: Mutex::new(false), bell: Condvar::new() }
    }

    fn finish(&self) {
        *lock_clean(&self.done) = true;
        self.bell.notify_all();
    }

    fn is_done(&self) -> bool {
        *lock_clean(&self.done)
    }

    /// Waits up to `timeout` for the request to finish; true once done.
    fn wait_done(&self, timeout: Duration) -> bool {
        let guard = lock_clean(&self.done);
        let (done, _) = self
            .bell
            .wait_timeout_while(guard, timeout, |done| !*done)
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        *done
    }
}

/// A running server; dropping the handle shuts it down.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<thread::JoinHandle<()>>,
    workers: Vec<thread::JoinHandle<()>>,
}

/// Alias kept for readers scanning the crate root: the handle *is* the
/// server object.
pub type ServerHandle = Server;

impl Server {
    /// Binds `127.0.0.1:{config.port}` and spawns the accept loop and
    /// worker pool.
    ///
    /// # Errors
    ///
    /// Fails if the port cannot be bound.
    ///
    /// # Panics
    ///
    /// Panics if `config.workers` or `config.max_sessions` is zero.
    pub fn spawn(config: ServeConfig) -> io::Result<Server> {
        assert!(config.workers >= 1, "a server needs at least one worker");
        assert!(config.max_sessions >= 1, "a server must admit at least one session");
        // A service you cannot scrape is blind: the daemon defaults
        // metrics ON, and `SELC_METRICS=0` still wins (overhead runs).
        selc_obs::set_metrics_enabled(metrics::configured_metrics().unwrap_or(true));
        let listener = TcpListener::bind(("127.0.0.1", config.port))?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            tenants: Tenants::default(),
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            active: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            open: Mutex::new(HashMap::new()),
            next_session: AtomicU64::new(0),
            watchers: Mutex::new(Vec::new()),
        });
        let accept = {
            let shared = Arc::clone(&shared);
            let max = config.max_sessions;
            thread::spawn(move || accept_loop(&listener, &shared, max))
        };
        let workers = (0..config.workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Ok(Server { addr, shared, accept: Some(accept), workers })
    }

    /// The bound address (read this when spawning on port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Sessions admitted and not yet hung up.
    #[must_use]
    pub fn active_sessions(&self) -> usize {
        // ordering: Relaxed — the count is exact through RMW atomicity
        // alone; it carries no data, so the old Acquire bought nothing.
        self.shared.active.load(Ordering::Relaxed)
    }

    /// Disconnect-watcher threads spawned for requests and not yet
    /// exited. Joins finished handles as a side effect, so the count is
    /// of provably-live threads — the no-leak test asserts this returns
    /// to zero once requests settle.
    #[must_use]
    pub fn active_watchers(&self) -> usize {
        let mut watchers = lock_clean(&self.shared.watchers);
        reap_finished(&mut watchers);
        watchers.len()
    }

    /// Stops accepting, force-closes live sessions, and joins every
    /// thread. Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        // ordering: AcqRel — Release publishes everything this thread
        // did before shutting down to threads that observe the flag
        // (see `shutting_down`); Acquire makes the losing caller of an
        // idempotent double-shutdown see the winner's prior work.
        if self.shared.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        // Unblock the accept loop with a throwaway connection; it
        // checks the flag before handling anything it accepts.
        let _ = TcpStream::connect(self.addr);
        // Force-close live sessions so workers parked in read_frame
        // wake with an error instead of waiting for their client.
        for (_, stream) in lock_clean(&self.shared.open).drain() {
            let _ = stream.shutdown(Shutdown::Both);
        }
        self.shared.available.notify_all();
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        // Workers gone ⇒ every request signalled its watcher done;
        // each exits within one poll interval, so these joins are
        // bounded — and afterwards no thread of ours survives the
        // handle.
        let handles: Vec<_> = lock_clean(&self.shared.watchers).drain(..).collect();
        for watcher in handles {
            let _ = watcher.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Shared, max_sessions: usize) {
    for stream in listener.incoming() {
        if shared.shutting_down() {
            break;
        }
        let Ok(mut stream) = stream else { continue };
        let _ = stream.set_nodelay(true); // tiny frames must not wait out Nagle
                                          // ordering: Relaxed — admission control needs only an exact
                                          // count (RMW atomicity gives it); the load/add pair publishes
                                          // nothing, so the old Acquire/AcqRel were needless strength.
        if shared.active.load(Ordering::Relaxed) >= max_sessions {
            SERVE_METRICS.admission_rejects.inc();
            let _ = write_frame(&mut stream, &Response::Busy.encode());
            continue; // drop: refused, never counted
        }
        shared.active.fetch_add(1, Ordering::Relaxed); // ordering: Relaxed — see the admission comment
        lock_clean(&shared.queue).push_back(stream);
        SERVE_METRICS.queue_depth.inc();
        shared.available.notify_one();
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let stream = {
            let mut queue = lock_clean(&shared.queue);
            loop {
                if shared.shutting_down() {
                    return;
                }
                if let Some(stream) = queue.pop_front() {
                    SERVE_METRICS.queue_depth.dec();
                    break stream;
                }
                queue =
                    shared.available.wait(queue).unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        // ordering: Relaxed — session ids only need uniqueness, which
        // the RMW guarantees under any ordering.
        let id = shared.next_session.fetch_add(1, Ordering::Relaxed);
        if let Ok(clone) = stream.try_clone() {
            lock_clean(&shared.open).insert(id, clone);
        }
        // A shutdown that raced our registration has already drained
        // the open map; re-checking the flag after inserting closes
        // the gap either way, so no worker blocks past shutdown.
        if shared.shutting_down() {
            let _ = stream.shutdown(Shutdown::Both);
        }
        serve_session(stream, shared);
        lock_clean(&shared.open).remove(&id);
        // ordering: Relaxed — see the admission-control comment.
        shared.active.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Serves one session until the client hangs up or the transport
/// fails. Malformed *payloads* are survivable (the frame was consumed;
/// answer and continue); malformed *frames* are not (the stream can no
/// longer be resynchronised), so those answer and close.
fn serve_session(mut stream: TcpStream, shared: &Shared) {
    loop {
        // A previous request's (detached) watcher set a short read
        // timeout on the shared fd; idle reads must block indefinitely.
        let _ = stream.set_read_timeout(None);
        let payload = match read_frame(&mut stream) {
            Ok(Some(payload)) => payload,
            Ok(None) => return, // clean hang-up
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                let resp = Response::Malformed(e.to_string());
                let _ = write_frame(&mut stream, &resp.encode());
                return; // desynchronised: cannot keep the session
            }
            Err(_) => return,
        };
        let started = Instant::now();
        SERVE_METRICS.requests.inc();
        let (response, latency) = match Request::decode(&payload) {
            Err(msg) => (Response::Malformed(msg), None),
            Ok(Request::BumpEpoch { tenant }) => (
                Response::EpochBumped { epoch: shared.tenants.bump(tenant) },
                Some(&SERVE_METRICS.latency_bump_epoch),
            ),
            Ok(Request::Metrics) => (
                Response::Metrics(WireMetrics::from_snapshot(&metrics::snapshot())),
                Some(&SERVE_METRICS.latency_metrics),
            ),
            Ok(Request::Search { tenant, deadline_ms, workload }) => {
                let latency = match workload {
                    Workload::Chain { .. } => &SERVE_METRICS.latency_chain,
                    Workload::Game { .. } => &SERVE_METRICS.latency_game,
                };
                let response = match workload::validate(&workload) {
                    Err(msg) => Response::Malformed(msg),
                    Ok(()) => {
                        let tenant = shared.tenants.get_or_create(tenant);
                        let cancel = if deadline_ms > 0 {
                            CancelToken::with_timeout(Duration::from_millis(u64::from(deadline_ms)))
                        } else {
                            CancelToken::never()
                        };
                        let signal = Arc::new(WatchSignal::new());
                        let watcher = spawn_watcher(&stream, cancel.clone(), Arc::clone(&signal));
                        if let Some(handle) = watcher {
                            shared.track_watcher(handle);
                        }
                        let ran = workload::run(&tenant, &workload, &cancel, deadline_ms > 0);
                        // The watcher wakes off the bell (or within one
                        // poll interval if it is mid-peek) and exits;
                        // its tracked handle is reaped later, off this
                        // request's latency path.
                        signal.finish();
                        match ran {
                            Ran::Done { index, loss, stats } => Response::Ok { index, loss, stats },
                            Ran::TimedOut { partial } => {
                                SERVE_METRICS.deadline_timeouts.inc();
                                Response::Timeout { partial }
                            }
                            // The flow shape guard refused the compiled
                            // program: same client-visible shape as a
                            // parameter-level validation failure.
                            Ran::Rejected(msg) => Response::Malformed(msg),
                        }
                    }
                };
                (response, Some(latency))
            }
        };
        let wrote = write_frame(&mut stream, &response.encode());
        if let Some(latency) = latency {
            let micros = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
            latency.record(micros);
        }
        if wrote.is_err() {
            return; // client gone mid-response
        }
    }
}

/// Watches the session socket while a search runs: if the client hangs
/// up (peek sees EOF) or the transport dies, the search's token fires
/// and the workers stop claiming — the queue-drain fix made
/// end-to-end. The watcher borrows the socket via `try_clone`, which
/// shares the fd; its short read timeout leaks past the request, so
/// the session clears it before each blocking `read_frame`. The
/// returned handle is tracked by the caller and joined at shutdown;
/// the thread itself exits within one poll interval of the signal
/// finishing (immediately, when it is waiting on the bell rather than
/// mid-peek).
fn spawn_watcher(
    stream: &TcpStream,
    cancel: CancelToken,
    signal: Arc<WatchSignal>,
) -> Option<thread::JoinHandle<()>> {
    let peer = stream.try_clone().ok()?;
    peer.set_read_timeout(Some(WATCH_INTERVAL)).ok()?;
    Some(thread::spawn(move || {
        SERVE_METRICS.active_watchers.inc();
        let mut probe = [0u8; 1];
        loop {
            if signal.is_done() {
                break;
            }
            match peer.peek(&mut probe) {
                Ok(0) => {
                    SERVE_METRICS.disconnect_cancels.inc();
                    cancel.cancel(); // EOF: the caller is gone
                    break;
                }
                // Bytes waiting (a pipelined request): still alive.
                // Wait out a poll interval or the completion bell,
                // whichever comes first.
                Ok(_) => {
                    if signal.wait_done(WATCH_INTERVAL) {
                        break;
                    }
                }
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut => {}
                Err(_) => {
                    SERVE_METRICS.disconnect_cancels.inc();
                    cancel.cancel(); // transport dead: same as gone
                    break;
                }
            }
        }
        SERVE_METRICS.active_watchers.dec();
    }))
}
