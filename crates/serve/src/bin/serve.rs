//! `selc-serve` — run the search service from the command line, or
//! scrape one that is already running.
//!
//! With no arguments the process serves until killed. Configuration is
//! entirely environmental (the workspace's knob style):
//! `SELC_SERVE_PORT`, `SELC_SERVE_WORKERS`, `SELC_SERVE_MAX_SESSIONS`
//! shape the server; `SELC_THREADS` and `SELC_CACHE_{SHARDS,CAP}`
//! shape each search and tenant cache, as everywhere else; and
//! `SELC_METRICS` defaults **on** for the daemon so it is born
//! scrapeable.
//!
//! `selc-serve metrics [host:port]` connects to a live server, issues
//! a `Metrics` request, and prints the snapshot as plain text — one
//! `name value` line per metric, histograms as `count=… p50=… p90=…
//! p99=…` — the exposition format for shell pipelines and smoke
//! checks. The address defaults to the default listen address.

use selc_serve::{Client, Response, ServeConfig, Server, DEFAULT_PORT};

fn main() {
    let mut args = std::env::args().skip(1);
    match args.next() {
        None => run_server(),
        Some(cmd) if cmd == "metrics" => scrape(args.next()),
        Some(other) => {
            eprintln!("selc-serve: unknown command {other:?}");
            eprintln!("usage: selc-serve            (run the service)");
            eprintln!("       selc-serve metrics [host:port]   (scrape a live one)");
            std::process::exit(2);
        }
    }
}

fn run_server() {
    let config = ServeConfig::from_env();
    let server = match Server::spawn(config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("selc-serve: cannot bind 127.0.0.1:{}: {e}", config.port);
            std::process::exit(1);
        }
    };
    println!(
        "selc-serve listening on {} ({} workers, {} max sessions)",
        server.addr(),
        config.workers,
        config.max_sessions
    );
    // Serve until the process is killed; the threads do all the work.
    loop {
        std::thread::park();
    }
}

fn scrape(addr: Option<String>) {
    let addr = addr.unwrap_or_else(|| format!("127.0.0.1:{DEFAULT_PORT}"));
    let mut client = match Client::connect(&addr) {
        Ok(client) => client,
        Err(e) => {
            eprintln!("selc-serve: cannot connect to {addr}: {e}");
            std::process::exit(1);
        }
    };
    match client.metrics() {
        Ok(Response::Metrics(wire)) => {
            if wire.truncated {
                eprintln!("selc-serve: snapshot truncated to fit one frame");
            }
            print!("{}", wire.to_snapshot().render_text());
        }
        Ok(other) => {
            eprintln!("selc-serve: unexpected response {other:?}");
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("selc-serve: scrape failed: {e}");
            std::process::exit(1);
        }
    }
}
