//! `selc-serve` — run the search service from the command line.
//!
//! Configuration is entirely environmental (the workspace's knob
//! style): `SELC_SERVE_PORT`, `SELC_SERVE_WORKERS`,
//! `SELC_SERVE_MAX_SESSIONS` shape the server; `SELC_THREADS` and
//! `SELC_CACHE_{SHARDS,CAP}` shape each search and tenant cache, as
//! everywhere else. The process serves until killed.

use selc_serve::{ServeConfig, Server};

fn main() {
    let config = ServeConfig::from_env();
    let server = match Server::spawn(config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("selc-serve: cannot bind 127.0.0.1:{}: {e}", config.port);
            std::process::exit(1);
        }
    };
    println!(
        "selc-serve listening on {} ({} workers, {} max sessions)",
        server.addr(),
        config.workers,
        config.max_sessions
    );
    // Serve until the process is killed; the threads do all the work.
    loop {
        std::thread::park();
    }
}
