//! # selc-serve — a long-lived search service over the selc engines
//!
//! Everything below PR 6 answers one search per call and forgets: the
//! caches that make warm repeats `O(depth)` live exactly as long as
//! the caller keeps their handles. This crate gives the warmth a
//! *home*: a server whose per-tenant caches outlive any one request,
//! so the second time a tenant asks the same question, the answer
//! comes from subtree summaries instead of recomputation — while a
//! neighbouring tenant's epoch bump cannot touch it.
//!
//! The pieces, each its own module:
//!
//! * [`protocol`] — length-prefixed binary frames; requests name a
//!   tenant, a workload (compiled λC decide chains or alternating game
//!   trees), and a deadline; responses carry the winner `(loss,
//!   index)` bit-exactly plus the engine/cache telemetry deltas. A
//!   `Metrics` request scrapes the server's `selc-obs` registry
//!   snapshot over the same wire.
//! * [`tenants`] — the per-tenant registry: transposition tables *and*
//!   the candidates handles they are keyed under, with epoch-bump
//!   invalidation as a management request.
//! * [`workload`] — validation (resource caps before allocation) and
//!   execution through the same cancellable entry points library
//!   callers use, so served winners are bit-identical to direct ones.
//! * [`server`] — accept loop, `Busy` admission control, a fixed
//!   session-worker pool, and a per-request disconnect watcher that
//!   fires the search's `CancelToken` when the caller vanishes
//!   (tracked and joined, never leaked). The server is also where
//!   metrics recording defaults on, so a fresh daemon is scrapeable
//!   without any environment setup.
//! * [`client`] — the blocking loopback client the tests and the
//!   `e17_serve` throughput bench drive.
//!
//! Deadline handling rests on the engine-layer cancellation contract
//! (`selc_engine::CancelToken`): a cancelled search stops claiming
//! work promptly and installs **no** cache summaries along abort
//! paths, so a timed-out request returns `Timeout` without poisoning
//! its tenant's tables — the very next request may reuse them.
//!
//! ```no_run
//! use selc_serve::{Client, ServeConfig, Server, Workload};
//!
//! let server = Server::spawn(ServeConfig::loopback(2, 8)).unwrap();
//! let mut client = Client::connect(server.addr()).unwrap();
//! let reply = client.search(7, Workload::Chain { choices: 12 }, 250).unwrap();
//! println!("{reply:?}");
//! ```

pub mod client;
pub mod protocol;
pub mod server;
pub mod tenants;
pub mod workload;

pub use client::Client;
pub use protocol::{
    Request, Response, WireMetricValue, WireMetrics, WireStats, Workload, MAX_FRAME,
    MAX_METRIC_NAME, WIRE_STATS_FIELDS,
};
pub use server::{ServeConfig, Server, ServerHandle, DEFAULT_MAX_SESSIONS, DEFAULT_PORT};
pub use tenants::{Tenant, Tenants};
pub use workload::{check_decision_shape, validate, Ran, WarmthPolicy};
