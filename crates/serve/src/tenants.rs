//! Per-tenant warm state: the whole reason the server is long-lived.
//!
//! A [`Tenant`] owns the caches its searches warm — a `lambda-rt`
//! transposition table for compiled chains and one flagged alpha-beta
//! table per game descriptor — plus the [`LcCandidates`] handles those
//! caches are keyed under. The handles matter as much as the tables:
//! an `LcCandidates` space identity is part of every transposition key,
//! so a *fresh* handle per request would never hit the previous
//! request's entries. Keeping the handle in the tenant is what turns
//! "same tenant, same workload, again" into subtree-summary hits
//! instead of recomputation.
//!
//! Sharing across a tenant's concurrent sessions is sound for the same
//! reason the engine's `SharedBound` is: programs are immutable and
//! evaluation pure, so a loss achieved by one session's search is
//! achieved, full stop — caches only short-circuit recomputation of
//! values the other session would have computed bit-identically.
//!
//! Isolation is by construction: tenants never share a cache object,
//! so [`Tenants::bump`] (the management request) retires exactly one
//! tenant's entries — the invalidation the epoch mechanism was built
//! for — and cannot cool a neighbour.

use crate::server::lock_clean;
use lambda_c::testgen::deep_decide_chain;
use lambda_rt::{LcCandidates, LcTransCache};
use selc_games::alternating::{AbCache, GameTree};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// One tenant's warm state.
pub struct Tenant {
    /// Decision-prefix transposition table shared by all of this
    /// tenant's chain searches (configured from the `SELC_CACHE_*`
    /// knobs, like every environment-built cache).
    pub lc: LcTransCache,
    /// One candidates handle per chain length, so repeat requests keep
    /// the space identity (and with it, their cache keys).
    chains: Mutex<HashMap<u8, LcCandidates>>,
    /// One tree + alpha-beta table per `(branching, depth, seed)`.
    games: Mutex<HashMap<(u8, u8, u64), GameEntry>>,
}

/// A game workload's solved-position state.
#[derive(Clone)]
pub struct GameEntry {
    /// The (deterministically generated) tree itself.
    pub tree: Arc<GameTree>,
    /// Its flagged transposition table; path keys carry no tree
    /// identity, hence one table *per descriptor*, never shared.
    pub cache: Arc<AbCache>,
}

impl Tenant {
    fn new() -> Tenant {
        Tenant {
            lc: LcTransCache::from_env(),
            chains: Mutex::new(HashMap::new()),
            games: Mutex::new(HashMap::new()),
        }
    }

    /// The tenant's candidates handle for a `choices`-deep decide
    /// chain, compiled on first use.
    pub fn chain(&self, choices: u8) -> LcCandidates {
        let mut chains = lock_clean(&self.chains);
        chains
            .entry(choices)
            .or_insert_with(|| {
                let p = deep_decide_chain(u32::from(choices));
                // Compiling our own generated chain cannot fail on
                // client input — a failure is a workspace bug worth a
                // crash, not a survivable request error.
                // selc-lint: allow(serve-no-panic)
                let compiled = lambda_c::compile(&p.expr).expect("testgen chains compile");
                LcCandidates::new(compiled, ["decide".to_owned()], u32::from(choices))
            })
            .clone()
    }

    /// The tenant's tree and table for a game descriptor, generated on
    /// first use.
    pub fn game(&self, branching: u8, depth: u8, seed: u64) -> GameEntry {
        let mut games = lock_clean(&self.games);
        games
            .entry((branching, depth, seed))
            .or_insert_with(|| GameEntry {
                tree: Arc::new(GameTree::random(branching as usize, depth as usize, seed)),
                cache: Arc::new(AbCache::from_env()),
            })
            .clone()
    }

    /// Retires every cached entry this tenant has: the chain table and
    /// all game tables advance their epochs. Returns the chain table's
    /// new epoch (the value acknowledged on the wire).
    pub fn bump(&self) -> u64 {
        let epoch = self.lc.advance_epoch();
        let games = lock_clean(&self.games);
        for entry in games.values() {
            entry.cache.advance_epoch();
        }
        epoch
    }
}

/// The registry: tenant id → warm state, created on first contact.
#[derive(Default)]
pub struct Tenants {
    map: Mutex<HashMap<u64, Arc<Tenant>>>,
}

impl Tenants {
    /// Looks up (or creates) a tenant.
    pub fn get_or_create(&self, id: u64) -> Arc<Tenant> {
        let mut map = lock_clean(&self.map);
        Arc::clone(map.entry(id).or_insert_with(|| Arc::new(Tenant::new())))
    }

    /// Bumps one tenant's epoch (creating it if unseen, so the ack is
    /// well-defined); every other tenant's warmth is untouched.
    pub fn bump(&self, id: u64) -> u64 {
        self.get_or_create(id).bump()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_handles_are_stable_per_tenant_so_cache_keys_match() {
        let tenants = Tenants::default();
        let t = tenants.get_or_create(1);
        let a = t.chain(6);
        let b = t.chain(6);
        // Same space identity ⇒ same transposition keys: warm repeats
        // only work because the handle is reused, which the shared
        // best-seen cell makes observable without exposing the id.
        assert_eq!(a.space(), 64);
        assert_eq!(b.space(), 64);
        let other = tenants.get_or_create(2).chain(6);
        assert_eq!(other.space(), 64);
    }

    #[test]
    fn bump_retires_exactly_one_tenants_entries() {
        let tenants = Tenants::default();
        let a = tenants.get_or_create(1);
        let b = tenants.get_or_create(2);
        let (a0, b0) = (a.lc.epoch(), b.lc.epoch());
        let game = a.game(2, 3, 9);
        let g0 = game.cache.epoch();
        let acked = tenants.bump(1);
        assert_eq!(acked, a0 + 1);
        assert_eq!(a.lc.epoch(), a0 + 1, "bumped tenant's chain table advanced");
        assert_eq!(game.cache.epoch(), g0 + 1, "bumped tenant's game tables advanced");
        assert_eq!(b.lc.epoch(), b0, "neighbour untouched");
    }

    #[test]
    fn game_entries_are_per_descriptor() {
        let tenants = Tenants::default();
        let t = tenants.get_or_create(5);
        let x = t.game(2, 3, 1);
        let y = t.game(2, 3, 1);
        let z = t.game(2, 3, 2);
        assert!(Arc::ptr_eq(&x.tree, &y.tree), "same descriptor, same entry");
        assert!(!Arc::ptr_eq(&x.tree, &z.tree), "different seed, different entry");
        assert_eq!(x.tree.leaves.len(), 8);
    }
}
