//! A minimal blocking loopback client — the counterpart the
//! integration tests and the throughput bench drive, and a reference
//! for anyone speaking the protocol from elsewhere.

use crate::protocol::{read_frame, write_frame, Request, Response, Workload};
use std::io::{self, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// One connection — one session on the server side.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects; with `TCP_NODELAY` so tiny request frames do not sit
    /// in Nagle buffers behind a previous response's ack.
    ///
    /// # Errors
    ///
    /// Fails if the connection cannot be established.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    /// Sends one request and waits for its response.
    ///
    /// # Errors
    ///
    /// Transport failures surface as `io::Error`; a response that does
    /// not decode is `InvalidData`.
    pub fn request(&mut self, req: &Request) -> io::Result<Response> {
        write_frame(&mut self.stream, &req.encode())?;
        self.read_response()
    }

    /// Runs `workload` for `tenant` under an optional deadline
    /// (`deadline_ms == 0` means none).
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn search(
        &mut self,
        tenant: u64,
        workload: Workload,
        deadline_ms: u32,
    ) -> io::Result<Response> {
        self.request(&Request::Search { tenant, deadline_ms, workload })
    }

    /// Invalidates every cache of `tenant`.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn bump_epoch(&mut self, tenant: u64) -> io::Result<Response> {
        self.request(&Request::BumpEpoch { tenant })
    }

    /// Scrapes the server's metrics snapshot (a
    /// [`Response::Metrics`][crate::protocol::Response::Metrics] on
    /// success).
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn metrics(&mut self) -> io::Result<Response> {
        self.request(&Request::Metrics)
    }

    /// Reads one response without having sent anything — how a `Busy`
    /// refusal (written unsolicited by the accept loop) is observed.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn read_response(&mut self) -> io::Result<Response> {
        let payload = read_frame(&mut self.stream)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "server closed the session")
        })?;
        Response::decode(&payload).map_err(|msg| io::Error::new(io::ErrorKind::InvalidData, msg))
    }

    /// Sends an arbitrary payload as a well-formed frame and reads the
    /// response — the hostile-payload path of the integration suite.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn send_raw(&mut self, payload: &[u8]) -> io::Result<Response> {
        write_frame(&mut self.stream, payload)?;
        self.read_response()
    }

    /// Writes raw bytes straight onto the wire — no framing, no
    /// response read. For tests that need to break the framing itself
    /// (truncated frames, hostile lengths).
    ///
    /// # Errors
    ///
    /// Fails on transport errors.
    pub fn send_bytes(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.stream.write_all(bytes)?;
        self.stream.flush()
    }
}
