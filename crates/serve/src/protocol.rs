//! The wire protocol: length-prefixed binary frames over TCP.
//!
//! Every message — request or response — travels as one **frame**: a
//! 4-byte big-endian payload length followed by the payload, capped at
//! [`MAX_FRAME`] bytes. All multi-byte integers are big-endian; losses
//! cross the wire as IEEE-754 bit patterns (`f64::to_bits`), so a
//! served winner is comparable *bit-for-bit* against a direct engine
//! call — the protocol never rounds through text.
//!
//! Request payload:
//!
//! ```text
//! opcode:u8
//!   1 = Search    tenant:u64  deadline_ms:u32 (0 = none)  workload
//!   2 = BumpEpoch tenant:u64
//!   3 = Metrics                                 (scrape a snapshot)
//! workload: tag:u8
//!   1 = Chain  choices:u8                      (compiled λC decide chain)
//!   2 = Game   branching:u8 depth:u8 seed:u64  (alternating game tree)
//! ```
//!
//! Response payload:
//!
//! ```text
//! status:u8
//!   0 = Ok          index:u64  loss:u64 (f64 bits)  stats:WIRE_STATS_FIELDS×u64
//!   1 = Timeout     has_partial:u8  [index:u64  loss:u64]
//!   2 = Busy
//!   3 = Malformed   len:u16  msg:utf8
//!   4 = Error       len:u16  msg:utf8
//!   5 = EpochBumped epoch:u64
//!   6 = Metrics     truncated:u8  count:u16  count × metric
//! metric: kind:u8  name_len:u8  name:utf8
//!   0 = counter    value:u64
//!   1 = gauge      value:u64 (i64 two's complement)
//!   2 = histogram  nonzero:u8  nonzero × (bucket:u8  count:u64)
//! ```
//!
//! A `Metrics` response is built under the frame budget: whole metric
//! entries are emitted in snapshot (name) order until the next one
//! would overflow [`MAX_FRAME`], and `truncated` records whether any
//! were dropped. Histogram buckets travel sparse (nonzero only) and
//! must be strictly ascending — the decoder rejects anything else, so
//! a hostile peer cannot smuggle duplicate buckets past the
//! reassembly adds.
//!
//! Decoding is total: every error path is a `Result`, never a panic, so
//! a malformed frame costs the client an error response — not the
//! server its accept loop.

use selc_obs::{HistogramSnapshot, MetricValue, MetricsSnapshot, HISTOGRAM_BUCKETS};
use std::io::{self, Read, Write};

/// Hard cap on a frame payload. Every legal message fits in a fraction
/// of this; a larger announced length is rejected *before* allocation,
/// so a hostile header cannot balloon server memory.
pub const MAX_FRAME: usize = 4096;

/// Longest metric name a [`Response::Metrics`] frame carries. The
/// registry's names are short dotted paths (`cache.shard_lock_wait_ns`
/// is about the ceiling); anything longer is dropped at encode time
/// and rejected at decode time.
pub const MAX_METRIC_NAME: usize = 128;

/// A search workload the server can run against a tenant's caches.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Workload {
    /// `lambda_c::testgen::deep_decide_chain(choices)` compiled and
    /// searched on the tree engine (space `2^choices`).
    Chain {
        /// Nested decisions; validated to `1..=24`.
        choices: u8,
    },
    /// `selc_games::GameTree::random(branching, depth, seed)` solved by
    /// flagged-table alpha-beta.
    Game {
        /// Moves per ply; validated to `1..=8`.
        branching: u8,
        /// Plies; validated so `branching^depth <= 2^20`.
        depth: u8,
        /// Leaf-generation seed (part of the tenant's game key).
        seed: u64,
    },
}

/// A client request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Request {
    /// Run `workload` for `tenant`, cancelling after `deadline_ms`
    /// milliseconds (0 = no deadline).
    Search {
        /// Tenant whose warm caches serve this search.
        tenant: u64,
        /// Milliseconds until the search's `CancelToken` fires; 0 never.
        deadline_ms: u32,
        /// What to search.
        workload: Workload,
    },
    /// Invalidate every cache of `tenant` (and only `tenant`).
    BumpEpoch {
        /// Tenant to invalidate.
        tenant: u64,
    },
    /// Scrape the server's process-wide metrics snapshot.
    Metrics,
}

/// Number of `u64` fields a [`WireStats`] occupies on the wire.
///
/// Kept in compile-time agreement with the struct itself: every field
/// is a `u64` and `#[repr(Rust)]` has nothing to pad, so the assert
/// below trips the build the moment someone adds a field without
/// revisiting `fields`/`from_fields` and this count.
pub const WIRE_STATS_FIELDS: usize = 12;

const _: () = assert!(
    WIRE_STATS_FIELDS * 8 == std::mem::size_of::<WireStats>(),
    "WIRE_STATS_FIELDS disagrees with the WireStats field count"
);

/// Engine telemetry on the wire: [`selc_engine::SearchStats`] flattened
/// to [`WIRE_STATS_FIELDS`] `u64`s (threads widened) so the frame
/// layout is fixed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[allow(missing_docs)] // field names mirror SearchStats/CacheStats/SummaryStats
pub struct WireStats {
    pub evaluated: u64,
    pub pruned: u64,
    pub threads: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub cache_insertions: u64,
    pub cache_evictions: u64,
    pub summary_exact_hits: u64,
    pub summary_bound_hits: u64,
    pub summary_misses: u64,
    pub summary_exact_installs: u64,
    pub summary_bound_installs: u64,
}

impl WireStats {
    fn fields(&self) -> [u64; WIRE_STATS_FIELDS] {
        [
            self.evaluated,
            self.pruned,
            self.threads,
            self.cache_hits,
            self.cache_misses,
            self.cache_insertions,
            self.cache_evictions,
            self.summary_exact_hits,
            self.summary_bound_hits,
            self.summary_misses,
            self.summary_exact_installs,
            self.summary_bound_installs,
        ]
    }

    fn from_fields(f: [u64; WIRE_STATS_FIELDS]) -> WireStats {
        WireStats {
            evaluated: f[0],
            pruned: f[1],
            threads: f[2],
            cache_hits: f[3],
            cache_misses: f[4],
            cache_insertions: f[5],
            cache_evictions: f[6],
            summary_exact_hits: f[7],
            summary_bound_hits: f[8],
            summary_misses: f[9],
            summary_exact_installs: f[10],
            summary_bound_installs: f[11],
        }
    }
}

/// One metric's value on the wire. Histograms travel sparse: only the
/// nonzero log2 buckets, as strictly ascending `(bucket, count)`
/// pairs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireMetricValue {
    /// Monotone event count.
    Counter(u64),
    /// Signed level (queue depth, live watchers).
    Gauge(i64),
    /// Sparse log2 histogram: `(bucket index, count)`, ascending,
    /// counts nonzero, indices `< HISTOGRAM_BUCKETS`.
    Histogram(Vec<(u8, u64)>),
}

/// A metrics snapshot shaped for the wire: name-sorted entries, whole
/// metrics only, and a flag recording whether the frame budget forced
/// any to be dropped. Build one with [`WireMetrics::from_snapshot`] —
/// that constructor owns the budget arithmetic, which is what lets
/// `Response::encode` promise the result fits a frame.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WireMetrics {
    /// True when the snapshot did not fit [`MAX_FRAME`] whole and the
    /// tail (in name order) was dropped.
    pub truncated: bool,
    /// `(name, value)` in ascending name order, like the snapshot it
    /// came from.
    pub entries: Vec<(String, WireMetricValue)>,
}

/// Encoded size of one metric entry; `None` if it can never go on the
/// wire (name too long for the `u8` length or the [`MAX_METRIC_NAME`]
/// cap).
fn metric_wire_size(name: &str, value: &WireMetricValue) -> Option<usize> {
    if name.is_empty() || name.len() > MAX_METRIC_NAME {
        return None;
    }
    let body = match value {
        WireMetricValue::Counter(_) | WireMetricValue::Gauge(_) => 8,
        WireMetricValue::Histogram(buckets) => 1 + 9 * buckets.len(),
    };
    Some(2 + name.len() + body)
}

impl WireMetrics {
    /// Shapes a [`MetricsSnapshot`] for the wire. Entries are taken in
    /// snapshot (name) order until the next whole one would overflow
    /// the frame; `truncated` records whether anything was dropped.
    /// Stable prefix-of-sorted-order truncation means two scrapes of
    /// the same registry disagree only in values, never in which
    /// metrics they carry.
    #[must_use]
    pub fn from_snapshot(snap: &MetricsSnapshot) -> WireMetrics {
        // status + truncated + count, then whole entries while they fit.
        let mut budget = MAX_FRAME - (1 + 1 + 2);
        let mut out = WireMetrics::default();
        for (name, value) in &snap.entries {
            let value = match value {
                MetricValue::Counter(n) => WireMetricValue::Counter(*n),
                MetricValue::Gauge(level) => WireMetricValue::Gauge(*level),
                MetricValue::Histogram(h) => {
                    let sparse = h
                        .buckets
                        .iter()
                        .enumerate()
                        .filter(|(_, n)| **n > 0)
                        // Bucket indices are < HISTOGRAM_BUCKETS = 65;
                        // clamping (instead of panicking) folds an
                        // impossible overflow into the top bucket.
                        .map(|(i, n)| (u8::try_from(i).unwrap_or(64), *n))
                        .collect();
                    WireMetricValue::Histogram(sparse)
                }
            };
            let Some(size) = metric_wire_size(name, &value).filter(|s| *s <= budget) else {
                out.truncated = true;
                break;
            };
            budget -= size;
            out.entries.push((name.clone(), value));
        }
        out
    }

    /// Reassembles a [`MetricsSnapshot`] so the caller gets the full
    /// accessor surface back (`counter`, `histogram`, `percentile`,
    /// `render_text`) instead of a wire shape.
    #[must_use]
    pub fn to_snapshot(&self) -> MetricsSnapshot {
        let entries = self
            .entries
            .iter()
            .map(|(name, value)| {
                let value = match value {
                    WireMetricValue::Counter(n) => MetricValue::Counter(*n),
                    WireMetricValue::Gauge(level) => MetricValue::Gauge(*level),
                    WireMetricValue::Histogram(sparse) => {
                        let mut h = HistogramSnapshot::default();
                        for (bucket, count) in sparse {
                            h.buckets[*bucket as usize] = *count;
                        }
                        MetricValue::Histogram(h)
                    }
                };
                (name.clone(), value)
            })
            .collect();
        MetricsSnapshot { entries }
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        out.push(u8::from(self.truncated));
        // `from_snapshot` budgets entries far below these caps; for a
        // hand-built value the encode degrades by dropping the excess
        // (keeping count and body consistent) rather than panicking.
        let encodable: Vec<_> = self
            .entries
            .iter()
            .filter(|(name, _)| u8::try_from(name.len()).is_ok())
            .take(usize::from(u16::MAX))
            .collect();
        let count = u16::try_from(encodable.len()).unwrap_or(u16::MAX);
        out.extend_from_slice(&count.to_be_bytes());
        for (name, value) in encodable {
            let name_len = u8::try_from(name.len()).unwrap_or(u8::MAX);
            let kind = match value {
                WireMetricValue::Counter(_) => 0u8,
                WireMetricValue::Gauge(_) => 1,
                WireMetricValue::Histogram(_) => 2,
            };
            out.push(kind);
            out.push(name_len);
            out.extend_from_slice(name.as_bytes());
            match value {
                WireMetricValue::Counter(n) => out.extend_from_slice(&n.to_be_bytes()),
                WireMetricValue::Gauge(level) => {
                    out.extend_from_slice(&level.to_be_bytes());
                }
                WireMetricValue::Histogram(sparse) => {
                    let buckets = u8::try_from(sparse.len()).unwrap_or(u8::MAX);
                    out.push(buckets);
                    for (bucket, n) in sparse.iter().take(usize::from(buckets)) {
                        out.push(*bucket);
                        out.extend_from_slice(&n.to_be_bytes());
                    }
                }
            }
        }
    }

    fn decode_from(c: &mut Cursor<'_>) -> Result<WireMetrics, String> {
        let truncated = match c.u8("truncated flag")? {
            0 => false,
            1 => true,
            b => return Err(format!("bad truncated flag {b}")),
        };
        let count = c.u16("metric count")? as usize;
        let mut entries = Vec::new(); // sized by the cursor, not the header
        for i in 0..count {
            let kind = c.u8("metric kind")?;
            let name_len = c.u8("metric name length")? as usize;
            if name_len == 0 || name_len > MAX_METRIC_NAME {
                return Err(format!(
                    "metric {i} name length {name_len} out of 1..={MAX_METRIC_NAME}"
                ));
            }
            let mut name = Vec::with_capacity(name_len);
            for _ in 0..name_len {
                name.push(c.u8("metric name byte")?);
            }
            let name = String::from_utf8(name).map_err(|_| format!("metric {i}: non-utf8 name"))?;
            let value = match kind {
                0 => WireMetricValue::Counter(c.u64("counter value")?),
                1 => WireMetricValue::Gauge(i64::from_be_bytes(c.take("gauge value")?)),
                2 => {
                    let nonzero = c.u8("histogram bucket count")? as usize;
                    if nonzero > HISTOGRAM_BUCKETS {
                        return Err(format!(
                            "{name}: {nonzero} buckets exceeds {HISTOGRAM_BUCKETS}"
                        ));
                    }
                    let mut sparse: Vec<(u8, u64)> = Vec::with_capacity(nonzero);
                    for _ in 0..nonzero {
                        let bucket = c.u8("histogram bucket index")?;
                        if bucket as usize >= HISTOGRAM_BUCKETS {
                            return Err(format!("{name}: bucket {bucket} out of range"));
                        }
                        if sparse.last().is_some_and(|(prev, _)| *prev >= bucket) {
                            return Err(format!("{name}: buckets not strictly ascending"));
                        }
                        let n = c.u64("histogram bucket value")?;
                        if n == 0 {
                            return Err(format!("{name}: zero count in sparse histogram"));
                        }
                        sparse.push((bucket, n));
                    }
                    WireMetricValue::Histogram(sparse)
                }
                k => return Err(format!("{name}: unknown metric kind {k}")),
            };
            entries.push((name, value));
        }
        Ok(WireMetrics { truncated, entries })
    }
}

/// A server response.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// The search completed; winner and telemetry.
    Ok {
        /// Winning candidate index (leaf index for game trees).
        index: u64,
        /// Winner's loss (game value for trees), bit-exact.
        loss: f64,
        /// This search's telemetry, including the tenant-cache deltas.
        stats: WireStats,
    },
    /// The deadline fired first. Flat/tree searches may carry the best
    /// candidate seen before the abort; minimax never does (a partial
    /// solve has no sound best — see
    /// `GameTree::solve_alphabeta_tt_cancellable`).
    Timeout {
        /// Best `(index, loss)` observed before cancellation, if sound.
        partial: Option<(u64, f64)>,
    },
    /// Admission control refused the connection (too many sessions).
    Busy,
    /// The request frame did not decode or failed validation; the
    /// session stays open.
    Malformed(String),
    /// The request was well-formed but the server could not run it.
    Error(String),
    /// Epoch bump acknowledged with the tenant's new leaf-cache epoch.
    EpochBumped {
        /// The tenant's new epoch.
        epoch: u64,
    },
    /// A metrics scrape: the server's registry snapshot, frame-budgeted.
    Metrics(WireMetrics),
}

/// Reads one length-prefixed frame. `Ok(None)` is a clean EOF *between*
/// frames (the peer hung up); EOF mid-frame, an oversized announced
/// length, or any transport error is `Err`.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<Vec<u8>>> {
    let mut hdr = [0u8; 4];
    match r.read_exact(&mut hdr) {
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        other => other?,
    }
    let len = u32::from_be_bytes(hdr) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds the {MAX_FRAME}-byte cap"),
        ));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    Ok(Some(buf))
}

/// Writes one length-prefixed frame. Header and payload go out in a
/// *single* write: split across two, Nagle holds the second tiny write
/// hostage to the peer's delayed ACK of the first, turning every
/// microsecond-scale warm request into a ~40ms round-trip.
///
/// # Errors
///
/// Fails with `InvalidInput` if `payload` exceeds [`MAX_FRAME`] —
/// server- and client-built payloads are all far smaller, so an
/// oversized one is a logic error, but the server's no-panic policy
/// reports it as an error instead of killing the worker.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len()).ok().filter(|_| payload.len() <= MAX_FRAME).ok_or_else(
        || {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "outgoing frame of {} bytes exceeds the {MAX_FRAME}-byte cap",
                    payload.len()
                ),
            )
        },
    )?;
    let mut wire = Vec::with_capacity(4 + payload.len());
    wire.extend_from_slice(&len.to_be_bytes());
    wire.extend_from_slice(payload);
    w.write_all(&wire)?;
    w.flush()
}

/// A little-decoder over a payload: every read is bounds-checked and
/// reports *what* was missing, so truncation errors are diagnosable
/// from the client side.
struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take<const N: usize>(&mut self, what: &str) -> Result<[u8; N], String> {
        let end = self.at.checked_add(N).filter(|e| *e <= self.buf.len());
        let end = end.ok_or_else(|| format!("truncated payload: missing {what}"))?;
        let mut out = [0u8; N];
        out.copy_from_slice(&self.buf[self.at..end]);
        self.at = end;
        Ok(out)
    }

    fn u8(&mut self, what: &str) -> Result<u8, String> {
        Ok(self.take::<1>(what)?[0])
    }

    fn u16(&mut self, what: &str) -> Result<u16, String> {
        Ok(u16::from_be_bytes(self.take(what)?))
    }

    fn u32(&mut self, what: &str) -> Result<u32, String> {
        Ok(u32::from_be_bytes(self.take(what)?))
    }

    fn u64(&mut self, what: &str) -> Result<u64, String> {
        Ok(u64::from_be_bytes(self.take(what)?))
    }

    fn finish(self) -> Result<(), String> {
        if self.at == self.buf.len() {
            Ok(())
        } else {
            Err(format!("{} trailing bytes after the message", self.buf.len() - self.at))
        }
    }
}

impl Workload {
    fn encode_into(self, out: &mut Vec<u8>) {
        match self {
            Workload::Chain { choices } => {
                out.push(1);
                out.push(choices);
            }
            Workload::Game { branching, depth, seed } => {
                out.push(2);
                out.push(branching);
                out.push(depth);
                out.extend_from_slice(&seed.to_be_bytes());
            }
        }
    }

    fn decode_from(c: &mut Cursor<'_>) -> Result<Workload, String> {
        match c.u8("workload tag")? {
            1 => Ok(Workload::Chain { choices: c.u8("chain choices")? }),
            2 => Ok(Workload::Game {
                branching: c.u8("game branching")?,
                depth: c.u8("game depth")?,
                seed: c.u64("game seed")?,
            }),
            t => Err(format!("unknown workload tag {t}")),
        }
    }
}

impl Request {
    /// Serialises the request payload (no length prefix).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32);
        match *self {
            Request::Search { tenant, deadline_ms, workload } => {
                out.push(1);
                out.extend_from_slice(&tenant.to_be_bytes());
                out.extend_from_slice(&deadline_ms.to_be_bytes());
                workload.encode_into(&mut out);
            }
            Request::BumpEpoch { tenant } => {
                out.push(2);
                out.extend_from_slice(&tenant.to_be_bytes());
            }
            Request::Metrics => out.push(3),
        }
        out
    }

    /// Decodes a request payload; the error string is what the server
    /// echoes back in a [`Response::Malformed`].
    pub fn decode(payload: &[u8]) -> Result<Request, String> {
        let mut c = Cursor { buf: payload, at: 0 };
        let req = match c.u8("opcode")? {
            1 => Request::Search {
                tenant: c.u64("tenant id")?,
                deadline_ms: c.u32("deadline")?,
                workload: Workload::decode_from(&mut c)?,
            },
            2 => Request::BumpEpoch { tenant: c.u64("tenant id")? },
            3 => Request::Metrics,
            op => return Err(format!("unknown opcode {op}")),
        };
        c.finish()?;
        Ok(req)
    }
}

fn encode_msg(out: &mut Vec<u8>, msg: &str) {
    let bytes = msg.as_bytes();
    let take = bytes.len().min(512); // keep even hostile echoes frame-safe
    let mut end = take;
    while end > 0 && !msg.is_char_boundary(end) {
        end -= 1;
    }
    // `end <= take <= 512` by construction, so the conversion cannot
    // actually clamp.
    out.extend_from_slice(&u16::try_from(end).unwrap_or(512).to_be_bytes());
    out.extend_from_slice(&bytes[..end]);
}

impl Response {
    /// Serialises the response payload (no length prefix).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(128);
        match self {
            Response::Ok { index, loss, stats } => {
                out.push(0);
                out.extend_from_slice(&index.to_be_bytes());
                out.extend_from_slice(&loss.to_bits().to_be_bytes());
                for f in stats.fields() {
                    out.extend_from_slice(&f.to_be_bytes());
                }
            }
            Response::Timeout { partial } => {
                out.push(1);
                match partial {
                    None => out.push(0),
                    Some((index, loss)) => {
                        out.push(1);
                        out.extend_from_slice(&index.to_be_bytes());
                        out.extend_from_slice(&loss.to_bits().to_be_bytes());
                    }
                }
            }
            Response::Busy => out.push(2),
            Response::Malformed(msg) => {
                out.push(3);
                encode_msg(&mut out, msg);
            }
            Response::Error(msg) => {
                out.push(4);
                encode_msg(&mut out, msg);
            }
            Response::EpochBumped { epoch } => {
                out.push(5);
                out.extend_from_slice(&epoch.to_be_bytes());
            }
            Response::Metrics(metrics) => {
                out.push(6);
                metrics.encode_into(&mut out);
            }
        }
        out
    }

    /// Decodes a response payload.
    pub fn decode(payload: &[u8]) -> Result<Response, String> {
        let mut c = Cursor { buf: payload, at: 0 };
        let resp = match c.u8("status")? {
            0 => {
                let index = c.u64("winner index")?;
                let loss = f64::from_bits(c.u64("winner loss")?);
                let mut f = [0u64; 12];
                for (i, slot) in f.iter_mut().enumerate() {
                    *slot = c.u64(&format!("stats field {i}"))?;
                }
                Response::Ok { index, loss, stats: WireStats::from_fields(f) }
            }
            1 => {
                let partial = match c.u8("partial flag")? {
                    0 => None,
                    1 => Some((c.u64("partial index")?, f64::from_bits(c.u64("partial loss")?))),
                    b => return Err(format!("bad partial flag {b}")),
                };
                Response::Timeout { partial }
            }
            2 => Response::Busy,
            s @ (3 | 4) => {
                let len = c.u16("message length")? as usize;
                let mut msg = Vec::with_capacity(len);
                for i in 0..len {
                    msg.push(c.u8(&format!("message byte {i}"))?);
                }
                let msg = String::from_utf8(msg).map_err(|_| "non-utf8 message".to_owned())?;
                if s == 3 {
                    Response::Malformed(msg)
                } else {
                    Response::Error(msg)
                }
            }
            5 => Response::EpochBumped { epoch: c.u64("epoch")? },
            6 => Response::Metrics(WireMetrics::decode_from(&mut c)?),
            s => return Err(format!("unknown status {s}")),
        };
        c.finish()?;
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(req: Request) {
        assert_eq!(Request::decode(&req.encode()), Ok(req));
    }

    fn roundtrip_response(resp: Response) {
        assert_eq!(Response::decode(&resp.encode()), Ok(resp));
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip_request(Request::Search {
            tenant: 7,
            deadline_ms: 0,
            workload: Workload::Chain { choices: 12 },
        });
        roundtrip_request(Request::Search {
            tenant: u64::MAX,
            deadline_ms: 1,
            workload: Workload::Game { branching: 3, depth: 5, seed: 42 },
        });
        roundtrip_request(Request::BumpEpoch { tenant: 0 });
        roundtrip_request(Request::Metrics);
    }

    #[test]
    fn responses_roundtrip() {
        roundtrip_response(Response::Ok {
            index: 3,
            loss: -0.0, // sign bit must survive: losses travel as bits
            stats: WireStats { evaluated: 9, summary_exact_hits: 2, ..WireStats::default() },
        });
        roundtrip_response(Response::Timeout { partial: None });
        roundtrip_response(Response::Timeout { partial: Some((5, f64::INFINITY)) });
        roundtrip_response(Response::Busy);
        roundtrip_response(Response::Malformed("bad".to_owned()));
        roundtrip_response(Response::Error("worse".to_owned()));
        roundtrip_response(Response::EpochBumped { epoch: 2 });
        roundtrip_response(Response::Metrics(WireMetrics {
            truncated: true,
            entries: vec![
                ("cache.hits".to_owned(), WireMetricValue::Counter(u64::MAX)),
                ("serve.queue_depth".to_owned(), WireMetricValue::Gauge(-3)),
                (
                    "serve.latency_us.chain".to_owned(),
                    WireMetricValue::Histogram(vec![(0, 1), (7, 2), (64, u64::MAX)]),
                ),
            ],
        }));
        roundtrip_response(Response::Metrics(WireMetrics::default()));
    }

    #[test]
    fn metrics_snapshot_survives_the_wire_and_respects_the_frame_budget() {
        // A realistic snapshot: counter, negative gauge, and a histogram
        // whose sparse wire form must rebuild the same dense buckets.
        let mut hist = HistogramSnapshot::default();
        hist.buckets[0] = 4;
        hist.buckets[6] = 9;
        hist.buckets[64] = 1;
        let snap = MetricsSnapshot {
            entries: vec![
                ("a.count".to_owned(), MetricValue::Counter(17)),
                ("b.level".to_owned(), MetricValue::Gauge(-42)),
                ("c.lat".to_owned(), MetricValue::Histogram(hist)),
            ],
        };
        let wire = WireMetrics::from_snapshot(&snap);
        assert!(!wire.truncated);
        let enc = Response::Metrics(wire.clone()).encode();
        assert!(enc.len() <= MAX_FRAME);
        match Response::decode(&enc).unwrap() {
            Response::Metrics(back) => {
                assert_eq!(back, wire);
                assert_eq!(back.to_snapshot().entries, snap.entries);
            }
            other => panic!("expected Metrics, got {other:?}"),
        }

        // Too many metrics to fit one frame: a whole-entry prefix in
        // name order goes out, the flag records the loss, and the
        // encoding still fits.
        let big = MetricsSnapshot {
            entries: (0..400).map(|i| (format!("m.{i:04}"), MetricValue::Counter(i))).collect(),
        };
        let wire = WireMetrics::from_snapshot(&big);
        assert!(wire.truncated);
        assert!(!wire.entries.is_empty());
        let kept: Vec<&str> = wire.entries.iter().map(|(n, _)| n.as_str()).collect();
        let expected: Vec<&str> =
            big.entries[..kept.len()].iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(kept, expected, "truncation keeps a prefix of name order");
        let enc = Response::Metrics(wire).encode();
        assert!(enc.len() <= MAX_FRAME);
        assert!(matches!(Response::decode(&enc), Ok(Response::Metrics(w)) if w.truncated));
    }

    #[test]
    fn hostile_metrics_payloads_are_rejected() {
        fn decode_metric(entry: &[u8]) -> Result<Response, String> {
            let mut payload = vec![6, 0, 0, 1]; // status, truncated=0, count=1
            payload.extend_from_slice(entry);
            Response::decode(&payload)
        }

        // Empty name.
        let err = decode_metric(&[0, 0]).expect_err("empty name");
        assert!(err.contains("name length"), "{err}");

        // Unknown kind.
        let mut entry = vec![9, 1, b'x'];
        entry.extend_from_slice(&0u64.to_be_bytes());
        let err = decode_metric(&entry).expect_err("kind");
        assert!(err.contains("unknown metric kind"), "{err}");

        // Histogram bucket out of range.
        let mut entry = vec![2, 1, b'x', 1, 65];
        entry.extend_from_slice(&1u64.to_be_bytes());
        let err = decode_metric(&entry).expect_err("bucket range");
        assert!(err.contains("out of range"), "{err}");

        // Buckets not strictly ascending (duplicate could double-add on
        // reassembly).
        let mut entry = vec![2, 1, b'x', 2, 3];
        entry.extend_from_slice(&1u64.to_be_bytes());
        entry.push(3);
        entry.extend_from_slice(&1u64.to_be_bytes());
        let err = decode_metric(&entry).expect_err("ascending");
        assert!(err.contains("strictly ascending"), "{err}");

        // Zero count in the sparse form: not canonical, refuse it.
        let mut entry = vec![2, 1, b'x', 1, 3];
        entry.extend_from_slice(&0u64.to_be_bytes());
        let err = decode_metric(&entry).expect_err("zero count");
        assert!(err.contains("zero count"), "{err}");

        // A hostile count with no bytes behind it dies in the cursor,
        // not in an allocation.
        let err = Response::decode(&[6, 0, 0xff, 0xff]).expect_err("count");
        assert!(err.contains("missing"), "{err}");
    }

    #[test]
    fn truncated_and_trailing_payloads_are_rejected_with_reasons() {
        let full = Request::Search {
            tenant: 1,
            deadline_ms: 5,
            workload: Workload::Game { branching: 2, depth: 3, seed: 9 },
        }
        .encode();
        for cut in 0..full.len() {
            let err = Request::decode(&full[..cut]).expect_err("truncation must fail");
            assert!(err.contains("missing") || err.contains("opcode"), "cut {cut}: {err}");
        }
        let mut padded = full;
        padded.push(0);
        assert!(Request::decode(&padded).expect_err("trailing").contains("trailing"));
    }

    #[test]
    fn unknown_tags_are_rejected() {
        assert!(Request::decode(&[9]).expect_err("opcode").contains("unknown opcode"));
        let mut bad_workload = vec![1];
        bad_workload.extend_from_slice(&1u64.to_be_bytes());
        bad_workload.extend_from_slice(&0u32.to_be_bytes());
        bad_workload.push(7);
        assert!(Request::decode(&bad_workload).expect_err("tag").contains("workload tag"));
        assert!(Response::decode(&[9]).expect_err("status").contains("unknown status"));
    }

    #[test]
    fn frames_roundtrip_and_oversized_lengths_are_refused_before_allocation() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").unwrap();
        write_frame(&mut wire, b"").unwrap();
        let mut r = &wire[..];
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(&b"hello"[..]));
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(&b""[..]));
        assert_eq!(read_frame(&mut r).unwrap(), None, "clean EOF between frames");

        let huge = u32::MAX.to_be_bytes();
        let err = read_frame(&mut &huge[..]).expect_err("oversized header");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);

        let mut truncated = Vec::new();
        truncated.extend_from_slice(&100u32.to_be_bytes());
        truncated.extend_from_slice(&[0u8; 10]);
        let err = read_frame(&mut &truncated[..]).expect_err("mid-frame EOF");
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn long_error_messages_are_clipped_to_fit_the_frame() {
        let msg = "x".repeat(5000);
        let enc = Response::Error(msg).encode();
        assert!(enc.len() <= MAX_FRAME);
        match Response::decode(&enc).unwrap() {
            Response::Error(m) => assert_eq!(m.len(), 512),
            other => panic!("expected Error, got {other:?}"),
        }
    }
}
