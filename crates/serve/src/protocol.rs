//! The wire protocol: length-prefixed binary frames over TCP.
//!
//! Every message — request or response — travels as one **frame**: a
//! 4-byte big-endian payload length followed by the payload, capped at
//! [`MAX_FRAME`] bytes. All multi-byte integers are big-endian; losses
//! cross the wire as IEEE-754 bit patterns (`f64::to_bits`), so a
//! served winner is comparable *bit-for-bit* against a direct engine
//! call — the protocol never rounds through text.
//!
//! Request payload:
//!
//! ```text
//! opcode:u8
//!   1 = Search    tenant:u64  deadline_ms:u32 (0 = none)  workload
//!   2 = BumpEpoch tenant:u64
//! workload: tag:u8
//!   1 = Chain  choices:u8                      (compiled λC decide chain)
//!   2 = Game   branching:u8 depth:u8 seed:u64  (alternating game tree)
//! ```
//!
//! Response payload:
//!
//! ```text
//! status:u8
//!   0 = Ok          index:u64  loss:u64 (f64 bits)  stats:12×u64
//!   1 = Timeout     has_partial:u8  [index:u64  loss:u64]
//!   2 = Busy
//!   3 = Malformed   len:u16  msg:utf8
//!   4 = Error       len:u16  msg:utf8
//!   5 = EpochBumped epoch:u64
//! ```
//!
//! Decoding is total: every error path is a `Result`, never a panic, so
//! a malformed frame costs the client an error response — not the
//! server its accept loop.

use std::io::{self, Read, Write};

/// Hard cap on a frame payload. Every legal message fits in a fraction
/// of this; a larger announced length is rejected *before* allocation,
/// so a hostile header cannot balloon server memory.
pub const MAX_FRAME: usize = 4096;

/// A search workload the server can run against a tenant's caches.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Workload {
    /// `lambda_c::testgen::deep_decide_chain(choices)` compiled and
    /// searched on the tree engine (space `2^choices`).
    Chain {
        /// Nested decisions; validated to `1..=24`.
        choices: u8,
    },
    /// `selc_games::GameTree::random(branching, depth, seed)` solved by
    /// flagged-table alpha-beta.
    Game {
        /// Moves per ply; validated to `1..=8`.
        branching: u8,
        /// Plies; validated so `branching^depth <= 2^20`.
        depth: u8,
        /// Leaf-generation seed (part of the tenant's game key).
        seed: u64,
    },
}

/// A client request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Request {
    /// Run `workload` for `tenant`, cancelling after `deadline_ms`
    /// milliseconds (0 = no deadline).
    Search {
        /// Tenant whose warm caches serve this search.
        tenant: u64,
        /// Milliseconds until the search's `CancelToken` fires; 0 never.
        deadline_ms: u32,
        /// What to search.
        workload: Workload,
    },
    /// Invalidate every cache of `tenant` (and only `tenant`).
    BumpEpoch {
        /// Tenant to invalidate.
        tenant: u64,
    },
}

/// Engine telemetry on the wire: [`selc_engine::SearchStats`] flattened
/// to twelve `u64`s (threads widened) so the frame layout is fixed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[allow(missing_docs)] // field names mirror SearchStats/CacheStats/SummaryStats
pub struct WireStats {
    pub evaluated: u64,
    pub pruned: u64,
    pub threads: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub cache_insertions: u64,
    pub cache_evictions: u64,
    pub summary_exact_hits: u64,
    pub summary_bound_hits: u64,
    pub summary_misses: u64,
    pub summary_exact_installs: u64,
    pub summary_bound_installs: u64,
}

impl WireStats {
    fn fields(&self) -> [u64; 12] {
        [
            self.evaluated,
            self.pruned,
            self.threads,
            self.cache_hits,
            self.cache_misses,
            self.cache_insertions,
            self.cache_evictions,
            self.summary_exact_hits,
            self.summary_bound_hits,
            self.summary_misses,
            self.summary_exact_installs,
            self.summary_bound_installs,
        ]
    }

    fn from_fields(f: [u64; 12]) -> WireStats {
        WireStats {
            evaluated: f[0],
            pruned: f[1],
            threads: f[2],
            cache_hits: f[3],
            cache_misses: f[4],
            cache_insertions: f[5],
            cache_evictions: f[6],
            summary_exact_hits: f[7],
            summary_bound_hits: f[8],
            summary_misses: f[9],
            summary_exact_installs: f[10],
            summary_bound_installs: f[11],
        }
    }
}

/// A server response.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// The search completed; winner and telemetry.
    Ok {
        /// Winning candidate index (leaf index for game trees).
        index: u64,
        /// Winner's loss (game value for trees), bit-exact.
        loss: f64,
        /// This search's telemetry, including the tenant-cache deltas.
        stats: WireStats,
    },
    /// The deadline fired first. Flat/tree searches may carry the best
    /// candidate seen before the abort; minimax never does (a partial
    /// solve has no sound best — see
    /// `GameTree::solve_alphabeta_tt_cancellable`).
    Timeout {
        /// Best `(index, loss)` observed before cancellation, if sound.
        partial: Option<(u64, f64)>,
    },
    /// Admission control refused the connection (too many sessions).
    Busy,
    /// The request frame did not decode or failed validation; the
    /// session stays open.
    Malformed(String),
    /// The request was well-formed but the server could not run it.
    Error(String),
    /// Epoch bump acknowledged with the tenant's new leaf-cache epoch.
    EpochBumped {
        /// The tenant's new epoch.
        epoch: u64,
    },
}

/// Reads one length-prefixed frame. `Ok(None)` is a clean EOF *between*
/// frames (the peer hung up); EOF mid-frame, an oversized announced
/// length, or any transport error is `Err`.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<Vec<u8>>> {
    let mut hdr = [0u8; 4];
    match r.read_exact(&mut hdr) {
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        other => other?,
    }
    let len = u32::from_be_bytes(hdr) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds the {MAX_FRAME}-byte cap"),
        ));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    Ok(Some(buf))
}

/// Writes one length-prefixed frame. Header and payload go out in a
/// *single* write: split across two, Nagle holds the second tiny write
/// hostage to the peer's delayed ACK of the first, turning every
/// microsecond-scale warm request into a ~40ms round-trip.
///
/// # Panics
///
/// Panics if `payload` exceeds [`MAX_FRAME`] — server- and client-built
/// payloads are all far smaller, so an oversized one is a logic error.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    assert!(payload.len() <= MAX_FRAME, "oversized outgoing frame");
    let mut wire = Vec::with_capacity(4 + payload.len());
    wire.extend_from_slice(&u32::try_from(payload.len()).expect("<= MAX_FRAME").to_be_bytes());
    wire.extend_from_slice(payload);
    w.write_all(&wire)?;
    w.flush()
}

/// A little-decoder over a payload: every read is bounds-checked and
/// reports *what* was missing, so truncation errors are diagnosable
/// from the client side.
struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take<const N: usize>(&mut self, what: &str) -> Result<[u8; N], String> {
        let end = self.at.checked_add(N).filter(|e| *e <= self.buf.len());
        let end = end.ok_or_else(|| format!("truncated payload: missing {what}"))?;
        let mut out = [0u8; N];
        out.copy_from_slice(&self.buf[self.at..end]);
        self.at = end;
        Ok(out)
    }

    fn u8(&mut self, what: &str) -> Result<u8, String> {
        Ok(self.take::<1>(what)?[0])
    }

    fn u16(&mut self, what: &str) -> Result<u16, String> {
        Ok(u16::from_be_bytes(self.take(what)?))
    }

    fn u32(&mut self, what: &str) -> Result<u32, String> {
        Ok(u32::from_be_bytes(self.take(what)?))
    }

    fn u64(&mut self, what: &str) -> Result<u64, String> {
        Ok(u64::from_be_bytes(self.take(what)?))
    }

    fn finish(self) -> Result<(), String> {
        if self.at == self.buf.len() {
            Ok(())
        } else {
            Err(format!("{} trailing bytes after the message", self.buf.len() - self.at))
        }
    }
}

impl Workload {
    fn encode_into(self, out: &mut Vec<u8>) {
        match self {
            Workload::Chain { choices } => {
                out.push(1);
                out.push(choices);
            }
            Workload::Game { branching, depth, seed } => {
                out.push(2);
                out.push(branching);
                out.push(depth);
                out.extend_from_slice(&seed.to_be_bytes());
            }
        }
    }

    fn decode_from(c: &mut Cursor<'_>) -> Result<Workload, String> {
        match c.u8("workload tag")? {
            1 => Ok(Workload::Chain { choices: c.u8("chain choices")? }),
            2 => Ok(Workload::Game {
                branching: c.u8("game branching")?,
                depth: c.u8("game depth")?,
                seed: c.u64("game seed")?,
            }),
            t => Err(format!("unknown workload tag {t}")),
        }
    }
}

impl Request {
    /// Serialises the request payload (no length prefix).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32);
        match *self {
            Request::Search { tenant, deadline_ms, workload } => {
                out.push(1);
                out.extend_from_slice(&tenant.to_be_bytes());
                out.extend_from_slice(&deadline_ms.to_be_bytes());
                workload.encode_into(&mut out);
            }
            Request::BumpEpoch { tenant } => {
                out.push(2);
                out.extend_from_slice(&tenant.to_be_bytes());
            }
        }
        out
    }

    /// Decodes a request payload; the error string is what the server
    /// echoes back in a [`Response::Malformed`].
    pub fn decode(payload: &[u8]) -> Result<Request, String> {
        let mut c = Cursor { buf: payload, at: 0 };
        let req = match c.u8("opcode")? {
            1 => Request::Search {
                tenant: c.u64("tenant id")?,
                deadline_ms: c.u32("deadline")?,
                workload: Workload::decode_from(&mut c)?,
            },
            2 => Request::BumpEpoch { tenant: c.u64("tenant id")? },
            op => return Err(format!("unknown opcode {op}")),
        };
        c.finish()?;
        Ok(req)
    }
}

fn encode_msg(out: &mut Vec<u8>, msg: &str) {
    let bytes = msg.as_bytes();
    let take = bytes.len().min(512); // keep even hostile echoes frame-safe
    let mut end = take;
    while end > 0 && !msg.is_char_boundary(end) {
        end -= 1;
    }
    out.extend_from_slice(&u16::try_from(end).expect("<= 512").to_be_bytes());
    out.extend_from_slice(&bytes[..end]);
}

impl Response {
    /// Serialises the response payload (no length prefix).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(128);
        match self {
            Response::Ok { index, loss, stats } => {
                out.push(0);
                out.extend_from_slice(&index.to_be_bytes());
                out.extend_from_slice(&loss.to_bits().to_be_bytes());
                for f in stats.fields() {
                    out.extend_from_slice(&f.to_be_bytes());
                }
            }
            Response::Timeout { partial } => {
                out.push(1);
                match partial {
                    None => out.push(0),
                    Some((index, loss)) => {
                        out.push(1);
                        out.extend_from_slice(&index.to_be_bytes());
                        out.extend_from_slice(&loss.to_bits().to_be_bytes());
                    }
                }
            }
            Response::Busy => out.push(2),
            Response::Malformed(msg) => {
                out.push(3);
                encode_msg(&mut out, msg);
            }
            Response::Error(msg) => {
                out.push(4);
                encode_msg(&mut out, msg);
            }
            Response::EpochBumped { epoch } => {
                out.push(5);
                out.extend_from_slice(&epoch.to_be_bytes());
            }
        }
        out
    }

    /// Decodes a response payload.
    pub fn decode(payload: &[u8]) -> Result<Response, String> {
        let mut c = Cursor { buf: payload, at: 0 };
        let resp = match c.u8("status")? {
            0 => {
                let index = c.u64("winner index")?;
                let loss = f64::from_bits(c.u64("winner loss")?);
                let mut f = [0u64; 12];
                for (i, slot) in f.iter_mut().enumerate() {
                    *slot = c.u64(&format!("stats field {i}"))?;
                }
                Response::Ok { index, loss, stats: WireStats::from_fields(f) }
            }
            1 => {
                let partial = match c.u8("partial flag")? {
                    0 => None,
                    1 => Some((c.u64("partial index")?, f64::from_bits(c.u64("partial loss")?))),
                    b => return Err(format!("bad partial flag {b}")),
                };
                Response::Timeout { partial }
            }
            2 => Response::Busy,
            s @ (3 | 4) => {
                let len = c.u16("message length")? as usize;
                let mut msg = Vec::with_capacity(len);
                for i in 0..len {
                    msg.push(c.u8(&format!("message byte {i}"))?);
                }
                let msg = String::from_utf8(msg).map_err(|_| "non-utf8 message".to_owned())?;
                if s == 3 {
                    Response::Malformed(msg)
                } else {
                    Response::Error(msg)
                }
            }
            5 => Response::EpochBumped { epoch: c.u64("epoch")? },
            s => return Err(format!("unknown status {s}")),
        };
        c.finish()?;
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(req: Request) {
        assert_eq!(Request::decode(&req.encode()), Ok(req));
    }

    fn roundtrip_response(resp: Response) {
        assert_eq!(Response::decode(&resp.encode()), Ok(resp));
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip_request(Request::Search {
            tenant: 7,
            deadline_ms: 0,
            workload: Workload::Chain { choices: 12 },
        });
        roundtrip_request(Request::Search {
            tenant: u64::MAX,
            deadline_ms: 1,
            workload: Workload::Game { branching: 3, depth: 5, seed: 42 },
        });
        roundtrip_request(Request::BumpEpoch { tenant: 0 });
    }

    #[test]
    fn responses_roundtrip() {
        roundtrip_response(Response::Ok {
            index: 3,
            loss: -0.0, // sign bit must survive: losses travel as bits
            stats: WireStats { evaluated: 9, summary_exact_hits: 2, ..WireStats::default() },
        });
        roundtrip_response(Response::Timeout { partial: None });
        roundtrip_response(Response::Timeout { partial: Some((5, f64::INFINITY)) });
        roundtrip_response(Response::Busy);
        roundtrip_response(Response::Malformed("bad".to_owned()));
        roundtrip_response(Response::Error("worse".to_owned()));
        roundtrip_response(Response::EpochBumped { epoch: 2 });
    }

    #[test]
    fn truncated_and_trailing_payloads_are_rejected_with_reasons() {
        let full = Request::Search {
            tenant: 1,
            deadline_ms: 5,
            workload: Workload::Game { branching: 2, depth: 3, seed: 9 },
        }
        .encode();
        for cut in 0..full.len() {
            let err = Request::decode(&full[..cut]).expect_err("truncation must fail");
            assert!(err.contains("missing") || err.contains("opcode"), "cut {cut}: {err}");
        }
        let mut padded = full;
        padded.push(0);
        assert!(Request::decode(&padded).expect_err("trailing").contains("trailing"));
    }

    #[test]
    fn unknown_tags_are_rejected() {
        assert!(Request::decode(&[9]).expect_err("opcode").contains("unknown opcode"));
        let mut bad_workload = vec![1];
        bad_workload.extend_from_slice(&1u64.to_be_bytes());
        bad_workload.extend_from_slice(&0u32.to_be_bytes());
        bad_workload.push(7);
        assert!(Request::decode(&bad_workload).expect_err("tag").contains("workload tag"));
        assert!(Response::decode(&[9]).expect_err("status").contains("unknown status"));
    }

    #[test]
    fn frames_roundtrip_and_oversized_lengths_are_refused_before_allocation() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").unwrap();
        write_frame(&mut wire, b"").unwrap();
        let mut r = &wire[..];
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(&b"hello"[..]));
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(&b""[..]));
        assert_eq!(read_frame(&mut r).unwrap(), None, "clean EOF between frames");

        let huge = u32::MAX.to_be_bytes();
        let err = read_frame(&mut &huge[..]).expect_err("oversized header");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);

        let mut truncated = Vec::new();
        truncated.extend_from_slice(&100u32.to_be_bytes());
        truncated.extend_from_slice(&[0u8; 10]);
        let err = read_frame(&mut &truncated[..]).expect_err("mid-frame EOF");
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn long_error_messages_are_clipped_to_fit_the_frame() {
        let msg = "x".repeat(5000);
        let enc = Response::Error(msg).encode();
        assert!(enc.len() <= MAX_FRAME);
        match Response::decode(&enc).unwrap() {
            Response::Error(m) => assert_eq!(m.len(), 512),
            other => panic!("expected Error, got {other:?}"),
        }
    }
}
