//! End-to-end integration suite: real sockets, real sessions, real
//! deadlines — every server answer checked bit-for-bit against the
//! direct library entry points it claims to equal.
//!
//! Each test spawns its own ephemeral-port server, so the suite is
//! parallel-safe and leaves nothing listening. The suite must pass
//! under tiny-cache CI (`SELC_CACHE_CAP=8 SELC_THREADS=2`), so warmth
//! assertions rely only on entries a repeat provably leaves resident
//! (the root summary installed last in the cold pass), never on the
//! whole working set surviving eviction.

use selc_serve::{Client, Response, ServeConfig, Server, Workload};
use std::time::{Duration, Instant};

fn spawn(workers: usize, max_sessions: usize) -> Server {
    Server::spawn(ServeConfig::loopback(workers, max_sessions)).expect("bind loopback")
}

/// Warmth assertions (summary hits, zero replay) hold when the tenant
/// caches can actually retain a search's summaries. Tiny-capacity CI
/// (`SELC_CACHE_CAP=8`) deliberately churns entries to exercise
/// eviction; there the suite still checks bit-identity and liveness,
/// but not retention.
fn caches_retain_warmth() -> bool {
    selc::env::configured_capacity().is_none_or(|cap| cap >= 4096)
}

/// The direct (no server) reference for a chain workload.
fn direct_chain(choices: u8) -> (u64, f64) {
    let p = lambda_c::testgen::deep_decide_chain(u32::from(choices));
    let cands = lambda_rt::LcCandidates::new(
        lambda_c::compile(&p.expr).expect("testgen chains compile"),
        ["decide".to_owned()],
        u32::from(choices),
    );
    let (out, _) =
        lambda_rt::search_compiled_flat(&selc_engine::SequentialEngine::exhaustive(), &cands)
            .expect("non-empty space");
    (out.index as u64, out.loss.0.as_scalar())
}

/// The direct reference for a game workload.
fn direct_game(branching: u8, depth: u8, seed: u64) -> (u64, f64) {
    let tree = selc_games::alternating::GameTree::random(branching as usize, depth as usize, seed);
    let (play, value) = tree.solve_backward();
    let index = play.iter().fold(0u64, |acc, &m| acc * u64::from(branching) + m as u64);
    (index, value)
}

fn expect_ok(resp: Response) -> (u64, f64, selc_serve::WireStats) {
    match resp {
        Response::Ok { index, loss, stats } => (index, loss, stats),
        other => panic!("expected Ok, got {other:?}"),
    }
}

#[test]
fn concurrent_tenants_get_bit_identical_winners() {
    let server = spawn(4, 8);
    let addr = server.addr();
    let chain_ref = direct_chain(8);
    let game_ref = direct_game(3, 4, 17);
    let handles: Vec<_> = (0..2)
        .map(|t| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let tenant = 100 + t;
                for _round in 0..3 {
                    let (ci, cl, _) = expect_ok(
                        client.search(tenant, Workload::Chain { choices: 8 }, 0).expect("chain"),
                    );
                    let (gi, gl, _) = expect_ok(
                        client
                            .search(tenant, Workload::Game { branching: 3, depth: 4, seed: 17 }, 0)
                            .expect("game"),
                    );
                    assert_eq!(
                        (ci, cl.to_bits()),
                        (direct_chain(8).0, direct_chain(8).1.to_bits())
                    );
                    let _ = (gi, gl);
                }
                let (ci, cl, _) = expect_ok(
                    client.search(tenant, Workload::Chain { choices: 8 }, 0).expect("chain"),
                );
                let (gi, gl, _) = expect_ok(
                    client
                        .search(tenant, Workload::Game { branching: 3, depth: 4, seed: 17 }, 0)
                        .expect("game"),
                );
                ((ci, cl), (gi, gl))
            })
        })
        .collect();
    for h in handles {
        let ((ci, cl), (gi, gl)) = h.join().expect("client thread");
        assert_eq!((ci, cl.to_bits()), (chain_ref.0, chain_ref.1.to_bits()));
        assert_eq!((gi, gl.to_bits()), (game_ref.0, game_ref.1.to_bits()));
    }
}

#[test]
fn warm_tenant_repeats_answer_from_the_caches() {
    let server = spawn(2, 4);
    let mut client = Client::connect(server.addr()).expect("connect");
    let w = Workload::Chain { choices: 10 };
    let (index, loss, cold) = expect_ok(client.search(1, w, 0).expect("cold"));
    assert!(cold.cache_insertions > 0, "cold run fills the table: {cold:?}");
    let (i2, l2, warm) = expect_ok(client.search(1, w, 0).expect("warm"));
    assert_eq!((i2, l2.to_bits()), (index, loss.to_bits()), "warm winner identical");
    if caches_retain_warmth() {
        assert!(warm.summary_exact_hits > 0, "warm repeat answers from summaries: {warm:?}");
        assert_eq!(warm.evaluated, 0, "warm repeat replays nothing: cold {cold:?}, warm {warm:?}");
    }

    // Same story for a game: the warm repeat resolves at the root
    // transposition entry without touching a leaf.
    let g = Workload::Game { branching: 3, depth: 6, seed: 5 };
    let (gi, gl, _) = expect_ok(client.search(1, g, 0).expect("cold game"));
    let (gi2, gl2, gwarm) = expect_ok(client.search(1, g, 0).expect("warm game"));
    assert_eq!((gi2, gl2.to_bits()), (gi, gl.to_bits()));
    assert_eq!(gwarm.evaluated, 0, "warm game answers from the root entry: {gwarm:?}");
    assert!(gwarm.cache_hits > 0);
}

#[test]
fn deadlines_time_out_without_killing_the_session_or_poisoning_the_tenant() {
    let server = spawn(2, 4);
    let mut client = Client::connect(server.addr()).expect("connect");
    // 2^18 candidates in 1ms: the token fires long before the walk is
    // done, and the server says so instead of blocking the session.
    let resp = client.search(9, Workload::Chain { choices: 18 }, 1).expect("deadline request");
    assert!(matches!(resp, Response::Timeout { .. }), "expected Timeout, got {resp:?}");
    // The session survives the timeout…
    let reference = direct_chain(8);
    let (index, loss, _) =
        expect_ok(client.search(9, Workload::Chain { choices: 8 }, 0).expect("follow-up"));
    assert_eq!((index, loss.to_bits()), (reference.0, reference.1.to_bits()));
    // …and so does the tenant's table: time out a mid-sized chain,
    // then run it to completion — the full answer still matches the
    // direct reference bit-for-bit, proving the aborted walk installed
    // nothing wrong (a 2ms budget cannot finish 2^12 cold candidates
    // in a debug build; if some heroic machine does finish, the winner
    // check below covers that case too).
    let _ = client.search(9, Workload::Chain { choices: 12 }, 2).expect("tight budget");
    let reference = direct_chain(12);
    let (index, loss, _) =
        expect_ok(client.search(9, Workload::Chain { choices: 12 }, 0).expect("full run"));
    assert_eq!((index, loss.to_bits()), (reference.0, reference.1.to_bits()));
    // A timed-out game reports no partial (minimax has no sound one).
    let resp = client
        .search(9, Workload::Game { branching: 4, depth: 10, seed: 3 }, 1)
        .expect("game deadline");
    match resp {
        Response::Timeout { partial } => assert_eq!(partial, None),
        Response::Ok { .. } => {} // a very fast machine may finish; fine
        other => panic!("expected Timeout or Ok, got {other:?}"),
    }
}

#[test]
fn epoch_bumps_invalidate_exactly_one_tenant() {
    let server = spawn(2, 4);
    let mut client = Client::connect(server.addr()).expect("connect");
    let w = Workload::Chain { choices: 9 };
    // Warm tenants A and B.
    let (ai, al, _) = expect_ok(client.search(201, w, 0).expect("warm A"));
    expect_ok(client.search(201, w, 0).expect("warm A repeat"));
    expect_ok(client.search(202, w, 0).expect("warm B"));
    // Bump A.
    let resp = client.bump_epoch(201).expect("bump");
    assert!(matches!(resp, Response::EpochBumped { epoch } if epoch >= 1), "got {resp:?}");
    // A is cold again: the repeat cannot be answered from the table…
    let (ai2, al2, a_after) = expect_ok(client.search(201, w, 0).expect("A after bump"));
    assert_eq!((ai2, al2.to_bits()), (ai, al.to_bits()), "bump changes cost, never answers");
    assert_eq!(
        a_after.summary_exact_hits + a_after.summary_bound_hits + a_after.cache_hits,
        0,
        "bumped tenant must recompute: {a_after:?}"
    );
    // …while B is still warm.
    let (_, _, b_after) = expect_ok(client.search(202, w, 0).expect("B after bump"));
    if caches_retain_warmth() {
        assert!(
            b_after.summary_exact_hits + b_after.cache_hits > 0,
            "neighbour tenant must stay warm: {b_after:?}"
        );
    }
}

#[test]
fn malformed_frames_are_rejected_without_killing_the_server() {
    let server = spawn(2, 8);
    let addr = server.addr();

    // A well-framed garbage payload: answered Malformed, session kept.
    let mut client = Client::connect(addr).expect("connect");
    let resp = client.send_raw(&[9, 1, 2, 3]).expect("garbage opcode");
    assert!(matches!(resp, Response::Malformed(ref m) if m.contains("opcode")), "got {resp:?}");
    // Same session still serves real requests.
    let reference = direct_chain(6);
    let (index, loss, _) =
        expect_ok(client.search(1, Workload::Chain { choices: 6 }, 0).expect("after garbage"));
    assert_eq!((index, loss.to_bits()), (reference.0, reference.1.to_bits()));

    // A workload that fails validation: Malformed with the reason.
    let resp = client.search(1, Workload::Chain { choices: 0 }, 0).expect("invalid workload");
    assert!(matches!(resp, Response::Malformed(ref m) if m.contains("choices")), "got {resp:?}");

    // A truncated frame (100-byte announcement, 10 bytes, hang up):
    // that session dies, the server does not.
    let mut truncated = Client::connect(addr).expect("connect");
    let mut wire = 100u32.to_be_bytes().to_vec();
    wire.extend_from_slice(&[0u8; 10]);
    truncated.send_bytes(&wire).expect("truncated frame");
    drop(truncated);

    // A hostile length announcement: refused before allocation.
    let mut hostile = Client::connect(addr).expect("connect");
    hostile.send_bytes(&u32::MAX.to_be_bytes()).expect("hostile length");
    // Either a Malformed answer arrives, or the session closed before
    // it could — both are a refusal, not an allocation.
    if let Ok(resp) = hostile.read_response() {
        assert!(matches!(resp, Response::Malformed(_)), "got {resp:?}");
    }

    // After all of that, a fresh client still gets served.
    let mut fresh = Client::connect(addr).expect("connect");
    let (index, loss, _) =
        expect_ok(fresh.search(2, Workload::Chain { choices: 6 }, 0).expect("fresh client"));
    assert_eq!((index, loss.to_bits()), (reference.0, reference.1.to_bits()));
}

#[test]
fn admission_control_refuses_the_session_over_the_limit() {
    let server = spawn(1, 1);
    let addr = server.addr();
    // Session A fills the server; a completed round-trip proves it was
    // admitted (not still in the accept backlog).
    let mut a = Client::connect(addr).expect("connect A");
    expect_ok(a.search(1, Workload::Chain { choices: 4 }, 0).expect("A search"));
    assert_eq!(server.active_sessions(), 1);
    // Session B is refused outright with Busy.
    let mut b = Client::connect(addr).expect("connect B");
    let resp = b.read_response().expect("unsolicited Busy");
    assert_eq!(resp, Response::Busy);
    // A hangs up; the slot drains and a retry is admitted.
    drop(a);
    let deadline = Instant::now() + Duration::from_secs(10);
    let admitted = loop {
        let mut retry = Client::connect(addr).expect("reconnect");
        match retry.search(1, Workload::Chain { choices: 4 }, 0) {
            Ok(Response::Ok { .. }) => break true,
            _ => {
                if Instant::now() > deadline {
                    break false;
                }
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    };
    assert!(admitted, "the freed slot must admit a new session");
}

#[test]
fn disconnected_callers_stop_their_searches() {
    let server = spawn(1, 2);
    let addr = server.addr();
    {
        // Ask for a deep cold search with no deadline, then vanish: the
        // disconnect watcher must fire the token — otherwise the single
        // worker grinds through 2^18 candidates for nobody.
        let mut ghost = Client::connect(addr).expect("connect");
        let req = selc_serve::Request::Search {
            tenant: 3,
            deadline_ms: 0,
            workload: Workload::Chain { choices: 18 },
        };
        ghost.send_bytes(&u32::try_from(req.encode().len()).unwrap().to_be_bytes()).unwrap();
        ghost.send_bytes(&req.encode()).unwrap();
    } // dropped: the caller is gone
      // The session must drain far faster than the full search would
      // take on one debug-build worker.
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.active_sessions() > 0 {
        assert!(Instant::now() < deadline, "ghost session never drained");
        std::thread::sleep(Duration::from_millis(20));
    }
    // And the worker is free again for a live caller.
    let reference = direct_chain(6);
    let mut live = Client::connect(addr).expect("connect");
    let (index, loss, _) =
        expect_ok(live.search(4, Workload::Chain { choices: 6 }, 0).expect("live search"));
    assert_eq!((index, loss.to_bits()), (reference.0, reference.1.to_bits()));
}

#[test]
fn metrics_scrape_reports_live_telemetry() {
    let server = spawn(2, 4);
    let addr = server.addr();
    let mut client = Client::connect(addr).expect("connect");
    // A mixed workload: a cold chain, its warm repeat, and a game
    // solve — enough to light up the serve histograms, the engine
    // counters, and the cache counters all at once.
    expect_ok(client.search(31, Workload::Chain { choices: 8 }, 0).expect("cold chain"));
    expect_ok(client.search(31, Workload::Chain { choices: 8 }, 0).expect("warm chain"));
    expect_ok(
        client.search(31, Workload::Game { branching: 3, depth: 4, seed: 5 }, 0).expect("game"),
    );
    let resp = client.metrics().expect("scrape");
    let Response::Metrics(wire) = resp else {
        panic!("expected Metrics, got {resp:?}");
    };
    let snap = wire.to_snapshot();
    if selc_obs::metrics::configured_metrics() == Some(false) {
        // An explicit SELC_METRICS=0 run records nothing; the scrape
        // path itself (above) is still exercised.
        return;
    }
    // Per-op latency histograms saw our requests (metrics are
    // process-global, so other tests only ever add counts).
    assert!(snap.histogram("serve.latency_us.chain").count() >= 2, "chain latencies recorded");
    assert!(snap.histogram("serve.latency_us.game").count() >= 1, "game latency recorded");
    // Live-state gauges and refusal/abort counters are registered and
    // travel the wire even at their resting values.
    assert!(snap.get("serve.queue_depth").is_some(), "queue-depth gauge scrapeable");
    assert!(snap.get("serve.active_watchers").is_some(), "watcher gauge scrapeable");
    assert!(snap.get("serve.admission_rejects").is_some(), "reject counter scrapeable");
    // Engine, cache, and game-solver telemetry flows through the same
    // scrape: searches ran, the tenant caches were consulted, and the
    // prune counter exists for when bounds do fire.
    assert!(snap.counter("engine.searches") >= 3, "engine searches counted");
    assert!(snap.counter("cache.hits") + snap.counter("cache.misses") > 0, "caches consulted");
    assert!(snap.get("engine.pruned").is_some(), "prune counter scrapeable");
    assert!(snap.counter("games.ab_solves") >= 1, "game solves counted");
    // And the snapshot renders: one line per metric, usable as a
    // plain-text exposition format.
    let text = snap.render_text();
    assert!(text.lines().count() == snap.entries.len());
    assert!(text.contains("serve.latency_us.chain"));
}

#[test]
fn disconnect_watchers_are_reaped_not_leaked() {
    let mut server = spawn(2, 4);
    let addr = server.addr();
    let mut client = Client::connect(addr).expect("connect");
    for _ in 0..5 {
        expect_ok(client.search(9, Workload::Chain { choices: 6 }, 0).expect("search"));
    }
    drop(client);
    // Each request spawned one watcher; each was signalled done when
    // its request finished and must exit within a poll interval —
    // `active_watchers` joins the finished ones, so reaching zero
    // proves no thread leaked.
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.active_watchers() > 0 {
        assert!(Instant::now() < deadline, "watcher threads leaked");
        std::thread::sleep(Duration::from_millis(20));
    }
    server.shutdown();
    assert_eq!(server.active_watchers(), 0, "shutdown joins every watcher");
}

#[test]
fn shutdown_is_clean_and_idempotent() {
    let mut server = spawn(2, 4);
    let mut client = Client::connect(server.addr()).expect("connect");
    expect_ok(client.search(1, Workload::Chain { choices: 5 }, 0).expect("search"));
    server.shutdown();
    server.shutdown(); // idempotent
    assert!(
        client.search(1, Workload::Chain { choices: 5 }, 0).is_err(),
        "sessions are force-closed on shutdown"
    );
}
