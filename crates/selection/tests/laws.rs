//! Property-based laws for the pure selection monad: monad laws for `Sel`
//! and `SelW` (observed through finitely many loss functions), agreement
//! of products with brute force, and the `R(F|γ)` / continuation-monad
//! relationship.

use proptest::prelude::*;
use selection::{argmax, argmin, argmin_by, product, Sel, SelW};

type NamedGamma = (&'static str, fn(&i32) -> f64);

fn gammas() -> Vec<NamedGamma> {
    vec![
        ("abs", |x: &i32| (*x as f64).abs()),
        ("sq-dist-3", |x: &i32| ((*x - 3) as f64) * ((*x - 3) as f64)),
        ("neg", |x: &i32| -(*x as f64)),
        ("mod7", |x: &i32| (x.rem_euclid(7)) as f64),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// argmin really minimises over the candidate list.
    #[test]
    fn argmin_minimises(mut xs in proptest::collection::vec(-50i32..50, 1..12)) {
        for (_, g) in gammas() {
            let picked = argmin(xs.clone()).select(g);
            for x in &xs {
                prop_assert!(g(&picked) <= g(x));
            }
        }
        // determinism / first-tie
        xs.push(xs[0]);
        let a = argmin(xs.clone()).select(|x: &i32| (*x as f64).abs());
        let b = argmin(xs).select(|x: &i32| (*x as f64).abs());
        prop_assert_eq!(a, b);
    }

    /// Monad laws for Sel, observed at each γ.
    #[test]
    fn sel_monad_laws(xs in proptest::collection::vec(-20i32..20, 1..6), a in -20i32..20) {
        let f = |x: i32| argmin(vec![x, x + 5, x - 5]);
        let h = |x: i32| argmax(vec![x, 2 * x]);
        let m = argmin(xs);
        for (_, g) in gammas() {
            // left identity
            prop_assert_eq!(Sel::pure(a).and_then(f).select(g), f(a).select(g));
            // right identity
            prop_assert_eq!(m.and_then(Sel::pure).select(g), m.select(g));
            // associativity
            let lhs = m.and_then(f).and_then(h);
            let rhs = m.and_then(move |x| f(x).and_then(h));
            prop_assert_eq!(lhs.select(g), rhs.select(g));
        }
    }

    /// The loss of a selection equals γ at the selected point.
    #[test]
    fn loss_is_gamma_of_selection(xs in proptest::collection::vec(-20i32..20, 1..8)) {
        let m = argmin(xs);
        for (_, g) in gammas() {
            let picked = m.select(g);
            prop_assert_eq!(m.loss(g), g(&picked));
            // and the continuation-monad image agrees
            prop_assert_eq!(m.to_quant().run(g), g(&picked));
        }
    }

    /// The binary product solves the two-player game exactly like brute
    /// force (maximiser × minimiser over a random table).
    #[test]
    fn pair_product_matches_bruteforce(
        rows in 1usize..5,
        cols in 1usize..5,
        cells in proptest::collection::vec(0u32..100, 25),
    ) {
        let cells2 = cells.clone();
        let table = move |r: usize, c: usize| cells2[(r * 5 + c) % 25] as f64;
        let s = product::pair(
            argmax((0..rows).collect::<Vec<_>>()),
            argmin((0..cols).collect::<Vec<_>>()),
        );
        let cells3 = cells.clone();
        let (r, c) = s.select(move |&(r, c): &(usize, usize)| cells3[(r * 5 + c) % 25] as f64);
        // brute force backward induction
        let reply = |r: usize| argmin_by((0..cols).collect::<Vec<_>>(), |c| table(r, *c));
        // The workspace total order (the generator only yields finite
        // values, but the reference scan should not rely on that).
        let best_r = (0..rows)
            .max_by(|&a, &b| table(a, reply(a)).total_cmp(&table(b, reply(b))))
            .unwrap();
        // values must agree (plays may differ only on exact ties)
        prop_assert_eq!(table(r, c), table(best_r, reply(best_r)));
    }

    /// SelW: recorded losses accumulate and the monad laws hold at γ = 0.
    #[test]
    fn selw_accumulation(ls in proptest::collection::vec(0u32..10, 1..6)) {
        let mut m = SelW::<i32, f64>::pure(0);
        let mut expected = 0.0;
        for l in &ls {
            let l = *l as f64;
            expected += l;
            m = m.and_then(move |x| SelW::tell(l, x + 1));
        }
        let (r, v) = m.select(|_| 0.0);
        prop_assert!((r - expected).abs() < 1e-12);
        prop_assert_eq!(v, ls.len() as i32);
    }

    /// big_product over argmax-selections maximises the sum coordinatewise
    /// when the loss is separable.
    #[test]
    fn big_product_separable(n in 1usize..5) {
        let sels = (0..n).map(|_| argmax(vec![0i32, 1, 2])).collect::<Vec<_>>();
        let s = product::big_product(sels);
        let picked = s.select(|xs: &Vec<i32>| xs.iter().map(|x| *x as f64).sum());
        prop_assert_eq!(picked, vec![2i32; n]);
    }
}
