//! The writer-augmented selection monad `S_W(X) = (X → R) → (R × X)`
//! (§2.1).
//!
//! Taking the auxiliary monad `T` to be the writer monad `W(X) = R × X`
//! gives selection functions that additionally *record* a loss — this is
//! the shape the paper's `loss` effect gives to programs, and the shape the
//! library's `Sel r e a` datatype specialises to when the program performs
//! no other effects.

use std::rc::Rc;

/// A commutative monoid of losses, as required of `R` in §2.1.
pub trait Monoid: Clone + 'static {
    /// The unit `0`.
    fn zero() -> Self;
    /// The (commutative) addition.
    fn add(&self, other: &Self) -> Self;
}

impl Monoid for f64 {
    fn zero() -> Self {
        0.0
    }
    fn add(&self, other: &Self) -> Self {
        self + other
    }
}

impl Monoid for i64 {
    fn zero() -> Self {
        0
    }
    fn add(&self, other: &Self) -> Self {
        self + other
    }
}

impl Monoid for () {
    fn zero() -> Self {}
    fn add(&self, _other: &Self) -> Self {}
}

impl<A: Monoid, B: Monoid> Monoid for (A, B) {
    fn zero() -> Self {
        (A::zero(), B::zero())
    }
    fn add(&self, other: &Self) -> Self {
        (self.0.add(&other.0), self.1.add(&other.1))
    }
}

/// A loss function for [`SelW`].
pub type WLossFn<X, R> = Rc<dyn Fn(&X) -> R>;

/// The payload of a [`SelW`]: run under a loss function, produce the
/// recorded loss and the selected value.
pub type SelWRun<X, R> = Rc<dyn Fn(WLossFn<X, R>) -> (R, X)>;

/// An element of the augmented selection monad
/// `S_W(X) = (X → R) → (R × X)`.
pub struct SelW<X, R> {
    run: SelWRun<X, R>,
}

impl<X, R> Clone for SelW<X, R> {
    fn clone(&self) -> Self {
        SelW { run: Rc::clone(&self.run) }
    }
}

impl<X, R> std::fmt::Debug for SelW<X, R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SelW(<augmented selection function>)")
    }
}

impl<X, R> SelW<X, R>
where
    X: Clone + 'static,
    R: Monoid,
{
    /// Wraps a closure `(X → R) → (R × X)`.
    pub fn new<F>(f: F) -> Self
    where
        F: Fn(WLossFn<X, R>) -> (R, X) + 'static,
    {
        SelW { run: Rc::new(f) }
    }

    /// The unit `η(x) = λγ. (0, x)`.
    pub fn pure(x: X) -> Self {
        SelW::new(move |_| (R::zero(), x.clone()))
    }

    /// Records a loss and returns `()`-like payload `x`: the "loss-recording"
    /// primitive. Ignores the loss continuation, like rule (R4).
    pub fn tell(r: R, x: X) -> Self {
        SelW::new(move |_| (r.clone(), x.clone()))
    }

    /// Runs the augmented selection under a loss function, returning the
    /// recorded loss and the selected element.
    pub fn select<G>(&self, loss: G) -> (R, X)
    where
        G: Fn(&X) -> R + 'static,
    {
        (self.run)(Rc::new(loss))
    }

    /// Runs under a shared loss function.
    pub fn select_rc(&self, loss: WLossFn<X, R>) -> (R, X) {
        (self.run)(loss)
    }

    /// The associated loss
    /// `R_W(F|γ) = π0(F(γ)) + γ(π1(F(γ)))` — recorded loss plus the loss
    /// function's verdict on the selected element.
    pub fn loss_rc(&self, loss: WLossFn<X, R>) -> R {
        let (r, x) = (self.run)(Rc::clone(&loss));
        r.add(&loss(&x))
    }

    /// Like [`SelW::loss_rc`] with an owned closure.
    pub fn loss<G>(&self, loss: G) -> R
    where
        G: Fn(&X) -> R + 'static,
    {
        self.loss_rc(Rc::new(loss))
    }

    /// Kleisli extension for the writer-augmented monad (§2.1):
    ///
    /// ```text
    /// f†(F) = λγ. let (r1, x) = F(~f γ) in
    ///             let (r2, y) = f x γ   in (r1 + r2, y)
    /// ```
    ///
    /// where `~f(γ)(x) = R_W(f(x)|γ)`.
    pub fn and_then<Y, F>(&self, f: F) -> SelW<Y, R>
    where
        Y: Clone + 'static,
        F: Fn(X) -> SelW<Y, R> + 'static,
    {
        let me = self.clone();
        let f = Rc::new(f);
        SelW::new(move |g: WLossFn<Y, R>| {
            let f2 = Rc::clone(&f);
            let g2 = Rc::clone(&g);
            let tilde: WLossFn<X, R> = Rc::new(move |x: &X| f2(x.clone()).loss_rc(Rc::clone(&g2)));
            let (r1, x) = me.select_rc(tilde);
            let (r2, y) = f(x).select_rc(g);
            (r1.add(&r2), y)
        })
    }

    /// Functorial action `S_W(f) = λγ. W(f)(F(γ ∘ f))`.
    pub fn map<Y, F>(&self, f: F) -> SelW<Y, R>
    where
        Y: Clone + 'static,
        F: Fn(X) -> Y + 'static,
    {
        let me = self.clone();
        let f = Rc::new(f);
        SelW::new(move |g: WLossFn<Y, R>| {
            let f2 = Rc::clone(&f);
            let (r, x) = me.select_rc(Rc::new(move |x: &X| g(&f2(x.clone()))));
            (r, f(x))
        })
    }
}

/// The "loss-recording" version of argmin from §2.1: sends `γ` to
/// `(γ(argmin γ), argmin γ)`.
pub fn argmin_recording<X>(candidates: Vec<X>) -> SelW<X, f64>
where
    X: Clone + 'static,
{
    SelW::new(move |g: WLossFn<X, f64>| {
        let x = crate::argmin_by(candidates.clone(), |x| g(x));
        (g(&x), x)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_records_zero_loss() {
        let s = SelW::<i32, f64>::pure(4);
        assert_eq!(s.select(|_| 9.0), (0.0, 4));
    }

    #[test]
    fn tell_ignores_continuation() {
        let s = SelW::<(), f64>::tell(2.5, ());
        assert_eq!(s.select(|_| 100.0), (2.5, ()));
    }

    #[test]
    fn loss_sums_recorded_and_continuation_loss() {
        let s = SelW::<i32, f64>::tell(2.0, 3);
        assert_eq!(s.loss(|x| *x as f64), 5.0);
    }

    #[test]
    fn argmin_recording_matches_paper() {
        // §2.1: the loss-recording argmin sends γ to (γ(argmin γ), argmin γ)
        let s = argmin_recording(vec![1.0_f64, -2.0, 3.0]);
        let (r, x) = s.select(|x: &f64| x.abs());
        assert_eq!(x, 1.0);
        assert_eq!(r, 1.0);
    }

    #[test]
    fn bind_accumulates_losses() {
        // tell 1; tell 2 => total 3
        let s = SelW::<(), f64>::tell(1.0, ()).and_then(|_| SelW::<(), f64>::tell(2.0, ()));
        assert_eq!(s.select(|_| 0.0), (3.0, ()));
    }

    #[test]
    fn bind_threads_transformed_loss_function() {
        // First choose x in {0,1} minimising downstream total loss; then
        // record loss 10*x and return x. Choosing x=0 is optimal.
        let choose = argmin_recording(vec![0.0_f64, 1.0]);
        let prog = choose.and_then(|x| SelW::tell(10.0 * x, x));
        let (r, x) = prog.select(|_| 0.0);
        assert_eq!(x, 0.0);
        assert_eq!(r, 0.0);
    }

    #[test]
    fn monad_laws_on_samples() {
        let f = |x: i32| SelW::<i32, f64>::tell(x as f64, x + 1);
        let g = |x: i32| SelW::<i32, f64>::tell(1.0, x * 2);
        let m = argmin_recording(vec![3.0_f64, 4.0]).map(|x| x as i32);

        // left identity
        let lhs = SelW::<i32, f64>::pure(7).and_then(f);
        let rhs = f(7);
        assert_eq!(lhs.select(|x| *x as f64), rhs.select(|x| *x as f64));

        // right identity
        let lhs = m.and_then(SelW::pure);
        assert_eq!(lhs.select(|x| *x as f64), m.select(|x| *x as f64));

        // associativity
        let lhs = m.and_then(f).and_then(g);
        let rhs = m.and_then(move |x| f(x).and_then(g));
        assert_eq!(lhs.select(|x| *x as f64), rhs.select(|x| *x as f64));
    }

    #[test]
    fn pair_monoid_componentwise() {
        let a = (1.0_f64, 2.0_f64);
        let b = (0.5, -2.0);
        assert_eq!(a.add(&b), (1.5, 0.0));
        assert_eq!(<(f64, f64)>::zero(), (0.0, 0.0));
    }
}
