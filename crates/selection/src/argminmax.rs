//! Finite argmin/argmax selection functions.
//!
//! For finite candidate sets `X`, `argmin_X : (X → R) → X` is the paper's
//! running example of a selection function (§1, §2.1). Ties are broken
//! towards the earliest candidate so that every function here is
//! deterministic.

use crate::sel::Sel;

/// Index of the first minimising element of `losses`.
///
/// # Panics
///
/// Panics if `losses` is empty.
pub fn argmin_index(losses: &[f64]) -> usize {
    assert!(!losses.is_empty(), "argmin over an empty candidate list");
    let mut best = 0;
    for (i, l) in losses.iter().enumerate().skip(1) {
        if *l < losses[best] {
            best = i;
        }
    }
    best
}

/// First element of `candidates` minimising `loss`.
///
/// # Panics
///
/// Panics if `candidates` is empty.
pub fn argmin_by<X, R, F>(candidates: Vec<X>, mut loss: F) -> X
where
    R: PartialOrd,
    F: FnMut(&X) -> R,
{
    assert!(!candidates.is_empty(), "argmin over an empty candidate list");
    let mut iter = candidates.into_iter();
    let mut best = iter.next().expect("non-empty");
    let mut best_loss = loss(&best);
    for c in iter {
        let l = loss(&c);
        if l < best_loss {
            best = c;
            best_loss = l;
        }
    }
    best
}

/// First element of `candidates` maximising `loss` (dually, a reward).
///
/// # Panics
///
/// Panics if `candidates` is empty.
pub fn argmax_by<X, R, F>(candidates: Vec<X>, mut loss: F) -> X
where
    R: PartialOrd,
    F: FnMut(&X) -> R,
{
    assert!(!candidates.is_empty(), "argmax over an empty candidate list");
    let mut iter = candidates.into_iter();
    let mut best = iter.next().expect("non-empty");
    let mut best_loss = loss(&best);
    for c in iter {
        let l = loss(&c);
        if l > best_loss {
            best = c;
            best_loss = l;
        }
    }
    best
}

/// The selection function `argmin_X` over a finite candidate list, packaged
/// as a [`Sel`].
///
/// `argmin(xs).select(γ)` is the first element of `xs` minimising `γ`, and
/// `argmin(xs).loss(γ)` is the minimum value `γ` attains on `xs` (the
/// paper's `R(argmin_X | γ)`).
pub fn argmin<X>(candidates: Vec<X>) -> Sel<X, f64>
where
    X: Clone + 'static,
{
    Sel::new(move |g| argmin_by(candidates.clone(), |x| g(x)))
}

/// The selection function `argmax_X` over a finite candidate list.
pub fn argmax<X>(candidates: Vec<X>) -> Sel<X, f64>
where
    X: Clone + 'static,
{
    Sel::new(move |g| argmax_by(candidates.clone(), |x| g(x)))
}

/// `max_with(loss, xs)`: the paper's `maxWith` helper (§4.3) — pick the
/// candidate with the greatest loss (reward) under an *effect-free* loss
/// function, returning both the winner and its loss.
///
/// # Panics
///
/// Panics if `candidates` is empty.
pub fn max_with<X, F>(mut loss: F, candidates: Vec<X>) -> (X, f64)
where
    F: FnMut(&X) -> f64,
{
    assert!(!candidates.is_empty(), "max_with over an empty candidate list");
    let mut iter = candidates.into_iter();
    let mut best = iter.next().expect("non-empty");
    let mut best_loss = loss(&best);
    for c in iter {
        let l = loss(&c);
        if l > best_loss {
            best = c;
            best_loss = l;
        }
    }
    (best, best_loss)
}

/// `min_with(loss, xs)`: dual of [`max_with`].
///
/// # Panics
///
/// Panics if `candidates` is empty.
pub fn min_with<X, F>(mut loss: F, candidates: Vec<X>) -> (X, f64)
where
    F: FnMut(&X) -> f64,
{
    assert!(!candidates.is_empty(), "min_with over an empty candidate list");
    let mut iter = candidates.into_iter();
    let mut best = iter.next().expect("non-empty");
    let mut best_loss = loss(&best);
    for c in iter {
        let l = loss(&c);
        if l < best_loss {
            best = c;
            best_loss = l;
        }
    }
    (best, best_loss)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn argmin_index_picks_first_minimum() {
        assert_eq!(argmin_index(&[3.0, 1.0, 1.0, 2.0]), 1);
        assert_eq!(argmin_index(&[0.0]), 0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn argmin_index_empty_panics() {
        argmin_index(&[]);
    }

    #[test]
    fn argmin_by_breaks_ties_left() {
        let v = argmin_by(vec!["aa", "b", "c"], |s| s.len());
        assert_eq!(v, "b");
    }

    #[test]
    fn argmax_by_breaks_ties_left() {
        let v = argmax_by(vec![1, 5, 5, 2], |x| *x);
        assert_eq!(v, 5);
    }

    #[test]
    fn argmin_sel_loss_is_minimum_value() {
        let s = argmin(vec![0.0_f64, 1.0, 2.0, -3.0]);
        let picked = s.select(|x| x * x);
        assert_eq!(picked, 0.0);
        let l = s.loss(|x: &f64| x * x);
        assert_eq!(l, 0.0);
    }

    #[test]
    fn argmax_sel_is_dual() {
        let s = argmax(vec![1.0_f64, 4.0, 2.0]);
        assert_eq!(s.select(|x| *x), 4.0);
        assert_eq!(s.loss(|x: &f64| *x), 4.0);
    }

    #[test]
    fn max_with_returns_value_and_loss() {
        let (x, l) = max_with(|s: &&str| s.len() as f64, vec!["aaa", "aabb", "abc"]);
        assert_eq!(x, "aabb");
        assert_eq!(l, 4.0);
    }

    #[test]
    fn min_with_returns_value_and_loss() {
        let (x, l) = min_with(|x: &i32| (*x as f64).abs(), vec![-5, 3, -1, 8]);
        assert_eq!(x, -1);
        assert_eq!(l, 1.0);
    }
}
