//! The plain selection monad `S(X) = (X → R) → X` (§2.1).

use std::rc::Rc;

/// A loss function `γ : X → R`, shared so that selection functions may
/// consult it any number of times.
pub type LossFn<X, R> = Rc<dyn Fn(&X) -> R>;

/// A selection function: an element of `S(X) = (X → R) → X`.
///
/// `Sel` is a cheaply clonable handle (internally `Rc`) because the Kleisli
/// structure re-invokes selection functions with derived loss functions.
///
/// The monad structure follows §2.1 of the paper exactly:
///
/// * unit: `η(x) = λγ. x` — [`Sel::pure`];
/// * extension of `f : X → S(Y)`:
///   `f†(F) = λγ. f(F(~f γ)) γ` where the *loss-continuation transformer*
///   is `~f(γ) = λx. R(f(x) | γ)` — [`Sel::and_then`];
/// * the loss of a selection under `γ`: `R(F|γ) = γ(F(γ))` — [`Sel::loss`].
pub struct Sel<X, R> {
    run: Rc<dyn Fn(LossFn<X, R>) -> X>,
}

impl<X, R> Clone for Sel<X, R> {
    fn clone(&self) -> Self {
        Sel { run: Rc::clone(&self.run) }
    }
}

impl<X, R> std::fmt::Debug for Sel<X, R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Sel(<selection function>)")
    }
}

impl<X, R> Sel<X, R>
where
    X: Clone + 'static,
    R: Clone + 'static,
{
    /// Wraps a closure `(X → R) → X` as a selection function.
    pub fn new<F>(f: F) -> Self
    where
        F: Fn(LossFn<X, R>) -> X + 'static,
    {
        Sel { run: Rc::new(f) }
    }

    /// The unit `η(x) = λγ. x`.
    pub fn pure(x: X) -> Self {
        Sel::new(move |_| x.clone())
    }

    /// Applies the selection function to a loss function.
    pub fn select<G>(&self, loss: G) -> X
    where
        G: Fn(&X) -> R + 'static,
    {
        (self.run)(Rc::new(loss))
    }

    /// Applies the selection function to a shared loss function.
    pub fn select_rc(&self, loss: LossFn<X, R>) -> X {
        (self.run)(loss)
    }

    /// The loss associated to this selection under `γ`:
    /// `R(F|γ) = γ(F(γ))`.
    pub fn loss<G>(&self, loss: G) -> R
    where
        G: Fn(&X) -> R + 'static,
    {
        let g: LossFn<X, R> = Rc::new(loss);
        let picked = (self.run)(Rc::clone(&g));
        g(&picked)
    }

    /// Functorial action `S(f) = λγ. f(F(γ ∘ f))`.
    pub fn map<Y, F>(&self, f: F) -> Sel<Y, R>
    where
        Y: Clone + 'static,
        F: Fn(X) -> Y + 'static,
    {
        let me = self.clone();
        let f = Rc::new(f);
        Sel::new(move |g: LossFn<Y, R>| {
            let f2 = Rc::clone(&f);
            let picked = me.select_rc(Rc::new(move |x: &X| g(&f2(x.clone()))));
            f(picked)
        })
    }

    /// Kleisli extension, §2.1:
    ///
    /// ```text
    /// ~f(γ) = λx ∈ X. R(f(x) | γ)          -- loss-continuation transformer
    /// f†(F) = λγ ∈ Y→R. f(F(~f γ)) γ
    /// ```
    ///
    /// First the loss function `γ` on `Y` is pulled back along `f` to a loss
    /// function on `X`, which `F` uses to select an `x`; then `f(x)` selects
    /// the final `y` under the original `γ`.
    pub fn and_then<Y, F>(&self, f: F) -> Sel<Y, R>
    where
        Y: Clone + 'static,
        F: Fn(X) -> Sel<Y, R> + 'static,
    {
        let me = self.clone();
        let f = Rc::new(f);
        Sel::new(move |g: LossFn<Y, R>| {
            let f2 = Rc::clone(&f);
            let g2 = Rc::clone(&g);
            // ~f γ : X → R
            let tilde: LossFn<X, R> = Rc::new(move |x: &X| {
                let g3 = Rc::clone(&g2);
                f2(x.clone()).loss(move |y: &Y| g3(y))
            });
            let x = me.select_rc(tilde);
            f(x).select_rc(g)
        })
    }

    /// The morphism into the continuation (quantifier) monad
    /// `K(X) = (X → R) → R`: `λγ. R(F|γ)` (§2.1's remark).
    pub fn to_quant(&self) -> crate::Quant<X, R> {
        let me = self.clone();
        crate::Quant::new(move |g: LossFn<X, R>| {
            let picked = me.select_rc(Rc::clone(&g));
            g(&picked)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{argmax, argmin};

    #[test]
    fn pure_ignores_loss() {
        let s = Sel::<i32, f64>::pure(7);
        assert_eq!(s.select(|_| 100.0), 7);
        assert_eq!(s.loss(|x| *x as f64), 7.0);
    }

    #[test]
    fn map_relabels_candidates() {
        let s = argmin(vec![1.0_f64, 2.0, 3.0]).map(|x| x as i64);
        // minimise distance to 3
        let v = s.select(|x: &i64| (*x - 3).abs() as f64);
        assert_eq!(v, 3);
    }

    #[test]
    fn left_identity_law_on_samples() {
        // pure(a).and_then(f) == f(a), observed through finitely many γ.
        let f = |a: i32| argmin(vec![a, a + 1, a - 1]).map(|x| x * 2);
        let lhs = Sel::<i32, f64>::pure(5).and_then(f);
        let rhs = f(5);
        for target in [-4, 0, 9, 13] {
            let gamma = move |x: &i32| ((*x - target) as f64).abs();
            assert_eq!(lhs.select(gamma), rhs.select(gamma));
        }
    }

    #[test]
    fn right_identity_law_on_samples() {
        let m = argmax(vec![1, 2, 3, 4]);
        let lhs = m.and_then(Sel::pure);
        for target in [-1, 2, 5] {
            let gamma = move |x: &i32| -((*x - target) as f64).abs();
            assert_eq!(lhs.select(gamma), m.select(gamma));
        }
    }

    #[test]
    fn associativity_law_on_samples() {
        let m = argmin(vec![0, 1, 2]);
        let f = |x: i32| argmin(vec![x, x + 10]);
        let g = |y: i32| argmin(vec![y, -y]);
        let lhs = m.and_then(f).and_then(g);
        let rhs = m.and_then(move |x| f(x).and_then(g));
        for target in [-12, -1, 0, 3, 11] {
            let gamma = move |x: &i32| ((*x - target) as f64).abs();
            assert_eq!(lhs.select(gamma), rhs.select(gamma));
        }
    }

    #[test]
    fn one_move_game_minimax_pair() {
        // §2.1: f(x)(γ) = (x, argmin(λy. γ(x,y))); f†(argmax)(eval) is a
        // minimax pair for eval.
        let eval = |x: usize, y: usize| [[5.0_f64, 3.0], [2.0, 9.0]][x][y];
        let f = move |x: usize| {
            Sel::new(move |g: LossFn<(usize, usize), f64>| {
                let y = crate::argmin_by(vec![0usize, 1], |y| g(&(x, *y)));
                (x, y)
            })
        };
        let minimax = argmax(vec![0usize, 1]).and_then(f);
        let pair = minimax.select(move |&(x, y)| eval(x, y));
        assert_eq!(pair, (0, 1));
        let value = minimax.loss(move |&(x, y)| eval(x, y));
        assert_eq!(value, 3.0);
    }

    #[test]
    fn to_quant_reports_attained_loss() {
        let q = argmin(vec![4.0_f64, -2.0, 7.0]).to_quant();
        assert_eq!(q.run(|x: &f64| x.abs()), 2.0);
    }
}
