//! Pure selection-monad theory (§2.1 of *Handling the Selection Monad*,
//! Plotkin & Xie, PLDI 2025).
//!
//! The selection monad on a set `X` is `S(X) = (X → R) → X`: a *selection
//! function* picks an element of `X` given a *loss function* `γ : X → R`.
//! The canonical example is [`argmin`]: given a loss function over a finite
//! candidate set it returns a minimising element.
//!
//! This crate implements, in the category of Rust closures:
//!
//! * [`Sel`] — plain selection functions with the Kleisli-triple structure
//!   of §2.1 (unit, extension via the loss-continuation transformer `~f`),
//!   the associated loss `R(F|γ) = γ(F(γ))`, and the morphism into the
//!   continuation ("quantifier") monad `K(X) = (X → R) → R`.
//! * [`SelW`] — the writer-augmented selection monad
//!   `S_W(X) = (X → R) → (R × X)` used by the paper to model programs that
//!   record losses with a `loss` effect.
//! * [`product`] — the Escardó–Oliva binary and n-ary products of selection
//!   functions, which implement backward induction / exhaustive game
//!   solving and are exercised by the games substrate.
//! * [`argmin`]/[`argmax`] and friends over finite candidate lists.
//!
//! Everything here is deterministic: ties in `argmin`/`argmax` are broken
//! towards the earliest candidate, matching the paper's "we assume
//! available some way to choose when there is more than one such
//! element". The theory modules are dependency-free; [`par`] additionally
//! bridges candidate *evaluation* to the `selc-engine` worker pool while
//! preserving exactly that tie-breaking.
//!
//! # Example
//!
//! Solving the one-move game of §2.1: the maximiser picks `x`, the
//! minimiser replies with the `y` minimising `eval(x, y)`:
//!
//! ```
//! use selection::{argmax, argmin_by, Sel};
//! use std::rc::Rc;
//!
//! let eval = |x: &usize, y: &usize| [[5.0_f64, 3.0], [2.0, 9.0]][*x][*y];
//! // f : X -> S(X × Y)
//! let f = move |x: usize| {
//!     Sel::new(move |g: Rc<dyn Fn(&(usize, usize)) -> f64>| {
//!         let y = argmin_by(vec![0usize, 1], |y| g(&(x, *y)));
//!         (x, y)
//!     })
//! };
//! let minimax = argmax(vec![0usize, 1]).and_then(f);
//! let (x0, y0) = minimax.select(move |&(x, y)| eval(&x, &y));
//! assert_eq!((x0, y0), (0, 1)); // A plays Left, B replies Right, value 3
//! ```

mod argminmax;
mod quantifier;
mod sel;
mod selw;

pub mod par;
pub mod product;

pub use argminmax::{argmax, argmax_by, argmin, argmin_by, argmin_index, max_with, min_with};
pub use quantifier::Quant;
pub use sel::{LossFn, Sel};
pub use selw::{argmin_recording, Monoid, SelW};
