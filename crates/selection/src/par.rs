//! Parallel evaluation adapters: `argmin`/`argmax` and product root
//! splits over the `selc-engine` worker pool.
//!
//! The theory core of this crate stays dependency-free; this module is
//! the bridge from its sequential combinators to the engine. Every
//! adapter is a drop-in for the sequential form and returns **the same
//! candidate** (bit-identical, earliest-tie) — the differential tests
//! below and in `selc-engine` hold them to that.
//!
//! One caveat bounds that claim: the engine merges under the *total*
//! order `f64::total_cmp`, the sequential scans under partial `<`. The
//! two agree on every loss except `NaN` (which `<` never prefers and
//! `total_cmp` ranks above `+∞`) and `-0.0` vs `+0.0` (equal under `<`,
//! ordered under `total_cmp` — observable through `par_argmax_by`'s
//! negation). Keep losses NaN-free and the guarantee is exact.
//!
//! Selection functions themselves (`Rc` closures) cannot cross threads;
//! what parallelises is *evaluation*: candidates and loss functions are
//! `Send + Sync`, and for products each worker rebuilds the downstream
//! stages locally from a factory, exactly like the engine replays `Sel`
//! programs (see `selc::ReplaySpace`).

use crate::product::{big_product_dep, Stage};
use crate::sel::LossFn;
use selc_cache::ShardedCache;
use selc_engine::{minimize, CachedEval, Engine, FnEval, ParallelEngine};
use std::hash::Hash;
use std::rc::Rc;
use std::sync::Arc;

/// Parallel `argmin_by`: first candidate minimising `loss`, evaluated on
/// the engine's worker pool (`SELC_THREADS` workers by default).
/// Identical winner to [`crate::argmin_by`].
///
/// # Panics
///
/// Panics if `candidates` is empty.
pub fn par_argmin_by<X, F>(candidates: Vec<X>, loss: F) -> X
where
    X: Clone + Send + Sync + 'static,
    F: Fn(&X) -> f64 + Send + Sync,
{
    par_argmin_with(&ParallelEngine::auto(), candidates, loss)
}

/// Parallel `argmax_by`, dual of [`par_argmin_by`].
///
/// # Panics
///
/// Panics if `candidates` is empty.
pub fn par_argmax_by<X, F>(candidates: Vec<X>, loss: F) -> X
where
    X: Clone + Send + Sync + 'static,
    F: Fn(&X) -> f64 + Send + Sync,
{
    par_argmin_with(&ParallelEngine::auto(), candidates, move |x| -loss(x))
}

/// [`par_argmin_by`] with an explicit engine (e.g. the sequential
/// fallback, for differential testing).
///
/// # Panics
///
/// Panics if `candidates` is empty.
pub fn par_argmin_with<X, F, G>(engine: &G, candidates: Vec<X>, loss: F) -> X
where
    X: Clone + Send + Sync + 'static,
    F: Fn(&X) -> f64 + Send + Sync,
    G: Engine,
{
    assert!(!candidates.is_empty(), "argmin over an empty candidate list");
    let out = minimize(engine, candidates.len(), |i| loss(&candidates[i]))
        .expect("non-empty candidate list");
    candidates.into_iter().nth(out.index).expect("index in range")
}

/// [`par_argmin_with`] through a shared memo cache: candidate `x`'s loss
/// is cached under `key(x)` in `cache`, so workers — and repeated calls
/// reusing the same handle — skip loss evaluation for candidates already
/// scored. The winner is bit-identical to [`crate::argmin_by`] whatever
/// the cache contents, capacity, or shard count, because a cached loss
/// *is* the loss `loss` would recompute (the key function must be
/// injective up to evaluation: one key, one loss value).
///
/// # Panics
///
/// Panics if `candidates` is empty.
pub fn par_argmin_cached_with<X, K, KF, F, G>(
    engine: &G,
    cache: &ShardedCache<K, f64>,
    candidates: Vec<X>,
    key: KF,
    loss: F,
) -> X
where
    X: Clone + Send + Sync + 'static,
    K: Eq + Hash + Send + 'static,
    KF: Fn(&X) -> K + Send + Sync,
    F: Fn(&X) -> f64 + Send + Sync,
    G: Engine,
{
    assert!(!candidates.is_empty(), "argmin over an empty candidate list");
    let eval =
        CachedEval::new(FnEval(|i: usize| loss(&candidates[i])), cache, |i| key(&candidates[i]));
    let out = engine.search(candidates.len(), &eval).expect("non-empty candidate list");
    candidates.into_iter().nth(out.index).expect("index in range")
}

/// The `argmax` dual of [`par_argmin_cached_with`]. The cache stores the
/// *negated* losses the engine minimises, so do not share one handle
/// between a min- and a max-adapter over the same keys.
///
/// # Panics
///
/// Panics if `candidates` is empty.
pub fn par_argmax_cached_with<X, K, KF, F, G>(
    engine: &G,
    cache: &ShardedCache<K, f64>,
    candidates: Vec<X>,
    key: KF,
    loss: F,
) -> X
where
    X: Clone + Send + Sync + 'static,
    K: Eq + Hash + Send + 'static,
    KF: Fn(&X) -> K + Send + Sync,
    F: Fn(&X) -> f64 + Send + Sync,
    G: Engine,
{
    par_argmin_cached_with(engine, cache, candidates, key, move |x| -loss(x))
}

/// Root-parallel Escardó–Oliva product: splits the *first* stage's
/// candidates over the worker pool; each worker completes the play by
/// running the remaining stages (rebuilt locally via `rest`) under the
/// global loss, and the loss-minimising completed play wins.
///
/// Equivalent to
/// `big_product_dep([argmin(root), rest()...]).select(loss)` — the first
/// stage of a dependent product evaluates each of its candidates against
/// the optimal completion anyway, which is exactly the map this function
/// distributes.
///
/// # Panics
///
/// Panics if `root` is empty.
pub fn par_product_root<X, R, F>(root: Vec<X>, rest: R, loss: F) -> Vec<X>
where
    X: Clone + Send + Sync + 'static,
    R: Fn() -> Vec<Stage<X, f64>> + Send + Sync,
    F: Fn(&[X]) -> f64 + Send + Sync + 'static,
{
    par_product_root_with(&ParallelEngine::auto(), root, rest, loss)
}

/// [`par_product_root`] with an explicit engine.
///
/// # Panics
///
/// Panics if `root` is empty.
pub fn par_product_root_with<X, R, F, G>(engine: &G, root: Vec<X>, rest: R, loss: F) -> Vec<X>
where
    X: Clone + Send + Sync + 'static,
    R: Fn() -> Vec<Stage<X, f64>> + Send + Sync,
    F: Fn(&[X]) -> f64 + Send + Sync + 'static,
    G: Engine,
{
    assert!(!root.is_empty(), "product over an empty root candidate list");
    let loss = Arc::new(loss);
    let complete = |x: X| -> Vec<X> {
        // Fix the root move as a constant stage, rebuild the remaining
        // stages on this thread, and let backward induction finish.
        let fixed: Stage<X, f64> = Rc::new(move |_: &[X]| crate::sel::Sel::pure(x.clone()));
        let mut stages = vec![fixed];
        stages.extend(rest());
        let loss = Arc::clone(&loss);
        let g: LossFn<Vec<X>, f64> = Rc::new(move |p: &Vec<X>| loss(p));
        big_product_dep(stages).select_rc(g)
    };
    let out = minimize(engine, root.len(), |i| {
        let play = complete(root[i].clone());
        loss(&play)
    })
    .expect("non-empty root");
    complete(root[out.index].clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{argmax_by, argmin, argmin_by};
    use selc_engine::SequentialEngine;

    #[test]
    fn par_argmin_matches_sequential_scan() {
        let xs: Vec<i64> = (0..100).map(|i| (i * 31) % 17).collect();
        let seq = argmin_by(xs.clone(), |x| (*x - 9) as f64 * (*x - 9) as f64);
        let par = par_argmin_by(xs.clone(), |x| (*x - 9) as f64 * (*x - 9) as f64);
        assert_eq!(par, seq);
        let eng = par_argmin_with(&SequentialEngine::exhaustive(), xs, |x| {
            (*x - 9) as f64 * (*x - 9) as f64
        });
        assert_eq!(eng, seq);
    }

    #[test]
    fn par_argmax_matches_sequential_scan() {
        let xs: Vec<i64> = (0..60).map(|i| (i * 13) % 23).collect();
        assert_eq!(par_argmax_by(xs.clone(), |x| *x as f64), argmax_by(xs, |x| *x as f64));
    }

    #[test]
    fn tie_breaking_stays_earliest() {
        let xs = vec![5_i64, 1, 3, 1, 1];
        assert_eq!(par_argmin_by(xs, |x| *x as f64), 1);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_candidates_panic_like_argmin_by() {
        let _ = par_argmin_by(Vec::<i64>::new(), |_| 0.0);
    }

    #[test]
    fn cached_argmin_matches_plain_and_reuses_evaluations() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let xs: Vec<i64> = (0..80).map(|i| (i * 31) % 17).collect();
        let seq = argmin_by(xs.clone(), |x| (*x - 9) as f64 * (*x - 9) as f64);
        let cache: ShardedCache<i64, f64> = ShardedCache::unbounded(4);
        let evals = AtomicU64::new(0);
        for round in 0..3 {
            let got = par_argmin_cached_with(
                &ParallelEngine::with_threads(3),
                &cache,
                xs.clone(),
                |x| *x,
                |x| {
                    evals.fetch_add(1, Ordering::Relaxed);
                    (*x - 9) as f64 * (*x - 9) as f64
                },
            );
            assert_eq!(got, seq, "round {round}");
        }
        // 17 distinct candidate values → at most 17 real evaluations ever
        // (the first search may race a few duplicates onto workers).
        assert!(evals.load(Ordering::Relaxed) <= 80, "cache reused: {evals:?}");
        assert_eq!(cache.stats().hits + cache.stats().misses, 240);
        assert!(cache.stats().hits >= 160, "rounds 2 and 3 fully cached");
    }

    #[test]
    fn cached_argmax_matches_plain_under_tiny_capacity() {
        let xs: Vec<i64> = (0..60).map(|i| (i * 13) % 23).collect();
        let plain = argmax_by(xs.clone(), |x| *x as f64);
        let cache: ShardedCache<i64, f64> = ShardedCache::clock_lru(2, 4);
        for _ in 0..2 {
            let got = par_argmax_cached_with(
                &ParallelEngine::with_threads(2),
                &cache,
                xs.clone(),
                |x| *x,
                |x| *x as f64,
            );
            assert_eq!(got, plain);
        }
        assert!(cache.stats().evictions > 0, "cap 4 must evict: {:?}", cache.stats());
    }

    #[test]
    fn product_root_split_matches_big_product() {
        // Three-stage game over {0,1,2}: minimise a mixing loss.
        let loss = |p: &[usize]| {
            (10 * p[0] + 3 * p[1]) as f64 - (p[2] * p[2]) as f64 + (p[0] * p[2]) as f64
        };
        let mk_rest = || -> Vec<Stage<usize, f64>> {
            (0..2)
                .map(|_| {
                    Rc::new(move |_: &[usize]| argmin(vec![0usize, 1, 2])) as Stage<usize, f64>
                })
                .collect()
        };
        let mut stages: Vec<Stage<usize, f64>> =
            vec![Rc::new(|_: &[usize]| argmin(vec![0usize, 1, 2]))];
        stages.extend(mk_rest());
        let sequential = big_product_dep(stages).select(move |p: &Vec<usize>| loss(p));
        let parallel = par_product_root((0..3).collect(), mk_rest, loss);
        assert_eq!(parallel, sequential);
    }
}
