//! The continuation ("quantifier") monad `K(X) = (X → R) → R`.
//!
//! §2.1 remarks that the selection monad maps into the more familiar
//! continuation monad: given `F ∈ S(X)`, `λγ. R(F|γ)` is in `K(X)`. This
//! module provides that target. In the game-theory literature (Escardó &
//! Oliva) elements of `K(X)` are called *quantifiers* — `min`, `max`, `∃`,
//! `∀` all arise this way.

use crate::sel::LossFn;
use std::rc::Rc;

/// An element of the continuation monad `K(X) = (X → R) → R`.
pub struct Quant<X, R> {
    run: Rc<dyn Fn(LossFn<X, R>) -> R>,
}

impl<X, R> Clone for Quant<X, R> {
    fn clone(&self) -> Self {
        Quant { run: Rc::clone(&self.run) }
    }
}

impl<X, R> std::fmt::Debug for Quant<X, R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Quant(<quantifier>)")
    }
}

impl<X, R> Quant<X, R>
where
    X: Clone + 'static,
    R: Clone + 'static,
{
    /// Wraps a closure `(X → R) → R`.
    pub fn new<F>(f: F) -> Self
    where
        F: Fn(LossFn<X, R>) -> R + 'static,
    {
        Quant { run: Rc::new(f) }
    }

    /// Unit: `η(x) = λγ. γ(x)`.
    pub fn pure(x: X) -> Self {
        Quant::new(move |g| g(&x))
    }

    /// Applies the quantifier to a loss function.
    pub fn run<G>(&self, loss: G) -> R
    where
        G: Fn(&X) -> R + 'static,
    {
        (self.run)(Rc::new(loss))
    }

    /// Applies the quantifier to a shared loss function.
    pub fn run_rc(&self, loss: LossFn<X, R>) -> R {
        (self.run)(loss)
    }

    /// Standard continuation-monad bind.
    pub fn and_then<Y, F>(&self, f: F) -> Quant<Y, R>
    where
        Y: Clone + 'static,
        F: Fn(X) -> Quant<Y, R> + 'static,
    {
        let me = self.clone();
        let f = Rc::new(f);
        Quant::new(move |g: LossFn<Y, R>| {
            let f2 = Rc::clone(&f);
            me.run_rc(Rc::new(move |x: &X| f2(x.clone()).run_rc(Rc::clone(&g))))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::argmin;

    #[test]
    fn pure_applies_gamma() {
        let q = Quant::<i32, f64>::pure(3);
        assert_eq!(q.run(|x| (*x * *x) as f64), 9.0);
    }

    #[test]
    fn bind_composes_quantifiers() {
        // min over {1,2} of (min over {x, 2x} of γ)
        let q = argmin(vec![1, 2]).to_quant();
        let composed = q.and_then(|x| argmin(vec![x, 2 * x]).to_quant());
        let v = composed.run(|y: &i32| (*y - 3).abs() as f64);
        // candidates reachable: 1,2 (from x=1), 2,4 (from x=2); best is 2 or 4 -> loss 1
        assert_eq!(v, 1.0);
    }

    #[test]
    fn sel_to_quant_commutes_with_bind_on_samples() {
        // (F >>= f).to_quant() == F.to_quant() >>= (f(..).to_quant()) observed at γ
        let m = argmin(vec![0, 1, 2]);
        let f = |x: i32| argmin(vec![x, x + 5]);
        let lhs = m.and_then(f).to_quant();
        let rhs = m.to_quant().and_then(move |x| f(x).to_quant());
        for target in [-3, 1, 6] {
            let gamma = move |x: &i32| ((*x - target) as f64).abs();
            assert_eq!(lhs.run(gamma), rhs.run(gamma));
        }
    }
}
