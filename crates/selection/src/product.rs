//! Products of selection functions (Escardó–Oliva).
//!
//! The binary product combines a selection function for `X` and one for `Y`
//! into one for `X × Y`; iterating it over a list yields backward-induction
//! game solving ("optimal play"), bar recursion, and exhaustive search. The
//! paper cites this line of work (§1, §2.1) as the mathematical origin of
//! the selection monad; the games substrate uses these combinators as the
//! *baseline* against which the handler-based implementations are compared.

use crate::sel::{LossFn, Sel};
use std::rc::Rc;

/// One stage of a dependent product: given the moves played so far, the
/// selection function for the next move. The shared currency of
/// [`big_product_dep`], [`big_product`], and the game solvers built on
/// them.
pub type Stage<X, R> = Rc<dyn Fn(&[X]) -> Sel<X, R>>;

/// Independent binary product `ε ⊗ δ ∈ S(X × Y)`:
///
/// ```text
/// (ε ⊗ δ)(γ) = (a, b)  where  a = ε(λx. γ(x, δ(λy. γ(x, y))))
///                             b = δ(λy. γ(a, y))
/// ```
///
/// Intuitively: player 1 picks `a` assuming player 2 will respond optimally
/// (according to `δ`), then player 2 responds to the actual `a`.
pub fn pair<X, Y, R>(eps: Sel<X, R>, delta: Sel<Y, R>) -> Sel<(X, Y), R>
where
    X: Clone + 'static,
    Y: Clone + 'static,
    R: Clone + 'static,
{
    pair_dep(eps, move |_| delta.clone())
}

/// Dependent binary product: the second selection may depend on the first
/// component's choice (the general monadic form, which is just
/// `eps.and_then` specialised to pairs).
pub fn pair_dep<X, Y, R, D>(eps: Sel<X, R>, delta: D) -> Sel<(X, Y), R>
where
    X: Clone + 'static,
    Y: Clone + 'static,
    R: Clone + 'static,
    D: Fn(&X) -> Sel<Y, R> + 'static,
{
    let delta = Rc::new(delta);
    Sel::new(move |g: LossFn<(X, Y), R>| {
        let delta2 = Rc::clone(&delta);
        let g2 = Rc::clone(&g);
        let outer: LossFn<X, R> = Rc::new(move |x: &X| {
            let x2 = x.clone();
            let g3 = Rc::clone(&g2);
            let y = delta2(x).select_rc(Rc::new(move |y: &Y| g3(&(x2.clone(), y.clone()))));
            g2(&(x.clone(), y))
        });
        let a = eps.select_rc(outer);
        let a2 = a.clone();
        let g4 = Rc::clone(&g);
        let b = delta(&a).select_rc(Rc::new(move |y: &Y| g4(&(a2.clone(), y.clone()))));
        (a, b)
    })
}

/// Iterated product of a history-dependent family of selection functions.
///
/// `stages[i]` receives the moves played so far and yields the selection
/// function for move `i`. The result selects a whole play (a `Vec<X>`)
/// optimal for every stage, by backward induction. This is the Escardó–
/// Oliva "product of selection functions" used to solve sequential games.
pub fn big_product_dep<X, R>(stages: Vec<Stage<X, R>>) -> Sel<Vec<X>, R>
where
    X: Clone + 'static,
    R: Clone + 'static,
{
    fn go<X, R>(history: Vec<X>, stages: Rc<Vec<Stage<X, R>>>, i: usize) -> Sel<Vec<X>, R>
    where
        X: Clone + 'static,
        R: Clone + 'static,
    {
        if i == stages.len() {
            return Sel::pure(history);
        }
        let stage = stages[i](&history);
        stage.and_then(move |x| {
            let mut h = history.clone();
            h.push(x);
            go(h, Rc::clone(&stages), i + 1)
        })
    }
    let stages = Rc::new(stages);
    go(Vec::new(), stages, 0)
}

/// Iterated product of independent selection functions, one per position.
pub fn big_product<X, R>(selections: Vec<Sel<X, R>>) -> Sel<Vec<X>, R>
where
    X: Clone + 'static,
    R: Clone + 'static,
{
    let stages: Vec<Stage<X, R>> = selections
        .into_iter()
        .map(|s| {
            let s = s.clone();
            Rc::new(move |_: &[X]| s.clone()) as Stage<X, R>
        })
        .collect();
    big_product_dep(stages)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{argmax, argmin};

    #[test]
    fn pair_solves_one_move_game() {
        // maximiser over rows, minimiser over columns, table [[5,3],[2,9]]
        let table = [[5.0_f64, 3.0], [2.0, 9.0]];
        let s = pair(argmax(vec![0usize, 1]), argmin(vec![0usize, 1]));
        let (x, y) = s.select(move |&(x, y)| table[x][y]);
        assert_eq!((x, y), (0, 1));
        assert_eq!(s.loss(move |&(x, y)| table[x][y]), 3.0);
    }

    #[test]
    fn pair_dep_second_moves_depend_on_first() {
        // If the first player picks 0, the second may only pick from {0};
        // if 1, from {0, 1}. Maximise x + y.
        let s = pair_dep(argmax(vec![0i32, 1]), |x: &i32| {
            if *x == 0 {
                argmax(vec![0i32])
            } else {
                argmax(vec![0i32, 1])
            }
        });
        let (x, y) = s.select(|&(x, y)| (x + y) as f64);
        assert_eq!((x, y), (1, 1));
    }

    #[test]
    fn big_product_exhaustive_three_bits() {
        // Three boolean choices maximising the number of trues.
        let sels =
            vec![argmax(vec![false, true]), argmax(vec![false, true]), argmax(vec![false, true])];
        let s = big_product(sels);
        let bits = s.select(|bs: &Vec<bool>| bs.iter().filter(|b| **b).count() as f64);
        assert_eq!(bits, vec![true, true, true]);
    }

    #[test]
    fn big_product_alternating_minimax_two_rounds() {
        // Moves m1 (max), m2 (min) over {0,1}: payoff table indexed by both.
        let table = [[1.0_f64, 4.0], [3.0, 2.0]];
        let stages: Vec<Stage<usize, f64>> =
            vec![Rc::new(|_| argmax(vec![0usize, 1])), Rc::new(|_| argmin(vec![0usize, 1]))];
        let s = big_product_dep(stages);
        let play = s.select(move |ms: &Vec<usize>| table[ms[0]][ms[1]]);
        // max of (min row): row0 -> 1, row1 -> 2; maximiser plays row 1,
        // minimiser replies col 1.
        assert_eq!(play, vec![1, 1]);
    }

    #[test]
    fn big_product_dep_history_restricts_moves() {
        // Second move must differ from the first; maximise 10*m0 + m1.
        let stages: Vec<Stage<usize, f64>> = vec![
            Rc::new(|_| argmax(vec![0usize, 1, 2])),
            Rc::new(|h: &[usize]| {
                let prev = h[0];
                argmax((0usize..3).filter(|m| *m != prev).collect())
            }),
        ];
        let s = big_product_dep(stages);
        let play = s.select(|ms: &Vec<usize>| (10 * ms[0] + ms[1]) as f64);
        assert_eq!(play, vec![2, 1]);
    }

    #[test]
    fn empty_product_is_pure_empty() {
        let s: Sel<Vec<i32>, f64> = big_product(vec![]);
        assert_eq!(s.select(|_| 0.0), Vec::<i32>::new());
    }
}
