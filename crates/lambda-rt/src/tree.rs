//! Compiled λC on the engine's prefix-sharing tree search.
//!
//! Where [`crate::search::CompiledEval`] replays every one of the
//! `2^depth` forced decision paths from the root — O(2^depth · depth)
//! machine segments — [`LcTreeEval`] walks the decision *tree*: one
//! [`lambda_c::machine::ChoicePoint`] per interior node, each branch
//! resumed from the suspended prefix state, O(tree nodes) segments total.
//! The transposition keys are unchanged — `(space id, used, prefix)` is
//! already prefix-shaped — so tree and flat searches share one
//! [`LcTransCache`] handle, and a table warmed by either answers the
//! other. The same handle also holds **subtree summaries** under
//! key-disjoint tagged keys (`(space id, len | SUMMARY_TAG, bits)`, see
//! [`crate::search::LcEntry`]): the engine probes them at every interior
//! node, so a warm tree repeat answers whole subtrees in O(1) — an
//! O(depth) walk instead of an O(leaves) rescan — and seeds its
//! `SharedBound` from the space's best previously-achieved loss
//! ([`TreeEval::seed_bits`]) before the first segment runs.
//!
//! * **Hints.** A choice point's accumulated ambient loss orders its
//!   children best-first, and (for certified non-negative programs, the
//!   [`search_compiled_cached`] certificate argument) doubles as a true
//!   lower bound the engine checks against its `SharedBound` at every
//!   interior node — a dominated subtree is skipped *whole*, where the
//!   flat scan could only abandon its paths one replay at a time.
//! * **Mid-segment abandonment.** The same [`MachinePrune`] hook as the
//!   flat path threads through `explore`/`resume`; its accumulated
//!   partial snapshots with the machine, so each branch prunes against
//!   its own path total (see `lambda_c::machine`).
//! * **Determinism.** Leaves report `(total loss, decisions used)` and
//!   the engine credits each to its smallest flat index, so the tree
//!   winner is bit-identical — loss *and* index, ties included — to the
//!   flat exhaustive scan (proven by the differential suites).

use crate::bridge::{enforce_replay_contract, LcCandidates, LcValue};
use crate::loss::{encode_scalar, OrdLossVal};
use crate::search::{LcEntry, LcTransCache, SUMMARY_TAG};
use lambda_c::flow::NonNegLosses;
use lambda_c::machine::{ChoicePoint, Explored, MachinePrune};
use lambda_c::MachError;
use selc_cache::{CacheStats, SubtreeSummary};
use selc_engine::tree::{SummaryProbe, TreeEngine, TreeEval, TreeStep};
use selc_engine::{CancelToken, Outcome, SearchResult};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, LazyLock};

/// Machine-replay counters: paths that actually ran the compiled
/// machine to termination vs. paths answered from a cached leaf — the
/// observable form of the Hedges CPS-cost argument (the machine is the
/// hot path; warmth is what keeps it off it).
static MACHINE_LEAVES: LazyLock<selc_obs::Counter> =
    LazyLock::new(|| selc_obs::metrics::counter("lc.machine_leaves"));
static LEAF_CACHE_HITS: LazyLock<selc_obs::Counter> =
    LazyLock::new(|| selc_obs::metrics::counter("lc.leaf_cache_hits"));

/// A [`TreeEval`] that walks a compiled program's decision tree through
/// machine snapshots, with the optional shared transposition table and
/// mid-segment abandonment of the flat evaluator.
pub struct LcTreeEval<'c> {
    cands: LcCandidates,
    cache: Option<&'c LcTransCache>,
    base: CacheStats,
    nonneg: bool,
    best_bits: Arc<AtomicU64>,
}

impl<'c> LcTreeEval<'c> {
    /// A plain tree evaluator: no cache, no mid-segment abandonment. The
    /// achieved-loss mirror is the space's shared [`LcCandidates`] cell,
    /// so it persists across searches and seeds warm repeats (sound:
    /// the program is immutable, see [`TreeEval::seed_bits`]).
    pub fn new(cands: LcCandidates) -> LcTreeEval<'c> {
        let best_bits = cands.best_seen_cell();
        LcTreeEval { cands, cache: None, base: CacheStats::default(), nonneg: false, best_bits }
    }

    /// Attaches a shared transposition table; stats reported through
    /// [`TreeEval::cache_stats`] are the delta against wrap time.
    pub fn with_cache(mut self, cache: &'c LcTransCache) -> LcTreeEval<'c> {
        self.base = cache.stats();
        self.cache = Some(cache);
        self
    }

    /// Enables mid-segment abandonment and subtree pruning on partial
    /// losses, backed by a [`lambda_c::flow`] certificate. A certificate
    /// that does not cover this evaluator's program is ignored (sound —
    /// the search just runs without pruning).
    pub fn with_nonneg_certificate(mut self, cert: &NonNegLosses) -> LcTreeEval<'c> {
        if cert.covers(self.cands.program()) {
            self.nonneg = true;
        }
        self
    }

    /// Enables mid-segment abandonment and subtree pruning on partial
    /// losses **without** a certificate: the caller asserts the
    /// program's emitted losses are non-negative (otherwise a partial
    /// sum is not a lower bound and pruning would be unsound). Prefer
    /// [`LcTreeEval::with_nonneg_certificate`]; the
    /// `flow-uncertified-nonneg` lint flags unexplained uses.
    pub fn assuming_nonneg_losses_unchecked(mut self) -> LcTreeEval<'c> {
        self.nonneg = true;
        self
    }

    fn hook(&self) -> Option<MachinePrune> {
        self.nonneg
            .then(|| MachinePrune { threshold: Arc::clone(&self.best_bits), encode: encode_scalar })
    }

    /// Folds a machine step into a tree step, publishing and caching
    /// completed leaves.
    fn advance(
        &self,
        r: Result<Explored, MachError>,
        path: u64,
        len: u32,
    ) -> TreeStep<ChoicePoint, OrdLossVal> {
        match r {
            Err(_) => TreeStep::Pruned, // only `Pruned` survives the contract
            Ok(Explored::Choice(point)) => {
                debug_assert_eq!(point.depth(), len, "choice points sit at their position");
                let hint = Some(OrdLossVal(point.partial_loss().clone()));
                TreeStep::Node { node: point, hint }
            }
            Ok(Explored::Done(out)) => {
                MACHINE_LEAVES.inc();
                let used = out.decisions_used;
                debug_assert!(used <= len, "paths cannot use unvisited decisions");
                let loss = OrdLossVal(out.loss);
                // ordering: Relaxed — the abandonment mirror is a
                // monotone hint, like `SharedBound`: a stale (larger)
                // value only under-prunes, never unsoundly.
                self.best_bits.fetch_min(encode_scalar(&loss.0), Ordering::Relaxed);
                if let Some(cache) = self.cache {
                    cache.store(
                        (self.cands.id(), used, path >> (len - used)),
                        LcEntry::Leaf(loss.clone()),
                    );
                    self.cands.note_used_depth(used);
                }
                TreeStep::Leaf { loss, used }
            }
        }
    }
}

impl TreeEval<OrdLossVal> for LcTreeEval<'_> {
    type Node = ChoicePoint;

    fn depth(&self) -> u32 {
        self.cands.depth()
    }

    fn enter(&self, prefix: u64, len: u32) -> TreeStep<ChoicePoint, OrdLossVal> {
        // A terminated run is keyed by the decisions it consumed; probe
        // the observed depths ≤ len (ascending — at most one can hit, by
        // machine determinism) before paying for the replay.
        if let Some(cache) = self.cache {
            let mut mask = self.cands.used_depths_mask();
            while mask != 0 {
                let used = mask.trailing_zeros();
                mask &= mask - 1;
                if used > len {
                    break;
                }
                if let Some(LcEntry::Leaf(loss)) =
                    cache.lookup(&(self.cands.id(), used, prefix >> (len - used)))
                {
                    LEAF_CACHE_HITS.inc();
                    // ordering: Relaxed — monotone hint; see `advance`.
                    self.best_bits.fetch_min(encode_scalar(&loss.0), Ordering::Relaxed);
                    return TreeStep::Leaf { loss, used };
                }
            }
        }
        self.advance(self.cands.explore_prefix(prefix, len, self.hook()), prefix, len)
    }

    fn child(
        &self,
        node: &ChoicePoint,
        decision: bool,
        path: u64,
        len: u32,
    ) -> TreeStep<ChoicePoint, OrdLossVal> {
        // The only entry a child position can answer from is one keyed at
        // exactly `(len, path)` — a shallower hit would have resolved at
        // an ancestor, a deeper one is not determined yet. Probe only
        // when some candidate was actually observed to terminate after
        // `len` decisions: interior positions of a full-depth space would
        // otherwise pay one guaranteed miss per node (the warm path's
        // two-probes-per-leaf pathology).
        if let Some(cache) = self.cache {
            if self.cands.used_depths_mask() & (1_u64 << len) != 0 {
                if let Some(LcEntry::Leaf(loss)) = cache.lookup(&(self.cands.id(), len, path)) {
                    LEAF_CACHE_HITS.inc();
                    // ordering: Relaxed — monotone hint; see `advance`.
                    self.best_bits.fetch_min(encode_scalar(&loss.0), Ordering::Relaxed);
                    return TreeStep::Leaf { loss, used: len };
                }
            }
        }
        self.advance(enforce_replay_contract(node.resume(decision), path, len), path, len)
    }

    fn hint_is_lower_bound(&self) -> bool {
        self.nonneg
    }

    fn min_leaf_depth(&self) -> u32 {
        // The flow shape's shortest-path decision count is the shallowest
        // depth a leaf can occur at: splitting the parallel walk deeper
        // than that makes sibling tasks replay the same shallow leaves.
        // Purely a partitioning hint — an imprecise (small) bound costs
        // parallelism, never correctness.
        (u32::try_from(self.cands.flow_report().shape.min).unwrap_or(self.cands.depth()))
            .min(self.cands.depth())
    }

    fn cache_stats(&self) -> CacheStats {
        self.cache.map(|c| c.stats().since(&self.base)).unwrap_or_default()
    }

    fn probe_summary(&self, bits: u64, len: u32) -> SummaryProbe<OrdLossVal> {
        let Some(cache) = self.cache else { return SummaryProbe::Miss };
        match cache.lookup(&(self.cands.id(), len | SUMMARY_TAG, bits)) {
            Some(LcEntry::Summary(s)) => {
                if s.exact {
                    // An exact summary's loss was achieved by its winning
                    // leaf: it tightens the mid-segment abandonment
                    // mirror like the leaf itself would. (A bound entry
                    // must NOT: nothing attained it.)
                    // ordering: Relaxed — monotone hint; see `advance`.
                    self.best_bits.fetch_min(encode_scalar(&s.loss.0), Ordering::Relaxed);
                }
                SummaryProbe::from(s)
            }
            _ => SummaryProbe::Miss,
        }
    }

    fn install_summary(&self, bits: u64, len: u32, summary: SubtreeSummary<OrdLossVal>) {
        if let Some(cache) = self.cache {
            cache.store((self.cands.id(), len | SUMMARY_TAG, bits), LcEntry::Summary(summary));
        }
    }

    fn seed_bits(&self) -> Option<u64> {
        // ordering: Relaxed — a stale (larger) seed only forgoes some
        // warm-start pruning; it can never prune unsoundly.
        let bits = self.best_bits.load(Ordering::Relaxed);
        (bits != u64::MAX).then_some(bits)
    }
}

/// Searches a compiled candidate space on the prefix-sharing tree walk:
/// argmin by recorded loss, ties to the lexicographically-first decision
/// vector (`true` first) — bit-identical to
/// [`crate::search::search_compiled_flat`]. One extra forced replay
/// recovers the winner's terminal.
pub fn search_compiled(
    engine: &TreeEngine,
    cands: &LcCandidates,
) -> Option<(Outcome<OrdLossVal>, LcValue)> {
    let eval = LcTreeEval::new(cands.clone());
    let outcome = engine.search(&eval)?;
    let value = cands.run_candidate(outcome.index).ground_value();
    Some((outcome, value))
}

/// [`search_compiled`] through a shared transposition table, with
/// mid-segment abandonment and subtree pruning iff `cert` is a covering
/// [`lambda_c::flow`] certificate (pass [`LcCandidates::certificate`]).
pub fn search_compiled_cached(
    engine: &TreeEngine,
    cands: &LcCandidates,
    cache: &LcTransCache,
    cert: Option<&NonNegLosses>,
) -> Option<(Outcome<OrdLossVal>, LcValue)> {
    let mut eval = LcTreeEval::new(cands.clone()).with_cache(cache);
    if let Some(cert) = cert {
        eval = eval.with_nonneg_certificate(cert);
    }
    let outcome = engine.search(&eval)?;
    let value = cands.run_candidate(outcome.index).ground_value();
    Some((outcome, value))
}

/// [`search_compiled_cached`] with the pruning decision as a raw
/// boolean: `nonneg = true` asserts non-negative emitted losses without
/// a certificate (see
/// [`LcTreeEval::assuming_nonneg_losses_unchecked`]). Kept for
/// differential tests that deliberately force both settings.
pub fn search_compiled_cached_unchecked(
    engine: &TreeEngine,
    cands: &LcCandidates,
    cache: &LcTransCache,
    nonneg: bool,
) -> Option<(Outcome<OrdLossVal>, LcValue)> {
    let mut eval = LcTreeEval::new(cands.clone()).with_cache(cache);
    if nonneg {
        // The wrapper *is* the lint-gated escape hatch; the claim is the
        // caller's, made at their call site.
        // selc-lint: allow(flow-uncertified-nonneg)
        eval = eval.assuming_nonneg_losses_unchecked();
    }
    let outcome = engine.search(&eval)?;
    let value = cands.run_candidate(outcome.index).ground_value();
    Some((outcome, value))
}

/// [`search_compiled_cached`] under a [`CancelToken`]: the request-budget
/// entry point of the serve layer. The token is checked at every
/// interior node of the walk, so a deadline or disconnect aborts within
/// one machine segment; a cancelled search returns
/// [`SearchResult::Cancelled`] with the best leaf seen so far (a really
/// achieved loss, not the argmin). Everything a cancelled run stored —
/// completed leaves, fully-evaluated subtree summaries, the best-seen
/// mirror — is sound, so the table stays warm and unpoisoned for the
/// next request (see `selc_engine::cancel`).
pub fn search_compiled_cached_with(
    engine: &TreeEngine,
    cands: &LcCandidates,
    cache: &LcTransCache,
    cert: Option<&NonNegLosses>,
    cancel: &CancelToken,
) -> SearchResult<OrdLossVal> {
    let mut eval = LcTreeEval::new(cands.clone()).with_cache(cache);
    if let Some(cert) = cert {
        eval = eval.with_nonneg_certificate(cert);
    }
    engine.search_with(&eval, cancel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::{search_compiled_flat, search_compiled_flat_cached};
    use lambda_c::testgen;
    use selc_engine::SequentialEngine;

    fn chain_candidates(choices: u32) -> LcCandidates {
        let p = testgen::deep_decide_chain(choices);
        LcCandidates::new(lambda_c::compile(&p.expr).unwrap(), ["decide".to_owned()], choices)
    }

    #[test]
    fn tree_search_matches_the_flat_scan() {
        let cands = chain_candidates(7);
        let (flat, value) = search_compiled_flat(&SequentialEngine::exhaustive(), &cands).unwrap();
        for engine in [
            TreeEngine::sequential(),
            TreeEngine::with_threads(2),
            TreeEngine { threads: 3, prune: false, split: 3, summaries: false },
        ] {
            let (out, v) = search_compiled(&engine, &cands).unwrap();
            assert_eq!(
                (out.index, out.loss.clone()),
                (flat.index, flat.loss.clone()),
                "{engine:?}"
            );
            assert_eq!(v, value, "{engine:?}");
        }
    }

    #[test]
    fn tree_does_linear_machine_work_on_shallow_spaces() {
        // pgm has one real decision; declaring depth 6 gives the flat
        // scan 64 replays but the tree just two leaves.
        let ex = lambda_c::examples::pgm_with_argmin_handler();
        let cands =
            LcCandidates::new(lambda_c::compile(&ex.expr).unwrap(), ["decide".to_owned()], 6);
        let (flat, _) = search_compiled_flat(&SequentialEngine::exhaustive(), &cands).unwrap();
        let out = TreeEngine::sequential().search(&LcTreeEval::new(cands.clone())).unwrap();
        assert_eq!((out.index, out.loss.clone()), (flat.index, flat.loss));
        assert_eq!(out.stats.evaluated, 2, "one leaf per real decision path: {:?}", out.stats);
    }

    #[test]
    fn tree_and_flat_searches_share_one_transposition_table() {
        let cands = chain_candidates(6);
        let (reference, value) =
            search_compiled_flat(&SequentialEngine::exhaustive(), &cands).unwrap();
        // Tree-cold fill…
        let cache = LcTransCache::unbounded(4);
        let (cold, _) =
            search_compiled_cached(&TreeEngine::sequential(), &cands, &cache, None).unwrap();
        assert_eq!((cold.index, cold.loss.clone()), (reference.index, reference.loss.clone()));
        assert_eq!(cold.stats.cache.insertions, 64, "every leaf stored");
        // …answers the *flat* warm search without a single replay…
        let (warm_flat, wv) =
            search_compiled_flat_cached(&SequentialEngine::exhaustive(), &cands, &cache, None)
                .unwrap();
        assert_eq!((warm_flat.index, warm_flat.loss.clone()), (cold.index, cold.loss.clone()));
        assert_eq!(wv, value);
        assert_eq!(warm_flat.stats.cache.hits, 64, "fully warm from the tree fill");
        // …and the warm tree repeat answers from the root probes alone.
        let (warm_tree, tv) =
            search_compiled_cached(&TreeEngine::with_threads(2), &cands, &cache, None).unwrap();
        assert_eq!((warm_tree.index, warm_tree.loss.clone()), (cold.index, cold.loss));
        assert_eq!(tv, value);
        assert!(warm_tree.stats.cache.hits > 0, "stats: {:?}", warm_tree.stats);
    }

    #[test]
    fn cancelled_compiled_searches_time_out_without_poisoning_the_table() {
        let cands = chain_candidates(10);
        let (reference, _) = search_compiled_flat(&SequentialEngine::exhaustive(), &cands).unwrap();
        let cache = LcTransCache::unbounded(4);
        let cert = cands.certificate().expect("chain corpus is certified");
        // A pre-expired deadline: the walk aborts at its first interior
        // node, so (at most) a stray leaf scores and no summary lands.
        let expired = CancelToken::with_timeout(std::time::Duration::ZERO);
        let engine = TreeEngine::with_threads(2);
        let result = search_compiled_cached_with(&engine, &cands, &cache, Some(cert), &expired);
        assert!(result.was_cancelled());
        // The very next un-cancelled search over the same warm handle is
        // bit-identical to the sequential cold reference — whatever the
        // aborted run cached was sound.
        let (out, _) = search_compiled_cached(&engine, &cands, &cache, Some(cert)).unwrap();
        assert_eq!((out.index, out.loss.clone()), (reference.index, reference.loss.clone()));
        // And an explicitly complete run through the cancellable entry
        // reports Complete with the same winner.
        let again =
            search_compiled_cached_with(&engine, &cands, &cache, Some(cert), &CancelToken::never());
        assert!(!again.was_cancelled());
        let out = again.into_outcome().unwrap();
        assert_eq!((out.index, out.loss), (reference.index, reference.loss));
    }

    #[test]
    fn pruned_tree_searches_keep_the_winner_bit_identical() {
        let cands = chain_candidates(8);
        let (flat, value) = search_compiled_flat(&SequentialEngine::exhaustive(), &cands).unwrap();
        let cert = cands.certificate().expect("chain corpus is certified");
        for engine in [
            TreeEngine { threads: 1, prune: true, split: 0, summaries: true },
            TreeEngine::with_threads(3),
        ] {
            let cache = LcTransCache::unbounded(4);
            let (out, v) = search_compiled_cached(&engine, &cands, &cache, Some(cert)).unwrap();
            assert_eq!(
                (out.index, out.loss.clone()),
                (flat.index, flat.loss.clone()),
                "{engine:?}"
            );
            assert_eq!(v, value, "{engine:?}");
            assert!(out.stats.pruned > 0, "deep chains must prune: {:?}", out.stats);
        }
    }
}
