//! Compiled λC programs as engine candidate spaces.
//!
//! Following Hedges' observation that selection computations *are* CPS
//! terms, a compiled λC program with `depth` argmin choice points is a
//! family of `2^depth` straight-line programs: candidate `i` replays the
//! machine with its choices scripted from the bits of `i` (most
//! significant bit = first decision, `0` = `true`), so candidate indices
//! enumerate decision vectors lexicographically with `true` first —
//! exactly the order in which the paper's `leq`-based argmin handlers
//! break ties. [`LcCandidates`] packages that family as a
//! `selc::ReplaySpace` of [`Sel`] programs built from `selc::runtime`
//! continuations, so compiled λC runs on any `selc_engine::Engine`
//! unchanged.
//!
//! ## Soundness scope
//!
//! Equivalence with the handler semantics (forced-path argmin ==
//! handler's choice, bit-identically) requires the forced operations to
//! be handled by **argmin choosers over the program's single ambient
//! loss** — probe both branches, compare with `leq`, resume the cheaper —
//! with no `local`/`reset` rescoping between the choice points (the
//! [`lambda_c::testgen::gen_search_program`] fragment, and the paper's
//! §2.3 program family). Handlers that aggregate (`decide_all`), never
//! resume (`tuneLR`), or maximise are still *evaluated* faithfully by the
//! machine — they just aren't a minimisation the engine can fan out.

use crate::loss::OrdLossVal;
use lambda_c::flow::{self, FlowReport, NonNegLosses};
use lambda_c::machine::{
    self, Explored, ForcedChoices, MachineOutcome, MachinePrune, RunConfig, TreeChoices,
    TreeRunConfig,
};
use lambda_c::prim::Ground;
use lambda_c::{CompiledProgram, MachError};
use selc::{ReplaySpace, Sel};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

static NEXT_SPACE_ID: AtomicU64 = AtomicU64::new(1);

/// The terminal a candidate reports next to its loss: the ground reading
/// of the machine's value (`None` for higher-order results).
pub type LcValue = Option<Ground>;

/// A compiled λC program viewed as a finite candidate space: one
/// candidate per assignment of the forced operations' `2^depth` decision
/// vectors. Plain `Send + Sync` data — the engine ships it to workers and
/// each rebuilds the machine locally (replay-per-worker).
#[derive(Clone, Debug)]
pub struct LcCandidates {
    program: Arc<CompiledProgram>,
    ops: BTreeSet<String>,
    depth: u32,
    fuel: u64,
    /// Process-unique space identity, part of every transposition key:
    /// a shared cache may serve many *different* programs without their
    /// decision prefixes colliding. Clones (including the engine's
    /// replay-per-worker rebuilds) keep the identity — same program,
    /// same entries.
    id: u64,
    /// Bit `u` set ⇔ some candidate of this space has completed using
    /// exactly `u` decisions. Shared by all clones; cache lookups probe
    /// only these depths (most programs use one fixed depth, so the
    /// probe is usually a single lookup and hit/miss telemetry stays
    /// honest).
    used_depths: Arc<AtomicU64>,
    /// The best loss any candidate of this space has been observed to
    /// *achieve* (monotone `prune_bits` encoding; `u64::MAX` until one
    /// completes). Shared across clones and searches: the program is
    /// immutable and evaluation pure, so an achieved loss stays achieved
    /// — which is what makes seeding mid-run abandonment thresholds and
    /// the engine's `SharedBound` from it sound on warm repeats.
    best_seen: Arc<AtomicU64>,
    /// The flow analysis of the program over the forced operations,
    /// computed on first demand and shared across clones (the program is
    /// immutable, so the verdict is too).
    flow: Arc<OnceLock<FlowReport>>,
}

impl LcCandidates {
    /// Wraps a compiled program whose operations `ops` are forced over
    /// `depth` decisions (candidates `0..2^depth`).
    ///
    /// # Panics
    ///
    /// Panics if `depth > 62` (candidate indices are `usize`/`u64` bit
    /// vectors; practical searches are far smaller).
    pub fn new(
        program: CompiledProgram,
        ops: impl IntoIterator<Item = String>,
        depth: u32,
    ) -> LcCandidates {
        assert!(depth <= 62, "decision depth {depth} exceeds the 62-bit candidate encoding");
        LcCandidates {
            program: Arc::new(program),
            ops: ops.into_iter().collect(),
            depth,
            fuel: 0,
            // ordering: Relaxed — space ids only need uniqueness, which
            // the RMW guarantees under any ordering.
            id: NEXT_SPACE_ID.fetch_add(1, Ordering::Relaxed),
            used_depths: Arc::new(AtomicU64::new(0)),
            best_seen: Arc::new(AtomicU64::new(u64::MAX)),
            flow: Arc::new(OnceLock::new()),
        }
    }

    /// The compiled program backing this space (what a
    /// [`NonNegLosses`] certificate must cover).
    pub fn program(&self) -> &CompiledProgram {
        &self.program
    }

    /// The [`lambda_c::flow`] verdict for this space: the program
    /// analysed with the forced operations as decision ops. Computed once
    /// per space (clones share the result through the space handle).
    pub fn flow_report(&self) -> &FlowReport {
        self.flow.get_or_init(|| {
            let ops: Vec<&str> = self.ops.iter().map(String::as_str).collect();
            flow::analyze(&self.program, &ops)
        })
    }

    /// The non-negative-losses certificate, if the flow analysis can
    /// prove one for this program — the value that unlocks mid-run
    /// abandonment without an unchecked caller promise.
    pub fn certificate(&self) -> Option<&NonNegLosses> {
        self.flow_report().certificate()
    }

    /// Overrides the per-candidate machine fuel (0 = machine default).
    pub fn with_fuel(mut self, fuel: u64) -> LcCandidates {
        self.fuel = fuel;
        self
    }

    /// Number of candidates, `2^depth`.
    pub fn space(&self) -> usize {
        1_usize << self.depth
    }

    /// The decision depth.
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// The candidate space's process-unique identity (the transposition
    /// key's program component).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Records that a candidate completed using exactly `used` decisions.
    pub(crate) fn note_used_depth(&self, used: u32) {
        // ordering: Relaxed — a monotone hint bitmask: a reader that
        // misses a freshly-set bit only skips a cache probe it could
        // have made; it never reads data through the mask.
        self.used_depths.fetch_or(1 << used, Ordering::Relaxed);
    }

    /// The bitmask of decision counts candidates have been observed to
    /// use (monotone, shared across clones and searches).
    pub(crate) fn used_depths_mask(&self) -> u64 {
        // ordering: Relaxed — see `note_used_depth`.
        self.used_depths.load(Ordering::Relaxed)
    }

    /// The shared best-achieved-loss cell (see the field docs):
    /// evaluators feed it from completed runs, cache hits, and exact
    /// summaries, and seed their searches from it.
    pub(crate) fn best_seen_cell(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.best_seen)
    }

    /// Runs candidate `index`'s forced machine, with an optional prune
    /// hook.
    ///
    /// # Errors
    ///
    /// Machine errors, including [`MachError::Pruned`] when the hook
    /// fires.
    pub fn try_run(
        &self,
        index: usize,
        prune: Option<MachinePrune>,
    ) -> Result<MachineOutcome, MachError> {
        machine::run_with(
            &self.program,
            RunConfig {
                fuel: self.fuel,
                forced: Some(ForcedChoices {
                    ops: self.ops.clone(),
                    bits: index as u64,
                    max_decisions: self.depth,
                }),
                prune,
            },
        )
    }

    /// Runs candidate `index` with an optional prune hook, enforcing the
    /// replay contract: any machine failure other than a prune
    /// abandonment, or a stuck (unhandled) operation, is a panic —
    /// factories must produce fully handled, terminating programs.
    ///
    /// # Errors
    ///
    /// Only [`MachError::Pruned`], when the hook fires.
    ///
    /// # Panics
    ///
    /// On other machine errors or a stuck operation.
    pub fn run_candidate_pruned(
        &self,
        index: usize,
        prune: Option<MachinePrune>,
    ) -> Result<MachineOutcome, MachError> {
        match self.try_run(index, prune) {
            Err(MachError::Pruned) => Err(MachError::Pruned),
            Err(e) => panic!("compiled λC candidate {index} failed: {e}"),
            Ok(out) => {
                assert!(
                    out.stuck_on.is_none(),
                    "compiled λC candidate {index} stuck on unhandled operation {:?}",
                    out.stuck_on
                );
                Ok(out)
            }
        }
    }

    /// Runs candidate `index` under the replay contract (see
    /// [`LcCandidates::run_candidate_pruned`]).
    ///
    /// # Panics
    ///
    /// On machine errors or a stuck (unhandled) operation.
    pub fn run_candidate(&self, index: usize) -> MachineOutcome {
        self.run_candidate_pruned(index, None).expect("no prune hook was installed")
    }

    /// Starts (or fast-forwards) a tree-mode run: scripts the `len`
    /// decisions of `prefix` and suspends at the next choice point, under
    /// the replay contract — any failure other than a prune abandonment,
    /// and any stuck (unhandled) operation, is a panic.
    ///
    /// # Errors
    ///
    /// Only [`MachError::Pruned`], when `prune` fires.
    ///
    /// # Panics
    ///
    /// On other machine errors or a stuck operation.
    pub fn explore_prefix(
        &self,
        prefix: u64,
        len: u32,
        prune: Option<MachinePrune>,
    ) -> Result<Explored, MachError> {
        let r = machine::explore(
            &self.program,
            TreeRunConfig {
                fuel: self.fuel,
                choices: TreeChoices {
                    ops: self.ops.clone(),
                    prefix_bits: prefix,
                    prefix_len: len,
                    max_decisions: self.depth,
                },
                prune,
            },
        );
        enforce_replay_contract(r, prefix, len)
    }
}

/// The tree-mode replay contract (the [`Explored`] mirror of
/// [`LcCandidates::run_candidate_pruned`]): factories must produce fully
/// handled, terminating programs, so only prune abandonments survive as
/// errors.
pub(crate) fn enforce_replay_contract(
    r: Result<Explored, MachError>,
    prefix: u64,
    len: u32,
) -> Result<Explored, MachError> {
    match r {
        Err(MachError::Pruned) => Err(MachError::Pruned),
        Err(e) => panic!("compiled λC subtree {prefix:#b}/{len} failed: {e}"),
        Ok(Explored::Done(out)) => {
            assert!(
                out.stuck_on.is_none(),
                "compiled λC subtree {prefix:#b}/{len} stuck on unhandled operation {:?}",
                out.stuck_on
            );
            Ok(Explored::Done(out))
        }
        ok => ok,
    }
}

impl ReplaySpace<OrdLossVal, LcValue> for LcCandidates {
    /// Candidate `index` as a `Sel` program: a `selc::runtime`
    /// continuation closure that replays the forced machine and reports
    /// `(recorded loss, ground terminal)` — the shape `Engine::search`
    /// scores through `selc_engine::search_programs`.
    fn build(&self, index: usize) -> Sel<OrdLossVal, LcValue> {
        let me = self.clone();
        Sel::from_fn(move |_g| {
            let out = me.run_candidate(index);
            selc::eff::Eff::Pure((OrdLossVal(out.loss.clone()), out.ground_value()))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lambda_c::testgen;
    use selc_engine::{search_programs, ParallelEngine, SequentialEngine};

    fn pgm_candidates() -> LcCandidates {
        let ex = lambda_c::examples::pgm_with_argmin_handler();
        LcCandidates::new(lambda_c::compile(&ex.expr).unwrap(), ["decide".to_owned()], 1)
    }

    #[test]
    fn candidates_enumerate_true_first() {
        let c = pgm_candidates();
        assert_eq!(c.space(), 2);
        let t = c.run_candidate(0);
        let f = c.run_candidate(1);
        assert_eq!(t.ground_value(), Some(Ground::Char('a')));
        assert_eq!(f.ground_value(), Some(Ground::Char('b')));
    }

    #[test]
    fn replay_space_search_matches_the_handler() {
        let ex = lambda_c::examples::pgm_with_argmin_handler();
        let reference =
            lambda_c::eval_closed(&ex.sig, ex.expr.clone(), ex.ty.clone(), ex.eff.clone()).unwrap();
        let c = pgm_candidates();
        let (out, value) =
            search_programs(&SequentialEngine::exhaustive(), c.space(), c.clone()).unwrap();
        assert_eq!(out.loss.0, reference.loss);
        assert_eq!(value, lambda_c::prim::value_to_ground(&reference.terminal));
        let (par, pvalue) =
            search_programs(&ParallelEngine::with_threads(2), c.space(), c).unwrap();
        assert_eq!((par.index, par.loss), (out.index, out.loss));
        assert_eq!(pvalue, value);
    }

    #[test]
    fn deep_chain_search_matches_bigstep() {
        let p = testgen::deep_decide_chain(5);
        let sig = testgen::gen_signature();
        let reference =
            lambda_c::eval_closed(&sig, p.expr.clone(), p.ty.clone(), p.eff.clone()).unwrap();
        let c = LcCandidates::new(lambda_c::compile(&p.expr).unwrap(), ["decide".to_owned()], 5);
        let (out, _) = search_programs(&SequentialEngine::exhaustive(), c.space(), c).unwrap();
        assert_eq!(out.loss.0, reference.loss, "engine argmin == handler semantics");
    }
}
