//! [`LossVal`] as an engine loss: the `OrdLossVal` newtype.
//!
//! λC handlers compare losses through the `leq`/`lt` primitives, which
//! read the *scalar* component under the total order
//! [`LossVal::cmp_scalar`]. The engine needs the same order — a
//! [`selc::OrderedLoss`] — so that its deterministic `(loss, index)`
//! reduction picks exactly the winner an argmin handler would.
//!
//! `cmp_loss` is therefore a total *preorder* on loss vectors (vectors
//! with equal scalar components compare `Equal`); that is precisely the
//! comparison λC's choosers can express, and the engine's index
//! tie-breaking makes the merged winner deterministic regardless.

use lambda_c::LossVal;
use selc::{Loss, OrderedLoss};
use std::cmp::Ordering;

/// A λC loss value with the engine's ordering contract.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct OrdLossVal(pub LossVal);

impl Loss for OrdLossVal {
    fn zero() -> Self {
        OrdLossVal(LossVal::zero())
    }

    fn combine(&self, other: &Self) -> Self {
        OrdLossVal(self.0.add(&other.0))
    }
}

impl OrderedLoss for OrdLossVal {
    fn cmp_loss(&self, other: &Self) -> Ordering {
        self.0.cmp_scalar(&other.0)
    }

    fn prune_bits(&self) -> Option<u64> {
        Some(encode_scalar(&self.0))
    }
}

/// The monotone `u64` embedding of the scalar order — the engine's own
/// [`selc::f64_sort_key`] on the scalar reading, so every prune encoding
/// in the workspace agrees bit for bit: `encode(a) < encode(b)` iff
/// `a.cmp_scalar(b) == Less`. Also handed to the machine's prune hook as
/// a plain `fn`.
pub fn encode_scalar(l: &LossVal) -> u64 {
    selc::f64_sort_key(l.as_scalar())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monoid_mirrors_lossval_add() {
        let a = OrdLossVal(LossVal::scalar(1.5));
        let b = OrdLossVal(LossVal::pair(1.0, 2.0));
        assert_eq!(a.combine(&b).0, LossVal::pair(2.5, 2.0));
        assert_eq!(OrdLossVal::zero().0, LossVal::zero());
    }

    #[test]
    fn prune_bits_embed_cmp_loss() {
        let xs = [f64::NEG_INFINITY, -7.25, -0.0, 0.0, 1.5, 1e300, f64::INFINITY, f64::NAN];
        for a in xs {
            for b in xs {
                let (la, lb) = (OrdLossVal(LossVal::scalar(a)), OrdLossVal(LossVal::scalar(b)));
                let (ka, kb) = (la.prune_bits().unwrap(), lb.prune_bits().unwrap());
                assert_eq!(ka.cmp(&kb), la.cmp_loss(&lb), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn cmp_loss_reads_the_scalar_like_leq() {
        let a = OrdLossVal(LossVal::pair(1.0, 99.0));
        let b = OrdLossVal(LossVal::scalar(1.0));
        assert_eq!(a.cmp_loss(&b), Ordering::Equal, "preorder on the scalar reading");
    }
}
