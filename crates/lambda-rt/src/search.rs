//! Engine search over compiled λC candidates, with branch-and-bound
//! pruning and a transposition table over decision prefixes.
//!
//! [`CompiledEval`] implements the engine's `CandidateEval` directly (the
//! cache-through layering of `selc_engine::cached`, specialised to the
//! machine's forced runs):
//!
//! * **Transposition keys.** A candidate that consumes only `u ≤ depth`
//!   decisions is fully determined by its first `u` decision bits, so its
//!   loss is cached under `(u, prefix_u(index))`. Every index sharing the
//!   prefix hits the same entry — *within* a single search this collapses
//!   the `2^(depth-u)` duplicate indices of shallow paths, and *across*
//!   searches a shared [`LcTransCache`] handle replays nothing at all.
//!   The key is sound because the machine is deterministic: same forced
//!   prefix, same run, bit-identical loss (the cache crate's
//!   injectivity-up-to-evaluation condition).
//! * **Pruning.** The engine's scan publishes achieved losses to its
//!   `SharedBound` as usual; the evaluator additionally keeps a shared
//!   mirror in the same monotone `prune_bits` encoding (the bound
//!   itself is write-only by design), fed by completed runs *and* cache
//!   hits; when enabled, the
//!   machine's prune hook aborts a run whose ambient partial loss is
//!   already *strictly* above the mirror. Strict domination keeps the
//!   deterministic `(loss, index)` reduction bit-identical (the skipped
//!   candidate can neither win nor tie); partial-loss domination is a
//!   true lower bound only when remaining emissions cannot be negative,
//!   so enabling it asserts non-negative losses — which the search
//!   corpus ([`lambda_c::testgen::gen_search_program`]) guarantees.
//!   Pruned candidates are never cached (`Pruned` is a fact about the
//!   current bound, not a loss).

use crate::bridge::{LcCandidates, LcValue};
use crate::loss::{encode_scalar, OrdLossVal};
use lambda_c::flow::NonNegLosses;
use lambda_c::machine::MachinePrune;
use selc_cache::{CacheStats, ShardedCache, SubtreeSummary};
use selc_engine::bound::SharedBound;
use selc_engine::engine::CandidateEval;
use selc_engine::{Engine, Outcome};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Tag bit set in the middle (`u32`) key slot of every subtree-summary
/// entry. Leaf keys carry a plain decision count there (`≤ 62`, see
/// [`LcCandidates::new`]), so tagged and untagged keys can never
/// collide: one shared [`LcTransCache`] handle holds both populations,
/// key-disjointly, under one epoch.
pub const SUMMARY_TAG: u32 = 1 << 31;

/// One transposition-table entry: a completed path's loss, or an
/// interior-node subtree summary. The two populations live under
/// disjoint keys (see [`SUMMARY_TAG`]), so a leaf lookup only ever sees
/// [`LcEntry::Leaf`] and a summary probe only [`LcEntry::Summary`] —
/// the enum exists so both share one cache, one capacity budget, and
/// one epoch.
#[derive(Clone, Debug, PartialEq)]
pub enum LcEntry {
    /// Loss of the completed path keyed by `(id, used, prefix)`.
    Leaf(OrdLossVal),
    /// Summary of the subtree keyed by `(id, len | SUMMARY_TAG, bits)`.
    Summary(SubtreeSummary<OrdLossVal>),
}

/// The transposition table for compiled searches: keys are
/// `(space identity, decisions used, prefix bits)` for leaves and
/// `(space identity, prefix length | SUMMARY_TAG, prefix bits)` for
/// subtree summaries — the identity component (see [`LcCandidates::id`])
/// lets one shared handle serve many different programs without prefix
/// collisions.
pub type LcTransCache = ShardedCache<(u64, u32, u64), LcEntry>;

/// A `CandidateEval` that replays forced machine runs, consults an
/// optional shared transposition table, and optionally abandons runs
/// dominated mid-flight.
pub struct CompiledEval<'c> {
    cands: LcCandidates,
    cache: Option<&'c LcTransCache>,
    base: CacheStats,
    prune_mid_run: bool,
    best_bits: Arc<AtomicU64>,
}

impl<'c> CompiledEval<'c> {
    /// A plain evaluator: no cache, no mid-run abandonment. The
    /// achieved-loss mirror is the space's shared [`LcCandidates`] cell,
    /// so it persists across searches (warm repeats seed their bound and
    /// abandonment threshold from it — sound because the program is
    /// immutable, see [`CandidateEval::seed_bits`]).
    pub fn new(cands: LcCandidates) -> CompiledEval<'c> {
        let best_bits = cands.best_seen_cell();
        CompiledEval {
            cands,
            cache: None,
            base: CacheStats::default(),
            prune_mid_run: false,
            best_bits,
        }
    }

    /// Attaches a shared transposition table; stats reported through
    /// [`CandidateEval::cache_stats`] are the delta against wrap time.
    pub fn with_cache(mut self, cache: &'c LcTransCache) -> CompiledEval<'c> {
        self.base = cache.stats();
        self.cache = Some(cache);
        self
    }

    /// Enables mid-run abandonment of strictly dominated candidates,
    /// backed by a [`lambda_c::flow`] certificate. A certificate that
    /// does not cover this evaluator's program is ignored (sound — the
    /// search just runs without abandonment), so a stale handle can never
    /// smuggle pruning onto the wrong program.
    pub fn with_nonneg_certificate(mut self, cert: &NonNegLosses) -> CompiledEval<'c> {
        if cert.covers(self.cands.program()) {
            self.prune_mid_run = true;
        }
        self
    }

    /// Enables mid-run abandonment of strictly dominated candidates
    /// **without** a certificate: the caller asserts the program's
    /// emitted losses are non-negative (otherwise a partial sum is not a
    /// lower bound and pruning would be unsound — and could silently
    /// change winners). Prefer [`CompiledEval::with_nonneg_certificate`];
    /// the `flow-uncertified-nonneg` lint flags unexplained uses.
    pub fn assuming_nonneg_losses_unchecked(mut self) -> CompiledEval<'c> {
        self.prune_mid_run = true;
        self
    }

    /// The first `used` decision bits of `index` (the transposition key's
    /// prefix component).
    fn prefix(&self, index: usize, used: u32) -> u64 {
        (index as u64) >> (self.cands.depth() - used)
    }
}

impl CandidateEval<OrdLossVal> for CompiledEval<'_> {
    fn eval(&self, index: usize, _bound: &SharedBound<OrdLossVal>) -> Option<OrdLossVal> {
        // A run consuming u decisions is keyed by its first u bits, and
        // at most one u can hit (determinism) — probe only the depths
        // candidates have actually been observed to use (usually one),
        // ascending, so hit/miss telemetry counts real probes, not a
        // 0..=depth ladder.
        if let Some(cache) = self.cache {
            let mut mask = self.cands.used_depths_mask();
            while mask != 0 {
                let used = mask.trailing_zeros();
                mask &= mask - 1;
                if let Some(LcEntry::Leaf(loss)) =
                    cache.lookup(&(self.cands.id(), used, self.prefix(index, used)))
                {
                    // A hit is an achieved loss too: keep the mid-run
                    // abandonment mirror tight on warm searches.
                    // ordering: Relaxed — same monotone-hint argument as
                    // `SharedBound::observe_bits`: a stale (larger)
                    // value only under-prunes.
                    self.best_bits.fetch_min(encode_scalar(&loss.0), Ordering::Relaxed);
                    return Some(loss);
                }
            }
        }
        let hook = self.prune_mid_run.then(|| MachinePrune {
            threshold: Arc::clone(&self.best_bits),
            encode: encode_scalar,
        });
        let out = match self.cands.run_candidate_pruned(index, hook) {
            Err(_) => return None, // only `Pruned` survives the contract
            Ok(out) => out,
        };
        let loss = OrdLossVal(out.loss);
        // Publish the achieved loss to the machine-visible mirror (the
        // engine's own scan observes its SharedBound separately).
        // ordering: Relaxed — monotone hint; see the fetch_min above.
        self.best_bits.fetch_min(encode_scalar(&loss.0), Ordering::Relaxed);
        if let Some(cache) = self.cache {
            cache.store(
                (self.cands.id(), out.decisions_used, self.prefix(index, out.decisions_used)),
                LcEntry::Leaf(loss.clone()),
            );
            self.cands.note_used_depth(out.decisions_used);
        }
        Some(loss)
    }

    fn cache_stats(&self) -> CacheStats {
        self.cache.map(|c| c.stats().since(&self.base)).unwrap_or_default()
    }

    fn seed_bits(&self) -> Option<u64> {
        // ordering: Relaxed — a stale (larger) seed only forgoes some
        // warm-start pruning; it can never prune unsoundly.
        let bits = self.best_bits.load(Ordering::Relaxed);
        (bits != u64::MAX).then_some(bits)
    }
}

/// Searches a compiled candidate space by the **flat** scan: every one
/// of the `2^depth` forced paths replayed from the root on `engine` —
/// argmin by recorded loss, ties to the lexicographically-first decision
/// vector (`true` first), the winner an argmin-chooser handler picks.
/// One extra replay recovers the winner's terminal. Returns `None` for
/// an empty space (depth 0 still has one candidate, so only for
/// `space == 0` engines).
///
/// The production path is the prefix-sharing
/// [`crate::tree::search_compiled`]; the flat scan stays as the
/// differential reference it is proven against.
pub fn search_compiled_flat<G: Engine>(
    engine: &G,
    cands: &LcCandidates,
) -> Option<(Outcome<OrdLossVal>, LcValue)> {
    let eval = CompiledEval::new(cands.clone());
    let outcome = engine.search(cands.space(), &eval)?;
    let value = cands.run_candidate(outcome.index).ground_value();
    Some((outcome, value))
}

/// [`search_compiled_flat`] through a shared transposition table,
/// with mid-run abandonment iff `cert` is a covering
/// [`lambda_c::flow`] certificate (pass
/// [`LcCandidates::certificate`]).
pub fn search_compiled_flat_cached<G: Engine>(
    engine: &G,
    cands: &LcCandidates,
    cache: &LcTransCache,
    cert: Option<&NonNegLosses>,
) -> Option<(Outcome<OrdLossVal>, LcValue)> {
    let mut eval = CompiledEval::new(cands.clone()).with_cache(cache);
    if let Some(cert) = cert {
        eval = eval.with_nonneg_certificate(cert);
    }
    let outcome = engine.search(cands.space(), &eval)?;
    let value = cands.run_candidate(outcome.index).ground_value();
    Some((outcome, value))
}

/// [`search_compiled_flat_cached`] with the pruning decision as a raw
/// boolean: `nonneg = true` asserts non-negative emitted losses without
/// a certificate (see
/// [`CompiledEval::assuming_nonneg_losses_unchecked`]). Kept for
/// differential tests that deliberately force both settings.
pub fn search_compiled_flat_cached_unchecked<G: Engine>(
    engine: &G,
    cands: &LcCandidates,
    cache: &LcTransCache,
    nonneg: bool,
) -> Option<(Outcome<OrdLossVal>, LcValue)> {
    let mut eval = CompiledEval::new(cands.clone()).with_cache(cache);
    if nonneg {
        // The wrapper *is* the lint-gated escape hatch; the claim is the
        // caller's, made at their call site.
        // selc-lint: allow(flow-uncertified-nonneg)
        eval = eval.assuming_nonneg_losses_unchecked();
    }
    let outcome = engine.search(cands.space(), &eval)?;
    let value = cands.run_candidate(outcome.index).ground_value();
    Some((outcome, value))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lambda_c::testgen;
    use selc_engine::{ParallelEngine, SequentialEngine};

    fn chain_candidates(choices: u32) -> LcCandidates {
        let p = testgen::deep_decide_chain(choices);
        LcCandidates::new(lambda_c::compile(&p.expr).unwrap(), ["decide".to_owned()], choices)
    }

    #[test]
    fn cached_and_pruned_searches_agree_with_plain() {
        let cands = chain_candidates(6);
        let (plain, value) = search_compiled_flat(&SequentialEngine::exhaustive(), &cands).unwrap();
        // Cold fill without abandonment: every candidate runs and stores.
        let cache = LcTransCache::unbounded(4);
        let (cold, _) =
            search_compiled_flat_cached(&SequentialEngine::exhaustive(), &cands, &cache, None)
                .unwrap();
        assert_eq!((cold.index, cold.loss.clone()), (plain.index, plain.loss.clone()));
        assert_eq!(cold.stats.cache.insertions, cands.space() as u64);
        // Fully warm: the repeat search replays nothing.
        let (warm, wv) =
            search_compiled_flat_cached(&ParallelEngine::with_threads(3), &cands, &cache, None)
                .unwrap();
        assert_eq!((warm.index, warm.loss.clone()), (plain.index, plain.loss.clone()));
        assert_eq!(wv, value);
        assert_eq!(warm.stats.cache.hits, cands.space() as u64, "fully warm");
        // Abandonment on a fresh cache: same winner, bit-identically.
        let cert = cands.certificate().expect("chain losses are certifiably non-negative");
        for engine_prune in [false, true] {
            let fresh = LcTransCache::unbounded(4);
            let eng = ParallelEngine { threads: 3, chunk: 2, prune: engine_prune };
            let (out, v) = search_compiled_flat_cached(&eng, &cands, &fresh, Some(cert)).unwrap();
            assert_eq!((out.index, out.loss.clone()), (plain.index, plain.loss.clone()));
            assert_eq!(v, value);
        }
    }

    #[test]
    fn foreign_certificate_does_not_enable_pruning() {
        // A certificate from a different compilation of the *same* syntax
        // must not unlock abandonment: coverage is pointer identity.
        let cands = chain_candidates(5);
        let other = chain_candidates(5);
        let foreign = other.certificate().unwrap();
        let eval = CompiledEval::new(cands.clone()).with_nonneg_certificate(foreign);
        assert!(!eval.prune_mid_run, "foreign certificate silently ignored");
        let own = cands.certificate().unwrap();
        let eval = CompiledEval::new(cands.clone()).with_nonneg_certificate(own);
        assert!(eval.prune_mid_run);
    }

    #[test]
    fn prefix_cache_collapses_duplicate_indices() {
        // pgm has depth 1 but give the space depth 3: indices sharing the
        // first bit must collapse onto one prefix entry each.
        let ex = lambda_c::examples::pgm_with_argmin_handler();
        let cands =
            LcCandidates::new(lambda_c::compile(&ex.expr).unwrap(), ["decide".to_owned()], 3);
        let cache = LcTransCache::unbounded(2);
        let (out, _) =
            search_compiled_flat_cached(&SequentialEngine::exhaustive(), &cands, &cache, None)
                .unwrap();
        assert_eq!(cache.len(), 2, "one entry per used prefix, not per index");
        assert_eq!(out.loss.0, lambda_c::LossVal::scalar(2.0));
        let stats = out.stats.cache;
        assert_eq!(stats.insertions, 2);
        assert_eq!(stats.hits, 6, "6 of 8 candidates answered by the prefix table");
    }

    #[test]
    fn abandoned_candidates_are_not_cached() {
        // With abandonment on, the dominated false-branch runs of pgm
        // abort mid-flight and must not be stored.
        let ex = lambda_c::examples::pgm_with_argmin_handler();
        let cands =
            LcCandidates::new(lambda_c::compile(&ex.expr).unwrap(), ["decide".to_owned()], 3);
        let cache = LcTransCache::unbounded(2);
        let cert = cands.certificate().expect("pgm's 2*i losses are non-negative");
        let (out, _) = search_compiled_flat_cached(
            &SequentialEngine::exhaustive(),
            &cands,
            &cache,
            Some(cert),
        )
        .unwrap();
        assert_eq!(out.loss.0, lambda_c::LossVal::scalar(2.0));
        assert_eq!(cache.len(), 1, "only the winning prefix is stored");
        assert_eq!(out.stats.pruned, 4, "the four false-prefix candidates abort");
    }

    #[test]
    fn mid_run_pruning_abandons_but_never_changes_the_winner() {
        let cands = chain_candidates(7);
        let (plain, _) = search_compiled_flat(&SequentialEngine::exhaustive(), &cands).unwrap();
        let cache = LcTransCache::unbounded(2);
        // The unchecked entry point must stay bit-identical to the
        // certified one. // flow: certified (chain corpus, asserted above)
        let (pruned, _) = search_compiled_flat_cached_unchecked(
            &SequentialEngine::pruning(),
            &cands,
            &cache,
            true,
        )
        .unwrap();
        assert_eq!((pruned.index, pruned.loss.clone()), (plain.index, plain.loss));
        assert!(
            pruned.stats.pruned > 0,
            "deep chains must abandon dominated paths: {:?}",
            pruned.stats
        );
    }
}
