//! # lambda-rt — the λC → runtime bridge
//!
//! PRs 2–3 built a parallel, prunable, cached execution layer
//! (`selc-engine`, `selc-cache`) for the *library* form of the selection
//! monad; the paper's own calculus λC (`lambda-c`) still ran only on its
//! single-threaded substitution interpreter. This crate closes that gap:
//!
//! 1. **Compile** — `lambda_c::compile` lowers a well-typed λC
//!    expression to `Arc`-shared de Bruijn code, and
//!    `lambda_c::machine` evaluates it with closures and persistent
//!    environments, bit-identical to the Fig-6 smallstep reference
//!    (losses *and* terminals) at a fraction of the cost of
//!    clone-and-rename substitution.
//! 2. **Bridge** — [`LcCandidates`] turns the compiled program's argmin
//!    choice points into a `selc::ReplaySpace` of `2^depth` forced-path
//!    `Sel` programs (Hedges: selection computations are CPS terms), so
//!    λC programs run on any `selc_engine::Engine` — parallel workers,
//!    deterministic `(loss, index)` reduction, `SharedBound`
//!    branch-and-bound.
//! 3. **Tree search** — [`search_compiled`] walks the decision *tree*
//!    instead of the flat path family: the machine suspends at each
//!    choice point ([`lambda_c::machine::ChoicePoint`]) and both
//!    branches resume from the shared prefix snapshot, O(tree nodes)
//!    machine work instead of O(2^depth · depth) replay-from-root, with
//!    subtree-granularity parallelism. The flat scan stays as the
//!    differential reference ([`search_compiled_flat`]).
//! 4. **Cache** — [`search_compiled_cached`] threads a `selc-cache`
//!    transposition table keyed by *decision prefixes* through the
//!    search (tree and flat share one table), collapsing duplicate
//!    candidates within a search and replaying nothing across searches.
//!
//! ```
//! use lambda_rt::{search_compiled, LcCandidates};
//! use selc_engine::TreeEngine;
//!
//! let ex = lambda_c::examples::pgm_with_argmin_handler();
//! let cands = LcCandidates::new(
//!     lambda_c::compile(&ex.expr).unwrap(),
//!     ["decide".to_owned()],
//!     1,
//! );
//! let (outcome, value) = search_compiled(&TreeEngine::sequential(), &cands).unwrap();
//! assert_eq!(outcome.loss.0, lambda_c::LossVal::scalar(2.0));
//! assert_eq!(value, Some(lambda_c::prim::Ground::Char('a')));
//! ```

pub mod bridge;
pub mod loss;
pub mod search;
pub mod tree;

pub use bridge::{LcCandidates, LcValue};
pub use loss::{encode_scalar, OrdLossVal};
pub use search::{
    search_compiled_flat, search_compiled_flat_cached, search_compiled_flat_cached_unchecked,
    CompiledEval, LcEntry, LcTransCache, SUMMARY_TAG,
};
pub use tree::{
    search_compiled, search_compiled_cached, search_compiled_cached_unchecked,
    search_compiled_cached_with, LcTreeEval,
};
