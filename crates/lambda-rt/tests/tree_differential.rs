//! The tree-search differential suite: the prefix-sharing tree walk must
//! return **bit-identical** winners — loss *and* index, ties included —
//! to the flat exhaustive scan, across every configuration: sequential,
//! parallel (`SELC_THREADS` workers and pinned pool shapes), cached
//! (`SELC_CACHE_CAP`-bounded shared tables, tree- or flat-warmed), and
//! pruned (machine abandonment + dominated-subtree skips). The flat scan
//! is itself proven against the argmin handler semantics in
//! `tests/differential.rs`, so equality here closes the three-way chain
//! handler == flat == tree.

use lambda_c::testgen::{self, ProgramGen};
use lambda_c::types::{Effect, Type};
use lambda_c::{compile, LossVal};
use lambda_rt::{
    search_compiled, search_compiled_cached, search_compiled_flat, search_compiled_flat_cached,
    LcCandidates, LcTransCache, OrdLossVal,
};
use proptest::prelude::*;
use selc_engine::{Outcome, SequentialEngine, TreeEngine};

fn tree_engines() -> Vec<TreeEngine> {
    vec![
        TreeEngine::sequential(),
        TreeEngine::with_threads(1),
        TreeEngine::auto(), // SELC_THREADS workers
        TreeEngine { threads: 2, prune: true, split: 1, summaries: true },
        TreeEngine { threads: 3, prune: false, split: 3, summaries: true },
        TreeEngine { threads: 2, prune: true, split: 2, summaries: false },
    ]
}

/// Runs every tree configuration against the flat sequential reference.
fn assert_tree_equals_flat(cands: &LcCandidates, label: &str) {
    let (flat, value) = search_compiled_flat(&SequentialEngine::exhaustive(), cands).unwrap();
    // The corpus emits only non-negative constant losses, so every
    // program must earn a flow certificate; pruned rounds run under it.
    let cert = cands.certificate();
    assert!(cert.is_some(), "{label}: corpus programs are flow-certifiable");
    let check = |out: &Outcome<OrdLossVal>, v: &lambda_rt::LcValue, what: &str| {
        assert_eq!(
            (out.index, out.loss.clone()),
            (flat.index, flat.loss.clone()),
            "{label}: {what} winner"
        );
        assert_eq!(*v, value, "{label}: {what} value");
    };
    for engine in tree_engines() {
        let (out, v) = search_compiled(&engine, cands).unwrap();
        check(&out, &v, &format!("tree {engine:?}"));
        // Cached, cold (fresh tiny-capacity-respecting shared handle)…
        let cache = LcTransCache::from_env();
        let (out, v) = search_compiled_cached(&engine, cands, &cache, cert).unwrap();
        check(&out, &v, &format!("tree cached+pruned {engine:?}"));
        // …and warm over whatever the pruned fill left behind.
        let (out, v) = search_compiled_cached(&engine, cands, &cache, cert).unwrap();
        check(&out, &v, &format!("tree warm {engine:?}"));
        // Cross-warming: a flat search over the tree-filled table, and a
        // tree search over a flat-filled one, share keys bit-for-bit.
        let (out, v) =
            search_compiled_flat_cached(&SequentialEngine::exhaustive(), cands, &cache, cert)
                .unwrap();
        check(&out, &v, &format!("flat over tree-warmed table {engine:?}"));
        let flat_filled = LcTransCache::from_env();
        let _ =
            search_compiled_flat_cached(&SequentialEngine::exhaustive(), cands, &flat_filled, None);
        let (out, v) = search_compiled_cached(&engine, cands, &flat_filled, None).unwrap();
        check(&out, &v, &format!("tree over flat-warmed table {engine:?}"));
    }
}

#[test]
fn tree_equals_flat_on_the_search_corpus() {
    for seed in 0..12 {
        let mut g = ProgramGen::new(3000 + seed);
        let choices = 1 + (seed % 6) as u32;
        let p = g.gen_search_program(choices);
        let cands =
            LcCandidates::new(compile(&p.expr).expect("compiles"), ["decide".to_owned()], choices);
        assert_tree_equals_flat(&cands, &format!("seed {seed}"));
    }
}

#[test]
fn tree_equals_flat_on_deterministic_deep_chains() {
    for choices in [1, 4, 8] {
        let p = testgen::deep_decide_chain(choices);
        let cands =
            LcCandidates::new(compile(&p.expr).expect("compiles"), ["decide".to_owned()], choices);
        assert_tree_equals_flat(&cands, &format!("chain {choices}"));
    }
}

/// Every path ties: the winner must be candidate 0 (all-`true`) in every
/// configuration — exploration order, worker interleaving, and pruning
/// must not disturb the deterministic tie-break.
#[test]
fn all_tied_paths_break_to_the_all_true_candidate() {
    use lambda_c::build::*;
    let eamb = Effect::single("amb");
    let mut body = lc(0.0);
    for i in (0..3).rev() {
        body = let_(
            eamb.clone(),
            &format!("b{i}"),
            Type::bool(),
            op("decide", unit()),
            seq(eamb.clone(), Type::unit(), loss(lc(1.0)), body),
        );
    }
    let e = handle0(testgen::argmin_handler(&Type::loss(), &Effect::empty()), body);
    let cands = LcCandidates::new(compile(&e).unwrap(), ["decide".to_owned()], 3);
    let cert = cands.certificate().expect("constant-loss program is flow-certifiable");
    for engine in tree_engines() {
        let (out, _) = search_compiled(&engine, &cands).unwrap();
        assert_eq!(out.index, 0, "{engine:?}");
        assert_eq!(out.loss.0, LossVal::scalar(3.0), "{engine:?}");
        let cache = LcTransCache::from_env();
        let (out, _) = search_compiled_cached(&engine, &cands, &cache, Some(cert)).unwrap();
        assert_eq!(out.index, 0, "cached {engine:?}");
    }
}

/// Shallow-terminating paths: a space declared deeper than the program's
/// real decision count must credit early leaves to their smallest flat
/// index in tree and flat searches alike.
#[test]
fn shallow_paths_share_their_representative_index() {
    let ex = lambda_c::examples::pgm_with_argmin_handler();
    let cands = LcCandidates::new(compile(&ex.expr).unwrap(), ["decide".to_owned()], 5);
    assert_tree_equals_flat(&cands, "pgm at depth 5");
}

proptest! {
    #![proptest_config(proptest::test_runner::Config::with_cases(12))]

    /// Randomised corpus sweep (kept small: the flat reference replays
    /// 2^choices machine runs per configuration in debug builds).
    #[test]
    fn tree_equals_flat_on_random_search_programs(seed in 0u64..500, choices in 1u32..6) {
        let mut g = ProgramGen::new(seed);
        let p = g.gen_search_program(choices);
        let cands = LcCandidates::new(
            compile(&p.expr).expect("compiles"),
            ["decide".to_owned()],
            choices,
        );
        let (flat, value) =
            search_compiled_flat(&SequentialEngine::exhaustive(), &cands).unwrap();
        let cache = LcTransCache::from_env();
        for engine in [TreeEngine::auto(), TreeEngine::sequential()] {
            let (out, v) =
                search_compiled_cached(&engine, &cands, &cache, cands.certificate()).unwrap();
            prop_assert_eq!(out.index, flat.index);
            prop_assert_eq!(out.loss.clone(), flat.loss.clone());
            prop_assert_eq!(v, value.clone());
        }
    }
}
