//! The λC bridge differential suite: the compiled environment machine
//! must be **bit-identical** — loss and terminal — to the Fig-6
//! smallstep reference and the Fig-7 bigstep evaluator, on every paper
//! example and on `testgen` corpora; and engine searches over compiled
//! candidates (sequential, parallel under `SELC_THREADS`, cached under
//! `SELC_CACHE_SHARDS`/`SELC_CACHE_CAP`, pruned) must reproduce the
//! argmin handler's winner bit-identically.

use lambda_c::bigstep::{eval_closed, DEFAULT_FUEL};
use lambda_c::loss::LossVal;
use lambda_c::prim::value_to_ground;
use lambda_c::smallstep::{step, StepResult};
use lambda_c::syntax::Expr;
use lambda_c::testgen::{self, ProgramGen};
use lambda_c::types::{Effect, Type};
use lambda_c::{compile, machine, Signature};
use lambda_rt::{search_compiled_flat, search_compiled_flat_cached, LcCandidates, LcTransCache};
use selc_engine::{search_programs, ParallelEngine, SequentialEngine};

/// Runs the explicit Fig-6 smallstep loop (not via bigstep, so the two
/// reference layers are exercised independently).
fn smallstep_outcome(
    sig: &Signature,
    e: &Expr,
    ty: &Type,
    eff: &Effect,
) -> (LossVal, Option<Expr>, Option<String>) {
    let g = Expr::zero_cont(ty.clone(), eff.clone()).rc();
    let mut cur = e.clone();
    let mut total = LossVal::zero();
    for _ in 0..DEFAULT_FUEL {
        match step(sig, &g, eff, &cur).expect("reference stepping succeeds") {
            StepResult::Step { loss, expr } => {
                total = total.add(&loss);
                cur = expr;
            }
            StepResult::Value => return (total, Some(cur), None),
            StepResult::Stuck { op } => return (total, Some(cur), Some(op)),
        }
    }
    panic!("smallstep did not terminate");
}

/// Demands bit-identical loss (and ground terminal, when the program
/// terminates) across smallstep, bigstep, and the compiled machine.
fn assert_three_way(sig: &Signature, e: &Expr, ty: &Type, eff: &Effect, label: &str) {
    let (ss_loss, ss_term, ss_stuck) = smallstep_outcome(sig, e, ty, eff);
    let bs = eval_closed(sig, e.clone(), ty.clone(), eff.clone()).expect("bigstep succeeds");
    let mc = machine::run(&compile(e).expect("compiles")).expect("machine succeeds");

    assert_eq!(bs.loss, ss_loss, "{label}: bigstep vs smallstep loss");
    assert_eq!(mc.loss, ss_loss, "{label}: machine vs smallstep loss");
    assert_eq!(bs.stuck_on, ss_stuck, "{label}: bigstep vs smallstep stuckness");
    assert_eq!(mc.stuck_on, ss_stuck, "{label}: machine vs smallstep stuckness");
    if ss_stuck.is_none() {
        let ss_ground = value_to_ground(&ss_term.expect("terminal"));
        assert_eq!(
            value_to_ground(&bs.terminal),
            ss_ground,
            "{label}: bigstep vs smallstep terminal"
        );
        assert_eq!(mc.ground_value(), ss_ground, "{label}: machine vs smallstep terminal");
    }
}

#[test]
fn paper_examples_agree_across_all_three_evaluators() {
    for (label, ex) in [
        ("decide_all", lambda_c::examples::decide_all()),
        ("pgm_argmin", lambda_c::examples::pgm_with_argmin_handler()),
        ("counter", lambda_c::examples::counter()),
        ("minimax", lambda_c::examples::minimax()),
        ("password", lambda_c::examples::password()),
        ("tune_lr", lambda_c::examples::tune_lr(1.0, 0.5)),
    ] {
        assert_three_way(&ex.sig, &ex.expr, &ex.ty, &ex.eff, label);
    }
}

#[test]
fn testgen_corpus_agrees_across_all_three_evaluators() {
    let sig = testgen::gen_signature();
    for seed in 0..120 {
        let mut g = ProgramGen::new(seed);
        // Every third program leaves `amb` unhandled, exercising the
        // stuck-propagation paths of all three evaluators.
        let p = g.gen_program(4, seed % 3 == 0);
        assert_three_way(&sig, &p.expr, &p.ty, &p.eff, &format!("testgen seed {seed}"));
    }
}

#[test]
fn deep_chains_agree_across_all_three_evaluators() {
    // Both reference evaluators recurse over the whole term per step and
    // the machine nests Rust frames per chain level; give the deep
    // programs a real stack instead of the 2 MiB test default.
    std::thread::Builder::new()
        .stack_size(64 * 1024 * 1024)
        .spawn(|| {
            let sig = testgen::gen_signature();
            // Sizes bounded by the *reference* interpreter: smallstep is
            // quadratic in the chain and exponential in the choices, and
            // this suite runs it in debug builds (e14 benches the big
            // sizes in release).
            for p in [testgen::deep_let_chain(100), testgen::deep_decide_chain(5)] {
                assert_three_way(&sig, &p.expr, &p.ty, &p.eff, "deep chain");
            }
        })
        .expect("spawns")
        .join()
        .expect("deep-chain differential passes");
}

/// The search-corpus equivalence: for the argmin fragment, every engine
/// configuration must return the handler's own winner — loss and
/// terminal bit-identical to the Fig-6 reference — sequentially, in
/// parallel (`SELC_THREADS` workers), cached (`SELC_CACHE_CAP` capacity,
/// possibly evicting constantly), and with branch-and-bound abandonment.
#[test]
fn engine_search_reproduces_the_argmin_handler_bit_identically() {
    let sig = testgen::gen_signature();
    let shared_cache = LcTransCache::from_env();
    // Seed count bounded by the reference interpreter: the probing argmin
    // handler costs O(2^choices) substitution runs per seed in debug.
    for seed in 0..10 {
        let mut g = ProgramGen::new(1000 + seed);
        let choices = 1 + (seed % 5) as u32;
        let p = g.gen_search_program(choices);
        let reference =
            eval_closed(&sig, p.expr.clone(), p.ty.clone(), p.eff.clone()).expect("reference");
        let ref_ground = value_to_ground(&reference.terminal);

        let cands =
            LcCandidates::new(compile(&p.expr).expect("compiles"), ["decide".to_owned()], choices);

        // Plain sequential search.
        let (seq, seq_v) = search_compiled_flat(&SequentialEngine::exhaustive(), &cands).unwrap();
        assert_eq!(seq.loss.0, reference.loss, "seed {seed}: engine argmin == handler loss");
        assert_eq!(seq_v, ref_ground, "seed {seed}: engine winner == handler terminal");

        // Parallel, pruned, with the shared (possibly tiny, evicting)
        // transposition table; plus a per-seed fresh cache warm repeat.
        // Pruning runs under the flow certificate, which the search
        // corpus (non-negative constant losses) must always earn.
        let par = ParallelEngine::auto();
        let cert = cands.certificate().expect("search corpus is flow-certifiable");
        let (pout, pv) =
            search_compiled_flat_cached(&par, &cands, &shared_cache, Some(cert)).unwrap();
        assert_eq!((pout.index, pout.loss.0.clone()), (seq.index, reference.loss.clone()));
        assert_eq!(pv, ref_ground);
        let (warm, wv) =
            search_compiled_flat_cached(&par, &cands, &shared_cache, Some(cert)).unwrap();
        assert_eq!((warm.index, warm.loss.0.clone()), (seq.index, reference.loss.clone()));
        assert_eq!(wv, ref_ground);

        // The ReplaySpace path (`Sel` programs on the generic engine).
        if seed < 3 {
            let (rout, rv) = search_programs(&par, cands.space(), cands.clone()).unwrap();
            assert_eq!((rout.index, rout.loss.0), (seq.index, reference.loss.clone()));
            assert_eq!(rv, ref_ground);
        }
    }
}

/// Ties must break identically: equal-cost branches pick `true` in the
/// handler (`leq`) and the smallest index (= `true`-first) in the engine.
#[test]
fn tie_breaking_matches_the_handler() {
    use lambda_c::build::*;
    let sig = testgen::gen_signature();
    let eamb = Effect::single("amb");
    // Two decides, every path costs 1.0.
    let mut body: Expr = lc(0.0);
    for i in (0..2).rev() {
        body = let_(
            eamb.clone(),
            &format!("b{i}"),
            Type::bool(),
            op("decide", unit()),
            seq(eamb.clone(), Type::unit(), loss(lc(1.0)), body),
        );
    }
    let e = handle0(testgen::argmin_handler(&Type::loss(), &Effect::empty()), body);
    let reference = eval_closed(&sig, e.clone(), Type::loss(), Effect::empty()).unwrap();
    let cands = LcCandidates::new(compile(&e).unwrap(), ["decide".to_owned()], 2);
    let (out, _) = search_compiled_flat(&ParallelEngine::auto(), &cands).unwrap();
    assert_eq!(out.index, 0, "all-true is the lexicographically first minimal path");
    assert_eq!(out.loss.0, reference.loss);
}
