//! The subtree-summary differential suite: searches that answer interior
//! nodes from cached summaries must return **bit-identical** winners —
//! loss *and* index, ties included — to summary-free tree searches and
//! the flat exhaustive scan, under every hostile condition the cache can
//! produce: tiny capacities that evict summaries mid-search, epoch bumps
//! that retire them lazily, pruned fills that leave only bound entries
//! behind, and worker interleavings. The suite also pins the warm-path
//! probe economics the summaries ride on: a warm repeat probes each leaf
//! position once (the `used_depths` gate — no guaranteed-miss interior
//! probes), and a warm search seeds its `SharedBound` from the space's
//! best already-achieved loss before the first segment runs.

use lambda_c::testgen::{self, ProgramGen};
use lambda_rt::{search_compiled_cached, search_compiled_flat, LcCandidates, LcTransCache};
use proptest::prelude::*;
use selc_engine::{SequentialEngine, TreeEngine};

fn chain_candidates(choices: u32) -> LcCandidates {
    let p = testgen::deep_decide_chain(choices);
    LcCandidates::new(lambda_c::compile(&p.expr).unwrap(), ["decide".to_owned()], choices)
}

/// Summary-using engines against their summary-free twins.
fn engine_pairs() -> Vec<(TreeEngine, TreeEngine)> {
    let pair = |threads, prune, split| {
        (
            TreeEngine { threads, prune, split, summaries: true },
            TreeEngine { threads, prune, split, summaries: false },
        )
    };
    vec![pair(1, false, 0), pair(1, true, 0), pair(2, true, 1), pair(3, false, 2)]
}

/// Every summarised configuration must agree with its unsummarised twin
/// and the flat scan, over cold, warm, epoch-bumped, and eviction-churned
/// tables alike.
fn assert_summaries_are_invisible(cands: &LcCandidates, label: &str) {
    let (flat, value) = search_compiled_flat(&SequentialEngine::exhaustive(), cands).unwrap();
    // The whole corpus is built from non-negative constant losses, so
    // the flow analysis must certify every program — pruned rounds run
    // under the certificate, exactly like production callers.
    let cert = cands.certificate();
    assert!(cert.is_some(), "{label}: corpus programs are flow-certifiable");
    for (summarised, plain) in engine_pairs() {
        // A capacity-8 table under `deep_decide_chain`-sized spaces
        // churns constantly: summaries are installed and evicted within
        // a single search (forced eviction mid-family).
        for cache in [LcTransCache::unbounded(2), LcTransCache::clock_lru(2, 8)] {
            for round in 0..3 {
                // Round 1 runs over whatever the summarised fill left;
                // round 2 over a lazily-bumped epoch.
                if round == 2 {
                    cache.advance_epoch();
                }
                let what = |k: &str| format!("{label}: {k} round {round} {summarised:?}");
                let (s, sv) = search_compiled_cached(&summarised, cands, &cache, cert).unwrap();
                let (p, pv) = search_compiled_cached(&plain, cands, &cache, cert).unwrap();
                assert_eq!(
                    (s.index, s.loss.clone()),
                    (flat.index, flat.loss.clone()),
                    "{}",
                    what("summarised")
                );
                assert_eq!(
                    (p.index, p.loss.clone()),
                    (flat.index, flat.loss.clone()),
                    "{}",
                    what("plain")
                );
                assert_eq!(sv, value, "{}", what("summarised value"));
                assert_eq!(pv, value, "{}", what("plain value"));
            }
        }
    }
}

#[test]
fn summarised_searches_match_plain_and_flat_on_chains() {
    for choices in [1, 4, 7] {
        assert_summaries_are_invisible(&chain_candidates(choices), &format!("chain {choices}"));
    }
}

#[test]
fn summarised_searches_match_plain_and_flat_on_the_search_corpus() {
    for seed in 0..8 {
        let mut g = ProgramGen::new(4100 + seed);
        let choices = 1 + (seed % 5) as u32;
        let p = g.gen_search_program(choices);
        let cands =
            LcCandidates::new(lambda_c::compile(&p.expr).unwrap(), ["decide".to_owned()], choices);
        assert_summaries_are_invisible(&cands, &format!("seed {seed}"));
    }
}

/// The double-probe regression (PR 5's warm path paid a guaranteed miss
/// per interior node: ~2× leaves probes on a full-depth space). With the
/// `used_depths` gate, a warm summary-free repeat probes exactly the
/// leaf positions: hits == leaves, misses == 0.
#[test]
fn warm_repeat_probes_each_leaf_once_and_misses_nothing() {
    let choices = 10;
    let cands = chain_candidates(choices);
    let leaves = 1_u64 << choices;
    for engine in [
        TreeEngine { threads: 1, prune: false, split: 0, summaries: false },
        TreeEngine { threads: 2, prune: false, split: 1, summaries: false },
    ] {
        let cache = LcTransCache::unbounded(4);
        let (cold, _) = search_compiled_cached(&engine, &cands, &cache, None).unwrap();
        assert!(cold.stats.cache.insertions >= leaves, "cold fill stores every leaf");
        let (warm, _) = search_compiled_cached(&engine, &cands, &cache, None).unwrap();
        assert_eq!(
            warm.stats.cache.hits, leaves,
            "{engine:?}: one probe per leaf position: {:?}",
            warm.stats
        );
        assert_eq!(
            warm.stats.cache.misses, 0,
            "{engine:?}: no guaranteed-miss interior probes: {:?}",
            warm.stats
        );
    }
}

/// A warm summarised repeat resolves whole subtrees from exact summary
/// entries: zero leaves touch the machine, and the exhaustive sequential
/// case answers at the root — one exact hit, O(depth) work on a space
/// with 2^depth leaves.
#[test]
fn warm_summarised_repeat_answers_from_summaries() {
    let cands = chain_candidates(9);
    let engine = TreeEngine { threads: 1, prune: false, split: 0, summaries: true };
    let cache = LcTransCache::unbounded(4);
    let (cold, value) = search_compiled_cached(&engine, &cands, &cache, None).unwrap();
    assert!(cold.stats.summary.exact_installs > 0, "cold fill installs summaries");
    let (warm, wv) = search_compiled_cached(&engine, &cands, &cache, None).unwrap();
    assert_eq!((warm.index, warm.loss.clone()), (cold.index, cold.loss.clone()));
    assert_eq!(wv, value);
    assert_eq!(warm.stats.summary.exact_hits, 1, "answered at the root: {:?}", warm.stats);
    assert_eq!(warm.stats.evaluated, 0, "no leaf re-evaluation: {:?}", warm.stats);
    // The root summary probe is itself one shared-table hit; no leaf
    // entry below it is ever touched.
    assert_eq!(warm.stats.cache.hits, 1, "only the root summary probe: {:?}", warm.stats);

    // A pruned warm repeat still walks no leaves: exact entries answer
    // the fully-explored subtrees and bound entries re-justify the cuts.
    let pruned = TreeEngine { threads: 1, prune: true, split: 0, summaries: true };
    let pcache = LcTransCache::unbounded(4);
    let cert = cands.certificate().expect("chain corpus is flow-certifiable");
    let (pcold, _) = search_compiled_cached(&pruned, &cands, &pcache, Some(cert)).unwrap();
    let (pwarm, _) = search_compiled_cached(&pruned, &cands, &pcache, Some(cert)).unwrap();
    assert_eq!((pwarm.index, pwarm.loss.clone()), (pcold.index, pcold.loss));
    assert_eq!(pwarm.stats.evaluated, 0, "pruned warm repeat: {:?}", pwarm.stats);
    assert!(pwarm.stats.summary.probes() > 0, "summaries carried it: {:?}", pwarm.stats);
}

/// An epoch bump retires summaries lazily: the next search re-derives
/// (and re-installs) them rather than trusting the stale generation.
#[test]
fn epoch_bump_retires_summaries() {
    let cands = chain_candidates(8);
    let engine = TreeEngine { threads: 1, prune: false, split: 0, summaries: true };
    let cache = LcTransCache::unbounded(4);
    let (cold, _) = search_compiled_cached(&engine, &cands, &cache, None).unwrap();
    cache.advance_epoch();
    let (bumped, _) = search_compiled_cached(&engine, &cands, &cache, None).unwrap();
    assert_eq!((bumped.index, bumped.loss.clone()), (cold.index, cold.loss));
    assert_eq!(bumped.stats.summary.exact_hits, 0, "stale summaries must not answer");
    assert!(bumped.stats.summary.exact_installs > 0, "the bumped run refills the table");
    let (rewarm, _) = search_compiled_cached(&engine, &cands, &cache, None).unwrap();
    assert_eq!(rewarm.stats.summary.exact_hits, 1, "refilled: answered at the root again");
}

/// The space's best already-achieved loss seeds the `SharedBound` before
/// the first segment runs: a search over a *fresh* table (cold cache,
/// warm space) prunes from the first subtree onward — at least as hard
/// as the discovery run, against the same winner.
#[test]
fn warm_space_seeds_the_bound_over_a_cold_table() {
    let cands = chain_candidates(8);
    let engine = TreeEngine { threads: 1, prune: true, split: 0, summaries: false };
    let cert = cands.certificate().expect("chain corpus is flow-certifiable");
    let (first, _) =
        search_compiled_cached(&engine, &cands, &LcTransCache::unbounded(4), Some(cert)).unwrap();
    assert!(first.stats.pruned > 0, "deep chains prune: {:?}", first.stats);
    // Fresh table: nothing to answer from, but `seed_bits` arms the
    // bound with the discovery run's winner before anything evaluates.
    let (seeded, _) =
        search_compiled_cached(&engine, &cands, &LcTransCache::unbounded(4), Some(cert)).unwrap();
    assert_eq!((seeded.index, seeded.loss.clone()), (first.index, first.loss));
    assert!(
        seeded.stats.pruned >= first.stats.pruned,
        "a pre-armed bound prunes at least as hard: {:?} vs {:?}",
        seeded.stats,
        first.stats
    );
    assert!(
        seeded.stats.evaluated <= first.stats.evaluated,
        "and evaluates no more: {:?} vs {:?}",
        seeded.stats,
        first.stats
    );
}

proptest! {
    #![proptest_config(proptest::test_runner::Config::with_cases(10))]

    /// Randomised sweep: summarised and plain searches over one shared
    /// tiny table agree with the flat scan (kept small: the flat
    /// reference replays 2^choices machine runs per case).
    #[test]
    fn summaries_are_invisible_on_random_programs(seed in 0u64..500, choices in 1u32..6) {
        let mut g = ProgramGen::new(seed);
        let p = g.gen_search_program(choices);
        let cands = LcCandidates::new(
            lambda_c::compile(&p.expr).expect("compiles"),
            ["decide".to_owned()],
            choices,
        );
        let (flat, value) =
            search_compiled_flat(&SequentialEngine::exhaustive(), &cands).unwrap();
        prop_assert!(cands.certificate().is_some(), "search corpus is flow-certifiable");
        let cache = LcTransCache::clock_lru(2, 8);
        for engine in [
            TreeEngine { threads: 2, prune: true, split: 1, summaries: true },
            TreeEngine { threads: 2, prune: true, split: 1, summaries: false },
            TreeEngine { threads: 1, prune: false, split: 0, summaries: true },
        ] {
            let (out, v) =
                search_compiled_cached(&engine, &cands, &cache, cands.certificate()).unwrap();
            prop_assert_eq!(out.index, flat.index);
            prop_assert_eq!(out.loss.clone(), flat.loss.clone());
            prop_assert_eq!(v, value.clone());
        }
    }
}
