//! The denotational semantics of λC expressions and handlers
//! (Fig 9, Fig 10, §5.3 / Appendix B.3).

use crate::domain::{FTree, Gamma, RTree, SelComp, SemVal, WTree};
use crate::monads::{r_loss, s_bind, s_op, s_unit, w_act, zero_gamma};
use lambda_c::loss::LossVal;
use lambda_c::prim::prim_lookup;
use lambda_c::sig::Signature;
use lambda_c::syntax::{Const, Expr, Handler};
use lambda_c::types::Effect;
use std::collections::HashMap;
use std::rc::Rc;

/// The return clause as a semantic function of `(param, result)` — rule
/// (S1)'s `v_ret(v, x)` at the domain level.
type SemRet = Rc<dyn Fn(&SemVal, &SemVal) -> SelComp>;

/// A semantic environment `ρ ∈ S[Γ]`.
pub type SemEnv = Rc<HashMap<String, SemVal>>;

/// Shared context for the denotation functions.
pub struct Denoter {
    sig: Signature,
}

/// An error raised when denoting an ill-formed expression. On well-typed
/// input (which the theory assumes) these are unreachable; we surface them
/// as panics with clear messages, matching the interpreter's conventions.
fn stuck_sem(msg: &str) -> ! {
    panic!("denotation of ill-typed expression: {msg}")
}

fn env_with(env: &SemEnv, var: &str, v: SemVal) -> SemEnv {
    let mut m = (**env).clone();
    m.insert(var.to_owned(), v);
    Rc::new(m)
}

/// The empty environment.
pub fn empty_env() -> SemEnv {
    Rc::new(HashMap::new())
}

impl Denoter {
    /// A denoter over the given signature.
    pub fn new(sig: Signature) -> Rc<Denoter> {
        Rc::new(Denoter { sig })
    }

    /// The value semantics `V[v] : S[Γ] → S[σ]` (Fig 10).
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a value or mentions an unbound variable.
    pub fn sem_value(self: &Rc<Self>, env: &SemEnv, v: &Expr) -> SemVal {
        match v {
            Expr::Var(x) => {
                env.get(x).cloned().unwrap_or_else(|| stuck_sem(&format!("unbound variable `{x}`")))
            }
            Expr::Const(Const::Loss(l)) => SemVal::Loss(l.clone()),
            Expr::Const(Const::Char(c)) => SemVal::Char(*c),
            Expr::Const(Const::Str(s)) => SemVal::Str(s.clone()),
            Expr::Zero => SemVal::Nat(0),
            Expr::Succ(e) => match self.sem_value(env, e) {
                SemVal::Nat(n) => SemVal::Nat(n + 1),
                other => stuck_sem(&format!("succ of {other:?}")),
            },
            Expr::Tuple(es) => SemVal::Tuple(es.iter().map(|e| self.sem_value(env, e)).collect()),
            Expr::Inl { e, .. } => SemVal::Sum(false, Rc::new(self.sem_value(env, e))),
            Expr::Inr { e, .. } => SemVal::Sum(true, Rc::new(self.sem_value(env, e))),
            Expr::Nil(_) => SemVal::List(Vec::new()),
            Expr::Cons(h, t) => {
                let hv = self.sem_value(env, h);
                match self.sem_value(env, t) {
                    SemVal::List(mut vs) => {
                        vs.insert(0, hv);
                        SemVal::List(vs)
                    }
                    other => stuck_sem(&format!("cons onto {other:?}")),
                }
            }
            Expr::Lam { eff, var, body, .. } => {
                let cx = Rc::clone(self);
                let env = Rc::clone(env);
                let var = var.clone();
                let body = Rc::clone(body);
                let eff = eff.clone();
                SemVal::Fun(Rc::new(move |a: &SemVal| {
                    cx.sem(&env_with(&env, &var, a.clone()), &body, &eff)
                }))
            }
            other => stuck_sem(&format!("not a value: {other}")),
        }
    }

    /// The loss-function semantics `L[λε x:σ. e] : S[Γ] → S[σ] → R_ε`
    /// (§5.3): run the body under the zero loss function and keep the
    /// resulting loss *value*.
    ///
    /// # Panics
    ///
    /// Panics if `lam` is not a lambda.
    pub fn sem_lossfn(self: &Rc<Self>, env: &SemEnv, lam: &Expr) -> Gamma {
        let Expr::Lam { eff, var, body, .. } = lam else {
            stuck_sem(&format!("loss continuation is not a lambda: {lam}"))
        };
        let cx = Rc::clone(self);
        let env = Rc::clone(env);
        let var = var.clone();
        let body = Rc::clone(body);
        let eff = eff.clone();
        Rc::new(move |a: &SemVal| -> RTree {
            let w = cx.sem(&env_with(&env, &var, a.clone()), &body, &eff)(&zero_gamma());
            w.map(Rc::new(|(_r1, r2): &(LossVal, SemVal)| match r2 {
                SemVal::Loss(l) => l.clone(),
                other => stuck_sem(&format!("loss continuation body returned {other:?}")),
            }))
        })
    }

    /// The expression semantics `S[e] : S[Γ] → S_ε(S[σ])` (Fig 9).
    ///
    /// # Panics
    ///
    /// Panics on ill-typed input.
    pub fn sem(self: &Rc<Self>, env: &SemEnv, e: &Expr, eff: &Effect) -> SelComp {
        match e {
            // Values denote via the unit (Lemma 5.1/B.2).
            v if v.is_value() => s_unit(self.sem_value(env, v)),

            Expr::Prim(name, arg) => {
                let def = prim_lookup(name)
                    .unwrap_or_else(|| stuck_sem(&format!("unknown primitive `{name}`")));
                let ret_ty = def.ret_ty.clone();
                let m = self.sem(env, arg, eff);
                s_bind(
                    m,
                    Rc::new(move |a: &SemVal| {
                        let g =
                            a.to_ground().unwrap_or_else(|| stuck_sem("non-ground prim argument"));
                        let out = (def.eval)(&g)
                            .unwrap_or_else(|e| stuck_sem(&format!("prim failed: {e}")));
                        let _ = &ret_ty;
                        s_unit(SemVal::from_ground(&out))
                    }),
                )
            }

            Expr::App(e1, e2) => {
                let m1 = self.sem(env, e1, eff);
                let m2 = self.sem(env, e2, eff);
                s_bind(
                    m1,
                    Rc::new(move |f: &SemVal| {
                        let SemVal::Fun(f) = f.clone() else {
                            stuck_sem("application of a non-function")
                        };
                        let m2 = Rc::clone(&m2);
                        s_bind(m2, Rc::new(move |a: &SemVal| f(a)))
                    }),
                )
            }

            Expr::Tuple(es) => {
                // non-value tuple: sequence component computations
                fn go(
                    cx: Rc<Denoter>,
                    env: SemEnv,
                    es: Rc<Vec<Rc<Expr>>>,
                    eff: Effect,
                    i: usize,
                    acc: Vec<SemVal>,
                ) -> SelComp {
                    if i == es.len() {
                        return s_unit(SemVal::Tuple(acc));
                    }
                    let m = cx.sem(&env, &es[i], &eff);
                    s_bind(
                        m,
                        Rc::new(move |a: &SemVal| {
                            let mut acc = acc.clone();
                            acc.push(a.clone());
                            go(
                                Rc::clone(&cx),
                                Rc::clone(&env),
                                Rc::clone(&es),
                                eff.clone(),
                                i + 1,
                                acc,
                            )
                        }),
                    )
                }
                go(Rc::clone(self), Rc::clone(env), Rc::new(es.clone()), eff.clone(), 0, Vec::new())
            }

            Expr::Proj(e1, i) => {
                let i = *i;
                s_bind(
                    self.sem(env, e1, eff),
                    Rc::new(move |v: &SemVal| match v {
                        SemVal::Tuple(vs) => s_unit(vs[i].clone()),
                        other => stuck_sem(&format!("projection from {other:?}")),
                    }),
                )
            }

            Expr::Inl { e, .. } => s_bind(
                self.sem(env, e, eff),
                Rc::new(|v: &SemVal| s_unit(SemVal::Sum(false, Rc::new(v.clone())))),
            ),
            Expr::Inr { e, .. } => s_bind(
                self.sem(env, e, eff),
                Rc::new(|v: &SemVal| s_unit(SemVal::Sum(true, Rc::new(v.clone())))),
            ),

            Expr::Cases { scrut, lvar, lbody, rvar, rbody, .. } => {
                let cx = Rc::clone(self);
                let env2 = Rc::clone(env);
                let (lvar, rvar) = (lvar.clone(), rvar.clone());
                let (lbody, rbody) = (Rc::clone(lbody), Rc::clone(rbody));
                let eff2 = eff.clone();
                s_bind(
                    self.sem(env, scrut, eff),
                    Rc::new(move |v: &SemVal| match v {
                        SemVal::Sum(false, p) => {
                            cx.sem(&env_with(&env2, &lvar, (**p).clone()), &lbody, &eff2)
                        }
                        SemVal::Sum(true, p) => {
                            cx.sem(&env_with(&env2, &rvar, (**p).clone()), &rbody, &eff2)
                        }
                        other => stuck_sem(&format!("cases on {other:?}")),
                    }),
                )
            }

            Expr::Succ(e1) => s_bind(
                self.sem(env, e1, eff),
                Rc::new(|v: &SemVal| match v {
                    SemVal::Nat(n) => s_unit(SemVal::Nat(n + 1)),
                    other => stuck_sem(&format!("succ of {other:?}")),
                }),
            ),

            Expr::Iter(e1, e2, e3) => {
                let m1 = self.sem(env, e1, eff);
                let m2 = self.sem(env, e2, eff);
                let m3 = self.sem(env, e3, eff);
                s_bind(
                    m1,
                    Rc::new(move |n: &SemVal| {
                        let SemVal::Nat(n) = n else { stuck_sem("iter on non-nat") };
                        let n = *n;
                        let m3 = Rc::clone(&m3);
                        s_bind(
                            Rc::clone(&m2),
                            Rc::new(move |seed: &SemVal| {
                                let m3 = Rc::clone(&m3);
                                let seed = seed.clone();
                                s_bind(
                                    Rc::clone(&m3),
                                    Rc::new(move |f: &SemVal| {
                                        let SemVal::Fun(f) = f.clone() else {
                                            stuck_sem("iter body not a function")
                                        };
                                        // iterate: f†ⁿ(η(seed))
                                        fn go(
                                            f: Rc<dyn Fn(&SemVal) -> SelComp>,
                                            seed: SemVal,
                                            n: u64,
                                        ) -> SelComp {
                                            if n == 0 {
                                                return s_unit(seed);
                                            }
                                            let prev = go(Rc::clone(&f), seed, n - 1);
                                            let f2 = Rc::clone(&f);
                                            s_bind(prev, Rc::new(move |acc: &SemVal| f2(acc)))
                                        }
                                        go(f, seed.clone(), n)
                                    }),
                                )
                            }),
                        )
                    }),
                )
            }

            Expr::Cons(h, t) => {
                let mh = self.sem(env, h, eff);
                let mt = self.sem(env, t, eff);
                s_bind(
                    mh,
                    Rc::new(move |hv: &SemVal| {
                        let hv = hv.clone();
                        s_bind(
                            Rc::clone(&mt),
                            Rc::new(move |tv: &SemVal| match tv {
                                SemVal::List(vs) => {
                                    let mut vs = vs.clone();
                                    vs.insert(0, hv.clone());
                                    s_unit(SemVal::List(vs))
                                }
                                other => stuck_sem(&format!("cons onto {other:?}")),
                            }),
                        )
                    }),
                )
            }

            Expr::Fold(e1, e2, e3) => {
                let m1 = self.sem(env, e1, eff);
                let m2 = self.sem(env, e2, eff);
                let m3 = self.sem(env, e3, eff);
                s_bind(
                    m1,
                    Rc::new(move |l: &SemVal| {
                        let SemVal::List(items) = l.clone() else {
                            stuck_sem("fold over non-list")
                        };
                        let m3 = Rc::clone(&m3);
                        s_bind(
                            Rc::clone(&m2),
                            Rc::new(move |seed: &SemVal| {
                                let m3 = Rc::clone(&m3);
                                let items = items.clone();
                                let seed = seed.clone();
                                s_bind(
                                    Rc::clone(&m3),
                                    Rc::new(move |f: &SemVal| {
                                        let SemVal::Fun(f) = f.clone() else {
                                            stuck_sem("fold body not a function")
                                        };
                                        fn go(
                                            f: Rc<dyn Fn(&SemVal) -> SelComp>,
                                            items: Rc<Vec<SemVal>>,
                                            seed: SemVal,
                                            i: usize,
                                        ) -> SelComp {
                                            if i == items.len() {
                                                return s_unit(seed);
                                            }
                                            let rest =
                                                go(Rc::clone(&f), Rc::clone(&items), seed, i + 1);
                                            let f2 = Rc::clone(&f);
                                            let item = items[i].clone();
                                            s_bind(
                                                rest,
                                                Rc::new(move |acc: &SemVal| {
                                                    f2(&SemVal::Tuple(vec![
                                                        item.clone(),
                                                        acc.clone(),
                                                    ]))
                                                }),
                                            )
                                        }
                                        go(f, Rc::new(items.clone()), seed.clone(), 0)
                                    }),
                                )
                            }),
                        )
                    }),
                )
            }

            Expr::OpCall { op, arg } => {
                let label = self
                    .sig
                    .label_of(op)
                    .unwrap_or_else(|| stuck_sem(&format!("unknown operation `{op}`")))
                    .to_owned();
                let depth = eff.multiplicity(&label);
                let op = op.clone();
                s_bind(
                    self.sem(env, arg, eff),
                    Rc::new(move |a: &SemVal| {
                        s_op(
                            label.clone(),
                            op.clone(),
                            depth,
                            a.clone(),
                            Rc::new(|y: &SemVal| s_unit(y.clone())),
                        )
                    }),
                )
            }

            Expr::Loss(e1) => {
                // S[loss(e)](γ) = let_F (r, a) = S[e](γ) in (a + r, ())
                let m = self.sem(env, e1, eff);
                Rc::new(move |gamma: &Gamma| {
                    m(gamma).bind(Rc::new(|(r, a): &(LossVal, SemVal)| {
                        let SemVal::Loss(l) = a else { stuck_sem("loss of a non-loss") };
                        FTree::Leaf((l.add(r), SemVal::unit()))
                    }))
                })
            }

            Expr::Handle { handler, from, body } => {
                let body_eff = eff.plus(handler.label.clone());
                let g_body = self.sem(env, body, &body_eff);
                let cx = Rc::clone(self);
                let env2 = Rc::clone(env);
                let h = Rc::clone(handler);
                let eff2 = eff.clone();
                s_bind(
                    self.sem(env, from, eff),
                    Rc::new(move |p: &SemVal| {
                        cx.sem_handler(&env2, &h, &eff2, p.clone(), Rc::clone(&g_body))
                    }),
                )
            }

            Expr::Then { e, lam } => {
                // S[e1 ◮ λx.e2](γ) =
                //   let_F (r1, a) = S[e1](L[λx.e2]) in
                //   let_F (r2, r3) = S[e2][a/x](λr.0) in (r2, r1 + r3)
                let Expr::Lam { eff: leff, var, body, .. } = lam.as_ref() else {
                    stuck_sem("then-continuation is not a lambda")
                };
                let m1 = self.sem(env, e, eff);
                let lf = self.sem_lossfn(env, lam);
                let cx = Rc::clone(self);
                let env2 = Rc::clone(env);
                let var = var.clone();
                let body = Rc::clone(body);
                let leff = leff.clone();
                Rc::new(move |_gamma: &Gamma| {
                    let cx = Rc::clone(&cx);
                    let env2 = Rc::clone(&env2);
                    let var = var.clone();
                    let body = Rc::clone(&body);
                    let leff = leff.clone();
                    m1(&lf).bind(Rc::new(move |(r1, a): &(LossVal, SemVal)| {
                        let r1 = r1.clone();
                        let inner =
                            cx.sem(&env_with(&env2, &var, a.clone()), &body, &leff)(&zero_gamma());
                        inner.bind(Rc::new(move |(r2, r3): &(LossVal, SemVal)| {
                            let SemVal::Loss(l3) = r3 else {
                                stuck_sem("then body returned a non-loss")
                            };
                            FTree::Leaf((r2.clone(), SemVal::Loss(r1.add(l3))))
                        }))
                    }))
                })
            }

            Expr::Local { eff: eff1, g, e } => {
                // S[⟨e⟩_g](γ) = S[e](L[g])
                let lf = self.sem_lossfn(env, g);
                let m = self.sem(env, e, eff1);
                Rc::new(move |_gamma: &Gamma| m(&lf))
            }

            Expr::Reset(e1) => {
                // S[reset e](γ) = let_F (r, a) = S[e](γ) in η_W(a)
                let m = self.sem(env, e1, eff);
                Rc::new(move |gamma: &Gamma| {
                    m(gamma).bind(Rc::new(|(_r, a): &(LossVal, SemVal)| {
                        FTree::Leaf((LossVal::zero(), a.clone()))
                    }))
                })
            }

            other => stuck_sem(&format!("no semantic clause for {other}")),
        }
    }

    /// The handler semantics (§5.3 / B.3):
    ///
    /// `S[h](ρ)(p, G)(γ) = s†_{F_εℓ}(G(λa. R_ε(S[e_ret](ρ[(p,a)/z]) | γ)))(p)`
    ///
    /// where the target ε-algebra on `S[par] → W_ε(S[σ'])` interprets
    /// handled nodes with the operation clauses (handing them the choice
    /// continuation `l(p,a) = λγ1. δ(γ†(k a p))` and delimited continuation
    /// `k(p,a) = λγ1. k a p`), forwards other nodes, and maps leaves
    /// through the return clause (`s(r, a) = λp. r · S[e_ret] γ`).
    pub fn sem_handler(
        self: &Rc<Self>,
        env: &SemEnv,
        h: &Rc<Handler>,
        eff: &Effect,
        p0: SemVal,
        g_body: SelComp,
    ) -> SelComp {
        let cx = Rc::clone(self);
        let env = Rc::clone(env);
        let h = Rc::clone(h);
        let eff = eff.clone();
        Rc::new(move |gamma: &Gamma| {
            let handled_depth = eff.multiplicity(&h.label) + 1;

            // ret(p, a) as a SelComp
            let sem_ret: SemRet = {
                let cx = Rc::clone(&cx);
                let env = Rc::clone(&env);
                let h = Rc::clone(&h);
                let eff = eff.clone();
                Rc::new(move |p: &SemVal, a: &SemVal| -> SelComp {
                    let env1 = env_with(&env, &h.ret.p, p.clone());
                    let env2 = env_with(&env1, &h.ret.x, a.clone());
                    cx.sem(&env2, &h.ret.body, &eff)
                })
            };

            // γ' = λa. R_ε(S[e_ret](ρ[(p0, a)/z]) | γ)   (B.3 uses the
            // initial parameter here; see DESIGN.md on the parameterized-
            // handler nuance.)
            let gamma_inner: Gamma = {
                let sem_ret = Rc::clone(&sem_ret);
                let p0 = p0.clone();
                let gamma = Rc::clone(gamma);
                Rc::new(move |a: &SemVal| r_loss(&sem_ret(&p0, a), &gamma))
            };

            // The fold s† over the W_εℓ tree, producing S[par] → W_ε(S[σ']).
            #[allow(clippy::too_many_arguments)] // the fold threads the full
                                                 // handler context (rule-by-rule faithful to §5.3); bundling it
                                                 // into a struct would only rename the problem.
            fn fold(
                cx: &Rc<Denoter>,
                env: &SemEnv,
                h: &Rc<Handler>,
                eff: &Effect,
                gamma: &Gamma,
                sem_ret: &SemRet,
                handled_depth: u32,
                tree: &WTree,
                p: &SemVal,
            ) -> WTree {
                match tree {
                    FTree::Leaf((r, a)) => {
                        // s(r, a)(p) = r · (S[e_ret] γ)
                        w_act(r, &sem_ret(p, a)(gamma))
                    }
                    FTree::Node { label, op, depth, arg, k } => {
                        if *label == h.label && *depth == handled_depth {
                            let clause = h.clause(op).unwrap_or_else(|| {
                                stuck_sem(&format!("handler lacks clause for `{op}`"))
                            });
                            // k̂(p', a) = λγ1. fold(k a)(p')
                            let k_fun = {
                                let (cx, env, h, eff, gamma, sem_ret) = (
                                    Rc::clone(cx),
                                    Rc::clone(env),
                                    Rc::clone(h),
                                    eff.clone(),
                                    Rc::clone(gamma),
                                    Rc::clone(sem_ret),
                                );
                                let k = Rc::clone(k);
                                SemVal::Fun(Rc::new(move |z: &SemVal| -> SelComp {
                                    let SemVal::Tuple(pa) = z else {
                                        stuck_sem("continuation applied to a non-pair")
                                    };
                                    let (p2, a) = (pa[0].clone(), pa[1].clone());
                                    let child = k(&a);
                                    let (cx, env, h, eff, gamma, sem_ret) = (
                                        Rc::clone(&cx),
                                        Rc::clone(&env),
                                        Rc::clone(&h),
                                        eff.clone(),
                                        Rc::clone(&gamma),
                                        Rc::clone(&sem_ret),
                                    );
                                    Rc::new(move |_g1: &Gamma| {
                                        fold(
                                            &cx,
                                            &env,
                                            &h,
                                            &eff,
                                            &gamma,
                                            &sem_ret,
                                            handled_depth,
                                            &child,
                                            &p2,
                                        )
                                    })
                                }))
                            };
                            // l̂(p', a) = λγ1. δ(γ†(fold(k a)(p')))
                            let l_fun = {
                                let (cx, env, h, eff, gamma, sem_ret) = (
                                    Rc::clone(cx),
                                    Rc::clone(env),
                                    Rc::clone(h),
                                    eff.clone(),
                                    Rc::clone(gamma),
                                    Rc::clone(sem_ret),
                                );
                                let k = Rc::clone(k);
                                SemVal::Fun(Rc::new(move |z: &SemVal| -> SelComp {
                                    let SemVal::Tuple(pa) = z else {
                                        stuck_sem("choice continuation applied to a non-pair")
                                    };
                                    let (p2, a) = (pa[0].clone(), pa[1].clone());
                                    let child = k(&a);
                                    let (cx, env, h, eff, gamma, sem_ret) = (
                                        Rc::clone(&cx),
                                        Rc::clone(&env),
                                        Rc::clone(&h),
                                        eff.clone(),
                                        Rc::clone(&gamma),
                                        Rc::clone(&sem_ret),
                                    );
                                    Rc::new(move |_g1: &Gamma| {
                                        let resumed = fold(
                                            &cx,
                                            &env,
                                            &h,
                                            &eff,
                                            &gamma,
                                            &sem_ret,
                                            handled_depth,
                                            &child,
                                            &p2,
                                        );
                                        // δ(γ†(resumed)): probe loss as a value
                                        crate::monads::gamma_extend(&resumed, &gamma).map(Rc::new(
                                            |l: &LossVal| {
                                                (LossVal::zero(), SemVal::Loss(l.clone()))
                                            },
                                        ))
                                    })
                                }))
                            };
                            // clause body with (p, x, l, k) bound
                            let env1 = env_with(env, &clause.p, p.clone());
                            let env2 = env_with(&env1, &clause.x, arg.clone());
                            let env3 = env_with(&env2, &clause.l, l_fun);
                            let env4 = env_with(&env3, &clause.k, k_fun);
                            cx.sem(&env4, &clause.body, eff)(gamma)
                        } else {
                            // forward: ψ(o, k)(p) = node(o, λa. (fold k a)(p))
                            let (cx, env, h, eff, gamma, sem_ret) = (
                                Rc::clone(cx),
                                Rc::clone(env),
                                Rc::clone(h),
                                eff.clone(),
                                Rc::clone(gamma),
                                Rc::clone(sem_ret),
                            );
                            let k = Rc::clone(k);
                            let p = p.clone();
                            FTree::Node {
                                label: label.clone(),
                                op: op.clone(),
                                depth: *depth,
                                arg: arg.clone(),
                                k: Rc::new(move |a: &SemVal| {
                                    fold(
                                        &cx,
                                        &env,
                                        &h,
                                        &eff,
                                        &gamma,
                                        &sem_ret,
                                        handled_depth,
                                        &k(a),
                                        &p,
                                    )
                                }),
                            }
                        }
                    }
                }
            }

            let tree = g_body(&gamma_inner);
            fold(&cx, &env, &h, &eff, gamma, &sem_ret, handled_depth, &tree, &p0)
        })
    }
}
