//! Semantic domains (§5.1–5.2).
//!
//! * [`FTree`] — the free-algebra monad `F_ε`: effect-value /
//!   interaction trees whose internal nodes carry an effect label, an
//!   operation, a handler-depth index, and an operation argument, with one
//!   child per operation result.
//! * [`SemVal`] — the semantics of values: `S[b] = [b]`, products, sums,
//!   naturals, lists, and `S[σ→τ!ε] = S[σ] → S_ε(S[τ])` as Rust closures.
//! * [`SelComp`] — an element of the augmented selection monad
//!   `S_ε(X) = (X → R_ε) → W_ε(X)` with `W_ε(X) = F_ε(R × X)`,
//!   `R_ε = F_ε(R)`.
//!
//! The circularity the paper notes (the `F_ε` are defined from the `S_ε`
//! and vice versa, justified by well-foundedness) is harmless here: Rust
//! closures tie the knot.

use lambda_c::loss::LossVal;
use lambda_c::prim::Ground;
use std::fmt;
use std::rc::Rc;

/// The branching continuation of an [`FTree`] node: one subtree per
/// operation result.
pub type FTreeCont<T> = Rc<dyn Fn(&SemVal) -> FTree<T>>;

/// A Kleisli arrow `T → F_ε(U)` on leaves, as passed to [`FTree::bind`].
pub type FTreeBind<T, U> = Rc<dyn Fn(&T) -> FTree<U>>;

/// A semantic function `S[σ] → S_ε(S[τ])` (the denotation of an arrow
/// type, and the payload of [`SemVal::Fun`]).
pub type SemFn = Rc<dyn Fn(&SemVal) -> SelComp>;

/// An interaction tree in `F_ε(T)`: a leaf, or an operation node.
pub enum FTree<T> {
    /// A finished computation.
    Leaf(T),
    /// An unresolved operation `((ℓ, op, i), (arg, k))`.
    Node {
        /// Effect label `ℓ`.
        label: String,
        /// Operation name.
        op: String,
        /// Handler-depth index `0 < i ⩽ ε(ℓ)`.
        depth: u32,
        /// The operation argument (an element of `S[out]`).
        arg: SemVal,
        /// One subtree per operation result (element of `S[in]`).
        k: FTreeCont<T>,
    },
}

impl<T: Clone> Clone for FTree<T> {
    fn clone(&self) -> Self {
        match self {
            FTree::Leaf(t) => FTree::Leaf(t.clone()),
            FTree::Node { label, op, depth, arg, k } => FTree::Node {
                label: label.clone(),
                op: op.clone(),
                depth: *depth,
                arg: arg.clone(),
                k: Rc::clone(k),
            },
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for FTree<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FTree::Leaf(t) => write!(f, "Leaf({t:?})"),
            FTree::Node { label, op, depth, arg, .. } => {
                write!(f, "Node({label}::{op}@{depth}, {arg:?}, <k>)")
            }
        }
    }
}

impl<T: Clone + 'static> FTree<T> {
    /// The unit `η_{F_ε}`.
    pub fn leaf(t: T) -> FTree<T> {
        FTree::Leaf(t)
    }

    /// The free-monad bind (homomorphic extension on leaves).
    pub fn bind<U: Clone + 'static>(&self, f: FTreeBind<T, U>) -> FTree<U> {
        match self {
            FTree::Leaf(t) => f(t),
            FTree::Node { label, op, depth, arg, k } => {
                let k = Rc::clone(k);
                FTree::Node {
                    label: label.clone(),
                    op: op.clone(),
                    depth: *depth,
                    arg: arg.clone(),
                    k: Rc::new(move |a| k(a).bind(Rc::clone(&f))),
                }
            }
        }
    }

    /// Functorial map.
    pub fn map<U: Clone + 'static>(&self, f: Rc<dyn Fn(&T) -> U>) -> FTree<U> {
        self.bind(Rc::new(move |t| FTree::Leaf(f(t))))
    }
}

/// The loss tree `R_ε = F_ε(R)`.
pub type RTree = FTree<LossVal>;

/// The writer tree `W_ε(X) = F_ε(R × X)` at `X = SemVal`.
pub type WTree = FTree<(LossVal, SemVal)>;

/// A semantic loss function `γ : X → R_ε`.
pub type Gamma = Rc<dyn Fn(&SemVal) -> RTree>;

/// An element of `S_ε(S[σ]) = (S[σ] → R_ε) → W_ε(S[σ])` — the meaning of a
/// computation.
pub type SelComp = Rc<dyn Fn(&Gamma) -> WTree>;

/// A semantic value.
pub enum SemVal {
    /// A loss.
    Loss(LossVal),
    /// A character.
    Char(char),
    /// A string.
    Str(String),
    /// A natural number.
    Nat(u64),
    /// A tuple.
    Tuple(Vec<SemVal>),
    /// A sum (`false` = left, `true` = right).
    Sum(bool, Rc<SemVal>),
    /// A list.
    List(Vec<SemVal>),
    /// A function `S[σ] → S_ε(S[τ])`.
    Fun(SemFn),
}

impl Clone for SemVal {
    fn clone(&self) -> Self {
        match self {
            SemVal::Loss(l) => SemVal::Loss(l.clone()),
            SemVal::Char(c) => SemVal::Char(*c),
            SemVal::Str(s) => SemVal::Str(s.clone()),
            SemVal::Nat(n) => SemVal::Nat(*n),
            SemVal::Tuple(vs) => SemVal::Tuple(vs.clone()),
            SemVal::Sum(b, v) => SemVal::Sum(*b, Rc::clone(v)),
            SemVal::List(vs) => SemVal::List(vs.clone()),
            SemVal::Fun(f) => SemVal::Fun(Rc::clone(f)),
        }
    }
}

impl fmt::Debug for SemVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SemVal::Loss(l) => write!(f, "Loss({l})"),
            SemVal::Char(c) => write!(f, "Char({c:?})"),
            SemVal::Str(s) => write!(f, "Str({s:?})"),
            SemVal::Nat(n) => write!(f, "Nat({n})"),
            SemVal::Tuple(vs) => f.debug_tuple("Tuple").field(vs).finish(),
            SemVal::Sum(b, v) => write!(f, "Sum({}, {v:?})", if *b { "inr" } else { "inl" }),
            SemVal::List(vs) => f.debug_tuple("List").field(vs).finish(),
            SemVal::Fun(_) => write!(f, "Fun(<closure>)"),
        }
    }
}

impl SemVal {
    /// The unit value.
    pub fn unit() -> SemVal {
        SemVal::Tuple(Vec::new())
    }

    /// A boolean (`inl ()` = true).
    pub fn bool(b: bool) -> SemVal {
        SemVal::Sum(!b, Rc::new(SemVal::unit()))
    }

    /// Converts a first-order semantic value to a [`Ground`] value.
    /// Returns `None` if a function occurs.
    pub fn to_ground(&self) -> Option<Ground> {
        match self {
            SemVal::Loss(l) => Some(Ground::Loss(l.clone())),
            SemVal::Char(c) => Some(Ground::Char(*c)),
            SemVal::Str(s) => Some(Ground::Str(s.clone())),
            SemVal::Nat(n) => Some(Ground::Nat(*n)),
            SemVal::Tuple(vs) => {
                Some(Ground::Tuple(vs.iter().map(SemVal::to_ground).collect::<Option<_>>()?))
            }
            SemVal::Sum(b, v) => Some(Ground::Sum(*b, Box::new(v.to_ground()?))),
            SemVal::List(vs) => {
                Some(Ground::List(vs.iter().map(SemVal::to_ground).collect::<Option<_>>()?))
            }
            SemVal::Fun(_) => None,
        }
    }

    /// Imports a [`Ground`] value.
    pub fn from_ground(g: &Ground) -> SemVal {
        match g {
            Ground::Loss(l) => SemVal::Loss(l.clone()),
            Ground::Char(c) => SemVal::Char(*c),
            Ground::Str(s) => SemVal::Str(s.clone()),
            Ground::Nat(n) => SemVal::Nat(*n),
            Ground::Tuple(gs) => SemVal::Tuple(gs.iter().map(SemVal::from_ground).collect()),
            Ground::Sum(b, g) => SemVal::Sum(*b, Rc::new(SemVal::from_ground(g))),
            Ground::List(gs) => SemVal::List(gs.iter().map(SemVal::from_ground).collect()),
        }
    }

    /// Approximate first-order equality (losses compared up to `eps`).
    /// Functions are never equal.
    pub fn approx_eq(&self, other: &SemVal, eps: f64) -> bool {
        match (self, other) {
            (SemVal::Loss(a), SemVal::Loss(b)) => a.approx_eq(b, eps),
            (SemVal::Char(a), SemVal::Char(b)) => a == b,
            (SemVal::Str(a), SemVal::Str(b)) => a == b,
            (SemVal::Nat(a), SemVal::Nat(b)) => a == b,
            (SemVal::Tuple(a), SemVal::Tuple(b)) | (SemVal::List(a), SemVal::List(b)) => {
                a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.approx_eq(y, eps))
            }
            (SemVal::Sum(ba, va), SemVal::Sum(bb, vb)) => ba == bb && va.approx_eq(vb, eps),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ground_roundtrip() {
        let g = Ground::Tuple(vec![
            Ground::bool(true),
            Ground::List(vec![Ground::Nat(1), Ground::Nat(2)]),
            Ground::Loss(LossVal::pair(1.0, 2.0)),
        ]);
        let v = SemVal::from_ground(&g);
        assert_eq!(v.to_ground().unwrap(), g);
    }

    #[test]
    fn functions_are_not_ground() {
        let f = SemVal::Fun(Rc::new(|_v| -> SelComp {
            Rc::new(|_g| FTree::Leaf((LossVal::zero(), SemVal::unit())))
        }));
        assert!(f.to_ground().is_none());
        assert!(SemVal::Tuple(vec![f]).to_ground().is_none());
    }

    #[test]
    fn tree_bind_grafts_at_leaves() {
        let t: FTree<u32> = FTree::Node {
            label: "amb".into(),
            op: "decide".into(),
            depth: 1,
            arg: SemVal::unit(),
            k: Rc::new(|v| match v {
                SemVal::Sum(false, _) => FTree::Leaf(1),
                _ => FTree::Leaf(2),
            }),
        };
        let t2 = t.map(Rc::new(|x: &u32| x * 10));
        match t2 {
            FTree::Node { k, .. } => {
                match k(&SemVal::bool(true)) {
                    FTree::Leaf(v) => assert_eq!(v, 10),
                    _ => panic!("expected leaf"),
                }
                match k(&SemVal::bool(false)) {
                    FTree::Leaf(v) => assert_eq!(v, 20),
                    _ => panic!("expected leaf"),
                }
            }
            FTree::Leaf(_) => panic!("expected node"),
        }
    }

    #[test]
    fn approx_eq_on_losses() {
        let a = SemVal::Loss(LossVal::scalar(1.0));
        let b = SemVal::Loss(LossVal::scalar(1.0 + 1e-12));
        assert!(a.approx_eq(&b, 1e-9));
        assert!(!a.approx_eq(&SemVal::Loss(LossVal::scalar(2.0)), 1e-9));
        assert!(!a.approx_eq(&SemVal::unit(), 1e-9));
    }

    #[test]
    fn bool_encoding() {
        match SemVal::bool(true) {
            SemVal::Sum(false, _) => {}
            other => panic!("true must be inl, got {other:?}"),
        }
    }
}
