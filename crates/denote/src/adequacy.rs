//! Empirical soundness/adequacy checking (Theorems 5.4, 5.5, 5.6).
//!
//! For a closed well-typed program `e : σ ! ε` the theorems say the
//! denotational meaning under `L[g]` coincides with big-step evaluation
//! under `g`:
//!
//! * value outcomes: `S[e] L[g] = (r, V[v])` iff `g ⊢ e ⇒r v`;
//! * stuck outcomes: the tree is an operation node matching `K[op(v)]`,
//!   and continues pointwise — the giant-step relation `⪯` of Thm 5.6.
//!
//! [`check_adequacy`] decides this up to a sampling of operation-result
//! values (first-order `in`-types are enumerated up to a cap) and a depth
//! bound on nested stuck continuations — exact for programs whose residual
//! effect is empty, which covers every fully-handled example.

use crate::domain::{FTree, SemVal, WTree};
use crate::monads::zero_gamma;
use crate::sem::{empty_env, Denoter};
use lambda_c::bigstep::eval;
use lambda_c::loss::LossVal;
use lambda_c::prim::value_to_ground;
use lambda_c::sig::Signature;
use lambda_c::smallstep::{plug_all, split_stuck};
use lambda_c::syntax::Expr;
use lambda_c::types::{BaseTy, Effect, Type};
use std::rc::Rc;

/// Tolerance for comparing losses across the two semantics.
pub const EPS: f64 = 1e-9;

/// A mismatch between the two semantics, with a human-readable trail.
#[derive(Clone, Debug)]
pub struct AdequacyError(pub String);

impl std::fmt::Display for AdequacyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "adequacy violation: {}", self.0)
    }
}

impl std::error::Error for AdequacyError {}

/// Enumerates sample closed values of a first-order type (capped).
/// Returns `None` for higher-order types.
pub fn sample_values(ty: &Type) -> Option<Vec<Expr>> {
    const CAP: usize = 6;
    let out = match ty {
        Type::Base(BaseTy::Loss) => {
            vec![Expr::lossc(0.0), Expr::lossc(1.0), Expr::lossc(-2.5)]
        }
        Type::Base(BaseTy::Char) => vec![
            Expr::Const(lambda_c::syntax::Const::Char('a')),
            Expr::Const(lambda_c::syntax::Const::Char('b')),
        ],
        Type::Base(BaseTy::Str) => vec![
            Expr::Const(lambda_c::syntax::Const::Str(String::new())),
            Expr::Const(lambda_c::syntax::Const::Str("ab".into())),
        ],
        Type::Nat => vec![Expr::nat(0), Expr::nat(1), Expr::nat(2)],
        Type::Tuple(ts) => {
            let mut combos: Vec<Vec<Expr>> = vec![Vec::new()];
            for t in ts {
                let samples = sample_values(t)?;
                let mut next = Vec::new();
                for c in &combos {
                    for s in &samples {
                        let mut c2 = c.clone();
                        c2.push(s.clone());
                        next.push(c2);
                        if next.len() >= CAP {
                            break;
                        }
                    }
                    if next.len() >= CAP {
                        break;
                    }
                }
                combos = next;
            }
            combos.into_iter().map(|c| Expr::Tuple(c.into_iter().map(Expr::rc).collect())).collect()
        }
        Type::Sum(a, b) => {
            let mut out = Vec::new();
            for s in sample_values(a)? {
                out.push(Expr::Inl { lty: (**a).clone(), rty: (**b).clone(), e: s.rc() });
            }
            for s in sample_values(b)? {
                out.push(Expr::Inr { lty: (**a).clone(), rty: (**b).clone(), e: s.rc() });
            }
            out
        }
        Type::List(t) => {
            let samples = sample_values(t)?;
            let mut out = vec![Expr::Nil((**t).clone())];
            if let Some(s) = samples.first() {
                out.push(Expr::Cons(s.clone().rc(), Expr::Nil((**t).clone()).rc()));
            }
            out
        }
        Type::Fun(..) => return None,
    };
    Some(out.into_iter().take(CAP).collect())
}

/// Checks adequacy of `e : ty ! eff` under the zero loss continuation,
/// following stuck continuations up to `depth` levels.
///
/// # Errors
///
/// Returns [`AdequacyError`] describing the first observed mismatch.
pub fn check_adequacy(
    sig: &Signature,
    e: &Expr,
    ty: &Type,
    eff: &Effect,
    depth: usize,
) -> Result<(), AdequacyError> {
    let den = Denoter::new(sig.clone());
    let comp = den.sem(&empty_env(), e, eff);
    let tree = comp(&zero_gamma());
    compare(sig, &den, e, ty, eff, &tree, LossVal::zero(), depth, "top")
}

#[allow(clippy::too_many_arguments)]
fn compare(
    sig: &Signature,
    den: &Rc<Denoter>,
    e: &Expr,
    ty: &Type,
    eff: &Effect,
    tree: &WTree,
    // Loss already emitted on the operational path leading here; the
    // denotational tree carries it via the `r ·` action of Thm 5.4/5.5.
    offset: LossVal,
    depth: usize,
    path: &str,
) -> Result<(), AdequacyError> {
    let g = Expr::zero_cont(ty.clone(), eff.clone()).rc();
    let out = eval(sig, &g, eff, e.clone(), 2_000_000)
        .map_err(|err| AdequacyError(format!("{path}: operational evaluation failed: {err}")))?;

    match (&out.stuck_on, tree) {
        (None, FTree::Leaf((r, v))) => {
            // value outcome: compare loss and first-order value
            let expected = offset.add(&out.loss);
            if !r.approx_eq(&expected, EPS) {
                return Err(AdequacyError(format!(
                    "{path}: loss mismatch: operational {expected} vs denotational {r}"
                )));
            }
            let op_v = den.sem_value(&empty_env(), &out.terminal);
            if op_v.to_ground().is_some() && !v.approx_eq(&op_v, EPS) {
                return Err(AdequacyError(format!(
                    "{path}: value mismatch: operational {op_v:?} vs denotational {v:?}"
                )));
            }
            Ok(())
        }
        (Some(op), FTree::Node { label, op: dop, arg, k, .. }) => {
            if op != dop {
                return Err(AdequacyError(format!(
                    "{path}: stuck on `{op}` but tree node is `{dop}`"
                )));
            }
            let Some(expected_label) = sig.label_of(op) else {
                return Err(AdequacyError(format!("{path}: unknown op `{op}`")));
            };
            if label != expected_label {
                return Err(AdequacyError(format!(
                    "{path}: node label `{label}` vs signature `{expected_label}`"
                )));
            }
            let stuck = split_stuck(&out.terminal).ok_or_else(|| {
                AdequacyError(format!("{path}: terminal not decomposable as stuck"))
            })?;
            // compare operation arguments (first-order by assumption)
            if let Some(garg) = value_to_ground(&stuck.arg) {
                let sem_arg = SemVal::from_ground(&garg);
                if !sem_arg.approx_eq(arg, EPS) {
                    return Err(AdequacyError(format!(
                        "{path}: op argument mismatch: operational {sem_arg:?} vs denotational {arg:?}"
                    )));
                }
            }
            // Thm 5.5(2): each denotational child equals
            // (prefix loss) · S[K[w]]; recurse with the offset increased.
            if depth == 0 {
                return Ok(());
            }
            let osig = sig
                .op_sig(op)
                .ok_or_else(|| AdequacyError(format!("{path}: no signature for `{op}`")))?;
            let Some(samples) = sample_values(&osig.ret) else {
                return Ok(()); // higher-order in-type: cannot sample
            };
            for w in samples {
                let resumed = plug_all(&stuck.path, w.clone());
                let child = k(&den.sem_value(&empty_env(), &w));
                compare(
                    sig,
                    den,
                    &resumed,
                    ty,
                    eff,
                    &child,
                    offset.add(&out.loss),
                    depth - 1,
                    &format!("{path}/{op}({w})"),
                )?;
            }
            Ok(())
        }
        (None, FTree::Node { op: dop, .. }) => {
            Err(AdequacyError(format!("{path}: operational value but denotational node `{dop}`")))
        }
        (Some(op), FTree::Leaf(_)) => {
            Err(AdequacyError(format!("{path}: operational stuck on `{op}` but denotational leaf")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_covers_bools() {
        let vs = sample_values(&Type::bool()).unwrap();
        assert_eq!(vs.len(), 2);
        assert_eq!(vs[0], Expr::tt());
        assert_eq!(vs[1], Expr::ff());
    }

    #[test]
    fn sampling_rejects_function_types() {
        let t = Type::fun(Type::unit(), Type::unit(), Effect::empty());
        assert!(sample_values(&t).is_none());
        assert!(sample_values(&Type::Tuple(vec![t])).is_none());
    }

    #[test]
    fn sampling_tuples_is_capped() {
        let t = Type::Tuple(vec![Type::Nat, Type::Nat, Type::Nat]);
        let vs = sample_values(&t).unwrap();
        assert!(vs.len() <= 6);
        assert!(!vs.is_empty());
    }
}
