//! Denotational semantics of λC via augmented selection monads (§5 of
//! *Handling the Selection Monad*), plus the empirical soundness/adequacy
//! harness that differentially tests it against the operational semantics
//! of the `lambda-c` crate.
//!
//! The semantic stack:
//!
//! * [`domain::FTree`] — interaction trees `F_ε` (free algebra monads);
//! * [`domain::SelComp`] — `S_ε(X) = (X → R_ε) → W_ε(X)` with
//!   `W_ε(X) = F_ε(R × X)` and `R_ε = F_ε(R)`;
//! * [`monads`] — units, actions, Kleisli extensions (eq. 6), the loss
//!   `R_ε(F|γ)`;
//! * [`sem::Denoter`] — `S[e]`, `V[v]`, `L[g]`, and the handler semantics
//!   of §5.3 (free-algebra fold with clause-interpreting ε-algebra);
//! * [`adequacy::check_adequacy`] — Theorems 5.4/5.5/5.6 as a runnable
//!   differential check.
//!
//! # Example
//!
//! ```
//! use lambda_c::examples;
//! use selc_denote::adequacy::check_adequacy;
//!
//! let ex = examples::pgm_with_argmin_handler();
//! check_adequacy(&ex.sig, &ex.expr, &ex.ty, &ex.eff, 3).unwrap();
//! ```

pub mod adequacy;
pub mod domain;
pub mod monads;
pub mod sem;

pub use adequacy::{check_adequacy, AdequacyError};
pub use domain::{FTree, FTreeBind, FTreeCont, Gamma, RTree, SelComp, SemFn, SemVal, WTree};
pub use sem::{empty_env, Denoter, SemEnv};
