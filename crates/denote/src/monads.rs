//! The monad/algebra operations of §5.2: the writer-tree monad `W_ε`, the
//! action of `R` on trees, the loss `R_ε(F|γ)`, and the Kleisli extension
//! of the augmented selection monad `S_ε` (equation 6).

use crate::domain::{FTree, Gamma, RTree, SelComp, SemVal, WTree};
use lambda_c::loss::LossVal;
use std::rc::Rc;

/// `η_{W_ε}(x) = (0, x)`.
pub fn w_unit(x: SemVal) -> WTree {
    FTree::Leaf((LossVal::zero(), x))
}

/// The additive action `r · u` on `W_ε` (adds `r` to every leaf's recorded
/// loss).
pub fn w_act(r: &LossVal, u: &WTree) -> WTree {
    let r = r.clone();
    u.map(Rc::new(move |(s, x): &(LossVal, SemVal)| (r.add(s), x.clone())))
}

/// The additive action `r · u` on `R_ε` (adds `r` to every leaf).
pub fn r_act(r: &LossVal, u: &RTree) -> RTree {
    let r = r.clone();
    u.map(Rc::new(move |s: &LossVal| r.add(s)))
}

/// Kleisli extension `f†_{W_ε}`: `f†(r, x) = r · f(x)` on leaves,
/// homomorphic on nodes.
pub fn w_bind(u: &WTree, f: Rc<dyn Fn(&SemVal) -> WTree>) -> WTree {
    u.bind(Rc::new(move |(r, x): &(LossVal, SemVal)| w_act(r, &f(x))))
}

/// `γ†_{W_ε}` specialised to loss functions: lifts `γ : X → R_ε` over a
/// writer tree, giving the loss `R_ε(F|γ) = γ†(F(γ))`'s inner step.
pub fn gamma_extend(u: &WTree, gamma: &Gamma) -> RTree {
    let gamma = Rc::clone(gamma);
    u.bind(Rc::new(move |(r, x): &(LossVal, SemVal)| r_act(r, &gamma(x))))
}

/// The loss `R_ε(F|γ) = γ†_{W_ε}(F(γ))` of a selection computation under a
/// loss function (§5.2).
pub fn r_loss(comp: &SelComp, gamma: &Gamma) -> RTree {
    gamma_extend(&comp(gamma), gamma)
}

/// `η_{S_ε}(x) = λγ. η_{W_ε}(x)`.
pub fn s_unit(x: SemVal) -> SelComp {
    Rc::new(move |_g| w_unit(x.clone()))
}

/// The Kleisli extension `f†_{S_ε}` of equation (6):
///
/// ```text
/// f†(F) = λγ. let_{W_ε} x = F(λx. R_ε(f x | γ)) in f x γ
/// ```
pub fn s_bind(m: SelComp, f: Rc<dyn Fn(&SemVal) -> SelComp>) -> SelComp {
    Rc::new(move |gamma: &Gamma| {
        let f1 = Rc::clone(&f);
        let g1 = Rc::clone(gamma);
        // the pulled-back loss function  λx. R_ε(f x | γ)
        let tilde: Gamma = Rc::new(move |x: &SemVal| r_loss(&f1(x), &g1));
        let f2 = Rc::clone(&f);
        let g2 = Rc::clone(gamma);
        w_bind(&m(&tilde), Rc::new(move |x: &SemVal| f2(x)(&g2)))
    })
}

/// The ε-algebra structure of `S_ε` (§5.2, last display): an operation
/// call as a selection computation,
/// `φ(o, f)(γ) = node(o, λa. f(a)(γ))`.
pub fn s_op(
    label: String,
    op: String,
    depth: u32,
    arg: SemVal,
    k: Rc<dyn Fn(&SemVal) -> SelComp>,
) -> SelComp {
    Rc::new(move |gamma: &Gamma| {
        let k = Rc::clone(&k);
        let g = Rc::clone(gamma);
        FTree::Node {
            label: label.clone(),
            op: op.clone(),
            depth,
            arg: arg.clone(),
            k: Rc::new(move |a: &SemVal| k(a)(&g)),
        }
    })
}

/// The zero loss function `λx. 0` (a leaf of zero loss).
pub fn zero_gamma() -> Gamma {
    Rc::new(|_x| FTree::Leaf(LossVal::zero()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf_w(r: f64, x: SemVal) -> WTree {
        FTree::Leaf((LossVal::scalar(r), x))
    }

    fn force_leaf(w: &WTree) -> (LossVal, SemVal) {
        match w {
            FTree::Leaf(p) => p.clone(),
            FTree::Node { .. } => panic!("expected leaf"),
        }
    }

    #[test]
    fn action_adds_losses() {
        let w = leaf_w(2.0, SemVal::Nat(1));
        let w2 = w_act(&LossVal::scalar(3.0), &w);
        assert_eq!(force_leaf(&w2).0, LossVal::scalar(5.0));
    }

    #[test]
    fn w_bind_accumulates() {
        let w = leaf_w(1.0, SemVal::Nat(1));
        let out = w_bind(
            &w,
            Rc::new(|x: &SemVal| match x {
                SemVal::Nat(n) => leaf_w(10.0, SemVal::Nat(n + 1)),
                _ => panic!(),
            }),
        );
        let (r, v) = force_leaf(&out);
        assert_eq!(r, LossVal::scalar(11.0));
        assert!(v.approx_eq(&SemVal::Nat(2), 0.0));
    }

    #[test]
    fn r_loss_adds_recorded_and_continuation_loss() {
        // computation recording loss 2 and returning 3 (a loss value)
        let m: SelComp = Rc::new(|_g| leaf_w(2.0, SemVal::Loss(LossVal::scalar(3.0))));
        // γ returns the value itself as loss
        let gamma: Gamma = Rc::new(|x| match x {
            SemVal::Loss(l) => FTree::Leaf(l.clone()),
            _ => panic!(),
        });
        match r_loss(&m, &gamma) {
            FTree::Leaf(l) => assert_eq!(l, LossVal::scalar(5.0)),
            _ => panic!("expected leaf"),
        }
    }

    #[test]
    fn s_bind_threads_pulled_back_loss() {
        // m selects a value and reports the loss its continuation assigns,
        // by recording it (observable in the writer position).
        let m: SelComp = Rc::new(|g: &Gamma| {
            let probe = match g(&SemVal::Nat(7)) {
                FTree::Leaf(l) => l,
                _ => panic!(),
            };
            FTree::Leaf((probe, SemVal::Nat(7)))
        });
        // f records loss 4·x
        let f: Rc<dyn Fn(&SemVal) -> SelComp> = Rc::new(|x: &SemVal| {
            let n = match x {
                SemVal::Nat(n) => *n,
                _ => panic!(),
            };
            Rc::new(move |_g: &Gamma| {
                FTree::Leaf((LossVal::scalar(4.0 * n as f64), SemVal::Nat(n)))
            })
        });
        let out = s_bind(m, f)(&zero_gamma());
        let (r, v) = force_leaf(&out);
        // m recorded the probed downstream loss 28, f recorded 28 again
        assert_eq!(r, LossVal::scalar(56.0));
        assert!(v.approx_eq(&SemVal::Nat(7), 0.0));
    }

    #[test]
    fn s_op_builds_a_node_and_passes_gamma() {
        let k: Rc<dyn Fn(&SemVal) -> SelComp> = Rc::new(|a: &SemVal| s_unit(a.clone()));
        let m = s_op("amb".into(), "decide".into(), 1, SemVal::unit(), k);
        match m(&zero_gamma()) {
            FTree::Node { label, op, depth, k, .. } => {
                assert_eq!((label.as_str(), op.as_str(), depth), ("amb", "decide", 1));
                let (r, v) = force_leaf(&k(&SemVal::bool(true)));
                assert!(r.is_zero());
                assert!(v.approx_eq(&SemVal::bool(true), 0.0));
            }
            FTree::Leaf(_) => panic!("expected node"),
        }
    }
}
