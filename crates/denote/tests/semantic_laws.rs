//! Semantic-level laws: Lemma 5.1 (values denote via the unit), the
//! monad laws of the augmented selection monad's Kleisli structure
//! (equation 6), and the algebra laws of the writer action — checked on
//! generated values and computations.

use lambda_c::loss::LossVal;
use lambda_c::testgen::{gen_signature, ProgramGen};
use lambda_c::types::Effect;
use proptest::prelude::*;
use selc_denote::domain::{FTree, SelComp, SemVal};
use selc_denote::monads::{r_act, r_loss, s_bind, s_unit, w_act, w_bind, zero_gamma};
use selc_denote::sem::{empty_env, Denoter};
use std::rc::Rc;

fn leaf_of(comp: &SelComp) -> (LossVal, SemVal) {
    match comp(&zero_gamma()) {
        FTree::Leaf(p) => p,
        FTree::Node { op, .. } => panic!("unexpected node {op}"),
    }
}

fn approx(a: &(LossVal, SemVal), b: &(LossVal, SemVal)) -> bool {
    a.0.approx_eq(&b.0, 1e-9) && a.1.approx_eq(&b.1, 1e-9)
}

/// A few deterministic sample computations built from units, writer
/// actions, and probes of the loss continuation.
fn sample_comps() -> Vec<SelComp> {
    let tell = |r: f64, v: SemVal| -> SelComp {
        Rc::new(move |_g| FTree::Leaf((LossVal::scalar(r), v.clone())))
    };
    let probe: SelComp = Rc::new(|g| {
        // record the downstream loss of Nat(1) and return it
        match g(&SemVal::Nat(1)) {
            FTree::Leaf(l) => FTree::Leaf((l, SemVal::Nat(1))),
            node => node.map(Rc::new(|l: &LossVal| (l.clone(), SemVal::Nat(1)))),
        }
    });
    vec![
        s_unit(SemVal::Nat(4)),
        tell(2.5, SemVal::bool(true)),
        tell(0.0, SemVal::Loss(LossVal::pair(1.0, -1.0))),
        probe,
    ]
}

fn sample_fns() -> Vec<selc_denote::SemFn> {
    vec![
        Rc::new(|v: &SemVal| s_unit(v.clone())),
        Rc::new(|v: &SemVal| {
            let v = v.clone();
            Rc::new(move |_g| FTree::Leaf((LossVal::scalar(1.0), v.clone())))
        }),
        Rc::new(|v: &SemVal| {
            // consult the continuation: loss of v, recorded
            let v = v.clone();
            Rc::new(move |g| match g(&v) {
                FTree::Leaf(l) => FTree::Leaf((l, v.clone())),
                node => {
                    let v = v.clone();
                    node.map(Rc::new(move |l: &LossVal| (l.clone(), v.clone())))
                }
            })
        }),
    ]
}

#[test]
fn s_monad_left_identity() {
    for f in sample_fns() {
        for v in [SemVal::Nat(0), SemVal::bool(false), SemVal::Loss(LossVal::scalar(3.0))] {
            let lhs = s_bind(s_unit(v.clone()), Rc::clone(&f));
            let rhs = f(&v);
            assert!(approx(&leaf_of(&lhs), &leaf_of(&rhs)));
        }
    }
}

#[test]
fn s_monad_right_identity() {
    for m in sample_comps() {
        let lhs = s_bind(Rc::clone(&m), Rc::new(|v: &SemVal| s_unit(v.clone())));
        assert!(approx(&leaf_of(&lhs), &leaf_of(&m)));
    }
}

#[test]
fn s_monad_associativity() {
    for m in sample_comps() {
        for f in sample_fns() {
            for g in sample_fns() {
                let f1 = Rc::clone(&f);
                let g1 = Rc::clone(&g);
                let lhs = s_bind(s_bind(Rc::clone(&m), f1), Rc::clone(&g));
                let f2 = Rc::clone(&f);
                let rhs =
                    s_bind(Rc::clone(&m), Rc::new(move |v: &SemVal| s_bind(f2(v), Rc::clone(&g1))));
                assert!(
                    approx(&leaf_of(&lhs), &leaf_of(&rhs)),
                    "associativity failed: {:?} vs {:?}",
                    leaf_of(&lhs),
                    leaf_of(&rhs)
                );
            }
        }
    }
}

#[test]
fn writer_action_laws() {
    let w = FTree::Leaf((LossVal::scalar(2.0), SemVal::Nat(1)));
    // 0 · w = w
    let z = w_act(&LossVal::zero(), &w);
    match (&z, &w) {
        (FTree::Leaf(a), FTree::Leaf(b)) => assert!(approx(a, b)),
        _ => panic!(),
    }
    // r · (s · w) = (r+s) · w
    let r = LossVal::scalar(1.5);
    let s = LossVal::pair(0.5, 3.0);
    let lhs = w_act(&r, &w_act(&s, &w));
    let rhs = w_act(&r.add(&s), &w);
    match (&lhs, &rhs) {
        (FTree::Leaf(a), FTree::Leaf(b)) => assert!(approx(a, b)),
        _ => panic!(),
    }
    // action on R-trees too
    let rt = FTree::Leaf(LossVal::scalar(4.0));
    match r_act(&r, &rt) {
        FTree::Leaf(l) => assert!(l.approx_eq(&LossVal::scalar(5.5), 1e-12)),
        _ => panic!(),
    }
}

#[test]
fn w_bind_is_homomorphic_over_action() {
    // f†(r · u) = r · f†(u)
    let u = FTree::Leaf((LossVal::scalar(1.0), SemVal::Nat(2)));
    let f: Rc<dyn Fn(&SemVal) -> selc_denote::WTree> =
        Rc::new(|v: &SemVal| FTree::Leaf((LossVal::scalar(10.0), v.clone())));
    let r = LossVal::scalar(5.0);
    let lhs = w_bind(&w_act(&r, &u), Rc::clone(&f));
    let rhs = w_act(&r, &w_bind(&u, f));
    match (lhs, rhs) {
        (FTree::Leaf(a), FTree::Leaf(b)) => assert!(approx(&a, &b)),
        _ => panic!(),
    }
}

#[test]
fn r_loss_of_unit_is_gamma() {
    // R(η(x) | γ) = γ(x)
    let gamma: selc_denote::Gamma = Rc::new(|v: &SemVal| match v {
        SemVal::Nat(n) => FTree::Leaf(LossVal::scalar(*n as f64 * 3.0)),
        _ => FTree::Leaf(LossVal::zero()),
    });
    match r_loss(&s_unit(SemVal::Nat(4)), &gamma) {
        FTree::Leaf(l) => assert!(l.approx_eq(&LossVal::scalar(12.0), 1e-12)),
        _ => panic!(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Lemma 5.1: for every generated closed *value* v,
    /// `S[v] = η_{S_ε}(V[v])` — both sides produce the same zero-loss leaf.
    #[test]
    fn values_denote_via_the_unit(seed in 0u64..1_000_000) {
        let sig = gen_signature();
        let mut pg = ProgramGen::new(seed);
        let p = pg.gen_program(2, false);
        // evaluate to a value first
        let out = lambda_c::eval_closed(&sig, p.expr.clone(), p.ty.clone(), p.eff.clone()).unwrap();
        prop_assume!(out.is_value());
        let den = Denoter::new(sig);
        let via_sem = den.sem(&empty_env(), &out.terminal, &Effect::empty());
        let via_unit = s_unit(den.sem_value(&empty_env(), &out.terminal));
        let a = leaf_of(&via_sem);
        let b = leaf_of(&via_unit);
        prop_assert!(a.0.is_zero());
        if a.1.to_ground().is_some() {
            prop_assert!(approx(&a, &b));
        }
    }
}
