//! The empirical Theorem 5.4/5.5/5.6 suite: the denotational semantics
//! agrees with big-step evaluation on every paper example and a battery of
//! targeted programs, including programs with residual (unhandled)
//! effects, where the comparison follows the giant-step relation of
//! Theorem 5.6.

use lambda_c::build::*;
use lambda_c::examples;
use lambda_c::sig::{OpSig, Signature};
use lambda_c::syntax::Expr;
use lambda_c::types::{BaseTy, Effect, Type};
use selc_denote::check_adequacy;

fn ok(sig: &Signature, e: &Expr, ty: &Type, eff: &Effect) {
    check_adequacy(sig, e, ty, eff, 4).unwrap_or_else(|err| panic!("{err}\nprogram: {e}"));
}

fn ok_example(ex: &examples::ExampleProgram) {
    ok(&ex.sig, &ex.expr, &ex.ty, &ex.eff);
}

#[test]
fn paper_example_pgm_argmin() {
    ok_example(&examples::pgm_with_argmin_handler());
}

#[test]
fn paper_example_decide_all() {
    ok_example(&examples::decide_all());
}

#[test]
fn paper_example_counter() {
    ok_example(&examples::counter());
}

#[test]
fn paper_example_minimax() {
    ok_example(&examples::minimax());
}

#[test]
fn paper_example_password() {
    ok_example(&examples::password());
}

#[test]
fn paper_example_tune_lr_non_resuming_handler() {
    // tuneLR never resumes its continuation and changes the answer type —
    // the denotational handler semantics must still agree.
    ok_example(&examples::tune_lr(1.0, 0.5));
    ok_example(&examples::tune_lr(0.5, 1.0));
    ok_example(&examples::tune_lr(0.2, 0.3));
}

#[test]
fn pure_arithmetic() {
    let sig = Signature::new();
    let e = add(mul(lc(2.0), lc(3.0)), lc(1.0));
    ok(&sig, &e, &Type::loss(), &Effect::empty());
}

#[test]
fn loss_recording() {
    let sig = Signature::new();
    let e = seq(Effect::empty(), Type::unit(), loss(lc(2.0)), loss(lc(3.5)));
    ok(&sig, &e, &Type::unit(), &Effect::empty());
}

#[test]
fn reset_scopes_losses() {
    let sig = Signature::new();
    let e = seq(Effect::empty(), Type::unit(), reset(loss(lc(9.0))), loss(lc(1.0)));
    ok(&sig, &e, &Type::unit(), &Effect::empty());
}

#[test]
fn local_keeps_losses() {
    let sig = Signature::new();
    let e = local0(Effect::empty(), Type::unit(), loss(lc(4.0)));
    ok(&sig, &e, &Type::unit(), &Effect::empty());
}

#[test]
fn then_construct() {
    let sig = Signature::new();
    // (loss(2); 7) ◮ λx. x
    let lhs = seq(Effect::empty(), Type::unit(), loss(lc(2.0)), lc(7.0));
    let e = then(lhs, Effect::empty(), "x", Type::loss(), v("x"));
    ok(&sig, &e, &Type::loss(), &Effect::empty());
}

#[test]
fn nested_then_and_local() {
    let sig = Signature::new();
    let inner = then(lc(1.0), Effect::empty(), "x", Type::loss(), add(v("x"), lc(1.0)));
    let e = local0(
        Effect::empty(),
        Type::loss(),
        seq(Effect::empty(), Type::unit(), loss(inner), lc(0.5)),
    );
    ok(&sig, &e, &Type::loss(), &Effect::empty());
}

#[test]
fn sums_nats_lists() {
    let sig = Signature::new();
    let e = Expr::Fold(
        Expr::list(Type::loss(), vec![lc(1.0), lc(2.0), lc(3.0)]).rc(),
        lc(0.0).rc(),
        lam(
            Effect::empty(),
            "z",
            Type::Tuple(vec![Type::loss(), Type::loss()]),
            prim2("add", proj(v("z"), 0), proj(v("z"), 1)),
        )
        .rc(),
    );
    ok(&sig, &e, &Type::loss(), &Effect::empty());

    let e2 = Expr::Iter(
        Expr::nat(4).rc(),
        lc(1.0).rc(),
        lam(Effect::empty(), "x", Type::loss(), mul(v("x"), lc(2.0))).rc(),
    );
    ok(&sig, &e2, &Type::loss(), &Effect::empty());
}

fn amb_sig() -> Signature {
    let mut sig = Signature::new();
    sig.declare("amb", vec![("decide".into(), OpSig { arg: Type::unit(), ret: Type::bool() })])
        .unwrap();
    sig
}

#[test]
fn residual_effect_stuck_program() {
    // An unhandled decide: the tree must be a node agreeing pointwise with
    // the operational continuation (giant-step adequacy).
    let sig = amb_sig();
    let e = let_(
        Effect::single("amb"),
        "b",
        Type::bool(),
        op("decide", unit()),
        seq(
            Effect::single("amb"),
            Type::unit(),
            loss(if_(v("b"), lc(1.0), lc(2.0))),
            if_(v("b"), ch('x'), ch('y')),
        ),
    );
    ok(&sig, &e, &Type::Base(BaseTy::Char), &Effect::single("amb"));
}

#[test]
fn residual_effect_with_prefix_loss() {
    // Loss emitted before the stuck op: Thm 5.4(2)'s r-action.
    let sig = amb_sig();
    let e = seq(Effect::single("amb"), Type::unit(), loss(lc(5.0)), op("decide", unit()));
    ok(&sig, &e, &Type::bool(), &Effect::single("amb"));
}

#[test]
fn two_residual_ops_in_sequence() {
    let sig = amb_sig();
    let eamb = Effect::single("amb");
    let e = let_(
        eamb.clone(),
        "a",
        Type::bool(),
        op("decide", unit()),
        let_(
            eamb.clone(),
            "b",
            Type::bool(),
            op("decide", unit()),
            if_(v("a"), v("b"), Expr::ff()),
        ),
    );
    ok(&sig, &e, &Type::bool(), &eamb);
}

#[test]
fn handler_with_unhandled_inner_effect() {
    // Handle amb, but leave a second effect unhandled: the handler must
    // forward its nodes.
    let mut sig = amb_sig();
    sig.declare("st", vec![("get".into(), OpSig { arg: Type::unit(), ret: Type::loss() })])
        .unwrap();
    let e_st = Effect::single("st");
    let e_both = Effect::from_labels(["amb", "st"]);

    let body = let_(
        e_both.clone(),
        "b",
        Type::bool(),
        op("decide", unit()),
        let_(
            e_both.clone(),
            "r",
            Type::loss(),
            op("get", unit()),
            seq(
                e_both.clone(),
                Type::unit(),
                loss(if_(v("b"), v("r"), lc(2.0))),
                if_(v("b"), lc(10.0), lc(20.0)),
            ),
        ),
    );
    let h = HandlerBuilder::new("amb", Type::loss(), Type::loss(), e_st.clone())
        .on(
            "decide",
            "p",
            "x",
            "l",
            "k",
            let_(
                e_st.clone(),
                "y",
                Type::loss(),
                app(v("l"), pair(v("p"), Expr::tt())),
                let_(
                    e_st.clone(),
                    "z",
                    Type::loss(),
                    app(v("l"), pair(v("p"), Expr::ff())),
                    if_(
                        leq(v("y"), v("z")),
                        app(v("k"), pair(v("p"), Expr::tt())),
                        app(v("k"), pair(v("p"), Expr::ff())),
                    ),
                ),
            ),
        )
        .build();
    let e = handle0(h, body);
    ok(&sig, &e, &Type::loss(), &e_st);
}

#[test]
fn parameterized_counter_with_probe() {
    // A parameterized handler whose clause probes the choice continuation;
    // covers the (S1)-current-parameter path on the operational side.
    let mut sig = Signature::new();
    sig.declare("cnt", vec![("tick".into(), OpSig { arg: Type::unit(), ret: Type::loss() })])
        .unwrap();
    let e0 = Effect::empty();
    let ecnt = Effect::single("cnt");

    let h = HandlerBuilder::new("cnt", Type::loss(), Type::loss(), e0.clone())
        .par_ty(Type::Nat)
        .on(
            "tick",
            "p",
            "x",
            "l",
            "k",
            let_(
                e0.clone(),
                "probe",
                Type::loss(),
                app(v("l"), pair(v("p"), lc(0.0))),
                seq(
                    e0.clone(),
                    Type::unit(),
                    loss(v("probe")),
                    app(v("k"), pair(Expr::Succ(v("p").rc()), prim1("nat_to_loss", v("p")))),
                ),
            ),
        )
        .build();

    let body = let_(
        ecnt.clone(),
        "a",
        Type::loss(),
        op("tick", unit()),
        seq(ecnt.clone(), Type::unit(), loss(v("a")), v("a")),
    );
    let e = handle(h, Expr::nat(0), body);
    ok(&sig, &e, &Type::loss(), &Effect::empty());
}

#[test]
fn nested_same_label_handlers() {
    // Two nested handlers for the same label: multiset multiplicity and
    // depth indices at work.
    let sig = amb_sig();
    let e0 = Effect::empty();
    let eamb = Effect::single("amb");
    let e2amb = Effect::from_labels(["amb", "amb"]);

    // inner program performs decide twice at effect {amb, amb}? No — one
    // decide handled by the inner handler, one left for the outer.
    let body = let_(
        e2amb.clone(),
        "a",
        Type::bool(),
        op("decide", unit()),
        seq(e2amb.clone(), Type::unit(), loss(if_(v("a"), lc(1.0), lc(3.0))), v("a")),
    );
    let const_true = |eff: Effect| {
        HandlerBuilder::new("amb", Type::bool(), Type::bool(), eff)
            .on("decide", "p", "x", "l", "k", app(v("k"), pair(v("p"), Expr::tt())))
            .build()
    };
    let inner = handle0(const_true(eamb.clone()), body);
    // outer handles a second decide performed *after* the inner handle
    let outer_body = let_(
        eamb.clone(),
        "r1",
        Type::bool(),
        inner,
        let_(
            eamb.clone(),
            "r2",
            Type::bool(),
            op("decide", unit()),
            if_(v("r1"), v("r2"), Expr::ff()),
        ),
    );
    let e = handle0(const_true(e0), outer_body);
    ok(&sig, &e, &Type::bool(), &Effect::empty());
}

#[test]
fn moo_is_outside_the_theorems_scope() {
    // Not an adequacy test: just confirm the well-foundedness check (the
    // hypothesis of Thms 3.5/5.5) rejects the divergent signature, so we
    // never ask the denotational semantics about it.
    let ex = examples::moo_divergent();
    assert!(ex.sig.check_well_founded().is_err());
}
