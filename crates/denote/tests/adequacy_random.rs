//! Randomised adequacy (Theorems 5.4–5.6): the denotational semantics
//! agrees with big-step evaluation on generated well-typed programs,
//! both fully handled and with a residual `amb` effect.

use lambda_c::testgen::{gen_signature, ProgramGen};
use proptest::prelude::*;
use selc_denote::check_adequacy;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn adequacy_on_fully_handled_programs(seed in 0u64..1_000_000) {
        let sig = gen_signature();
        let mut g = ProgramGen::new(seed);
        let p = g.gen_program(4, false);
        check_adequacy(&sig, &p.expr, &p.ty, &p.eff, 3)
            .map_err(|e| TestCaseError::fail(format!("{e}\nprogram: {}", p.expr)))?;
    }

    #[test]
    fn adequacy_on_residual_effect_programs(seed in 0u64..1_000_000) {
        let sig = gen_signature();
        let mut g = ProgramGen::new(seed);
        let p = g.gen_program(3, true);
        check_adequacy(&sig, &p.expr, &p.ty, &p.eff, 3)
            .map_err(|e| TestCaseError::fail(format!("{e}\nprogram: {}", p.expr)))?;
    }
}
