//! A minimal scalar abstraction so numeric code can run over `f64` or
//! dual numbers.

use std::ops::{Add, Div, Mul, Neg, Sub};

/// A differentiable scalar: the operations needed by the regression and
/// game losses of the paper's examples.
pub trait Scalar:
    Clone
    + std::fmt::Debug
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + PartialOrd
    + 'static
{
    /// Lift a constant.
    fn from_f64(x: f64) -> Self;
    /// The primal (value) part.
    fn value(&self) -> f64;
    /// Squaring helper (common in losses).
    fn sq(&self) -> Self {
        self.clone() * self.clone()
    }
}

impl Scalar for f64 {
    fn from_f64(x: f64) -> Self {
        x
    }
    fn value(&self) -> f64 {
        *self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quad<S: Scalar>(x: S) -> S {
        x.sq() + S::from_f64(1.0)
    }

    #[test]
    fn f64_is_a_scalar() {
        assert_eq!(quad(3.0_f64), 10.0);
        assert_eq!(3.0_f64.value(), 3.0);
        assert_eq!(<f64 as Scalar>::from_f64(2.5), 2.5);
    }
}
