//! Central finite differences over black-box functions.
//!
//! This is the engine the gradient-descent *handler* uses: the choice
//! continuation is an opaque effectful function from parameters to loss,
//! so `∂f/∂xᵢ ≈ (f(x + h·eᵢ) − f(x − h·eᵢ)) / 2h`. Each partial costs two
//! invocations of the continuation — the recomputation cost §6 of the
//! paper discusses.

/// Default step: `h = ε^(1/3) · max(1, |xᵢ|)` is the usual optimum for
/// central differences; we use the cube root of machine epsilon.
const DEFAULT_REL_STEP: f64 = 6.055454452393343e-6; // f64::EPSILON.cbrt()

/// Gradient of `f` at `at` by central differences with a per-coordinate
/// relative step.
pub fn finite_diff<F>(f: F, at: &[f64]) -> Vec<f64>
where
    F: FnMut(&[f64]) -> f64,
{
    finite_diff_with_step(f, at, DEFAULT_REL_STEP)
}

/// Gradient of `f` at `at` by central differences with relative step
/// `rel_step`.
///
/// # Panics
///
/// Panics if `rel_step` is not strictly positive.
pub fn finite_diff_with_step<F>(mut f: F, at: &[f64], rel_step: f64) -> Vec<f64>
where
    F: FnMut(&[f64]) -> f64,
{
    assert!(rel_step > 0.0, "step must be positive");
    let mut xs = at.to_vec();
    let mut out = Vec::with_capacity(at.len());
    for i in 0..at.len() {
        let h = rel_step * at[i].abs().max(1.0);
        let orig = xs[i];
        xs[i] = orig + h;
        let fp = f(&xs);
        xs[i] = orig - h;
        let fm = f(&xs);
        xs[i] = orig;
        out.push((fp - fm) / (2.0 * h));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gradient_of_quadratic() {
        // f = (x-3)² + (y+1)², ∇ = (2(x-3), 2(y+1))
        let f = |p: &[f64]| (p[0] - 3.0).powi(2) + (p[1] + 1.0).powi(2);
        let g = finite_diff(f, &[0.0, 0.0]);
        assert!((g[0] + 6.0).abs() < 1e-6, "{g:?}");
        assert!((g[1] - 2.0).abs() < 1e-6, "{g:?}");
    }

    #[test]
    fn counts_two_evals_per_coordinate() {
        let mut calls = 0;
        let _ = finite_diff(
            |p| {
                calls += 1;
                p.iter().sum()
            },
            &[1.0, 2.0, 3.0],
        );
        assert_eq!(calls, 6);
    }

    #[test]
    fn custom_step_still_accurate_on_linear() {
        let g = finite_diff_with_step(|p| 4.0 * p[0] - 2.0 * p[1], &[10.0, -10.0], 1e-3);
        assert!((g[0] - 4.0).abs() < 1e-9);
        assert!((g[1] + 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "step must be positive")]
    fn zero_step_panics() {
        let _ = finite_diff_with_step(|p| p[0], &[1.0], 0.0);
    }

    #[test]
    fn empty_input_gives_empty_gradient() {
        let g = finite_diff(|_| 42.0, &[]);
        assert!(g.is_empty());
    }
}
