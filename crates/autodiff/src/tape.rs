//! Reverse-mode automatic differentiation on an explicit tape.
//!
//! One forward pass builds the computation graph; one backward sweep
//! yields all partials. This is the engine a production ML stack would
//! use, and serves as the exact-gradient baseline for the SGD experiments
//! (E4) — the paper's `autodiff` is a black box, so we validate the
//! finite-difference substitute against this.

/// A node index on the tape.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Var(usize);

#[derive(Clone, Copy, Debug)]
struct Node {
    // Up to two parents with local partial derivatives.
    parents: [(usize, f64); 2],
    n_parents: u8,
}

/// A gradient tape. Build expressions with the arithmetic methods, then
/// call [`Tape::backward`].
#[derive(Debug, Default)]
pub struct Tape {
    nodes: Vec<Node>,
    values: Vec<f64>,
}

impl Tape {
    /// An empty tape.
    pub fn new() -> Tape {
        Tape::default()
    }

    fn push(&mut self, value: f64, parents: [(usize, f64); 2], n_parents: u8) -> Var {
        self.nodes.push(Node { parents, n_parents });
        self.values.push(value);
        Var(self.nodes.len() - 1)
    }

    /// A leaf variable.
    pub fn var(&mut self, value: f64) -> Var {
        self.push(value, [(0, 0.0), (0, 0.0)], 0)
    }

    /// The current value of a variable.
    pub fn value(&self, v: Var) -> f64 {
        self.values[v.0]
    }

    /// `a + b`
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        self.push(self.values[a.0] + self.values[b.0], [(a.0, 1.0), (b.0, 1.0)], 2)
    }

    /// `a - b`
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        self.push(self.values[a.0] - self.values[b.0], [(a.0, 1.0), (b.0, -1.0)], 2)
    }

    /// `a * b`
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let (va, vb) = (self.values[a.0], self.values[b.0]);
        self.push(va * vb, [(a.0, vb), (b.0, va)], 2)
    }

    /// `a + c` for a constant `c`
    pub fn add_const(&mut self, a: Var, c: f64) -> Var {
        self.push(self.values[a.0] + c, [(a.0, 1.0), (0, 0.0)], 1)
    }

    /// `a - c` for a constant `c`
    pub fn sub_const(&mut self, a: Var, c: f64) -> Var {
        self.push(self.values[a.0] - c, [(a.0, 1.0), (0, 0.0)], 1)
    }

    /// `a * c` for a constant `c`
    pub fn mul_const(&mut self, a: Var, c: f64) -> Var {
        self.push(self.values[a.0] * c, [(a.0, c), (0, 0.0)], 1)
    }

    /// `a / b`
    pub fn div(&mut self, a: Var, b: Var) -> Var {
        let (va, vb) = (self.values[a.0], self.values[b.0]);
        self.push(va / vb, [(a.0, 1.0 / vb), (b.0, -va / (vb * vb))], 2)
    }

    /// `-a`
    pub fn neg(&mut self, a: Var) -> Var {
        self.mul_const(a, -1.0)
    }

    /// `a²`
    pub fn sq(&mut self, a: Var) -> Var {
        self.mul(a, a)
    }

    /// Reverse sweep from `output`: returns `∂output/∂node` for every node.
    pub fn backward(&self, output: Var) -> Vec<f64> {
        let mut adj = vec![0.0; self.nodes.len()];
        adj[output.0] = 1.0;
        for i in (0..=output.0).rev() {
            let node = self.nodes[i];
            let a = adj[i];
            if a == 0.0 {
                continue;
            }
            for j in 0..node.n_parents as usize {
                let (p, d) = node.parents[j];
                adj[p] += a * d;
            }
        }
        adj
    }

    /// Gradient with respect to the given leaf variables.
    pub fn grad_of(&self, output: Var, wrt: &[Var]) -> Vec<f64> {
        let adj = self.backward(output);
        wrt.iter().map(|v| adj[v.0]).collect()
    }
}

/// Convenience: gradient of `f` (expressed in tape operations) at `at`.
pub fn grad<F>(f: F, at: &[f64]) -> Vec<f64>
where
    F: FnOnce(&mut Tape, &[Var]) -> Var,
{
    let mut tape = Tape::new();
    let vars: Vec<Var> = at.iter().map(|&x| tape.var(x)).collect();
    let out = f(&mut tape, &vars);
    tape.grad_of(out, &vars)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_product() {
        // f = x*y at (3, 4): ∇ = (4, 3)
        let g = grad(|t, v| t.mul(v[0], v[1]), &[3.0, 4.0]);
        assert_eq!(g, vec![4.0, 3.0]);
    }

    #[test]
    fn chain_of_operations() {
        // f = (x + 2y)² at (1, 2): f=25, ∂x = 2(x+2y) = 10, ∂y = 4(x+2y) = 20
        let g = grad(
            |t, v| {
                let two_y = t.mul_const(v[1], 2.0);
                let s = t.add(v[0], two_y);
                t.sq(s)
            },
            &[1.0, 2.0],
        );
        assert_eq!(g, vec![10.0, 20.0]);
    }

    #[test]
    fn division() {
        // f = x / y at (6, 3): ∂x = 1/3, ∂y = -6/9
        let g = grad(|t, v| t.div(v[0], v[1]), &[6.0, 3.0]);
        assert!((g[0] - 1.0 / 3.0).abs() < 1e-15);
        assert!((g[1] + 2.0 / 3.0).abs() < 1e-15);
    }

    #[test]
    fn fan_out_accumulates() {
        // f = x*x + x at 5: ∂ = 2x + 1 = 11
        let g = grad(
            |t, v| {
                let s = t.sq(v[0]);
                t.add(s, v[0])
            },
            &[5.0],
        );
        assert_eq!(g, vec![11.0]);
    }

    #[test]
    fn values_are_observable() {
        let mut t = Tape::new();
        let x = t.var(2.0);
        let y = t.add_const(x, 3.0);
        assert_eq!(t.value(y), 5.0);
        let z = t.neg(y);
        assert_eq!(t.value(z), -5.0);
        let w = t.sub_const(z, 1.0);
        assert_eq!(t.value(w), -6.0);
    }

    #[test]
    fn regression_loss_gradient() {
        // L = (wx + b - t)² at w=1, b=0, x=2, t=5 → err=-3, ∂w = 2·err·x = -12, ∂b = -6
        let g = grad(
            |t, v| {
                let pred = t.mul_const(v[0], 2.0);
                let pred = t.add(pred, v[1]);
                let err = t.sub_const(pred, 5.0);
                t.sq(err)
            },
            &[1.0, 0.0],
        );
        assert_eq!(g, vec![-12.0, -6.0]);
    }
}
