//! Autodiff substrate for the gradient-descent handler of §4.3.
//!
//! The paper's `hOpt` handler calls `autodiff l p` to differentiate the
//! *choice continuation* `l` — an arbitrary effectful black box mapping
//! parameters to a loss — at the current parameters `p`. This crate
//! supplies three differentiation engines:
//!
//! * [`finite_diff`] — central finite differences over a black-box
//!   `Fn(&[f64]) -> f64`. This is what the handler substrate uses: the
//!   choice continuation is opaque (it runs the rest of the program), and
//!   repeated invocation is exactly the computational pattern choice
//!   continuations are designed for.
//! * [`Dual`] — forward-mode dual numbers, for functions written
//!   generically over [`Scalar`]; exact gradients, one pass per direction.
//! * [`tape`] — a reverse-mode tape ("backprop"), exact gradients in one
//!   backward pass; used by the hand-coded SGD baseline in `selc-ml`.
//!
//! The three engines agree on smooth functions (see the cross-validation
//! tests), which is the evidence that substituting finite differences for
//! the paper's `autodiff` primitive preserves the behaviour of the §4.3
//! experiments (quadratic losses).

pub mod dual;
pub mod finite;
pub mod scalar;
pub mod tape;

pub use dual::Dual;
pub use finite::{finite_diff, finite_diff_with_step};
pub use scalar::Scalar;
pub use tape::{Tape, Var};

#[cfg(test)]
mod cross_tests {
    use super::*;

    /// f(x, y) = x²y + 3x − y² (smooth).
    fn poly(p: &[f64]) -> f64 {
        p[0] * p[0] * p[1] + 3.0 * p[0] - p[1] * p[1]
    }

    fn poly_generic<S: Scalar>(p: &[S]) -> S {
        let x = p[0].clone();
        let y = p[1].clone();
        x.clone() * x.clone() * y.clone() + S::from_f64(3.0) * x - y.clone() * y
    }

    #[test]
    fn all_three_engines_agree_on_polynomial() {
        let at = [1.5, -2.0];
        let fd = finite_diff(poly, &at);
        let fwd = dual::grad(poly_generic::<Dual>, &at);
        let rev = tape::grad(
            |t, xs| {
                let x = xs[0];
                let y = xs[1];
                let xx = t.mul(x, x);
                let x2y = t.mul(xx, y);
                let tx = t.mul_const(x, 3.0);
                let y2 = t.mul(y, y);
                let s = t.add(x2y, tx);
                t.sub(s, y2)
            },
            &at,
        );
        for i in 0..2 {
            assert!((fd[i] - fwd[i]).abs() < 1e-5, "fd {fd:?} vs fwd {fwd:?}");
            assert!((rev[i] - fwd[i]).abs() < 1e-10, "rev {rev:?} vs fwd {fwd:?}");
        }
        // analytic: ∂x = 2xy + 3 = -3; ∂y = x² − 2y = 6.25
        assert!((fwd[0] - (-3.0)).abs() < 1e-12);
        assert!((fwd[1] - 6.25).abs() < 1e-12);
    }

    #[test]
    fn engines_agree_on_quadratic_regression_loss() {
        // (w·x + b − t)² — the exact loss shape of §4.3's linearReg.
        let (x, t) = (2.0, 7.0);
        let loss = move |p: &[f64]| {
            let e = p[0] * x + p[1] - t;
            e * e
        };
        let at = [0.5, -0.5];
        let fd = finite_diff(loss, &at);
        let rev = tape::grad(
            move |tp, ps| {
                let wx = tp.mul_const(ps[0], x);
                let pred = tp.add(wx, ps[1]);
                let err = tp.sub_const(pred, t);
                tp.mul(err, err)
            },
            &at,
        );
        for i in 0..2 {
            assert!((fd[i] - rev[i]).abs() < 1e-4, "fd {fd:?} vs rev {rev:?}");
        }
    }
}
