//! Forward-mode automatic differentiation with dual numbers.
//!
//! A [`Dual`] carries a value and one directional derivative; seeding the
//! i-th input with tangent 1 and evaluating once yields `∂f/∂xᵢ` exactly.

use crate::scalar::Scalar;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// A dual number `v + εd` with `ε² = 0`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Dual {
    /// The value (primal) part.
    pub v: f64,
    /// The derivative (tangent) part.
    pub d: f64,
}

impl Dual {
    /// A constant (zero tangent).
    pub fn constant(v: f64) -> Dual {
        Dual { v, d: 0.0 }
    }

    /// The i-th input variable: value `v`, tangent 1.
    pub fn variable(v: f64) -> Dual {
        Dual { v, d: 1.0 }
    }
}

impl Add for Dual {
    type Output = Dual;
    fn add(self, o: Dual) -> Dual {
        Dual { v: self.v + o.v, d: self.d + o.d }
    }
}

impl Sub for Dual {
    type Output = Dual;
    fn sub(self, o: Dual) -> Dual {
        Dual { v: self.v - o.v, d: self.d - o.d }
    }
}

impl Mul for Dual {
    type Output = Dual;
    fn mul(self, o: Dual) -> Dual {
        Dual { v: self.v * o.v, d: self.v * o.d + self.d * o.v }
    }
}

impl Div for Dual {
    type Output = Dual;
    fn div(self, o: Dual) -> Dual {
        Dual { v: self.v / o.v, d: (self.d * o.v - self.v * o.d) / (o.v * o.v) }
    }
}

impl Neg for Dual {
    type Output = Dual;
    fn neg(self) -> Dual {
        Dual { v: -self.v, d: -self.d }
    }
}

/// **Intentionally partial** (the one `partial_cmp` the workspace's
/// determinism sweep keeps): `Dual` mirrors `f64`'s own comparison
/// semantics so generic numeric code behaves identically over duals and
/// plain floats — NaN compares as unordered, `-0.0 == 0.0`. Search-side
/// comparisons never use this; they go through the `selc::OrderedLoss`
/// total order.
impl PartialOrd for Dual {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        self.v.partial_cmp(&other.v)
    }
}

impl Scalar for Dual {
    fn from_f64(x: f64) -> Self {
        Dual::constant(x)
    }
    fn value(&self) -> f64 {
        self.v
    }
}

/// Dual numbers form a loss monoid (component-wise addition), so a whole
/// `selc` computation can run with `L = Dual` and propagate a tangent
/// through every recorded loss — forward-mode AD through the loss channel.
impl selc::Loss for Dual {
    fn zero() -> Self {
        Dual::constant(0.0)
    }
    fn combine(&self, other: &Self) -> Self {
        *self + *other
    }
}

/// The gradient of a [`Scalar`]-generic function at `at`, by n forward
/// passes (one per coordinate).
pub fn grad<F>(f: F, at: &[f64]) -> Vec<f64>
where
    F: Fn(&[Dual]) -> Dual,
{
    (0..at.len())
        .map(|i| {
            let inputs: Vec<Dual> = at
                .iter()
                .enumerate()
                .map(|(j, &v)| if i == j { Dual::variable(v) } else { Dual::constant(v) })
                .collect();
            f(&inputs).d
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn product_rule() {
        let x = Dual::variable(3.0);
        let c = Dual::constant(4.0);
        let y = x * x * c; // 4x², d/dx = 8x = 24
        assert_eq!(y.v, 36.0);
        assert_eq!(y.d, 24.0);
    }

    #[test]
    fn quotient_rule() {
        let x = Dual::variable(2.0);
        let y = Dual::constant(1.0) / x; // 1/x, d = -1/x² = -0.25
        assert_eq!(y.v, 0.5);
        assert_eq!(y.d, -0.25);
    }

    #[test]
    fn neg_and_sub() {
        let x = Dual::variable(5.0);
        let y = -(x - Dual::constant(2.0)); // -(x-2), d = -1
        assert_eq!(y.v, -3.0);
        assert_eq!(y.d, -1.0);
    }

    #[test]
    fn grad_of_two_vars() {
        // f = x·y, ∇ = (y, x)
        let g = grad(|p| p[0] * p[1], &[2.0, 7.0]);
        assert_eq!(g, vec![7.0, 2.0]);
    }

    #[test]
    fn ordering_uses_primal() {
        assert!(Dual::variable(1.0) < Dual::constant(2.0));
    }

    #[test]
    fn dual_losses_accumulate_with_tangents() {
        use selc::{loss, Loss, Sel};
        let prog: Sel<Dual, ()> =
            loss(Dual { v: 2.0, d: 1.0 }).then(loss(Dual { v: 3.0, d: 0.5 })).map(|_| ());
        let (l, ()) = prog.run_unwrap();
        assert_eq!(l, Dual { v: 5.0, d: 1.5 });
        assert_eq!(<Dual as Loss>::zero(), Dual::constant(0.0));
    }
}
