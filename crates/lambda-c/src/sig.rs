//! Effect signatures `Σ = { ℓ : Op(ℓ) }` and the hierarchical
//! well-foundedness check of §3.4.
//!
//! A signature assigns each effect label a finite, non-empty set of
//! operations `op : out → in` (the paper's convention: an element of `out`
//! starts the effect, the operation returns an element of `in`). Distinct
//! labels have disjoint operation sets, so an operation name determines its
//! label.
//!
//! The termination theorem (Thm 3.5) and the denotational semantics (§5)
//! require the signature to be *well-founded*: there must be an ordering
//! `ℓ1, …, ℓn` of labels such that the labels appearing in the operation
//! types of `ℓj` are all strictly earlier. [`Signature::check_well_founded`]
//! decides this by topologically sorting the label-dependency graph and
//! assigns each label its *effect level*.

use crate::types::{Effect, Type};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// The type of one operation, `op : out → in`.
#[derive(Clone, Debug, PartialEq)]
pub struct OpSig {
    /// Argument ("out") type — sent to start the effect.
    pub arg: Type,
    /// Result ("in") type — received to continue the computation.
    pub ret: Type,
}

/// A signature: effect labels with their operations.
#[derive(Clone, Debug, Default)]
pub struct Signature {
    effects: BTreeMap<String, BTreeMap<String, OpSig>>,
    op_to_label: BTreeMap<String, String>,
}

/// Error raised when a signature declaration is malformed.
#[derive(Clone, Debug, PartialEq)]
pub enum SigError {
    /// The same operation name was declared under two labels.
    DuplicateOp(String),
    /// A label was declared with no operations (Fig 2 requires non-empty).
    EmptyEffect(String),
    /// The label-dependency graph has a cycle: no well-founded ordering.
    NotWellFounded(Vec<String>),
}

impl fmt::Display for SigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SigError::DuplicateOp(op) => write!(f, "operation `{op}` declared twice"),
            SigError::EmptyEffect(l) => write!(f, "effect `{l}` has no operations"),
            SigError::NotWellFounded(cycle) => {
                write!(
                    f,
                    "effect labels are not well-founded (cycle through {})",
                    cycle.join(" -> ")
                )
            }
        }
    }
}

impl std::error::Error for SigError {}

impl Signature {
    /// An empty signature.
    pub fn new() -> Signature {
        Signature::default()
    }

    /// Declares an effect `ℓ` with operations `ops`.
    ///
    /// # Errors
    ///
    /// Returns [`SigError::EmptyEffect`] for an empty operation list and
    /// [`SigError::DuplicateOp`] if an operation name is already taken
    /// (operation sets of distinct labels must be disjoint).
    pub fn declare(
        &mut self,
        label: impl Into<String>,
        ops: Vec<(String, OpSig)>,
    ) -> Result<(), SigError> {
        let label = label.into();
        if ops.is_empty() {
            return Err(SigError::EmptyEffect(label));
        }
        let mut map = BTreeMap::new();
        for (name, sig) in ops {
            if self.op_to_label.contains_key(&name) || map.contains_key(&name) {
                return Err(SigError::DuplicateOp(name));
            }
            map.insert(name, sig);
        }
        for name in map.keys() {
            self.op_to_label.insert(name.clone(), label.clone());
        }
        self.effects.insert(label, map);
        Ok(())
    }

    /// The label an operation belongs to.
    pub fn label_of(&self, op: &str) -> Option<&str> {
        self.op_to_label.get(op).map(String::as_str)
    }

    /// The typing of an operation.
    pub fn op_sig(&self, op: &str) -> Option<&OpSig> {
        let label = self.op_to_label.get(op)?;
        self.effects.get(label)?.get(op)
    }

    /// The *decision* operations of the signature, in canonical order:
    /// operations returning `bool`, the shape a forced-choice search can
    /// script (each call consumes one decision bit). This is the operation
    /// set `lambda_c::flow` treats as intercepted-at-the-handler and the
    /// engine bridge replays.
    pub fn decision_ops(&self) -> Vec<String> {
        self.effects
            .values()
            .flat_map(|ops| ops.iter())
            .filter(|(_, sig)| sig.ret == crate::types::Type::bool())
            .map(|(name, _)| name.clone())
            .collect()
    }

    /// The operations of a label (name → typing), in canonical order.
    pub fn ops_of(&self, label: &str) -> Option<&BTreeMap<String, OpSig>> {
        self.effects.get(label)
    }

    /// All declared labels.
    pub fn labels(&self) -> impl Iterator<Item = &str> {
        self.effects.keys().map(String::as_str)
    }

    /// Checks the well-foundedness assumption of §3.4 and returns the
    /// *effect level* of every label: `level(ℓ)` strictly exceeds the level
    /// of every label occurring in the operation types of `ℓ`.
    ///
    /// # Errors
    ///
    /// Returns [`SigError::NotWellFounded`] with (part of) a dependency
    /// cycle when no ordering exists — e.g. for the `moo` effect of §3.4
    /// whose operation type mentions its own label.
    pub fn check_well_founded(&self) -> Result<BTreeMap<String, usize>, SigError> {
        // deps[ℓ] = labels appearing in the in/out types of ℓ's operations
        let mut deps: BTreeMap<&str, BTreeSet<String>> = BTreeMap::new();
        for (label, ops) in &self.effects {
            let mut set = BTreeSet::new();
            for op in ops.values() {
                op.arg.effect_labels(&mut set);
                op.ret.effect_labels(&mut set);
            }
            deps.insert(label, set);
        }
        let mut level: BTreeMap<String, usize> = BTreeMap::new();
        let mut visiting: Vec<String> = Vec::new();

        fn visit(
            label: &str,
            deps: &BTreeMap<&str, BTreeSet<String>>,
            level: &mut BTreeMap<String, usize>,
            visiting: &mut Vec<String>,
        ) -> Result<usize, SigError> {
            if let Some(l) = level.get(label) {
                return Ok(*l);
            }
            if visiting.iter().any(|v| v == label) {
                let mut cycle = visiting.clone();
                cycle.push(label.to_owned());
                return Err(SigError::NotWellFounded(cycle));
            }
            visiting.push(label.to_owned());
            let mut max_dep = 0usize;
            if let Some(ds) = deps.get(label) {
                for d in ds {
                    // Labels not declared in the signature are treated as
                    // level 0 (they cannot be performed anyway).
                    if deps.contains_key(d.as_str()) {
                        let dl = visit(d, deps, level, visiting)?;
                        max_dep = max_dep.max(dl + 1);
                    } else {
                        max_dep = max_dep.max(1);
                    }
                }
            }
            visiting.pop();
            level.insert(label.to_owned(), max_dep);
            Ok(max_dep)
        }

        for label in self.effects.keys() {
            visit(label, &deps, &mut level, &mut visiting)?;
        }
        Ok(level)
    }

    /// The effect level `l(ε)` of a multiset: the maximum level of its
    /// labels (0 for the empty effect). Requires a well-founded signature.
    pub fn effect_level(&self, eff: &Effect, levels: &BTreeMap<String, usize>) -> usize {
        eff.labels().map(|l| levels.get(l).copied().unwrap_or(0)).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::BaseTy;

    fn op(arg: Type, ret: Type) -> OpSig {
        OpSig { arg, ret }
    }

    #[test]
    fn declare_and_lookup() {
        let mut sig = Signature::new();
        sig.declare("amb", vec![("decide".into(), op(Type::unit(), Type::bool()))]).unwrap();
        assert_eq!(sig.label_of("decide"), Some("amb"));
        assert_eq!(sig.op_sig("decide").unwrap().ret, Type::bool());
        assert!(sig.op_sig("missing").is_none());
    }

    #[test]
    fn duplicate_op_rejected() {
        let mut sig = Signature::new();
        sig.declare("a", vec![("f".into(), op(Type::unit(), Type::unit()))]).unwrap();
        let err = sig.declare("b", vec![("f".into(), op(Type::unit(), Type::unit()))]).unwrap_err();
        assert_eq!(err, SigError::DuplicateOp("f".into()));
    }

    #[test]
    fn empty_effect_rejected() {
        let mut sig = Signature::new();
        assert_eq!(sig.declare("e", vec![]).unwrap_err(), SigError::EmptyEffect("e".into()));
    }

    #[test]
    fn flat_signature_is_well_founded_at_level_zero() {
        let mut sig = Signature::new();
        sig.declare("amb", vec![("decide".into(), op(Type::unit(), Type::bool()))]).unwrap();
        sig.declare(
            "max",
            vec![(
                "pick".into(),
                op(Type::List(Box::new(Type::Base(BaseTy::Char))), Type::Base(BaseTy::Char)),
            )],
        )
        .unwrap();
        let levels = sig.check_well_founded().unwrap();
        assert_eq!(levels["amb"], 0);
        assert_eq!(levels["max"], 0);
    }

    #[test]
    fn hierarchical_signature_levels() {
        // hi's operation returns a function that may perform lo.
        let mut sig = Signature::new();
        sig.declare("lo", vec![("l".into(), op(Type::unit(), Type::unit()))]).unwrap();
        sig.declare(
            "hi",
            vec![(
                "h".into(),
                op(Type::unit(), Type::fun(Type::unit(), Type::unit(), Effect::single("lo"))),
            )],
        )
        .unwrap();
        let levels = sig.check_well_founded().unwrap();
        assert_eq!(levels["lo"], 0);
        assert_eq!(levels["hi"], 1);
    }

    #[test]
    fn moo_effect_is_rejected() {
        // §3.4: cow = { moo : unit -> (unit -> unit ! cow) } diverges; the
        // well-foundedness check must reject it.
        let mut sig = Signature::new();
        sig.declare(
            "cow",
            vec![(
                "moo".into(),
                op(Type::unit(), Type::fun(Type::unit(), Type::unit(), Effect::single("cow"))),
            )],
        )
        .unwrap();
        match sig.check_well_founded() {
            Err(SigError::NotWellFounded(cycle)) => assert!(cycle.contains(&"cow".to_owned())),
            other => panic!("expected NotWellFounded, got {other:?}"),
        }
    }

    #[test]
    fn mutual_recursion_rejected() {
        let mut sig = Signature::new();
        sig.declare(
            "a",
            vec![(
                "fa".into(),
                op(Type::unit(), Type::fun(Type::unit(), Type::unit(), Effect::single("b"))),
            )],
        )
        .unwrap();
        sig.declare(
            "b",
            vec![(
                "fb".into(),
                op(Type::fun(Type::unit(), Type::unit(), Effect::single("a")), Type::unit()),
            )],
        )
        .unwrap();
        assert!(matches!(sig.check_well_founded(), Err(SigError::NotWellFounded(_))));
    }

    #[test]
    fn effect_level_of_multiset() {
        let mut sig = Signature::new();
        sig.declare("lo", vec![("l".into(), op(Type::unit(), Type::unit()))]).unwrap();
        sig.declare(
            "hi",
            vec![(
                "h".into(),
                op(Type::unit(), Type::fun(Type::unit(), Type::unit(), Effect::single("lo"))),
            )],
        )
        .unwrap();
        let levels = sig.check_well_founded().unwrap();
        assert_eq!(sig.effect_level(&Effect::empty(), &levels), 0);
        assert_eq!(sig.effect_level(&Effect::from_labels(["lo", "hi"]), &levels), 1);
    }
}
