//! The giant-step evaluation of Theorem 5.6: evaluate an expression "as
//! far as effect values" — a tree whose leaves are `(loss, value)`
//! outcomes and whose nodes are unhandled operations with one child per
//! (sampled) operation result.
//!
//! The paper's `Eval : E ⇀ EV` continues stuck expressions with *every*
//! possible operation result; here result types are sampled up to a cap
//! for first-order `in`-types (the same discipline the adequacy harness
//! uses), and depth is fuel-bounded. For programs with empty residual
//! effect this is exactly big-step evaluation.

use crate::bigstep::eval;
use crate::loss::LossVal;
use crate::sig::Signature;
use crate::smallstep::{plug_all, split_stuck, EvalError};
use crate::syntax::Expr;
use crate::types::{BaseTy, Effect, Type};

/// An effect value (the set `EV` of §5.4): the giant-step result tree.
#[derive(Clone, Debug)]
pub enum EffValue {
    /// `(r, v)` — terminated with loss `r` and value `v`.
    Done {
        /// Total emitted loss along this path.
        loss: LossVal,
        /// The final value.
        value: Expr,
    },
    /// `((ℓ, op), (v, k))` — stuck on `op(arg)`; children are the
    /// continuations for sampled results.
    Op {
        /// The effect label.
        label: String,
        /// The operation.
        op: String,
        /// Its argument value.
        arg: Expr,
        /// Loss emitted before the operation.
        loss: LossVal,
        /// `(sampled result, continuation tree)` pairs; empty when the
        /// result type is higher-order or `depth` ran out.
        children: Vec<(Expr, EffValue)>,
    },
}

impl EffValue {
    /// Number of leaves in the tree.
    pub fn leaf_count(&self) -> usize {
        match self {
            EffValue::Done { .. } => 1,
            EffValue::Op { children, .. } => {
                children.iter().map(|(_, t)| t.leaf_count()).max().unwrap_or(0).max(1)
            }
        }
    }

    /// Total number of operation nodes along the deepest path.
    pub fn depth(&self) -> usize {
        match self {
            EffValue::Done { .. } => 0,
            EffValue::Op { children, .. } => {
                1 + children.iter().map(|(_, t)| t.depth()).max().unwrap_or(0)
            }
        }
    }
}

/// Sample values of a first-order type (shared discipline with the
/// adequacy harness). Returns `None` for higher-order types.
pub fn sample_values(ty: &Type) -> Option<Vec<Expr>> {
    const CAP: usize = 6;
    let out = match ty {
        Type::Base(BaseTy::Loss) => vec![Expr::lossc(0.0), Expr::lossc(1.0), Expr::lossc(-2.5)],
        Type::Base(BaseTy::Char) => vec![
            Expr::Const(crate::syntax::Const::Char('a')),
            Expr::Const(crate::syntax::Const::Char('b')),
        ],
        Type::Base(BaseTy::Str) => vec![
            Expr::Const(crate::syntax::Const::Str(String::new())),
            Expr::Const(crate::syntax::Const::Str("ab".into())),
        ],
        Type::Nat => vec![Expr::nat(0), Expr::nat(1), Expr::nat(2)],
        Type::Tuple(ts) => {
            let mut combos: Vec<Vec<Expr>> = vec![Vec::new()];
            for t in ts {
                let samples = sample_values(t)?;
                let mut next = Vec::new();
                'outer: for c in &combos {
                    for s in &samples {
                        let mut c2 = c.clone();
                        c2.push(s.clone());
                        next.push(c2);
                        if next.len() >= CAP {
                            break 'outer;
                        }
                    }
                }
                combos = next;
            }
            combos.into_iter().map(|c| Expr::Tuple(c.into_iter().map(Expr::rc).collect())).collect()
        }
        Type::Sum(a, b) => {
            let mut out = Vec::new();
            for s in sample_values(a)? {
                out.push(Expr::Inl { lty: (**a).clone(), rty: (**b).clone(), e: s.rc() });
            }
            for s in sample_values(b)? {
                out.push(Expr::Inr { lty: (**a).clone(), rty: (**b).clone(), e: s.rc() });
            }
            out
        }
        Type::List(t) => {
            let samples = sample_values(t)?;
            let mut out = vec![Expr::Nil((**t).clone())];
            if let Some(s) = samples.first() {
                out.push(Expr::Cons(s.clone().rc(), Expr::Nil((**t).clone()).rc()));
            }
            out
        }
        Type::Fun(..) => return None,
    };
    Some(out.into_iter().take(CAP).collect())
}

/// Giant-step evaluation of `e : ty ! eff` under the zero loss
/// continuation, exploring stuck continuations up to `depth` operations
/// deep.
///
/// # Errors
///
/// Propagates [`EvalError`] from the underlying big-step evaluator.
pub fn eval_giant(
    sig: &Signature,
    e: Expr,
    ty: &Type,
    eff: &Effect,
    depth: usize,
) -> Result<EffValue, EvalError> {
    let g = Expr::zero_cont(ty.clone(), eff.clone()).rc();
    let out = eval(sig, &g, eff, e, crate::bigstep::DEFAULT_FUEL)?;
    match out.stuck_on {
        None => Ok(EffValue::Done { loss: out.loss, value: out.terminal }),
        Some(op) => {
            let stuck = split_stuck(&out.terminal)
                .ok_or_else(|| EvalError::Malformed("stuck terminal not decomposable".into()))?;
            let label = sig
                .label_of(&op)
                .ok_or_else(|| EvalError::Malformed(format!("unknown op `{op}`")))?
                .to_owned();
            let mut children = Vec::new();
            if depth > 0 {
                if let Some(osig) = sig.op_sig(&op) {
                    if let Some(samples) = sample_values(&osig.ret) {
                        for w in samples {
                            let resumed = plug_all(&stuck.path, w.clone());
                            let child = eval_giant(sig, resumed, ty, eff, depth - 1)?;
                            children.push((w, child));
                        }
                    }
                }
            }
            Ok(EffValue::Op { label, op, arg: stuck.arg, loss: out.loss, children })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::*;
    use crate::sig::OpSig;

    fn amb_sig() -> Signature {
        let mut sig = Signature::new();
        sig.declare("amb", vec![("decide".into(), OpSig { arg: Type::unit(), ret: Type::bool() })])
            .unwrap();
        sig
    }

    #[test]
    fn pure_program_is_a_leaf() {
        let sig = Signature::new();
        let t =
            eval_giant(&sig, add(lc(1.0), lc(2.0)), &Type::loss(), &Effect::empty(), 3).unwrap();
        match t {
            EffValue::Done { loss, value } => {
                assert!(loss.is_zero());
                assert_eq!(value, lc(3.0));
            }
            other => panic!("expected leaf, got {other:?}"),
        }
    }

    #[test]
    fn residual_op_builds_a_node_with_both_branches() {
        let sig = amb_sig();
        let eamb = Effect::single("amb");
        // b ← decide(); loss(if b then 1 else 2); b
        let e = let_(
            eamb.clone(),
            "b",
            Type::bool(),
            op("decide", unit()),
            seq(eamb.clone(), Type::unit(), loss(if_(v("b"), lc(1.0), lc(2.0))), v("b")),
        );
        let t = eval_giant(&sig, e, &Type::bool(), &eamb, 2).unwrap();
        match t {
            EffValue::Op { label, op, children, loss, .. } => {
                assert_eq!((label.as_str(), op.as_str()), ("amb", "decide"));
                assert!(loss.is_zero());
                assert_eq!(children.len(), 2);
                for (w, child) in &children {
                    let expected = if *w == Expr::tt() { 1.0 } else { 2.0 };
                    match child {
                        EffValue::Done { loss, value } => {
                            assert_eq!(*loss, crate::LossVal::scalar(expected));
                            assert_eq!(value, w);
                        }
                        other => panic!("expected leaf, got {other:?}"),
                    }
                }
            }
            other => panic!("expected node, got {other:?}"),
        }
    }

    #[test]
    fn depth_and_leaf_count_metrics() {
        let sig = amb_sig();
        let eamb = Effect::single("amb");
        let e = let_(
            eamb.clone(),
            "a",
            Type::bool(),
            op("decide", unit()),
            let_(
                eamb.clone(),
                "b",
                Type::bool(),
                op("decide", unit()),
                if_(v("a"), v("b"), Expr::ff()),
            ),
        );
        let t = eval_giant(&sig, e, &Type::bool(), &eamb, 4).unwrap();
        assert_eq!(t.depth(), 2);
        assert!(t.leaf_count() >= 1);
    }

    #[test]
    fn zero_depth_stops_expansion() {
        let sig = amb_sig();
        let t = eval_giant(&sig, op("decide", unit()), &Type::bool(), &Effect::single("amb"), 0)
            .unwrap();
        match t {
            EffValue::Op { children, .. } => assert!(children.is_empty()),
            other => panic!("expected node, got {other:?}"),
        }
    }
}
