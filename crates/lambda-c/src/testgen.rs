//! A generator of random *well-typed* λC programs, used by the
//! metatheory property tests (progress, preservation, termination,
//! adequacy) and by the fuzzing benches.
//!
//! The generator works over a fixed two-effect hierarchical signature —
//! `amb { decide : () → bool }` and `cnt { tick : () → loss }` — and
//! builds expressions type-directedly, so every output typechecks by
//! construction (asserted in the tests, not assumed). Handlers are drawn
//! from a small family of templates: constant choosers, a
//! choice-continuation-probing argmin, and a parameterized counter; that
//! family exercises every operational rule including (R5)'s choice
//! continuations and (S1)'s parameter threading.

use crate::build;
use crate::sig::{OpSig, Signature};
use crate::syntax::{Expr, Handler};
use crate::types::{Effect, Type};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A generated closed program.
#[derive(Clone, Debug)]
pub struct GenProgram {
    /// The expression.
    pub expr: Expr,
    /// Its type.
    pub ty: Type,
    /// Its (residual) effect.
    pub eff: Effect,
}

/// The fixed signature used by the generator.
pub fn gen_signature() -> Signature {
    let mut sig = Signature::new();
    sig.declare("amb", vec![("decide".into(), OpSig { arg: Type::unit(), ret: Type::bool() })])
        .expect("fresh signature");
    sig.declare("cnt", vec![("tick".into(), OpSig { arg: Type::unit(), ret: Type::loss() })])
        .expect("fresh signature");
    sig
}

/// The program generator.
pub struct ProgramGen {
    rng: StdRng,
    var_counter: u64,
}

impl ProgramGen {
    /// A deterministic generator from a seed.
    pub fn new(seed: u64) -> ProgramGen {
        ProgramGen { rng: StdRng::seed_from_u64(seed), var_counter: 0 }
    }

    fn fresh(&mut self, prefix: &str) -> String {
        self.var_counter += 1;
        format!("{prefix}{}", self.var_counter)
    }

    fn small_loss(&mut self) -> Expr {
        let v: i32 = self.rng.gen_range(-3..=5);
        Expr::lossc(v as f64)
    }

    fn vars_of(env: &[(String, Type)], ty: &Type) -> Vec<String> {
        env.iter().filter(|(_, t)| t == ty).map(|(x, _)| x.clone()).collect()
    }

    /// Generates `e : ty ! eff` under `env`, with recursion budget `depth`.
    pub fn gen_expr(
        &mut self,
        env: &[(String, Type)],
        ty: &Type,
        eff: &Effect,
        depth: u32,
    ) -> Expr {
        // At depth 0, emit a leaf of the right type.
        if depth == 0 {
            return self.gen_leaf(env, ty);
        }
        // Sometimes reference a variable of the right type.
        let vars = Self::vars_of(env, ty);
        if !vars.is_empty() && self.rng.gen_bool(0.2) {
            let i = self.rng.gen_range(0..vars.len());
            return Expr::Var(vars[i].clone());
        }
        match ty {
            Type::Base(crate::types::BaseTy::Loss) => self.gen_loss_expr(env, eff, depth),
            t if *t == Type::bool() => self.gen_bool_expr(env, eff, depth),
            t if *t == Type::unit() => self.gen_unit_expr(env, eff, depth),
            Type::Base(crate::types::BaseTy::Char) => {
                let c = self.gen_expr(env, &Type::bool(), eff, depth - 1);
                build::if_(c, build::ch('a'), build::ch('b'))
            }
            Type::Tuple(ts) => {
                let parts =
                    ts.iter().map(|t| self.gen_expr(env, t, eff, depth - 1)).collect::<Vec<_>>();
                build::tuple(parts)
            }
            _ => self.gen_leaf(env, ty),
        }
    }

    fn gen_leaf(&mut self, env: &[(String, Type)], ty: &Type) -> Expr {
        let vars = Self::vars_of(env, ty);
        if !vars.is_empty() && self.rng.gen_bool(0.5) {
            let i = self.rng.gen_range(0..vars.len());
            return Expr::Var(vars[i].clone());
        }
        match ty {
            Type::Base(crate::types::BaseTy::Loss) => self.small_loss(),
            Type::Base(crate::types::BaseTy::Char) => {
                build::ch(if self.rng.gen_bool(0.5) { 'a' } else { 'b' })
            }
            Type::Base(crate::types::BaseTy::Str) => build::s("s"),
            Type::Nat => Expr::nat(self.rng.gen_range(0..3)),
            Type::Tuple(ts) => {
                let parts = ts.iter().map(|t| self.gen_leaf(env, t)).collect::<Vec<_>>();
                build::tuple(parts)
            }
            t if *t == Type::bool() => Expr::bool(self.rng.gen_bool(0.5)),
            Type::Sum(a, _) => Expr::Inl {
                lty: (**a).clone(),
                rty: match ty {
                    Type::Sum(_, b) => (**b).clone(),
                    _ => unreachable!(),
                },
                e: self.gen_leaf(env, a).rc(),
            },
            Type::List(t) => Expr::Nil((**t).clone()),
            Type::Fun(a, b, fe) => {
                let x = self.fresh("f");
                let body = self.gen_leaf(&[], b);
                build::lam(fe.clone(), &x, (**a).clone(), body)
            }
        }
    }

    fn gen_loss_expr(&mut self, env: &[(String, Type)], eff: &Effect, depth: u32) -> Expr {
        let d = depth - 1;
        match self.rng.gen_range(0..10) {
            0 | 1 => self.small_loss(),
            2 => build::add(
                self.gen_expr(env, &Type::loss(), eff, d),
                self.gen_expr(env, &Type::loss(), eff, d),
            ),
            3 => build::mul(self.small_loss(), self.gen_expr(env, &Type::loss(), eff, d)),
            4 => build::if_(
                self.gen_expr(env, &Type::bool(), eff, d),
                self.gen_expr(env, &Type::loss(), eff, d),
                self.gen_expr(env, &Type::loss(), eff, d),
            ),
            5 if eff.contains("cnt") => build::op("tick", build::unit()),
            6 => {
                // x ← e1; e2
                let x = self.fresh("x");
                let e1 = self.gen_expr(env, &Type::loss(), eff, d);
                let mut env2 = env.to_vec();
                env2.push((x.clone(), Type::loss()));
                let e2 = self.gen_expr(&env2, &Type::loss(), eff, d);
                build::let_(eff.clone(), &x, Type::loss(), e1, e2)
            }
            7 => {
                // e ◮ λx. e2 : loss (the then construct)
                let x = self.fresh("x");
                let e1 = self.gen_expr(env, &Type::loss(), eff, d);
                let mut env2 = env.to_vec();
                env2.push((x.clone(), Type::loss()));
                let e2 = self.gen_expr(&env2, &Type::loss(), eff, d);
                build::then(e1, eff.clone(), &x, Type::loss(), e2)
            }
            8 => {
                build::local0(eff.clone(), Type::loss(), self.gen_expr(env, &Type::loss(), eff, d))
            }
            _ => self.maybe_handled(env, &Type::loss(), eff, d),
        }
    }

    fn gen_bool_expr(&mut self, env: &[(String, Type)], eff: &Effect, depth: u32) -> Expr {
        let d = depth - 1;
        match self.rng.gen_range(0..7) {
            0 => Expr::bool(self.rng.gen_bool(0.5)),
            1 => build::leq(
                self.gen_expr(env, &Type::loss(), eff, d),
                self.gen_expr(env, &Type::loss(), eff, d),
            ),
            2 if eff.contains("amb") => build::op("decide", build::unit()),
            3 => build::if_(
                self.gen_expr(env, &Type::bool(), eff, d),
                self.gen_expr(env, &Type::bool(), eff, d),
                self.gen_expr(env, &Type::bool(), eff, d),
            ),
            4 => {
                let x = self.fresh("b");
                let e1 = self.gen_expr(env, &Type::bool(), eff, d);
                let mut env2 = env.to_vec();
                env2.push((x.clone(), Type::bool()));
                let e2 = self.gen_expr(&env2, &Type::bool(), eff, d);
                build::let_(eff.clone(), &x, Type::bool(), e1, e2)
            }
            _ => self.maybe_handled(env, &Type::bool(), eff, d),
        }
    }

    fn gen_unit_expr(&mut self, env: &[(String, Type)], eff: &Effect, depth: u32) -> Expr {
        let d = depth - 1;
        match self.rng.gen_range(0..4) {
            0 => build::unit(),
            1 => build::loss(self.gen_expr(env, &Type::loss(), eff, d)),
            2 => build::reset(self.gen_unit_expr(env, eff, d.max(1))),
            _ => build::seq(
                eff.clone(),
                Type::unit(),
                build::loss(self.gen_expr(env, &Type::loss(), eff, d)),
                build::unit(),
            ),
        }
    }

    /// Wraps a generated body in a handler for `amb` or `cnt` (or falls
    /// back to a plain subexpression when the coin says so).
    fn maybe_handled(
        &mut self,
        env: &[(String, Type)],
        ty: &Type,
        eff: &Effect,
        depth: u32,
    ) -> Expr {
        if depth == 0 {
            return self.gen_leaf(env, ty);
        }
        match self.rng.gen_range(0..3) {
            0 => {
                // handle amb with a random chooser template
                let inner_eff = eff.plus("amb");
                let body = self.gen_expr(env, ty, &inner_eff, depth);
                let h = self.amb_handler(ty, eff);
                build::handle0(h, body)
            }
            1 => {
                // handle cnt with the parameterized counter
                let inner_eff = eff.plus("cnt");
                let body = self.gen_expr(env, ty, &inner_eff, depth);
                let h = self.cnt_handler(ty, eff);
                build::handle(h, Expr::nat(0), body)
            }
            _ => self.gen_leaf(env, ty),
        }
    }

    /// One of three `amb` handler templates at computation type `ty`.
    pub fn amb_handler(&mut self, ty: &Type, eff: &Effect) -> Handler {
        use build::*;
        let kind = self.rng.gen_range(0..3);
        let clause = match kind {
            0 => app(v("k"), pair(v("p"), Expr::tt())),
            1 => app(v("k"), pair(v("p"), Expr::ff())),
            _ => {
                // argmin over the two probed losses
                let_(
                    eff.clone(),
                    "y",
                    Type::loss(),
                    app(v("l"), pair(v("p"), Expr::tt())),
                    let_(
                        eff.clone(),
                        "z",
                        Type::loss(),
                        app(v("l"), pair(v("p"), Expr::ff())),
                        if_(
                            leq(v("y"), v("z")),
                            app(v("k"), pair(v("p"), Expr::tt())),
                            app(v("k"), pair(v("p"), Expr::ff())),
                        ),
                    ),
                )
            }
        };
        HandlerBuilder::new("amb", ty.clone(), ty.clone(), eff.clone())
            .on("decide", "p", "x", "l", "k", clause)
            .build()
    }

    /// The parameterized counter handler for `cnt` at computation type
    /// `ty`.
    pub fn cnt_handler(&mut self, ty: &Type, eff: &Effect) -> Handler {
        use build::*;
        HandlerBuilder::new("cnt", ty.clone(), ty.clone(), eff.clone())
            .par_ty(Type::Nat)
            .on(
                "tick",
                "p",
                "x",
                "l",
                "k",
                app(v("k"), pair(Expr::Succ(v("p").rc()), prim1("nat_to_loss", v("p")))),
            )
            .build()
    }

    /// Generates a closed program. `residual_amb` leaves `amb` unhandled
    /// (for giant-step adequacy testing); otherwise the program is fully
    /// handled.
    pub fn gen_program(&mut self, depth: u32, residual_amb: bool) -> GenProgram {
        let ty = match self.rng.gen_range(0..3) {
            0 => Type::loss(),
            1 => Type::bool(),
            _ => Type::unit(),
        };
        let eff = if residual_amb { Effect::single("amb") } else { Effect::empty() };
        let expr = self.gen_expr(&[], &ty, &eff, depth);
        GenProgram { expr, ty, eff }
    }
}

/// The argmin chooser for `decide`: probe both losses, resume with the
/// cheaper branch, ties to `true` — the λC form of the paper's §2.3
/// handler and the semantics the engine bridge's forced-path search
/// reproduces.
pub fn argmin_handler(ty: &Type, eff: &Effect) -> Handler {
    use build::*;
    HandlerBuilder::new("amb", ty.clone(), ty.clone(), eff.clone())
        .on(
            "decide",
            "p",
            "x",
            "l",
            "k",
            let_(
                eff.clone(),
                "y",
                Type::loss(),
                app(v("l"), pair(v("p"), Expr::tt())),
                let_(
                    eff.clone(),
                    "z",
                    Type::loss(),
                    app(v("l"), pair(v("p"), Expr::ff())),
                    if_(
                        leq(v("y"), v("z")),
                        app(v("k"), pair(v("p"), Expr::tt())),
                        app(v("k"), pair(v("p"), Expr::ff())),
                    ),
                ),
            ),
        )
        .build()
}

/// A deterministic deep `let` chain — no effects, every binder referenced
/// by the next one, so the substitution interpreter pays a full-body
/// clone per β-step while the environment machine pays one cons:
/// `x1 ← 1; x2 ← x1 + 1; …; xn`.
pub fn deep_let_chain(depth: u32) -> GenProgram {
    use build::*;
    let e0 = Effect::empty();
    let mut e = v(&format!("x{depth}"));
    for i in (1..=depth).rev() {
        let rhs = if i == 1 { lc(1.0) } else { add(v(&format!("x{}", i - 1)), lc(1.0)) };
        e = let_(e0.clone(), &format!("x{i}"), Type::loss(), rhs, e);
    }
    GenProgram { expr: e, ty: Type::loss(), eff: Effect::empty() }
}

/// A deterministic deep decide chain under one top-level argmin handler:
/// `choices` nested decisions, each emitting a non-negative loss that
/// depends on the decision (`true` costs `(7i mod 5)`, `false`
/// `(3i + 2 mod 5)`), returning the total. The probing handler evaluates
/// `O(2^choices)` futures — the workload where the compiled forced-path
/// search shines.
pub fn deep_decide_chain(choices: u32) -> GenProgram {
    use build::*;
    let eamb = Effect::single("amb");
    let mut body = lc(0.0);
    for i in (0..choices).rev() {
        let t = f64::from((7 * i) % 5);
        let f = f64::from((3 * i + 2) % 5);
        body = let_(
            eamb.clone(),
            &format!("b{i}"),
            Type::bool(),
            op("decide", unit()),
            seq(eamb.clone(), Type::unit(), loss(if_(v(&format!("b{i}")), lc(t), lc(f))), body),
        );
    }
    let expr = handle0(argmin_handler(&Type::loss(), &Effect::empty()), body);
    GenProgram { expr, ty: Type::loss(), eff: Effect::empty() }
}

impl ProgramGen {
    /// Generates a *search program*: a fully handled chain of `choices`
    /// decides under one top-level argmin handler, each decision followed
    /// by a random **non-negative** loss depending on the decisions so
    /// far, returning `0`. The fragment deliberately avoids
    /// `local`/`reset`/nested choosers so that minimising total emitted
    /// loss over forced decision paths coincides with the handler
    /// semantics — the corpus for the engine bridge's differential suite.
    pub fn gen_search_program(&mut self, choices: u32) -> GenProgram {
        use build::*;
        let eamb = Effect::single("amb");
        let mut bound: Vec<String> = Vec::new();
        let mut steps: Vec<(String, Expr)> = Vec::new();
        for i in 0..choices {
            let b = format!("b{i}");
            // Loss for this step: a sum of 1–2 decision-dependent
            // non-negative contributions over the variables bound so far.
            let mut contrib = self.nonneg_contrib(&b);
            for _ in 0..self.rng.gen_range(0..2_u32) {
                if let Some(prev) = self.pick_var(&bound) {
                    contrib = add(contrib, self.nonneg_contrib(&prev));
                }
            }
            bound.push(b.clone());
            steps.push((b, contrib));
        }
        let mut body: Expr = lc(0.0);
        for (b, contrib) in steps.into_iter().rev() {
            body = let_(
                eamb.clone(),
                &b,
                Type::bool(),
                op("decide", unit()),
                seq(eamb.clone(), Type::unit(), loss(contrib), body),
            );
        }
        let expr = handle0(argmin_handler(&Type::loss(), &Effect::empty()), body);
        GenProgram { expr, ty: Type::loss(), eff: Effect::empty() }
    }

    fn nonneg_contrib(&mut self, var: &str) -> Expr {
        use build::*;
        let t = f64::from(self.rng.gen_range(0..=5_u32));
        let f = f64::from(self.rng.gen_range(0..=5_u32));
        if_(v(var), lc(t), lc(f))
    }

    fn pick_var(&mut self, bound: &[String]) -> Option<String> {
        if bound.is_empty() {
            return None;
        }
        let i = self.rng.gen_range(0..bound.len());
        Some(bound[i].clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::typecheck::check_program;

    #[test]
    fn generated_programs_typecheck() {
        let sig = gen_signature();
        for seed in 0..200 {
            let mut g = ProgramGen::new(seed);
            let p = g.gen_program(4, seed % 3 == 0);
            let ty = check_program(&sig, &p.expr, &p.eff)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{}", p.expr));
            assert_eq!(ty, p.ty, "seed {seed}");
        }
    }

    #[test]
    fn generator_is_deterministic() {
        let a = ProgramGen::new(7).gen_program(4, false);
        let b = ProgramGen::new(7).gen_program(4, false);
        assert_eq!(a.expr, b.expr);
    }

    #[test]
    fn signature_is_well_founded() {
        assert!(gen_signature().check_well_founded().is_ok());
    }

    #[test]
    fn search_programs_typecheck_and_are_deterministic() {
        let sig = gen_signature();
        for seed in 0..40 {
            let mut g = ProgramGen::new(seed);
            let p = g.gen_search_program(1 + (seed % 5) as u32);
            let ty = check_program(&sig, &p.expr, &p.eff)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{}", p.expr));
            assert_eq!(ty, Type::loss());
        }
        let a = ProgramGen::new(3).gen_search_program(4);
        let b = ProgramGen::new(3).gen_search_program(4);
        assert_eq!(a.expr, b.expr);
    }

    #[test]
    fn deep_chains_typecheck_and_evaluate() {
        let sig = gen_signature();
        let p = deep_let_chain(40);
        assert_eq!(check_program(&sig, &p.expr, &p.eff).unwrap(), Type::loss());
        let out = crate::bigstep::eval_closed(&sig, p.expr, p.ty, p.eff).unwrap();
        assert_eq!(out.terminal, Expr::lossc(40.0));

        let p = deep_decide_chain(4);
        assert_eq!(check_program(&sig, &p.expr, &p.eff).unwrap(), Type::loss());
        let out = crate::bigstep::eval_closed(&sig, p.expr, p.ty, p.eff).unwrap();
        assert!(out.is_value());
        // Per-step minimum of {true-cost, false-cost}: min contributions
        // are independent here, so the argmin total is their sum.
        let expected: f64 = (0..4).map(|i| f64::from(((7 * i) % 5).min((3 * i + 2) % 5))).sum();
        assert_eq!(out.loss, crate::LossVal::scalar(expected));
    }
}
