//! Capture-avoiding substitution and free-variable computation.
//!
//! The operational semantics only ever substitutes *closed* values, but
//! handler bodies may mention outer variables (e.g. the hyperparameter
//! tuner closes over its grid), so substitution must descend into handlers
//! and rename binders when they would capture.

use crate::syntax::{Expr, Handler, OpClause, RetClause};
use std::collections::BTreeSet;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};

static FRESH: AtomicU64 = AtomicU64::new(0);

/// Generates a fresh variable name that cannot clash with user names
/// (user-facing builders reject `%`).
pub fn fresh(prefix: &str) -> String {
    let n = FRESH.fetch_add(1, Ordering::Relaxed);
    format!("%{prefix}{n}")
}

/// The free variables of an expression.
pub fn free_vars(e: &Expr) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    collect_free(e, &mut Vec::new(), &mut out);
    out
}

fn collect_free(e: &Expr, bound: &mut Vec<String>, out: &mut BTreeSet<String>) {
    match e {
        Expr::Const(_) | Expr::Zero | Expr::Nil(_) => {}
        Expr::Var(x) => {
            if !bound.iter().any(|b| b == x) {
                out.insert(x.clone());
            }
        }
        Expr::Prim(_, e) | Expr::Succ(e) | Expr::Loss(e) | Expr::Reset(e) | Expr::Proj(e, _) => {
            collect_free(e, bound, out)
        }
        Expr::Inl { e, .. } | Expr::Inr { e, .. } => collect_free(e, bound, out),
        Expr::Lam { var, body, .. } => {
            bound.push(var.clone());
            collect_free(body, bound, out);
            bound.pop();
        }
        Expr::App(a, b) | Expr::Cons(a, b) => {
            collect_free(a, bound, out);
            collect_free(b, bound, out);
        }
        Expr::Tuple(es) => es.iter().for_each(|e| collect_free(e, bound, out)),
        Expr::Cases { scrut, lvar, lbody, rvar, rbody, .. } => {
            collect_free(scrut, bound, out);
            bound.push(lvar.clone());
            collect_free(lbody, bound, out);
            bound.pop();
            bound.push(rvar.clone());
            collect_free(rbody, bound, out);
            bound.pop();
        }
        Expr::Iter(a, b, c) | Expr::Fold(a, b, c) => {
            collect_free(a, bound, out);
            collect_free(b, bound, out);
            collect_free(c, bound, out);
        }
        Expr::OpCall { arg, .. } => collect_free(arg, bound, out),
        Expr::Handle { handler, from, body } => {
            collect_free(from, bound, out);
            collect_free(body, bound, out);
            for c in &handler.clauses {
                let n = bound.len();
                bound.extend([c.p.clone(), c.x.clone(), c.l.clone(), c.k.clone()]);
                collect_free(&c.body, bound, out);
                bound.truncate(n);
            }
            let n = bound.len();
            bound.extend([handler.ret.p.clone(), handler.ret.x.clone()]);
            collect_free(&handler.ret.body, bound, out);
            bound.truncate(n);
        }
        Expr::Then { e, lam } => {
            collect_free(e, bound, out);
            collect_free(lam, bound, out);
        }
        Expr::Local { g, e, .. } => {
            collect_free(g, bound, out);
            collect_free(e, bound, out);
        }
    }
}

/// Capture-avoiding substitution `e[v / x]`.
pub fn subst(e: &Expr, x: &str, v: &Expr) -> Expr {
    let fv = free_vars(v);
    subst_in(e, x, v, &fv)
}

fn rc_subst(e: &Rc<Expr>, x: &str, v: &Expr, fv: &BTreeSet<String>) -> Rc<Expr> {
    Rc::new(subst_in(e, x, v, fv))
}

/// Renames `old` to `new_name` in `body` (used when avoiding capture).
fn rename(body: &Expr, old: &str, new_name: &str) -> Expr {
    subst(body, old, &Expr::Var(new_name.to_owned()))
}

/// Substitutes under one binder, renaming it if it would capture.
fn under_binder(
    var: &str,
    body: &Rc<Expr>,
    x: &str,
    v: &Expr,
    fv: &BTreeSet<String>,
) -> (String, Rc<Expr>) {
    if var == x {
        // x is shadowed: stop.
        (var.to_owned(), Rc::clone(body))
    } else if fv.contains(var) {
        let nv = fresh(var.trim_start_matches('%'));
        let renamed = rename(body, var, &nv);
        (nv, Rc::new(subst_in(&renamed, x, v, fv)))
    } else {
        (var.to_owned(), rc_subst(body, x, v, fv))
    }
}

/// Substitutes under several simultaneous binders (handler clauses).
fn under_binders(
    vars: &[&String],
    body: &Rc<Expr>,
    x: &str,
    v: &Expr,
    fv: &BTreeSet<String>,
) -> (Vec<String>, Rc<Expr>) {
    if vars.iter().any(|b| b.as_str() == x) {
        return (vars.iter().map(|s| (*s).clone()).collect(), Rc::clone(body));
    }
    let mut names: Vec<String> = Vec::with_capacity(vars.len());
    let mut body_cur: Expr = (**body).clone();
    for b in vars {
        if fv.contains(*b) {
            let nv = fresh(b.trim_start_matches('%'));
            body_cur = rename(&body_cur, b, &nv);
            names.push(nv);
        } else {
            names.push((*b).clone());
        }
    }
    (names, Rc::new(subst_in(&body_cur, x, v, fv)))
}

fn subst_in(e: &Expr, x: &str, v: &Expr, fv: &BTreeSet<String>) -> Expr {
    match e {
        Expr::Const(_) | Expr::Zero | Expr::Nil(_) => e.clone(),
        Expr::Var(y) => {
            if y == x {
                v.clone()
            } else {
                e.clone()
            }
        }
        Expr::Prim(name, a) => Expr::Prim(name.clone(), rc_subst(a, x, v, fv)),
        Expr::Lam { eff, var, ty, body } => {
            let (var, body) = under_binder(var, body, x, v, fv);
            Expr::Lam { eff: eff.clone(), var, ty: ty.clone(), body }
        }
        Expr::App(a, b) => Expr::App(rc_subst(a, x, v, fv), rc_subst(b, x, v, fv)),
        Expr::Tuple(es) => Expr::Tuple(es.iter().map(|e| rc_subst(e, x, v, fv)).collect()),
        Expr::Proj(a, i) => Expr::Proj(rc_subst(a, x, v, fv), *i),
        Expr::Inl { lty, rty, e } => {
            Expr::Inl { lty: lty.clone(), rty: rty.clone(), e: rc_subst(e, x, v, fv) }
        }
        Expr::Inr { lty, rty, e } => {
            Expr::Inr { lty: lty.clone(), rty: rty.clone(), e: rc_subst(e, x, v, fv) }
        }
        Expr::Cases { scrut, lvar, lty, lbody, rvar, rty, rbody } => {
            let scrut = rc_subst(scrut, x, v, fv);
            let (lvar, lbody) = under_binder(lvar, lbody, x, v, fv);
            let (rvar, rbody) = under_binder(rvar, rbody, x, v, fv);
            Expr::Cases { scrut, lvar, lty: lty.clone(), lbody, rvar, rty: rty.clone(), rbody }
        }
        Expr::Succ(a) => Expr::Succ(rc_subst(a, x, v, fv)),
        Expr::Iter(a, b, c) => {
            Expr::Iter(rc_subst(a, x, v, fv), rc_subst(b, x, v, fv), rc_subst(c, x, v, fv))
        }
        Expr::Cons(a, b) => Expr::Cons(rc_subst(a, x, v, fv), rc_subst(b, x, v, fv)),
        Expr::Fold(a, b, c) => {
            Expr::Fold(rc_subst(a, x, v, fv), rc_subst(b, x, v, fv), rc_subst(c, x, v, fv))
        }
        Expr::OpCall { op, arg } => Expr::OpCall { op: op.clone(), arg: rc_subst(arg, x, v, fv) },
        Expr::Loss(a) => Expr::Loss(rc_subst(a, x, v, fv)),
        Expr::Handle { handler, from, body } => {
            let from = rc_subst(from, x, v, fv);
            let body = rc_subst(body, x, v, fv);
            let clauses = handler
                .clauses
                .iter()
                .map(|c| {
                    let (names, cbody) =
                        under_binders(&[&c.p, &c.x, &c.l, &c.k], &c.body, x, v, fv);
                    OpClause {
                        op: c.op.clone(),
                        p: names[0].clone(),
                        x: names[1].clone(),
                        l: names[2].clone(),
                        k: names[3].clone(),
                        body: cbody,
                    }
                })
                .collect();
            let (rnames, rbody) =
                under_binders(&[&handler.ret.p, &handler.ret.x], &handler.ret.body, x, v, fv);
            let handler = Handler {
                label: handler.label.clone(),
                par_ty: handler.par_ty.clone(),
                body_ty: handler.body_ty.clone(),
                res_ty: handler.res_ty.clone(),
                eff: handler.eff.clone(),
                clauses,
                ret: RetClause { p: rnames[0].clone(), x: rnames[1].clone(), body: rbody },
            };
            Expr::Handle { handler: Rc::new(handler), from, body }
        }
        Expr::Then { e, lam } => {
            Expr::Then { e: rc_subst(e, x, v, fv), lam: rc_subst(lam, x, v, fv) }
        }
        Expr::Local { eff, g, e } => {
            Expr::Local { eff: eff.clone(), g: rc_subst(g, x, v, fv), e: rc_subst(e, x, v, fv) }
        }
        Expr::Reset(a) => Expr::Reset(rc_subst(a, x, v, fv)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Effect, Type};

    fn lam(var: &str, body: Expr) -> Expr {
        Expr::Lam { eff: Effect::empty(), var: var.into(), ty: Type::loss(), body: body.rc() }
    }

    #[test]
    fn subst_free_var() {
        let e = Expr::Var("x".into());
        assert_eq!(subst(&e, "x", &Expr::lossc(1.0)), Expr::lossc(1.0));
        assert_eq!(subst(&e, "y", &Expr::lossc(1.0)), e);
    }

    #[test]
    fn subst_stops_at_shadowing_binder() {
        let e = lam("x", Expr::Var("x".into()));
        assert_eq!(subst(&e, "x", &Expr::lossc(1.0)), e);
    }

    #[test]
    fn subst_descends_under_non_capturing_binder() {
        let e = lam("y", Expr::Var("x".into()));
        let r = subst(&e, "x", &Expr::lossc(2.0));
        assert_eq!(r, lam("y", Expr::lossc(2.0)));
    }

    #[test]
    fn capture_is_avoided() {
        // (λy. x)[x := y]  must rename the binder, not capture.
        let e = lam("y", Expr::App(Expr::Var("x".into()).rc(), Expr::Var("y".into()).rc()));
        let r = subst(&e, "x", &Expr::Var("y".into()));
        match r {
            Expr::Lam { var, body, .. } => {
                assert_ne!(var, "y");
                match body.as_ref() {
                    Expr::App(a, b) => {
                        assert_eq!(**a, Expr::Var("y".into()));
                        assert_eq!(**b, Expr::Var(var.clone()));
                    }
                    other => panic!("unexpected body {other:?}"),
                }
            }
            other => panic!("expected lambda, got {other:?}"),
        }
    }

    #[test]
    fn free_vars_of_handler_bodies() {
        use crate::syntax::{Handler, OpClause, RetClause};
        let h = Handler {
            label: "amb".into(),
            par_ty: Type::unit(),
            body_ty: Type::bool(),
            res_ty: Type::bool(),
            eff: Effect::empty(),
            clauses: vec![OpClause {
                op: "decide".into(),
                p: "p".into(),
                x: "x".into(),
                l: "l".into(),
                k: "k".into(),
                body: Expr::App(Expr::Var("k".into()).rc(), Expr::Var("grid".into()).rc()).rc(),
            }],
            ret: RetClause { p: "p".into(), x: "x".into(), body: Expr::Var("x".into()).rc() },
        };
        let e = Expr::Handle {
            handler: Rc::new(h),
            from: Expr::unit().rc(),
            body: Expr::Var("prog".into()).rc(),
        };
        let fv = free_vars(&e);
        assert!(fv.contains("grid"));
        assert!(fv.contains("prog"));
        assert!(!fv.contains("k"));
    }

    #[test]
    fn subst_into_handler_clause() {
        use crate::syntax::{Handler, OpClause, RetClause};
        let h = Handler {
            label: "amb".into(),
            par_ty: Type::unit(),
            body_ty: Type::bool(),
            res_ty: Type::bool(),
            eff: Effect::empty(),
            clauses: vec![OpClause {
                op: "decide".into(),
                p: "p".into(),
                x: "x".into(),
                l: "l".into(),
                k: "k".into(),
                body: Expr::Var("free".into()).rc(),
            }],
            ret: RetClause { p: "p".into(), x: "x".into(), body: Expr::Var("x".into()).rc() },
        };
        let e =
            Expr::Handle { handler: Rc::new(h), from: Expr::unit().rc(), body: Expr::tt().rc() };
        let r = subst(&e, "free", &Expr::lossc(9.0));
        match r {
            Expr::Handle { handler, .. } => {
                assert_eq!(*handler.clauses[0].body, Expr::lossc(9.0));
            }
            other => panic!("expected handle, got {other:?}"),
        }
    }

    #[test]
    fn fresh_names_are_distinct() {
        let a = fresh("x");
        let b = fresh("x");
        assert_ne!(a, b);
        assert!(a.starts_with('%'));
    }
}
