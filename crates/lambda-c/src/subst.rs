//! Capture-avoiding substitution and free-variable computation.
//!
//! The operational semantics only ever substitutes *closed* values, but
//! handler bodies may mention outer variables (e.g. the hyperparameter
//! tuner closes over its grid), so substitution must descend into handlers
//! and rename binders when they would capture.

use crate::syntax::{Expr, Handler, OpClause, RetClause};
use std::collections::BTreeSet;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};

static FRESH: AtomicU64 = AtomicU64::new(0);

/// Generates a fresh variable name that cannot clash with user names
/// (user-facing builders reject `%`).
pub fn fresh(prefix: &str) -> String {
    // ordering: Relaxed — fresh names only need uniqueness, which the
    // RMW guarantees under any ordering.
    let n = FRESH.fetch_add(1, Ordering::Relaxed);
    format!("%{prefix}{n}")
}

/// The free variables of an expression.
pub fn free_vars(e: &Expr) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    collect_free(e, &mut Vec::new(), &mut out);
    out
}

fn collect_free(e: &Expr, bound: &mut Vec<String>, out: &mut BTreeSet<String>) {
    match e {
        Expr::Const(_) | Expr::Zero | Expr::Nil(_) => {}
        Expr::Var(x) => {
            if !bound.iter().any(|b| b == x) {
                out.insert(x.clone());
            }
        }
        Expr::Prim(_, e) | Expr::Succ(e) | Expr::Loss(e) | Expr::Reset(e) | Expr::Proj(e, _) => {
            collect_free(e, bound, out)
        }
        Expr::Inl { e, .. } | Expr::Inr { e, .. } => collect_free(e, bound, out),
        Expr::Lam { var, body, .. } => {
            bound.push(var.clone());
            collect_free(body, bound, out);
            bound.pop();
        }
        Expr::App(a, b) | Expr::Cons(a, b) => {
            collect_free(a, bound, out);
            collect_free(b, bound, out);
        }
        Expr::Tuple(es) => es.iter().for_each(|e| collect_free(e, bound, out)),
        Expr::Cases { scrut, lvar, lbody, rvar, rbody, .. } => {
            collect_free(scrut, bound, out);
            bound.push(lvar.clone());
            collect_free(lbody, bound, out);
            bound.pop();
            bound.push(rvar.clone());
            collect_free(rbody, bound, out);
            bound.pop();
        }
        Expr::Iter(a, b, c) | Expr::Fold(a, b, c) => {
            collect_free(a, bound, out);
            collect_free(b, bound, out);
            collect_free(c, bound, out);
        }
        Expr::OpCall { arg, .. } => collect_free(arg, bound, out),
        Expr::Handle { handler, from, body } => {
            collect_free(from, bound, out);
            collect_free(body, bound, out);
            for c in &handler.clauses {
                let n = bound.len();
                bound.extend([c.p.clone(), c.x.clone(), c.l.clone(), c.k.clone()]);
                collect_free(&c.body, bound, out);
                bound.truncate(n);
            }
            let n = bound.len();
            bound.extend([handler.ret.p.clone(), handler.ret.x.clone()]);
            collect_free(&handler.ret.body, bound, out);
            bound.truncate(n);
        }
        Expr::Then { e, lam } => {
            collect_free(e, bound, out);
            collect_free(lam, bound, out);
        }
        Expr::Local { g, e, .. } => {
            collect_free(g, bound, out);
            collect_free(e, bound, out);
        }
    }
}

/// One pending replacement `from ↦ to` of a simultaneous substitution,
/// with the free variables of `to` cached for the capture test.
#[derive(Clone)]
struct Binding {
    from: String,
    to: Expr,
    fv: BTreeSet<String>,
}

/// Capture-avoiding substitution `e[v / x]`.
///
/// Binder renaming is *fused* into the substitution itself: when a binder
/// would capture a free variable of `v`, the rename of that binder is
/// added to the simultaneous substitution and carried along in the same
/// traversal, instead of rewriting the whole body once per renamed binder
/// and then substituting in a second pass.
pub fn subst(e: &Expr, x: &str, v: &Expr) -> Expr {
    let fv = free_vars(v);
    subst_in(e, &[Binding { from: x.to_owned(), to: v.clone(), fv }])
}

fn rc_subst(e: &Rc<Expr>, subs: &[Binding]) -> Rc<Expr> {
    Rc::new(subst_in(e, subs))
}

/// Substitutes under one binder: drops bindings the binder shadows and, if
/// the binder would capture, renames it by *extending* the substitution
/// with `var ↦ nv` — one traversal of the body regardless of renames.
fn under_binder(var: &str, body: &Rc<Expr>, subs: &[Binding]) -> (String, Rc<Expr>) {
    let shadows = subs.iter().any(|s| s.from == var);
    let captures = subs.iter().any(|s| s.from != var && s.fv.contains(var));
    if !shadows && !captures {
        // Common case (closed replacements): no shadowing, no capture.
        return (var.to_owned(), rc_subst(body, subs));
    }
    let mut active: Vec<Binding> = subs.iter().filter(|s| s.from != var).cloned().collect();
    let name = if captures {
        let nv = fresh(var.trim_start_matches('%'));
        let fv = BTreeSet::from([nv.clone()]);
        active.push(Binding { from: var.to_owned(), to: Expr::Var(nv.clone()), fv });
        nv
    } else {
        var.to_owned()
    };
    if active.is_empty() {
        return (name, Rc::clone(body));
    }
    (name, rc_subst(body, &active))
}

/// Substitutes under several simultaneous binders (handler clauses), with
/// the same single-pass rename fusion as [`under_binder`].
fn under_binders(vars: &[&String], body: &Rc<Expr>, subs: &[Binding]) -> (Vec<String>, Rc<Expr>) {
    // Bindings shadowed by one of the binders stop here.
    let mut active: Vec<Binding> =
        subs.iter().filter(|s| !vars.iter().any(|b| **b == s.from)).cloned().collect();
    let mut names: Vec<String> = Vec::with_capacity(vars.len());
    for b in vars {
        if active.iter().any(|s| s.fv.contains(*b)) {
            // `b` would capture a free variable of some replacement:
            // rename it via the same simultaneous substitution.
            let nv = fresh(b.trim_start_matches('%'));
            let fv = BTreeSet::from([nv.clone()]);
            active.push(Binding { from: (*b).clone(), to: Expr::Var(nv.clone()), fv });
            names.push(nv);
        } else {
            names.push((*b).clone());
        }
    }
    if active.is_empty() {
        // Everything shadowed: the body is untouched.
        return (names, Rc::clone(body));
    }
    (names, rc_subst(body, &active))
}

fn subst_in(e: &Expr, subs: &[Binding]) -> Expr {
    match e {
        Expr::Const(_) | Expr::Zero | Expr::Nil(_) => e.clone(),
        Expr::Var(y) => match subs.iter().find(|s| s.from == *y) {
            Some(s) => s.to.clone(),
            None => e.clone(),
        },
        Expr::Prim(name, a) => Expr::Prim(name.clone(), rc_subst(a, subs)),
        Expr::Lam { eff, var, ty, body } => {
            let (var, body) = under_binder(var, body, subs);
            Expr::Lam { eff: eff.clone(), var, ty: ty.clone(), body }
        }
        Expr::App(a, b) => Expr::App(rc_subst(a, subs), rc_subst(b, subs)),
        Expr::Tuple(es) => Expr::Tuple(es.iter().map(|e| rc_subst(e, subs)).collect()),
        Expr::Proj(a, i) => Expr::Proj(rc_subst(a, subs), *i),
        Expr::Inl { lty, rty, e } => {
            Expr::Inl { lty: lty.clone(), rty: rty.clone(), e: rc_subst(e, subs) }
        }
        Expr::Inr { lty, rty, e } => {
            Expr::Inr { lty: lty.clone(), rty: rty.clone(), e: rc_subst(e, subs) }
        }
        Expr::Cases { scrut, lvar, lty, lbody, rvar, rty, rbody } => {
            let scrut = rc_subst(scrut, subs);
            let (lvar, lbody) = under_binder(lvar, lbody, subs);
            let (rvar, rbody) = under_binder(rvar, rbody, subs);
            Expr::Cases { scrut, lvar, lty: lty.clone(), lbody, rvar, rty: rty.clone(), rbody }
        }
        Expr::Succ(a) => Expr::Succ(rc_subst(a, subs)),
        Expr::Iter(a, b, c) => Expr::Iter(rc_subst(a, subs), rc_subst(b, subs), rc_subst(c, subs)),
        Expr::Cons(a, b) => Expr::Cons(rc_subst(a, subs), rc_subst(b, subs)),
        Expr::Fold(a, b, c) => Expr::Fold(rc_subst(a, subs), rc_subst(b, subs), rc_subst(c, subs)),
        Expr::OpCall { op, arg } => Expr::OpCall { op: op.clone(), arg: rc_subst(arg, subs) },
        Expr::Loss(a) => Expr::Loss(rc_subst(a, subs)),
        Expr::Handle { handler, from, body } => {
            let from = rc_subst(from, subs);
            let body = rc_subst(body, subs);
            let clauses = handler
                .clauses
                .iter()
                .map(|c| {
                    let (names, cbody) = under_binders(&[&c.p, &c.x, &c.l, &c.k], &c.body, subs);
                    OpClause {
                        op: c.op.clone(),
                        p: names[0].clone(),
                        x: names[1].clone(),
                        l: names[2].clone(),
                        k: names[3].clone(),
                        body: cbody,
                    }
                })
                .collect();
            let (rnames, rbody) =
                under_binders(&[&handler.ret.p, &handler.ret.x], &handler.ret.body, subs);
            let handler = Handler {
                label: handler.label.clone(),
                par_ty: handler.par_ty.clone(),
                body_ty: handler.body_ty.clone(),
                res_ty: handler.res_ty.clone(),
                eff: handler.eff.clone(),
                clauses,
                ret: RetClause { p: rnames[0].clone(), x: rnames[1].clone(), body: rbody },
            };
            Expr::Handle { handler: Rc::new(handler), from, body }
        }
        Expr::Then { e, lam } => Expr::Then { e: rc_subst(e, subs), lam: rc_subst(lam, subs) },
        Expr::Local { eff, g, e } => {
            Expr::Local { eff: eff.clone(), g: rc_subst(g, subs), e: rc_subst(e, subs) }
        }
        Expr::Reset(a) => Expr::Reset(rc_subst(a, subs)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Effect, Type};

    fn lam(var: &str, body: Expr) -> Expr {
        Expr::Lam { eff: Effect::empty(), var: var.into(), ty: Type::loss(), body: body.rc() }
    }

    #[test]
    fn subst_free_var() {
        let e = Expr::Var("x".into());
        assert_eq!(subst(&e, "x", &Expr::lossc(1.0)), Expr::lossc(1.0));
        assert_eq!(subst(&e, "y", &Expr::lossc(1.0)), e);
    }

    #[test]
    fn subst_stops_at_shadowing_binder() {
        let e = lam("x", Expr::Var("x".into()));
        assert_eq!(subst(&e, "x", &Expr::lossc(1.0)), e);
    }

    #[test]
    fn subst_descends_under_non_capturing_binder() {
        let e = lam("y", Expr::Var("x".into()));
        let r = subst(&e, "x", &Expr::lossc(2.0));
        assert_eq!(r, lam("y", Expr::lossc(2.0)));
    }

    #[test]
    fn capture_is_avoided() {
        // (λy. x)[x := y]  must rename the binder, not capture.
        let e = lam("y", Expr::App(Expr::Var("x".into()).rc(), Expr::Var("y".into()).rc()));
        let r = subst(&e, "x", &Expr::Var("y".into()));
        match r {
            Expr::Lam { var, body, .. } => {
                assert_ne!(var, "y");
                match body.as_ref() {
                    Expr::App(a, b) => {
                        assert_eq!(**a, Expr::Var("y".into()));
                        assert_eq!(**b, Expr::Var(var.clone()));
                    }
                    other => panic!("unexpected body {other:?}"),
                }
            }
            other => panic!("expected lambda, got {other:?}"),
        }
    }

    #[test]
    fn free_vars_of_handler_bodies() {
        use crate::syntax::{Handler, OpClause, RetClause};
        let h = Handler {
            label: "amb".into(),
            par_ty: Type::unit(),
            body_ty: Type::bool(),
            res_ty: Type::bool(),
            eff: Effect::empty(),
            clauses: vec![OpClause {
                op: "decide".into(),
                p: "p".into(),
                x: "x".into(),
                l: "l".into(),
                k: "k".into(),
                body: Expr::App(Expr::Var("k".into()).rc(), Expr::Var("grid".into()).rc()).rc(),
            }],
            ret: RetClause { p: "p".into(), x: "x".into(), body: Expr::Var("x".into()).rc() },
        };
        let e = Expr::Handle {
            handler: Rc::new(h),
            from: Expr::unit().rc(),
            body: Expr::Var("prog".into()).rc(),
        };
        let fv = free_vars(&e);
        assert!(fv.contains("grid"));
        assert!(fv.contains("prog"));
        assert!(!fv.contains("k"));
    }

    #[test]
    fn subst_into_handler_clause() {
        use crate::syntax::{Handler, OpClause, RetClause};
        let h = Handler {
            label: "amb".into(),
            par_ty: Type::unit(),
            body_ty: Type::bool(),
            res_ty: Type::bool(),
            eff: Effect::empty(),
            clauses: vec![OpClause {
                op: "decide".into(),
                p: "p".into(),
                x: "x".into(),
                l: "l".into(),
                k: "k".into(),
                body: Expr::Var("free".into()).rc(),
            }],
            ret: RetClause { p: "p".into(), x: "x".into(), body: Expr::Var("x".into()).rc() },
        };
        let e =
            Expr::Handle { handler: Rc::new(h), from: Expr::unit().rc(), body: Expr::tt().rc() };
        let r = subst(&e, "free", &Expr::lossc(9.0));
        match r {
            Expr::Handle { handler, .. } => {
                assert_eq!(*handler.clauses[0].body, Expr::lossc(9.0));
            }
            other => panic!("expected handle, got {other:?}"),
        }
    }

    #[test]
    fn fresh_names_are_distinct() {
        let a = fresh("x");
        let b = fresh("x");
        assert_ne!(a, b);
        assert!(a.starts_with('%'));
    }

    /// Regression test for the fused rename+subst pass: a deep tower of
    /// binders that *all* capture the substituted value's free variable
    /// must rename every level exactly once, capture nothing, and leave
    /// the variable occurrences pointing at the right binders.
    #[test]
    fn deep_capturing_nesting_renames_every_level() {
        const DEPTH: usize = 400;
        // e = λy. λy. … λy. add(x, y)   (DEPTH nested binders, all "y")
        let mut e = Expr::Prim(
            "add".into(),
            Expr::Tuple(vec![Expr::Var("x".into()).rc(), Expr::Var("y".into()).rc()]).rc(),
        );
        for _ in 0..DEPTH {
            e = lam("y", e);
        }
        let r = subst(&e, "x", &Expr::Var("y".into()));
        // No capture: the substituted `y` is still free afterwards…
        let fv = free_vars(&r);
        assert_eq!(fv, BTreeSet::from(["y".to_owned()]));
        // …every binder on the spine was renamed away from "y"…
        let mut cur = &r;
        let mut innermost = String::new();
        for level in 0..DEPTH {
            match cur {
                Expr::Lam { var, body, .. } => {
                    assert_ne!(var, "y", "binder at level {level} would capture");
                    innermost = var.clone();
                    cur = body;
                }
                other => panic!("expected lambda at level {level}, got {other:?}"),
            }
        }
        // …and the body references the free `y` plus the innermost binder.
        match cur {
            Expr::Prim(_, arg) => match arg.as_ref() {
                Expr::Tuple(es) => {
                    assert_eq!(*es[0], Expr::Var("y".into()));
                    assert_eq!(*es[1], Expr::Var(innermost));
                }
                other => panic!("expected tuple, got {other:?}"),
            },
            other => panic!("expected prim, got {other:?}"),
        }
    }

    /// The shadow/no-capture fast paths of the fused pass must keep the
    /// old semantics on a deep tower where only the *innermost* binder
    /// shadows.
    #[test]
    fn deep_nesting_with_inner_shadowing_stops_at_the_shadow() {
        const DEPTH: usize = 200;
        // e = λa1. λa2. … λa_DEPTH. λx. x  — substituting for x is a no-op.
        let mut e = lam("x", Expr::Var("x".into()));
        for i in (0..DEPTH).rev() {
            e = lam(&format!("a{i}"), e);
        }
        let r = subst(&e, "x", &Expr::lossc(1.0));
        assert_eq!(r, e, "shadowed substitution must leave the term alone");
    }
}
