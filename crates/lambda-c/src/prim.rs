//! Primitive (first-order) functions `f : σ → τ` and ground values.
//!
//! The paper assumes a stock of basic functions on first-order types,
//! including `+ : (loss, loss) → loss`, and deterministic total reductions
//! `f(v) → v'` for them (rule R1). [`Ground`] is the shared first-order
//! value representation used both by the operational semantics (converted
//! from syntactic values) and by the denotational semantics, so the two
//! interpreters agree on primitives by construction.

use crate::loss::LossVal;
use crate::syntax::{Const, Expr};
use crate::types::{BaseTy, Type};
use std::fmt;
use std::rc::Rc;

/// A first-order ("ground") value.
#[derive(Clone, Debug, PartialEq)]
pub enum Ground {
    /// A loss.
    Loss(LossVal),
    /// A character.
    Char(char),
    /// A string.
    Str(String),
    /// A natural number.
    Nat(u64),
    /// A tuple.
    Tuple(Vec<Ground>),
    /// A sum: `false` = left, `true` = right. Booleans are `Sum(left ())` =
    /// true, `Sum(right ())` = false, mirroring `inl`/`inr` on units.
    Sum(bool, Box<Ground>),
    /// A list.
    List(Vec<Ground>),
}

impl Ground {
    /// The unit value.
    pub fn unit() -> Ground {
        Ground::Tuple(Vec::new())
    }

    /// Boolean encoding: `inl ()` is true, `inr ()` is false.
    pub fn bool(b: bool) -> Ground {
        Ground::Sum(!b, Box::new(Ground::unit()))
    }

    /// Reads a boolean back.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Ground::Sum(is_right, payload) if **payload == Ground::unit() => Some(!is_right),
            _ => None,
        }
    }

    /// Reads a scalar loss back.
    pub fn as_loss(&self) -> Option<&LossVal> {
        match self {
            Ground::Loss(l) => Some(l),
            _ => None,
        }
    }
}

impl fmt::Display for Ground {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ground::Loss(l) => write!(f, "{l}"),
            Ground::Char(c) => write!(f, "'{c}'"),
            Ground::Str(s) => write!(f, "{s:?}"),
            Ground::Nat(n) => write!(f, "{n}"),
            Ground::Tuple(gs) => {
                write!(f, "(")?;
                for (i, g) in gs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{g}")?;
                }
                write!(f, ")")
            }
            Ground::Sum(false, g) => write!(f, "inl({g})"),
            Ground::Sum(true, g) => write!(f, "inr({g})"),
            Ground::List(gs) => {
                write!(f, "[")?;
                for (i, g) in gs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{g}")?;
                }
                write!(f, "]")
            }
        }
    }
}

/// Converts a *closed, first-order* syntactic value to a ground value.
pub fn value_to_ground(e: &Expr) -> Option<Ground> {
    match e {
        Expr::Const(Const::Loss(l)) => Some(Ground::Loss(l.clone())),
        Expr::Const(Const::Char(c)) => Some(Ground::Char(*c)),
        Expr::Const(Const::Str(s)) => Some(Ground::Str(s.clone())),
        Expr::Zero => Some(Ground::Nat(0)),
        Expr::Succ(e) => match value_to_ground(e)? {
            Ground::Nat(n) => Some(Ground::Nat(n + 1)),
            _ => None,
        },
        Expr::Tuple(es) => {
            let gs: Option<Vec<Ground>> = es.iter().map(|e| value_to_ground(e)).collect();
            Some(Ground::Tuple(gs?))
        }
        Expr::Inl { e, .. } => Some(Ground::Sum(false, Box::new(value_to_ground(e)?))),
        Expr::Inr { e, .. } => Some(Ground::Sum(true, Box::new(value_to_ground(e)?))),
        Expr::Nil(_) => Some(Ground::List(Vec::new())),
        Expr::Cons(h, t) => {
            let h = value_to_ground(h)?;
            match value_to_ground(t)? {
                Ground::List(mut gs) => {
                    gs.insert(0, h);
                    Some(Ground::List(gs))
                }
                _ => None,
            }
        }
        _ => None,
    }
}

/// Converts a ground value back to a syntactic value of the given type (the
/// type supplies `inl`/`inr` and `nil` annotations).
pub fn ground_to_value(g: &Ground, ty: &Type) -> Expr {
    match (g, ty) {
        (Ground::Loss(l), _) => Expr::Const(Const::Loss(l.clone())),
        (Ground::Char(c), _) => Expr::Const(Const::Char(*c)),
        (Ground::Str(s), _) => Expr::Const(Const::Str(s.clone())),
        (Ground::Nat(n), _) => Expr::nat(*n),
        (Ground::Tuple(gs), Type::Tuple(ts)) => {
            Expr::Tuple(gs.iter().zip(ts).map(|(g, t)| ground_to_value(g, t).rc()).collect())
        }
        (Ground::Sum(false, g), Type::Sum(a, b)) => {
            Expr::Inl { lty: (**a).clone(), rty: (**b).clone(), e: ground_to_value(g, a).rc() }
        }
        (Ground::Sum(true, g), Type::Sum(a, b)) => {
            Expr::Inr { lty: (**a).clone(), rty: (**b).clone(), e: ground_to_value(g, b).rc() }
        }
        (Ground::List(gs), Type::List(t)) => {
            Expr::list((**t).clone(), gs.iter().map(|g| ground_to_value(g, t)).collect())
        }
        // Shape mismatches only arise on ill-typed inputs; produce something
        // inert rather than panicking so error paths stay debuggable.
        _ => Expr::unit(),
    }
}

/// A primitive function: typing plus a total evaluator on ground values.
/// The reduction function of a primitive: `f(v) -> v'` on ground values.
pub type PrimEval = Rc<dyn Fn(&Ground) -> Result<Ground, String>>;

#[derive(Clone)]
pub struct PrimDef {
    /// Argument type `σ` (first-order).
    pub arg_ty: Type,
    /// Result type `τ` (first-order).
    pub ret_ty: Type,
    /// The reduction `f(v) → v'`.
    pub eval: PrimEval,
}

impl fmt::Debug for PrimDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PrimDef({} -> {})", self.arg_ty, self.ret_ty)
    }
}

fn scalar2(g: &Ground) -> Result<(f64, f64), String> {
    match g {
        Ground::Tuple(gs) if gs.len() == 2 => {
            let a = gs[0].as_loss().ok_or("expected loss")?.as_scalar();
            let b = gs[1].as_loss().ok_or("expected loss")?.as_scalar();
            Ok((a, b))
        }
        _ => Err(format!("expected a pair of losses, got {g}")),
    }
}

fn loss2(g: &Ground) -> Result<(LossVal, LossVal), String> {
    match g {
        Ground::Tuple(gs) if gs.len() == 2 => {
            let a = gs[0].as_loss().ok_or("expected loss")?.clone();
            let b = gs[1].as_loss().ok_or("expected loss")?.clone();
            Ok((a, b))
        }
        _ => Err(format!("expected a pair of losses, got {g}")),
    }
}

fn scalar1(g: &Ground) -> Result<f64, String> {
    g.as_loss().map(|l| l.as_scalar()).ok_or_else(|| format!("expected a loss, got {g}"))
}

/// Looks up a primitive by name. The table covers everything the paper's
/// examples need: loss arithmetic and comparisons, pair-loss construction
/// and projections (for two-player objectives), character/string helpers,
/// and `nat → loss` conversion.
pub fn prim_lookup(name: &str) -> Option<PrimDef> {
    let loss2_ty = Type::Tuple(vec![Type::loss(), Type::loss()]);
    let def = |arg_ty: Type, ret_ty: Type, f: PrimEval| Some(PrimDef { arg_ty, ret_ty, eval: f });
    match name {
        "add" => def(
            loss2_ty,
            Type::loss(),
            Rc::new(|g| {
                let (a, b) = loss2(g)?;
                Ok(Ground::Loss(a.add(&b)))
            }),
        ),
        "sub" => def(
            loss2_ty,
            Type::loss(),
            Rc::new(|g| {
                let (a, b) = scalar2(g)?;
                Ok(Ground::Loss(LossVal::scalar(a - b)))
            }),
        ),
        "mul" => def(
            loss2_ty,
            Type::loss(),
            Rc::new(|g| {
                let (a, b) = scalar2(g)?;
                Ok(Ground::Loss(LossVal::scalar(a * b)))
            }),
        ),
        "neg" => def(
            Type::loss(),
            Type::loss(),
            Rc::new(|g| Ok(Ground::Loss(LossVal::scalar(-scalar1(g)?)))),
        ),
        // Comparisons use the workspace's total order (`f64::total_cmp` on
        // the scalar reading, see `LossVal::cmp_scalar`), not the partial
        // `<`/`<=`: argmin/argmax handler paths built from these must pick
        // deterministic NaN/tie winners, identical across the smallstep,
        // bigstep, and compiled evaluators and across engine reductions.
        "leq" => def(
            loss2_ty,
            Type::bool(),
            Rc::new(|g| {
                let (a, b) = loss2(g)?;
                Ok(Ground::bool(a.cmp_scalar(&b) != std::cmp::Ordering::Greater))
            }),
        ),
        "lt" => def(
            loss2_ty,
            Type::bool(),
            Rc::new(|g| {
                let (a, b) = loss2(g)?;
                Ok(Ground::bool(a.cmp_scalar(&b) == std::cmp::Ordering::Less))
            }),
        ),
        "pair_loss" => def(
            loss2_ty,
            Type::loss(),
            Rc::new(|g| {
                let (a, b) = scalar2(g)?;
                Ok(Ground::Loss(LossVal::pair(a, b)))
            }),
        ),
        "fst_loss" => def(
            Type::loss(),
            Type::loss(),
            Rc::new(|g| {
                let l = g.as_loss().ok_or("expected loss")?;
                Ok(Ground::Loss(LossVal::scalar(l.component(0))))
            }),
        ),
        "snd_loss" => def(
            Type::loss(),
            Type::loss(),
            Rc::new(|g| {
                let l = g.as_loss().ok_or("expected loss")?;
                Ok(Ground::Loss(LossVal::scalar(l.component(1))))
            }),
        ),
        "eq_char" => def(
            Type::Tuple(vec![Type::Base(BaseTy::Char), Type::Base(BaseTy::Char)]),
            Type::bool(),
            Rc::new(|g| match g {
                Ground::Tuple(gs) if gs.len() == 2 => match (&gs[0], &gs[1]) {
                    (Ground::Char(a), Ground::Char(b)) => Ok(Ground::bool(a == b)),
                    _ => Err("expected chars".into()),
                },
                _ => Err("expected a pair of chars".into()),
            }),
        ),
        "str_len" => def(
            Type::Base(BaseTy::Str),
            Type::loss(),
            Rc::new(|g| match g {
                Ground::Str(s) => Ok(Ground::Loss(LossVal::scalar(s.chars().count() as f64))),
                _ => Err("expected a string".into()),
            }),
        ),
        "str_distinct" => def(
            Type::Base(BaseTy::Str),
            Type::loss(),
            Rc::new(|g| match g {
                Ground::Str(s) => {
                    let set: std::collections::BTreeSet<char> = s.chars().collect();
                    Ok(Ground::Loss(LossVal::scalar(set.len() as f64)))
                }
                _ => Err("expected a string".into()),
            }),
        ),
        "str_append" => def(
            Type::Tuple(vec![Type::Base(BaseTy::Str), Type::Base(BaseTy::Str)]),
            Type::Base(BaseTy::Str),
            Rc::new(|g| match g {
                Ground::Tuple(gs) if gs.len() == 2 => match (&gs[0], &gs[1]) {
                    (Ground::Str(a), Ground::Str(b)) => Ok(Ground::Str(format!("{a}{b}"))),
                    _ => Err("expected strings".into()),
                },
                _ => Err("expected a pair of strings".into()),
            }),
        ),
        "nat_to_loss" => def(
            Type::Nat,
            Type::loss(),
            Rc::new(|g| match g {
                Ground::Nat(n) => Ok(Ground::Loss(LossVal::scalar(*n as f64))),
                _ => Err("expected a nat".into()),
            }),
        ),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(name: &str, arg: Ground) -> Ground {
        (prim_lookup(name).unwrap().eval)(&arg).unwrap()
    }

    #[test]
    fn arithmetic() {
        let two = Ground::Loss(LossVal::scalar(2.0));
        let three = Ground::Loss(LossVal::scalar(3.0));
        assert_eq!(
            run("add", Ground::Tuple(vec![two.clone(), three.clone()])),
            Ground::Loss(LossVal::scalar(5.0))
        );
        assert_eq!(
            run("mul", Ground::Tuple(vec![two.clone(), three.clone()])),
            Ground::Loss(LossVal::scalar(6.0))
        );
        assert_eq!(
            run("sub", Ground::Tuple(vec![two.clone(), three.clone()])),
            Ground::Loss(LossVal::scalar(-1.0))
        );
        assert_eq!(run("neg", two), Ground::Loss(LossVal::scalar(-2.0)));
    }

    #[test]
    fn add_on_pair_losses_is_elementwise() {
        let a = Ground::Loss(LossVal::pair(1.0, 2.0));
        let b = Ground::Loss(LossVal::pair(3.0, 4.0));
        assert_eq!(run("add", Ground::Tuple(vec![a, b])), Ground::Loss(LossVal::pair(4.0, 6.0)));
    }

    #[test]
    fn comparisons() {
        let p = |a: f64, b: f64| {
            Ground::Tuple(vec![Ground::Loss(LossVal::scalar(a)), Ground::Loss(LossVal::scalar(b))])
        };
        assert_eq!(run("leq", p(2.0, 2.0)).as_bool(), Some(true));
        assert_eq!(run("lt", p(2.0, 2.0)).as_bool(), Some(false));
        assert_eq!(run("lt", p(1.0, 2.0)).as_bool(), Some(true));
    }

    #[test]
    fn comparisons_are_total_on_nan_and_signed_zero() {
        let p = |a: f64, b: f64| {
            Ground::Tuple(vec![Ground::Loss(LossVal::scalar(a)), Ground::Loss(LossVal::scalar(b))])
        };
        // NaN sorts above +inf under total_cmp, so these are deterministic
        // (plain `<=` would answer false for every NaN comparison).
        assert_eq!(run("leq", p(f64::NAN, f64::INFINITY)).as_bool(), Some(false));
        assert_eq!(run("leq", p(f64::INFINITY, f64::NAN)).as_bool(), Some(true));
        assert_eq!(run("leq", p(f64::NAN, f64::NAN)).as_bool(), Some(true));
        assert_eq!(run("lt", p(f64::NAN, f64::NAN)).as_bool(), Some(false));
        assert_eq!(run("leq", p(-0.0, 0.0)).as_bool(), Some(true));
        assert_eq!(run("leq", p(0.0, -0.0)).as_bool(), Some(false), "total order: +0 > -0");
    }

    #[test]
    fn pair_loss_roundtrip() {
        let p = Ground::Tuple(vec![
            Ground::Loss(LossVal::scalar(3.0)),
            Ground::Loss(LossVal::scalar(5.0)),
        ]);
        let pl = run("pair_loss", p);
        assert_eq!(pl, Ground::Loss(LossVal::pair(3.0, 5.0)));
        assert_eq!(run("fst_loss", pl.clone()), Ground::Loss(LossVal::scalar(3.0)));
        assert_eq!(run("snd_loss", pl), Ground::Loss(LossVal::scalar(5.0)));
    }

    #[test]
    fn string_prims() {
        assert_eq!(run("str_len", Ground::Str("abc".into())), Ground::Loss(LossVal::scalar(3.0)));
        assert_eq!(
            run("str_distinct", Ground::Str("aabb".into())),
            Ground::Loss(LossVal::scalar(2.0))
        );
        assert_eq!(
            run(
                "str_append",
                Ground::Tuple(vec![Ground::Str("pass ".into()), Ground::Str("abc".into())])
            ),
            Ground::Str("pass abc".into())
        );
    }

    #[test]
    fn ground_value_roundtrip() {
        let ty = Type::Tuple(vec![Type::bool(), Type::List(Box::new(Type::Nat))]);
        let v = Expr::Tuple(vec![
            Expr::tt().rc(),
            Expr::list(Type::Nat, vec![Expr::nat(1), Expr::nat(2)]).rc(),
        ]);
        let g = value_to_ground(&v).unwrap();
        assert_eq!(
            g,
            Ground::Tuple(vec![
                Ground::bool(true),
                Ground::List(vec![Ground::Nat(1), Ground::Nat(2)])
            ])
        );
        assert_eq!(ground_to_value(&g, &ty), v);
    }

    #[test]
    fn bool_encoding_matches_inl_inr() {
        assert_eq!(value_to_ground(&Expr::tt()).unwrap().as_bool(), Some(true));
        assert_eq!(value_to_ground(&Expr::ff()).unwrap().as_bool(), Some(false));
    }

    #[test]
    fn lambdas_are_not_ground() {
        let lam = Expr::Lam {
            eff: crate::types::Effect::empty(),
            var: "x".into(),
            ty: Type::unit(),
            body: Expr::unit().rc(),
        };
        assert!(value_to_ground(&lam).is_none());
    }

    #[test]
    fn unknown_prim_is_none() {
        assert!(prim_lookup("no_such_prim").is_none());
    }
}
