//! Compilation of λC expressions to the environment machine's code.
//!
//! The substitution interpreter ([`crate::smallstep`]) clones and renames
//! the full term on every β-step. The compiler lowers a well-scoped
//! expression once into [`Code`] — an immutable, `Arc`-shared tree with
//! **de Bruijn indices** instead of named variables — which the
//! environment machine ([`crate::machine`]) then evaluates with closures
//! and persistent environments: a β-step becomes one environment
//! extension, independent of term size.
//!
//! `Code` is deliberately plain `Send + Sync` data (`Arc`, `String`,
//! [`Type`], [`Const`] — no `Rc`, no closures): a [`CompiledProgram`] is a
//! thread-shippable *factory* in the sense of `selc::Replay`, so the
//! `lambda-rt` bridge can rebuild and run the machine on any engine
//! worker (replay-per-worker, the engine's portability contract).
//!
//! Only scoping is checked here (unbound variables are compile errors);
//! typing is the typechecker's job, and the machine mirrors the
//! small-step semantics' graceful [`crate::machine::MachError`]s on
//! ill-typed input.

use crate::syntax::{Const, Expr, Handler};
use crate::types::Type;
use std::fmt;
use std::sync::Arc;

/// Compiled λC code: the [`Expr`] grammar with binders turned into de
/// Bruijn indices (innermost binder = index 0) and all sharing via `Arc`.
///
/// Effect annotations are erased — they never influence evaluation (the
/// small-step rules consult them only to re-annotate machine-built
/// lambdas). Types survive only where values need them back
/// (injections, `nil`) so terminal values convert to the same
/// [`crate::prim::Ground`] shapes the reference interpreter produces.
#[derive(Clone, Debug)]
pub enum Code {
    /// A constant.
    Const(Const),
    /// Primitive application `f(e)`.
    Prim(String, Arc<Code>),
    /// A variable, as distance to its binder.
    Var(usize),
    /// `λ. body` (binds index 0 of the body).
    Lam(Arc<Code>),
    /// Application.
    App(Arc<Code>, Arc<Code>),
    /// Tuple.
    Tuple(Vec<Arc<Code>>),
    /// Projection (0-based).
    Proj(Arc<Code>, usize),
    /// Left injection, with both summand types for value reconstruction.
    Inl {
        /// Left summand type.
        lty: Type,
        /// Right summand type.
        rty: Type,
        /// Payload.
        e: Arc<Code>,
    },
    /// Right injection.
    Inr {
        /// Left summand type.
        lty: Type,
        /// Right summand type.
        rty: Type,
        /// Payload.
        e: Arc<Code>,
    },
    /// Case analysis; each branch binds its payload at index 0.
    Cases {
        /// Scrutinee.
        scrut: Arc<Code>,
        /// Left branch (binds the payload).
        lbody: Arc<Code>,
        /// Right branch (binds the payload).
        rbody: Arc<Code>,
    },
    /// The natural number zero.
    Zero,
    /// Successor.
    Succ(Arc<Code>),
    /// Iteration `iter(e1, e2, e3)`.
    Iter(Arc<Code>, Arc<Code>, Arc<Code>),
    /// The empty list.
    Nil(Type),
    /// Cons.
    Cons(Arc<Code>, Arc<Code>),
    /// Fold.
    Fold(Arc<Code>, Arc<Code>, Arc<Code>),
    /// Operation call.
    OpCall {
        /// Operation name.
        op: String,
        /// Argument.
        arg: Arc<Code>,
    },
    /// Loss emission `loss(e)`.
    Loss(Arc<Code>),
    /// `with h from e1 handle e2`.
    Handle {
        /// The handler (clauses compiled in the enclosing scope).
        handler: Arc<CodeHandler>,
        /// Initial parameter.
        from: Arc<Code>,
        /// Handled computation.
        body: Arc<Code>,
    },
    /// `e ◮ λx. e2` — the loss-continuation lambda's *body* (binds x).
    Then {
        /// The computation whose losses are captured.
        e: Arc<Code>,
        /// Body of the continuation lambda (binds the result).
        lam_body: Arc<Code>,
    },
    /// `⟨e⟩_g` with `g = λx. gbody` (binds x).
    Local {
        /// Body of the loss continuation lambda.
        g_body: Arc<Code>,
        /// The localised expression.
        e: Arc<Code>,
    },
    /// `reset e`.
    Reset(Arc<Code>),
}

/// A compiled handler. Clause bodies bind `p, x, l, k` (so `k` is de
/// Bruijn index 0, `p` index 3); the return clause binds `p, x`.
#[derive(Clone, Debug)]
pub struct CodeHandler {
    /// The handled effect label.
    pub label: String,
    /// One compiled clause per operation.
    pub clauses: Vec<CodeClause>,
    /// The compiled return clause body (binds `p, x`).
    pub ret_body: Arc<Code>,
}

impl Code {
    /// Number of subterms (handler clauses included), used to scale
    /// analysis budgets in `lambda_c::flow` proportionally to the program.
    pub fn size(&self) -> usize {
        1 + match self {
            Code::Const(_) | Code::Var(_) | Code::Zero | Code::Nil(_) => 0,
            Code::Prim(_, e)
            | Code::Lam(e)
            | Code::Proj(e, _)
            | Code::Inl { e, .. }
            | Code::Inr { e, .. }
            | Code::Succ(e)
            | Code::Loss(e)
            | Code::OpCall { arg: e, .. }
            | Code::Reset(e) => e.size(),
            Code::App(a, b)
            | Code::Cons(a, b)
            | Code::Then { e: a, lam_body: b }
            | Code::Local { g_body: a, e: b } => a.size() + b.size(),
            Code::Tuple(es) => es.iter().map(|e| e.size()).sum(),
            Code::Cases { scrut, lbody, rbody } => scrut.size() + lbody.size() + rbody.size(),
            Code::Iter(a, b, c) | Code::Fold(a, b, c) => a.size() + b.size() + c.size(),
            Code::Handle { handler, from, body } => {
                from.size()
                    + body.size()
                    + handler.ret_body.size()
                    + handler.clauses.iter().map(|c| c.body.size()).sum::<usize>()
            }
        }
    }
}

impl CodeHandler {
    /// Looks up the clause for `op` (first match, mirroring
    /// [`Handler::clause`]).
    pub fn clause(&self, op: &str) -> Option<&CodeClause> {
        self.clauses.iter().find(|c| c.op == op)
    }
}

/// One compiled operation clause.
#[derive(Clone, Debug)]
pub struct CodeClause {
    /// Operation name.
    pub op: String,
    /// Clause body, binding `p, x, l, k` (k = index 0).
    pub body: Arc<Code>,
}

/// A compiled closed program — plain `Send + Sync` data, ready for the
/// machine (and for replay-per-worker across engine threads).
#[derive(Clone, Debug)]
pub struct CompiledProgram {
    /// The program's code.
    pub code: Arc<Code>,
}

/// A compile-time error: the only thing compilation checks is scoping.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CompileError {
    /// A free variable (programs must be closed).
    Unbound(String),
    /// A `then`/`local` continuation that is not syntactically a lambda
    /// (the grammar guarantees it; builders can violate it).
    NotALambda(String),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Unbound(x) => write!(f, "unbound variable `{x}`"),
            CompileError::NotALambda(w) => write!(f, "{w} continuation is not a lambda"),
        }
    }
}

impl std::error::Error for CompileError {}

/// Compiles a closed expression.
///
/// # Errors
///
/// [`CompileError::Unbound`] on free variables, [`CompileError::NotALambda`]
/// if a `then`/`local` loss continuation is not a lambda.
pub fn compile(e: &Expr) -> Result<CompiledProgram, CompileError> {
    let mut scope = Vec::new();
    Ok(CompiledProgram { code: compile_in(e, &mut scope)? })
}

fn arc(c: Code) -> Arc<Code> {
    Arc::new(c)
}

/// Compiles under a scope stack (innermost binder last).
fn compile_in(e: &Expr, scope: &mut Vec<String>) -> Result<Arc<Code>, CompileError> {
    let code = match e {
        Expr::Const(c) => Code::Const(c.clone()),
        Expr::Prim(name, a) => Code::Prim(name.clone(), compile_in(a, scope)?),
        Expr::Var(x) => {
            let idx = scope
                .iter()
                .rev()
                .position(|b| b == x)
                .ok_or_else(|| CompileError::Unbound(x.clone()))?;
            Code::Var(idx)
        }
        Expr::Lam { var, body, .. } => Code::Lam(compile_binder(body, scope, var)?),
        Expr::App(a, b) => Code::App(compile_in(a, scope)?, compile_in(b, scope)?),
        Expr::Tuple(es) => {
            let cs: Result<Vec<_>, _> = es.iter().map(|e| compile_in(e, scope)).collect();
            Code::Tuple(cs?)
        }
        Expr::Proj(a, i) => Code::Proj(compile_in(a, scope)?, *i),
        Expr::Inl { lty, rty, e } => {
            Code::Inl { lty: lty.clone(), rty: rty.clone(), e: compile_in(e, scope)? }
        }
        Expr::Inr { lty, rty, e } => {
            Code::Inr { lty: lty.clone(), rty: rty.clone(), e: compile_in(e, scope)? }
        }
        Expr::Cases { scrut, lvar, lbody, rvar, rbody, .. } => Code::Cases {
            scrut: compile_in(scrut, scope)?,
            lbody: compile_binder(lbody, scope, lvar)?,
            rbody: compile_binder(rbody, scope, rvar)?,
        },
        Expr::Zero => Code::Zero,
        Expr::Succ(a) => Code::Succ(compile_in(a, scope)?),
        Expr::Iter(a, b, c) => {
            Code::Iter(compile_in(a, scope)?, compile_in(b, scope)?, compile_in(c, scope)?)
        }
        Expr::Nil(t) => Code::Nil(t.clone()),
        Expr::Cons(a, b) => Code::Cons(compile_in(a, scope)?, compile_in(b, scope)?),
        Expr::Fold(a, b, c) => {
            Code::Fold(compile_in(a, scope)?, compile_in(b, scope)?, compile_in(c, scope)?)
        }
        Expr::OpCall { op, arg } => Code::OpCall { op: op.clone(), arg: compile_in(arg, scope)? },
        Expr::Loss(a) => Code::Loss(compile_in(a, scope)?),
        Expr::Handle { handler, from, body } => Code::Handle {
            handler: Arc::new(compile_handler(handler, scope)?),
            from: compile_in(from, scope)?,
            body: compile_in(body, scope)?,
        },
        Expr::Then { e, lam } => {
            let Expr::Lam { var, body, .. } = lam.as_ref() else {
                return Err(CompileError::NotALambda("then".into()));
            };
            Code::Then { e: compile_in(e, scope)?, lam_body: compile_binder(body, scope, var)? }
        }
        Expr::Local { g, e, .. } => {
            let Expr::Lam { var, body, .. } = g.as_ref() else {
                return Err(CompileError::NotALambda("local".into()));
            };
            Code::Local { g_body: compile_binder(body, scope, var)?, e: compile_in(e, scope)? }
        }
        Expr::Reset(a) => Code::Reset(compile_in(a, scope)?),
    };
    Ok(arc(code))
}

fn compile_binder(
    body: &Expr,
    scope: &mut Vec<String>,
    var: &str,
) -> Result<Arc<Code>, CompileError> {
    scope.push(var.to_owned());
    let r = compile_in(body, scope);
    scope.pop();
    r
}

fn compile_handler(h: &Handler, scope: &mut Vec<String>) -> Result<CodeHandler, CompileError> {
    let mut clauses = Vec::with_capacity(h.clauses.len());
    for c in &h.clauses {
        let n = scope.len();
        scope.extend([c.p.clone(), c.x.clone(), c.l.clone(), c.k.clone()]);
        let body = compile_in(&c.body, scope);
        scope.truncate(n);
        clauses.push(CodeClause { op: c.op.clone(), body: body? });
    }
    let n = scope.len();
    scope.extend([h.ret.p.clone(), h.ret.x.clone()]);
    let ret_body = compile_in(&h.ret.body, scope);
    scope.truncate(n);
    Ok(CodeHandler { label: h.label.clone(), clauses, ret_body: ret_body? })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::*;
    use crate::types::Effect;

    #[test]
    fn compiled_code_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CompiledProgram>();
        assert_send_sync::<Code>();
        assert_send_sync::<CodeHandler>();
    }

    #[test]
    fn de_bruijn_indices_count_outward() {
        // λx. λy. (x y) — x is index 1, y index 0.
        let e = lam(
            Effect::empty(),
            "x",
            Type::loss(),
            lam(Effect::empty(), "y", Type::loss(), app(v("x"), v("y"))),
        );
        let p = compile(&e).unwrap();
        let Code::Lam(b1) = p.code.as_ref() else { panic!("outer lam") };
        let Code::Lam(b2) = b1.as_ref() else { panic!("inner lam") };
        let Code::App(f, a) = b2.as_ref() else { panic!("app") };
        assert!(matches!(f.as_ref(), Code::Var(1)));
        assert!(matches!(a.as_ref(), Code::Var(0)));
    }

    #[test]
    fn unbound_variables_are_rejected() {
        assert_eq!(compile(&v("ghost")).unwrap_err(), CompileError::Unbound("ghost".into()));
    }

    #[test]
    fn shadowing_resolves_to_the_nearest_binder() {
        let e = lam(
            Effect::empty(),
            "x",
            Type::loss(),
            lam(Effect::empty(), "x", Type::loss(), v("x")),
        );
        let p = compile(&e).unwrap();
        let Code::Lam(b1) = p.code.as_ref() else { panic!("outer lam") };
        let Code::Lam(b2) = b1.as_ref() else { panic!("inner lam") };
        assert!(matches!(b2.as_ref(), Code::Var(0)));
    }

    #[test]
    fn handler_clauses_bind_p_x_l_k() {
        let h = HandlerBuilder::new("amb", Type::bool(), Type::bool(), Effect::empty())
            .on("decide", "p", "x", "l", "k", app(v("k"), pair(v("p"), v("x"))))
            .build();
        let e = handle0(h, op("decide", unit()));
        let p = compile(&e).unwrap();
        let Code::Handle { handler, .. } = p.code.as_ref() else { panic!("handle") };
        let Code::App(k, args) = handler.clauses[0].body.as_ref() else { panic!("app") };
        assert!(matches!(k.as_ref(), Code::Var(0)), "k is the innermost binder");
        let Code::Tuple(es) = args.as_ref() else { panic!("pair") };
        assert!(matches!(es[0].as_ref(), Code::Var(3)), "p is the outermost of the four");
        assert!(matches!(es[1].as_ref(), Code::Var(2)), "x is next");
    }

    #[test]
    fn handler_bodies_may_close_over_outer_binders() {
        // let grid = 1.0; with h handle … where the clause mentions grid.
        let h = HandlerBuilder::new("amb", Type::loss(), Type::loss(), Effect::empty())
            .on("decide", "p", "x", "l", "k", app(v("k"), pair(v("p"), v("grid"))))
            .build();
        let e =
            let_(Effect::empty(), "grid", Type::loss(), lc(1.0), handle0(h, op("decide", unit())));
        let p = compile(&e).unwrap();
        // grid resolves at distance 4 from inside the clause (under p,x,l,k).
        let Code::App(lamc, _) = p.code.as_ref() else { panic!("let is app") };
        let Code::Lam(body) = lamc.as_ref() else { panic!("lam") };
        let Code::Handle { handler, .. } = body.as_ref() else { panic!("handle") };
        let Code::App(_, args) = handler.clauses[0].body.as_ref() else { panic!("app") };
        let Code::Tuple(es) = args.as_ref() else { panic!("pair") };
        assert!(matches!(es[1].as_ref(), Code::Var(4)));
    }

    #[test]
    fn every_example_compiles() {
        for ex in [
            crate::examples::decide_all(),
            crate::examples::pgm_with_argmin_handler(),
            crate::examples::counter(),
            crate::examples::minimax(),
            crate::examples::password(),
            crate::examples::tune_lr(1.0, 0.5),
            crate::examples::moo_divergent(),
        ] {
            compile(&ex.expr).expect("closed example compiles");
        }
    }
}
