//! The type-and-effect system of λC (Fig 4, Appendix A.2).
//!
//! The judgment `Γ ⊢ e : σ ! ε` is implemented as synthesis: given `Γ`, `e`
//! and the ambient effect `ε`, [`type_of`] computes the unique `σ` (every
//! binder is annotated, so no inference is needed) while checking all the
//! side conditions — including the sub-effecting conditions of rules THEN
//! and GLOCAL, which the paper needs to type the loss continuations built
//! up by the operational semantics.

use crate::prim::prim_lookup;
use crate::sig::Signature;
use crate::syntax::{Expr, Handler};
use crate::types::{Effect, Type};
use std::collections::HashMap;
use std::fmt;

/// A typing environment `Γ`.
pub type Env = HashMap<String, Type>;

/// A typing error, with a human-readable message.
#[derive(Clone, Debug, PartialEq)]
pub struct TypeError(pub String);

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "type error: {}", self.0)
    }
}

impl std::error::Error for TypeError {}

fn err<T>(msg: impl Into<String>) -> Result<T, TypeError> {
    Err(TypeError(msg.into()))
}

/// Synthesizes the type of `e` under `Γ = env` with ambient effect `ε = eff`
/// (the judgment `Γ ⊢ e : σ ! ε`).
///
/// # Errors
///
/// Returns a [`TypeError`] describing the first rule violation found.
pub fn type_of(sig: &Signature, env: &Env, e: &Expr, eff: &Effect) -> Result<Type, TypeError> {
    match e {
        // const
        Expr::Const(c) => Ok(c.ty()),
        // fun
        Expr::Prim(name, arg) => {
            let def = prim_lookup(name)
                .ok_or_else(|| TypeError(format!("unknown primitive `{name}`")))?;
            let at = type_of(sig, env, arg, eff)?;
            if at != def.arg_ty {
                return err(format!("primitive `{name}` expects {}, got {at}", def.arg_ty));
            }
            Ok(def.ret_ty)
        }
        // var
        Expr::Var(x) => {
            env.get(x).cloned().ok_or_else(|| TypeError(format!("unbound variable `{x}`")))
        }
        // abs — the body is checked at the annotated effect; the abstraction
        // itself may sit at any ambient effect.
        Expr::Lam { eff: body_eff, var, ty, body } => {
            let mut env2 = env.clone();
            env2.insert(var.clone(), ty.clone());
            let bt = type_of(sig, &env2, body, body_eff)?;
            Ok(Type::fun(ty.clone(), bt, body_eff.clone()))
        }
        // app — function effect must equal the ambient effect (no
        // sub-effecting; see footnote 4 of the paper).
        Expr::App(e1, e2) => {
            let t1 = type_of(sig, env, e1, eff)?;
            match t1 {
                Type::Fun(a, b, fe) => {
                    if fe != *eff {
                        return err(format!(
                            "application at effect {eff} of a function with latent effect {fe}"
                        ));
                    }
                    let t2 = type_of(sig, env, e2, eff)?;
                    if t2 != *a {
                        return err(format!("argument type {t2} does not match parameter {a}"));
                    }
                    Ok(*b)
                }
                other => err(format!("application of a non-function of type {other}")),
            }
        }
        // prd
        Expr::Tuple(es) => {
            let ts: Result<Vec<Type>, TypeError> =
                es.iter().map(|e| type_of(sig, env, e, eff)).collect();
            Ok(Type::Tuple(ts?))
        }
        // prj
        Expr::Proj(e1, i) => match type_of(sig, env, e1, eff)? {
            Type::Tuple(ts) => ts
                .get(*i)
                .cloned()
                .ok_or_else(|| TypeError(format!("projection .{} out of range", i + 1))),
            other => err(format!("projection from non-product of type {other}")),
        },
        // inl / inr
        Expr::Inl { lty, rty, e } => {
            let t = type_of(sig, env, e, eff)?;
            if t != *lty {
                return err(format!("inl payload has type {t}, annotation says {lty}"));
            }
            Ok(Type::Sum(Box::new(lty.clone()), Box::new(rty.clone())))
        }
        Expr::Inr { lty, rty, e } => {
            let t = type_of(sig, env, e, eff)?;
            if t != *rty {
                return err(format!("inr payload has type {t}, annotation says {rty}"));
            }
            Ok(Type::Sum(Box::new(lty.clone()), Box::new(rty.clone())))
        }
        // cases
        Expr::Cases { scrut, lvar, lty, lbody, rvar, rty, rbody } => {
            let st = type_of(sig, env, scrut, eff)?;
            match st {
                Type::Sum(a, b) => {
                    if *a != *lty || *b != *rty {
                        return err(format!(
                            "cases annotations ({lty}, {rty}) do not match scrutinee ({a} + {b})"
                        ));
                    }
                    let mut envl = env.clone();
                    envl.insert(lvar.clone(), *a);
                    let tl = type_of(sig, &envl, lbody, eff)?;
                    let mut envr = env.clone();
                    envr.insert(rvar.clone(), *b);
                    let tr = type_of(sig, &envr, rbody, eff)?;
                    if tl != tr {
                        return err(format!("cases branches disagree: {tl} vs {tr}"));
                    }
                    Ok(tl)
                }
                other => err(format!("cases on non-sum of type {other}")),
            }
        }
        // zero / succ / iter
        Expr::Zero => Ok(Type::Nat),
        Expr::Succ(e1) => {
            let t = type_of(sig, env, e1, eff)?;
            if t != Type::Nat {
                return err(format!("succ of non-nat {t}"));
            }
            Ok(Type::Nat)
        }
        Expr::Iter(e1, e2, e3) => {
            let t1 = type_of(sig, env, e1, eff)?;
            if t1 != Type::Nat {
                return err(format!("iter count must be nat, got {t1}"));
            }
            let t2 = type_of(sig, env, e2, eff)?;
            let t3 = type_of(sig, env, e3, eff)?;
            match t3 {
                Type::Fun(a, b, fe) if *a == t2 && *b == t2 && fe == *eff => Ok(t2),
                other => err(format!("iter body must be ({t2} -> {t2} ! {eff}), got {other}")),
            }
        }
        // nil / cons / fold
        Expr::Nil(t) => Ok(Type::List(Box::new(t.clone()))),
        Expr::Cons(e1, e2) => {
            let t1 = type_of(sig, env, e1, eff)?;
            let t2 = type_of(sig, env, e2, eff)?;
            match t2 {
                Type::List(inner) if *inner == t1 => Ok(Type::List(inner)),
                other => err(format!("cons of {t1} onto {other}")),
            }
        }
        Expr::Fold(e1, e2, e3) => {
            let t1 = type_of(sig, env, e1, eff)?;
            let elem = match t1 {
                Type::List(inner) => *inner,
                other => return err(format!("fold over non-list {other}")),
            };
            let acc = type_of(sig, env, e2, eff)?;
            let t3 = type_of(sig, env, e3, eff)?;
            let want = Type::fun(Type::Tuple(vec![elem, acc.clone()]), acc.clone(), eff.clone());
            if t3 != want {
                return err(format!("fold body must be {want}, got {t3}"));
            }
            Ok(acc)
        }
        // op
        Expr::OpCall { op, arg } => {
            let label = sig
                .label_of(op)
                .ok_or_else(|| TypeError(format!("unknown operation `{op}`")))?
                .to_owned();
            let osig = sig.op_sig(op).expect("op with label has sig").clone();
            if !eff.contains(&label) {
                return err(format!("operation `{op}` of effect `{label}` not allowed in {eff}"));
            }
            let at = type_of(sig, env, arg, eff)?;
            if at != osig.arg {
                return err(format!("operation `{op}` expects {}, got {at}", osig.arg));
            }
            Ok(osig.ret)
        }
        // loss
        Expr::Loss(e1) => {
            let t = type_of(sig, env, e1, eff)?;
            if t != Type::loss() {
                return err(format!("loss of non-loss {t}"));
            }
            Ok(Type::unit())
        }
        // handle
        Expr::Handle { handler, from, body } => {
            check_handler(sig, env, handler)?;
            if handler.eff != *eff {
                return err(format!(
                    "handler has result effect {} but ambient effect is {eff}",
                    handler.eff
                ));
            }
            let ft = type_of(sig, env, from, eff)?;
            if ft != handler.par_ty {
                return err(format!(
                    "handler parameter has type {}, initial value has {ft}",
                    handler.par_ty
                ));
            }
            let body_eff = eff.plus(handler.label.clone());
            let bt = type_of(sig, env, body, &body_eff)?;
            if bt != handler.body_ty {
                return err(format!(
                    "handled computation has type {bt}, handler expects {}",
                    handler.body_ty
                ));
            }
            Ok(handler.res_ty.clone())
        }
        // then — Γ ⊢ e1 : σ ! ε1; Γ, x:σ ⊢ e2 : loss ! ε2 with ε2 ⊆ ε1;
        // the whole expression sits at ε1 (the ambient effect).
        Expr::Then { e, lam } => {
            let t1 = type_of(sig, env, e, eff)?;
            match lam.as_ref() {
                Expr::Lam { eff: leff, var, ty, body } => {
                    if *ty != t1 {
                        return err(format!(
                            "then-continuation expects {ty}, computation has {t1}"
                        ));
                    }
                    if !leff.subset_of(eff) {
                        return err(format!(
                            "then-continuation effect {leff} not included in {eff}"
                        ));
                    }
                    let mut env2 = env.clone();
                    env2.insert(var.clone(), ty.clone());
                    let bt = type_of(sig, &env2, body, leff)?;
                    if bt != Type::loss() {
                        return err(format!("then-continuation body must be loss, got {bt}"));
                    }
                    Ok(Type::loss())
                }
                other => err(format!("then-continuation must be a lambda, got {other}")),
            }
        }
        // glocal — Γ ⊢ e : σ ! ε1; g : σ → loss ! ε2; ε2 ⊆ ε1 ⊆ ε.
        Expr::Local { eff: eff1, g, e } => {
            if !eff1.subset_of(eff) {
                return err(format!("local annotation {eff1} not included in ambient {eff}"));
            }
            let t = type_of(sig, env, e, eff1)?;
            let gt = type_of(sig, env, g, eff)?;
            match gt {
                Type::Fun(a, b, ge) => {
                    if *a != t {
                        return err(format!(
                            "loss continuation domain {a} does not match computation type {t}"
                        ));
                    }
                    if *b != Type::loss() {
                        return err(format!("loss continuation must return loss, got {b}"));
                    }
                    if !ge.subset_of(eff1) {
                        return err(format!(
                            "loss continuation effect {ge} not included in {eff1}"
                        ));
                    }
                    Ok(t)
                }
                other => err(format!("loss continuation must be a function, got {other}")),
            }
        }
        // reset
        Expr::Reset(e1) => type_of(sig, env, e1, eff),
    }
}

/// Checks a handler against the judgment `Γ ⊢ h : par, σ ! εℓ ⇒ σ' ! ε`
/// (rule HANDLER), where all components are read off the [`Handler`]
/// annotations.
///
/// # Errors
///
/// Returns a [`TypeError`] if the clause list does not enumerate `Op(ℓ)` or
/// any clause body has the wrong type.
pub fn check_handler(sig: &Signature, env: &Env, h: &Handler) -> Result<(), TypeError> {
    let ops = sig
        .ops_of(&h.label)
        .ok_or_else(|| TypeError(format!("unknown effect label `{}`", h.label)))?;
    if h.clauses.len() != ops.len() {
        return err(format!(
            "handler for `{}` must define exactly {} operations, found {}",
            h.label,
            ops.len(),
            h.clauses.len()
        ));
    }
    for clause in &h.clauses {
        let osig = ops.get(&clause.op).ok_or_else(|| {
            TypeError(format!("operation `{}` does not belong to effect `{}`", clause.op, h.label))
        })?;
        let pair_ty = Type::Tuple(vec![h.par_ty.clone(), osig.ret.clone()]);
        let mut env2 = env.clone();
        env2.insert(clause.p.clone(), h.par_ty.clone());
        env2.insert(clause.x.clone(), osig.arg.clone());
        env2.insert(clause.l.clone(), Type::fun(pair_ty.clone(), Type::loss(), h.eff.clone()));
        env2.insert(clause.k.clone(), Type::fun(pair_ty, h.res_ty.clone(), h.eff.clone()));
        let bt = type_of(sig, &env2, &clause.body, &h.eff)?;
        if bt != h.res_ty {
            return err(format!(
                "clause for `{}` has type {bt}, handler result type is {}",
                clause.op, h.res_ty
            ));
        }
    }
    let mut env2 = env.clone();
    env2.insert(h.ret.p.clone(), h.par_ty.clone());
    env2.insert(h.ret.x.clone(), h.body_ty.clone());
    let rt = type_of(sig, &env2, &h.ret.body, &h.eff)?;
    if rt != h.res_ty {
        return err(format!("return clause has type {rt}, handler result type is {}", h.res_ty));
    }
    Ok(())
}

/// Checks a closed program: `⊢ e : σ ! ε`.
///
/// # Errors
///
/// Propagates any [`TypeError`] from [`type_of`].
pub fn check_program(sig: &Signature, e: &Expr, eff: &Effect) -> Result<Type, TypeError> {
    type_of(sig, &Env::new(), e, eff)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sig::OpSig;
    use crate::syntax::{OpClause, RetClause};
    use std::rc::Rc;

    fn amb_sig() -> Signature {
        let mut sig = Signature::new();
        sig.declare("amb", vec![("decide".into(), OpSig { arg: Type::unit(), ret: Type::bool() })])
            .unwrap();
        sig
    }

    #[test]
    fn constants_and_prims() {
        let sig = Signature::new();
        let e = Expr::Prim(
            "add".into(),
            Expr::Tuple(vec![Expr::lossc(1.0).rc(), Expr::lossc(2.0).rc()]).rc(),
        );
        assert_eq!(check_program(&sig, &e, &Effect::empty()).unwrap(), Type::loss());
    }

    #[test]
    fn unknown_prim_rejected() {
        let sig = Signature::new();
        let e = Expr::Prim("wat".into(), Expr::unit().rc());
        assert!(check_program(&sig, &e, &Effect::empty()).is_err());
    }

    #[test]
    fn beta_redex_types() {
        let sig = Signature::new();
        let id = Expr::Lam {
            eff: Effect::empty(),
            var: "x".into(),
            ty: Type::loss(),
            body: Expr::Var("x".into()).rc(),
        };
        let e = Expr::App(id.rc(), Expr::lossc(3.0).rc());
        assert_eq!(check_program(&sig, &e, &Effect::empty()).unwrap(), Type::loss());
    }

    #[test]
    fn app_requires_matching_latent_effect() {
        let sig = amb_sig();
        // function with latent effect {amb} applied at ambient {}
        let f = Expr::Lam {
            eff: Effect::single("amb"),
            var: "x".into(),
            ty: Type::unit(),
            body: Expr::OpCall { op: "decide".into(), arg: Expr::unit().rc() }.rc(),
        };
        let e = Expr::App(f.rc(), Expr::unit().rc());
        assert!(check_program(&sig, &e, &Effect::empty()).is_err());
        assert!(check_program(&sig, &e, &Effect::single("amb")).is_ok());
    }

    #[test]
    fn op_needs_label_in_effect() {
        let sig = amb_sig();
        let e = Expr::OpCall { op: "decide".into(), arg: Expr::unit().rc() };
        assert!(check_program(&sig, &e, &Effect::empty()).is_err());
        assert_eq!(check_program(&sig, &e, &Effect::single("amb")).unwrap(), Type::bool());
    }

    #[test]
    fn loss_types_to_unit() {
        let sig = Signature::new();
        let e = Expr::Loss(Expr::lossc(2.0).rc());
        assert_eq!(check_program(&sig, &e, &Effect::empty()).unwrap(), Type::unit());
        let bad = Expr::Loss(Expr::unit().rc());
        assert!(check_program(&sig, &bad, &Effect::empty()).is_err());
    }

    fn trivial_amb_handler(eff: Effect) -> Handler {
        // decide ↦ k (p, true); return x
        Handler {
            label: "amb".into(),
            par_ty: Type::unit(),
            body_ty: Type::bool(),
            res_ty: Type::bool(),
            eff,
            clauses: vec![OpClause {
                op: "decide".into(),
                p: "p".into(),
                x: "x".into(),
                l: "l".into(),
                k: "k".into(),
                body: Expr::App(
                    Expr::Var("k".into()).rc(),
                    Expr::Tuple(vec![Expr::Var("p".into()).rc(), Expr::tt().rc()]).rc(),
                )
                .rc(),
            }],
            ret: RetClause { p: "p".into(), x: "x".into(), body: Expr::Var("x".into()).rc() },
        }
    }

    #[test]
    fn handler_judgment_accepts_well_typed_handler() {
        let sig = amb_sig();
        let h = trivial_amb_handler(Effect::empty());
        check_handler(&sig, &Env::new(), &h).unwrap();
    }

    #[test]
    fn handle_removes_one_label_occurrence() {
        let sig = amb_sig();
        let h = Rc::new(trivial_amb_handler(Effect::empty()));
        let body = Expr::OpCall { op: "decide".into(), arg: Expr::unit().rc() };
        let e = Expr::Handle { handler: h, from: Expr::unit().rc(), body: body.rc() };
        assert_eq!(check_program(&sig, &e, &Effect::empty()).unwrap(), Type::bool());
    }

    #[test]
    fn handler_with_wrong_clause_type_rejected() {
        let sig = amb_sig();
        let mut h = trivial_amb_handler(Effect::empty());
        h.clauses[0].body = Expr::lossc(1.0).rc(); // loss, but σ' = bool
        assert!(check_handler(&sig, &Env::new(), &h).is_err());
    }

    #[test]
    fn then_requires_loss_body_and_subeffect() {
        let sig = amb_sig();
        let lam_ok = Expr::Lam {
            eff: Effect::empty(),
            var: "x".into(),
            ty: Type::bool(),
            body: Expr::lossc(0.0).rc(),
        };
        let scrut = Expr::OpCall { op: "decide".into(), arg: Expr::unit().rc() };
        let e = Expr::Then { e: scrut.rc(), lam: lam_ok.rc() };
        assert_eq!(check_program(&sig, &e, &Effect::single("amb")).unwrap(), Type::loss());

        // continuation with a non-included effect
        let lam_bad = Expr::Lam {
            eff: Effect::single("other"),
            var: "x".into(),
            ty: Type::bool(),
            body: Expr::lossc(0.0).rc(),
        };
        let e2 = Expr::Then {
            e: Expr::OpCall { op: "decide".into(), arg: Expr::unit().rc() }.rc(),
            lam: lam_bad.rc(),
        };
        assert!(check_program(&sig, &e2, &Effect::single("amb")).is_err());
    }

    #[test]
    fn local_checks_domain_and_subeffects() {
        let sig = Signature::new();
        let g = Expr::zero_cont(Type::loss(), Effect::empty());
        let e = Expr::Local { eff: Effect::empty(), g: g.rc(), e: Expr::lossc(1.0).rc() };
        assert_eq!(check_program(&sig, &e, &Effect::empty()).unwrap(), Type::loss());

        let g_bad = Expr::zero_cont(Type::bool(), Effect::empty());
        let e2 = Expr::Local { eff: Effect::empty(), g: g_bad.rc(), e: Expr::lossc(1.0).rc() };
        assert!(check_program(&sig, &e2, &Effect::empty()).is_err());
    }

    #[test]
    fn cases_branches_must_agree() {
        let sig = Signature::new();
        let e = Expr::Cases {
            scrut: Expr::tt().rc(),
            lvar: "a".into(),
            lty: Type::unit(),
            lbody: Expr::lossc(1.0).rc(),
            rvar: "b".into(),
            rty: Type::unit(),
            rbody: Expr::unit().rc(),
        };
        assert!(check_program(&sig, &e, &Effect::empty()).is_err());
    }

    #[test]
    fn iter_and_fold_typing() {
        let sig = Signature::new();
        let step = Expr::Lam {
            eff: Effect::empty(),
            var: "x".into(),
            ty: Type::loss(),
            body: Expr::Prim(
                "add".into(),
                Expr::Tuple(vec![Expr::Var("x".into()).rc(), Expr::lossc(1.0).rc()]).rc(),
            )
            .rc(),
        };
        let e = Expr::Iter(Expr::nat(3).rc(), Expr::lossc(0.0).rc(), step.rc());
        assert_eq!(check_program(&sig, &e, &Effect::empty()).unwrap(), Type::loss());

        let fold_body = Expr::Lam {
            eff: Effect::empty(),
            var: "z".into(),
            ty: Type::Tuple(vec![Type::loss(), Type::loss()]),
            body: Expr::Prim("add".into(), Expr::Var("z".into()).rc()).rc(),
        };
        let e2 = Expr::Fold(
            Expr::list(Type::loss(), vec![Expr::lossc(1.0), Expr::lossc(2.0)]).rc(),
            Expr::lossc(0.0).rc(),
            fold_body.rc(),
        );
        assert_eq!(check_program(&sig, &e2, &Effect::empty()).unwrap(), Type::loss());
    }

    #[test]
    fn unbound_variable_rejected() {
        let sig = Signature::new();
        assert!(check_program(&sig, &Expr::Var("nope".into()), &Effect::empty()).is_err());
    }
}
