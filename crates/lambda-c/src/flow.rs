//! Abstract interpretation over compiled [`Code`]: certified loss bounds,
//! effect purity, and static decision shapes.
//!
//! Branch-and-bound pruning (strict domination on partial ambient losses)
//! is sound only when every future emission is non-negative. Until now that
//! was an unchecked caller promise — a bare `nonneg: bool` the runtime
//! trusted blindly. This module derives the promise from the program
//! instead: a fixpoint-free abstract interpreter walks the scope-checked,
//! loop-free de Bruijn [`Code`] and runs three cooperating analyses:
//!
//! 1. **Loss-sign/interval analysis.** Abstract domain
//!    `{Bot, NonNeg, Interval(lo, hi), Top}` over loss values and ambient
//!    emissions. The machine only feeds the pruning accumulator from
//!    ambient `loss(e)` sites (`capture_depth == 0` in
//!    [`machine`](crate::machine)); Then-captured and Reset-discarded
//!    emissions never reach it directly, but their folded verdicts re-enter
//!    as *values*, which the interval domain tracks through the binding.
//!    If every ambient `loss` site is provably non-negative the program
//!    earns a [`NonNegLosses`] certificate.
//! 2. **Effect/purity analysis.** Does the program probe captured
//!    continuations (`l`), reset, or mutate handler state on resume? The
//!    verdict gates which decision prefixes are safe to transposition-cache
//!    and lets `serve` advertise per-tenant prune-eligibility.
//! 3. **Static decision-shape analysis.** Choice-point count and depth
//!    bounds per execution path, feeding `TreeEngine` work-partitioning and
//!    letting `serve` reject over-deep workloads at validate time.
//!
//! # Soundness argument
//!
//! The Fig-6 machine adds to the pruning accumulator exactly the values
//! emitted at `loss` sites while `capture_depth == 0`. A site that emits a
//! component-wise non-negative [`LossVal`] on *every* evaluation only ever
//! grows the accumulator under the scalar total order, so partial losses
//! are monotone lower bounds and strict-domination pruning cannot change
//! the winner. The analysis therefore certifies the *site condition*:
//! every `loss` site whose emission can reach a live buffer has an
//! abstract interval with `lo >= 0`. Captured regions (`Then` bodies,
//! `Reset`) are suppressed for violation purposes — their emissions fold
//! into verdict *values*, and any negative verdict re-emitted ambiently is
//! caught at the re-emitting site because the interval rides along the
//! binding. Closures that escape to unknown code are conservatively
//! applied in an ambient context (`escape`), so a suppressed negative
//! cannot hide in a lambda. Unknown applications, probes, and budget
//! exhaustion set `inconclusive`, which refuses certification.
//!
//! Certificates are scoped to **forced-choice replay** over the declared
//! decision operations — the only mode `lambda-rt`'s pruning evaluators
//! run. Under forced replay the machine intercepts decision ops at the
//! handler boundary and never runs their clauses, so decision-op clause
//! bodies are dead code: they are still scanned for violations
//! (conservative) but excluded from purity, shape, and emission totals.
//!
//! ```
//! use lambda_c::testgen::{deep_decide_chain, gen_signature};
//! use lambda_c::{compile, flow};
//!
//! let prog = compile(&deep_decide_chain(6).expr).unwrap();
//! let report = flow::analyze(&prog, &gen_signature().decision_ops());
//! let cert = report.certificate().expect("chain losses are non-negative");
//! assert!(cert.covers(&prog));
//! assert_eq!(report.shape.max, Some(6));
//! ```

use std::fmt;
use std::sync::Arc;

use crate::compile::{Code, CompiledProgram};
use crate::loss::LossVal;
use crate::syntax::Const;

/// Abstract loss: the sign/interval domain.
///
/// `Interval(lo, hi)` abstracts a [`LossVal`] by an interval that contains
/// **every component and `0`** (`lo <= 0 <= hi`). Including `0` makes the
/// element-wise zero-padding of [`LossVal::add`] and the zero-defaulting
/// component reads (`fst_loss` on a scalar, `as_scalar` on the empty
/// vector) sound for free. `NonNeg` is `[0, +inf)`; `Top` is all of `R`
/// (and absorbs NaN).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LossAbs {
    /// Unreachable / no value.
    Bot,
    /// Every component in `[0, +inf)`.
    NonNeg,
    /// Every component in `[lo, hi]`, with `lo <= 0 <= hi` finite.
    Interval(f64, f64),
    /// No information (includes NaN).
    Top,
}

impl LossAbs {
    /// The abstraction of the monoid unit.
    pub fn zero() -> LossAbs {
        LossAbs::Interval(0.0, 0.0)
    }

    /// Abstracts a concrete loss: the smallest interval containing all
    /// components and `0`. NaN components go to `Top`.
    pub fn constant(l: &LossVal) -> LossAbs {
        let mut lo = 0.0f64;
        let mut hi = 0.0f64;
        for &x in &l.0 {
            if x.is_nan() {
                return LossAbs::Top;
            }
            lo = lo.min(x);
            hi = hi.max(x);
        }
        LossAbs::from_bounds(lo, hi)
    }

    fn bounds(self) -> Option<(f64, f64)> {
        match self {
            LossAbs::Bot => None,
            LossAbs::NonNeg => Some((0.0, f64::INFINITY)),
            LossAbs::Interval(lo, hi) => Some((lo, hi)),
            LossAbs::Top => Some((f64::NEG_INFINITY, f64::INFINITY)),
        }
    }

    fn from_bounds(lo: f64, hi: f64) -> LossAbs {
        if lo.is_nan() || hi.is_nan() || lo == f64::NEG_INFINITY {
            LossAbs::Top
        } else if hi == f64::INFINITY {
            if lo >= 0.0 {
                LossAbs::NonNeg
            } else {
                // The four-point domain has no `[lo, +inf)` element for
                // negative `lo`; round up.
                LossAbs::Top
            }
        } else {
            LossAbs::Interval(lo.min(0.0), hi.max(0.0))
        }
    }

    /// Least upper bound.
    pub fn join(self, other: LossAbs) -> LossAbs {
        match (self.bounds(), other.bounds()) {
            (None, _) => other,
            (_, None) => self,
            (Some((a, b)), Some((c, d))) => LossAbs::from_bounds(a.min(c), b.max(d)),
        }
    }

    /// Abstract monoid addition (element-wise with zero padding).
    // Named for the λC primitive it abstracts, not the operator trait.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, other: LossAbs) -> LossAbs {
        match (self.bounds(), other.bounds()) {
            (None, _) | (_, None) => LossAbs::Bot,
            (Some((a, b)), Some((c, d))) => LossAbs::from_bounds(a + c, b + d),
        }
    }

    /// Abstract negation.
    // Named for the λC primitive it abstracts, not the operator trait.
    #[allow(clippy::should_implement_trait)]
    pub fn neg(self) -> LossAbs {
        match self.bounds() {
            None => LossAbs::Bot,
            Some((lo, hi)) => LossAbs::from_bounds(-hi, -lo),
        }
    }

    /// Abstract scalar multiplication (interval product; both operand
    /// intervals contain `0`, so corner analysis is exact up to rounding
    /// into the four-point domain).
    // Named for the λC primitive it abstracts, not the operator trait.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, other: LossAbs) -> LossAbs {
        // x * y over a rectangle is extremal at corners; `0 * inf` corners
        // are limits along a zero edge, where the product is identically 0.
        fn corner(x: f64, y: f64) -> f64 {
            if x == 0.0 || y == 0.0 {
                0.0
            } else {
                x * y
            }
        }
        match (self.bounds(), other.bounds()) {
            (None, _) | (_, None) => LossAbs::Bot,
            (Some((a, b)), Some((c, d))) => {
                let cs = [corner(a, c), corner(a, d), corner(b, c), corner(b, d)];
                let lo = cs.iter().copied().fold(f64::INFINITY, f64::min);
                let hi = cs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                LossAbs::from_bounds(lo, hi)
            }
        }
    }

    /// Abstract closure under zero-or-more additions (handler clauses,
    /// iteration bodies): `[0,0]` stays zero, non-negative stays
    /// non-negative but unbounded, anything that can be negative is `Top`.
    pub fn star(self) -> LossAbs {
        match self.bounds() {
            None => LossAbs::zero(),
            Some((lo, hi)) => {
                if lo >= 0.0 && hi <= 0.0 {
                    LossAbs::zero()
                } else if lo >= 0.0 {
                    LossAbs::NonNeg
                } else {
                    LossAbs::Top
                }
            }
        }
    }

    /// True iff every concretisation is component-wise non-negative.
    pub fn is_nonneg(self) -> bool {
        match self {
            LossAbs::Bot | LossAbs::NonNeg => true,
            LossAbs::Interval(lo, _) => lo >= 0.0,
            LossAbs::Top => false,
        }
    }

    /// True iff the concrete loss is covered by this abstraction.
    pub fn contains(self, l: &LossVal) -> bool {
        match self.bounds() {
            None => false,
            Some((lo, hi)) => {
                l.0.iter().all(|&x| {
                    x.is_nan() && hi == f64::INFINITY && lo == f64::NEG_INFINITY
                        || (lo <= x && x <= hi)
                }) && lo <= 0.0
                    && hi >= 0.0
            }
        }
    }
}

impl fmt::Display for LossAbs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LossAbs::Bot => write!(f, "⊥"),
            LossAbs::NonNeg => write!(f, "[0, +∞)"),
            LossAbs::Interval(lo, hi) => write!(f, "[{lo}, {hi}]"),
            LossAbs::Top => write!(f, "⊤"),
        }
    }
}

/// Static bounds on the number of decision points (forced-choice
/// operations) along any execution path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DecisionShape {
    /// Decisions on the shortest path.
    pub min: u64,
    /// Decisions on the longest path, `None` if unbounded/unknown.
    pub max: Option<u64>,
}

impl DecisionShape {
    /// No decisions.
    pub fn zero() -> DecisionShape {
        DecisionShape { min: 0, max: Some(0) }
    }

    /// Exactly one decision.
    pub fn one() -> DecisionShape {
        DecisionShape { min: 1, max: Some(1) }
    }

    /// Unknown shape (e.g. behind an unknown application).
    pub fn unknown() -> DecisionShape {
        DecisionShape { min: 0, max: None }
    }

    /// Sequential composition.
    pub fn seq(self, other: DecisionShape) -> DecisionShape {
        DecisionShape {
            min: self.min + other.min,
            max: self.max.zip(other.max).map(|(a, b)| a + b),
        }
    }

    /// Branch join.
    pub fn join(self, other: DecisionShape) -> DecisionShape {
        DecisionShape {
            min: self.min.min(other.min),
            max: self.max.zip(other.max).map(|(a, b)| a.max(b)),
        }
    }

    /// Zero-or-more repetitions.
    pub fn star(self) -> DecisionShape {
        DecisionShape { min: 0, max: if self.max == Some(0) { Some(0) } else { None } }
    }
}

/// Effect-purity verdict: which machine features the program (outside dead
/// decision-op clauses) can exercise.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Purity {
    /// May call a captured loss probe `l` (re-runs continuations).
    pub probes: bool,
    /// Contains `reset` (re-scopes emission buffers across resumptions).
    pub resets: bool,
    /// A live handler clause may resume with a parameter other than the
    /// one it received (handler-state mutation past the decision prefix).
    pub mutates_param: bool,
}

impl Purity {
    /// True iff decision prefixes are safe to transposition-cache: no
    /// probes re-running captured futures and no handler-state mutation
    /// that could make a prefix's continuation depend on history beyond
    /// the decision bits.
    pub fn prefix_cache_safe(&self) -> bool {
        !self.probes && !self.mutates_param
    }
}

/// A `loss` site the analysis could not prove non-negative.
#[derive(Clone, Debug)]
pub struct Violation {
    /// The abstract emission at the site.
    pub interval: LossAbs,
    /// A short description of the offending site.
    pub site: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "loss site `{}` emits {}", self.site, self.interval)
    }
}

/// A non-forgeable certificate that every ambient emission of a specific
/// compiled program is component-wise non-negative, so strict-domination
/// pruning under forced-choice replay is winner-preserving.
///
/// The only way to obtain one is [`analyze`] returning a clean report;
/// [`NonNegLosses::covers`] ties the certificate to the exact
/// [`CompiledProgram`] it was derived from (pointer identity, `O(1)`).
#[derive(Clone, Debug)]
pub struct NonNegLosses {
    code: Arc<Code>,
}

impl NonNegLosses {
    /// True iff this certificate was derived from exactly `program`.
    pub fn covers(&self, program: &CompiledProgram) -> bool {
        Arc::ptr_eq(&self.code, &program.code)
    }
}

/// The combined verdict of the three analyses.
#[derive(Clone, Debug)]
pub struct FlowReport {
    /// Interval bound on the total ambient emission (often `Top` for
    /// handled programs; the certificate does not depend on it).
    pub emitted: LossAbs,
    /// Ambient `loss` sites that could not be proven non-negative.
    pub violations: Vec<Violation>,
    /// True if the analysis hit unknown code or its budget: certification
    /// is refused even with no recorded violations.
    pub inconclusive: bool,
    /// Effect-purity verdict.
    pub purity: Purity,
    /// Decision-shape bounds.
    pub shape: DecisionShape,
    certificate: Option<NonNegLosses>,
}

impl FlowReport {
    /// The non-negative-losses certificate, if earned.
    pub fn certificate(&self) -> Option<&NonNegLosses> {
        self.certificate.as_ref()
    }

    /// True iff the program was certified.
    pub fn certified(&self) -> bool {
        self.certificate.is_some()
    }
}

/// Analysis configuration.
#[derive(Clone, Copy, Debug)]
pub struct FlowConfig {
    /// Abstract evaluation steps before the analysis gives up and reports
    /// `inconclusive` (guards against exponential beta-redex blowup; λC
    /// `Code` is loop-free, so plain programs finish far below this).
    pub budget: usize,
}

impl Default for FlowConfig {
    fn default() -> FlowConfig {
        FlowConfig { budget: 1 << 20 }
    }
}

/// Runs all three analyses on a compiled program.
///
/// `decision_ops` are the operations the runtime will force (scripted
/// decisions replacing their handler clauses); see
/// [`Signature::decision_ops`](crate::sig::Signature::decision_ops).
pub fn analyze<S: AsRef<str>>(program: &CompiledProgram, decision_ops: &[S]) -> FlowReport {
    analyze_with(program, decision_ops, FlowConfig::default())
}

/// [`analyze`] with an explicit budget.
pub fn analyze_with<S: AsRef<str>>(
    program: &CompiledProgram,
    decision_ops: &[S],
    config: FlowConfig,
) -> FlowReport {
    let ops: Vec<&str> = decision_ops.iter().map(AsRef::as_ref).collect();
    let mut an = Analyzer {
        decision_ops: &ops,
        budget: config.budget,
        suppress: 0,
        violations: Vec::new(),
        inconclusive: false,
        purity: Purity::default(),
    };
    let out = an.eval(&program.code, &Env::default());
    // A program whose *result* is a closure may be applied by the caller
    // in an ambient context; scan it like any other escape.
    an.escape(&out.val);
    let certified = an.violations.is_empty() && !an.inconclusive;
    FlowReport {
        emitted: if certified && !out.emit.is_nonneg() {
            // The site condition proves non-negativity even when interval
            // propagation through handler clauses lost precision.
            LossAbs::NonNeg
        } else {
            out.emit
        },
        violations: an.violations,
        inconclusive: an.inconclusive,
        purity: an.purity,
        shape: out.shape,
        certificate: if certified {
            Some(NonNegLosses { code: program.code.clone() })
        } else {
            None
        },
    }
}

/// Abstract value.
#[derive(Clone, Debug)]
enum AbsVal {
    /// A loss with an interval bound.
    Loss(LossAbs),
    /// A known closure (body + captured abstract environment).
    Clos(Arc<Code>, Env),
    /// A tuple of known arity.
    Tuple(Vec<AbsVal>),
    /// A known injection (branch + payload) — gives `Cases` precision on
    /// constant booleans.
    Sum(bool, Box<AbsVal>),
    /// The handler parameter `p` (tracked for mutation analysis).
    Param,
    /// A captured continuation `k`.
    Resume,
    /// A loss probe `l`.
    Probe,
    /// Anything else.
    Opaque,
}

type Env = Vec<AbsVal>;

/// Result of abstractly evaluating one term: its value, the interval of
/// what it emits into the *innermost enclosing buffer*, and its decision
/// shape.
struct Out {
    val: AbsVal,
    emit: LossAbs,
    shape: DecisionShape,
}

impl Out {
    fn pure(val: AbsVal) -> Out {
        Out { val, emit: LossAbs::zero(), shape: DecisionShape::zero() }
    }
}

struct Analyzer<'a> {
    decision_ops: &'a [&'a str],
    budget: usize,
    /// Depth of captured regions (`Then` bodies, `Reset`): violations are
    /// not recorded there because those emissions never reach a live
    /// pruning buffer directly — their fold re-enters as a value.
    suppress: u32,
    violations: Vec<Violation>,
    inconclusive: bool,
    purity: Purity,
}

impl Analyzer<'_> {
    fn is_decision(&self, op: &str) -> bool {
        self.decision_ops.contains(&op)
    }

    fn give_up(&mut self) -> Out {
        self.inconclusive = true;
        Out { val: AbsVal::Opaque, emit: LossAbs::Top, shape: DecisionShape::unknown() }
    }

    fn eval(&mut self, code: &Arc<Code>, env: &Env) -> Out {
        if self.budget == 0 {
            return self.give_up();
        }
        self.budget -= 1;
        match &**code {
            Code::Const(Const::Loss(l)) => Out::pure(AbsVal::Loss(LossAbs::constant(l))),
            Code::Const(_) => Out::pure(AbsVal::Opaque),
            Code::Var(i) => {
                Out::pure(env.get(env.len().wrapping_sub(1 + i)).cloned().unwrap_or(AbsVal::Opaque))
            }
            Code::Lam(body) => Out::pure(AbsVal::Clos(body.clone(), env.clone())),
            Code::Prim(name, arg) => {
                let a = self.eval(arg, env);
                Out { val: self.prim(name, &a.val), emit: a.emit, shape: a.shape }
            }
            Code::App(f, a) => {
                let fo = self.eval(f, env);
                let ao = self.eval(a, env);
                let app = self.apply(&fo.val, ao.val);
                Out {
                    val: app.val,
                    emit: fo.emit.add(ao.emit).add(app.emit),
                    shape: fo.shape.seq(ao.shape).seq(app.shape),
                }
            }
            Code::Tuple(es) => {
                let mut vals = Vec::with_capacity(es.len());
                let mut emit = LossAbs::zero();
                let mut shape = DecisionShape::zero();
                for e in es {
                    let o = self.eval(e, env);
                    vals.push(o.val);
                    emit = emit.add(o.emit);
                    shape = shape.seq(o.shape);
                }
                Out { val: AbsVal::Tuple(vals), emit, shape }
            }
            Code::Proj(e, i) => {
                let o = self.eval(e, env);
                let val = match o.val {
                    AbsVal::Tuple(mut vs) if *i < vs.len() => vs.swap_remove(*i),
                    _ => AbsVal::Opaque,
                };
                Out { val, emit: o.emit, shape: o.shape }
            }
            Code::Inl { e, .. } => {
                let o = self.eval(e, env);
                Out { val: AbsVal::Sum(true, Box::new(o.val)), emit: o.emit, shape: o.shape }
            }
            Code::Inr { e, .. } => {
                let o = self.eval(e, env);
                Out { val: AbsVal::Sum(false, Box::new(o.val)), emit: o.emit, shape: o.shape }
            }
            Code::Cases { scrut, lbody, rbody } => {
                let s = self.eval(scrut, env);
                match s.val {
                    AbsVal::Sum(left, payload) => {
                        let branch = if left { lbody } else { rbody };
                        let mut env2 = env.clone();
                        env2.push(*payload);
                        let o = self.eval(branch, &env2);
                        Out { val: o.val, emit: s.emit.add(o.emit), shape: s.shape.seq(o.shape) }
                    }
                    _ => {
                        let mut env2 = env.clone();
                        env2.push(AbsVal::Opaque);
                        let l = self.eval(lbody, &env2);
                        let r = self.eval(rbody, &env2);
                        Out {
                            val: join_val(l.val, r.val),
                            emit: s.emit.add(l.emit.join(r.emit)),
                            shape: s.shape.seq(l.shape.join(r.shape)),
                        }
                    }
                }
            }
            Code::Zero => Out::pure(AbsVal::Opaque),
            Code::Succ(e) => {
                let o = self.eval(e, env);
                Out { val: AbsVal::Opaque, emit: o.emit, shape: o.shape }
            }
            Code::Nil(_) => Out::pure(AbsVal::Opaque),
            Code::Cons(h, t) => {
                let ho = self.eval(h, env);
                let to = self.eval(t, env);
                // List elements flow into folds as opaque values; escape
                // any closures stored in the spine so their bodies are
                // still scanned.
                self.escape(&ho.val);
                Out {
                    val: AbsVal::Opaque,
                    emit: ho.emit.add(to.emit),
                    shape: ho.shape.seq(to.shape),
                }
            }
            Code::Iter(n, z, s) | Code::Fold(n, z, s) => {
                let no = self.eval(n, env);
                let zo = self.eval(z, env);
                let so = self.eval(s, env);
                // The step runs zero or more times on values we cannot
                // track; one application to an opaque argument covers every
                // iteration (the abstract environment is the same and
                // `Opaque` is above every iterate).
                let step = self.apply(&so.val, AbsVal::Opaque);
                Out {
                    val: AbsVal::Opaque,
                    emit: no.emit.add(zo.emit).add(so.emit).add(step.emit.star()),
                    shape: no.shape.seq(zo.shape).seq(so.shape).seq(step.shape.star()),
                }
            }
            Code::OpCall { op, arg } => {
                let a = self.eval(arg, env);
                self.escape(&a.val);
                let here = if self.is_decision(op) {
                    // Forced replay intercepts this call at the handler
                    // boundary and returns a scripted decision; the clause
                    // never runs, so the site itself emits nothing.
                    DecisionShape::one()
                } else {
                    // Non-decision clauses run; their emissions are
                    // accounted (starred) at the enclosing `Handle`.
                    DecisionShape::zero()
                };
                Out { val: AbsVal::Opaque, emit: a.emit, shape: a.shape.seq(here) }
            }
            Code::Loss(e) => {
                let o = self.eval(e, env);
                let emitted = match o.val {
                    AbsVal::Loss(abs) => abs,
                    _ => LossAbs::Top,
                };
                if self.suppress == 0 && !emitted.is_nonneg() {
                    self.violations
                        .push(Violation { interval: emitted, site: format!("loss({:?})", e) });
                }
                Out { val: AbsVal::Opaque, emit: o.emit.add(emitted), shape: o.shape }
            }
            Code::Handle { handler, from, body } => {
                let fo = self.eval(from, env);
                let bo = self.eval(body, env);
                let mut clause_emit = LossAbs::Bot;
                let mut clause_shape = DecisionShape::zero();
                let mut any_live = false;
                for clause in &handler.clauses {
                    let mut env2 = env.clone();
                    env2.push(AbsVal::Param); // p
                    env2.push(AbsVal::Opaque); // x
                    env2.push(AbsVal::Probe); // l
                    env2.push(AbsVal::Resume); // k
                    if self.is_decision(&clause.op) {
                        // Dead under forced replay: scan for violations
                        // only; drop purity/emission/shape contributions.
                        self.scan_dead(&clause.body, &env2);
                    } else {
                        let co = self.eval(&clause.body, &env2);
                        clause_emit = clause_emit.join(co.emit);
                        clause_shape = clause_shape.join(co.shape);
                        any_live = true;
                    }
                }
                let mut env_ret = env.clone();
                env_ret.push(AbsVal::Param); // p
                env_ret.push(AbsVal::Opaque); // x
                let ro = self.eval(&handler.ret_body, &env_ret);
                let clause_part = if any_live { clause_emit.star() } else { LossAbs::zero() };
                Out {
                    val: AbsVal::Opaque,
                    emit: fo.emit.add(bo.emit).add(clause_part).add(ro.emit),
                    shape: fo.shape.seq(bo.shape).seq(clause_shape.star()).seq(ro.shape),
                }
            }
            Code::Then { e, lam_body } => {
                // `e`'s emissions are captured: they fold into the `◮`
                // verdict (`cap_1 + … + cap_n + g(v)`) instead of reaching
                // the outer buffer, so violations inside are suppressed —
                // the interval rides along the verdict value, and a
                // negative verdict re-emitted ambiently is caught at that
                // re-emitting site. The continuation receives `e`'s value
                // and runs against the outer buffer.
                self.suppress += 1;
                let eo = self.eval(e, env);
                self.suppress -= 1;
                let mut env2 = env.clone();
                env2.push(eo.val);
                let lo = self.eval(lam_body, &env2);
                let g_verdict = match lo.val {
                    AbsVal::Loss(a) => a,
                    _ => LossAbs::Top,
                };
                Out {
                    val: AbsVal::Loss(eo.emit.add(g_verdict)),
                    emit: lo.emit,
                    shape: eo.shape.seq(lo.shape),
                }
            }
            Code::Local { g_body, e } => {
                // `e` shares the outer buffer; the local loss continuation
                // `g` runs at decision points inside, zero or more times.
                let eo = self.eval(e, env);
                let mut env2 = env.clone();
                env2.push(AbsVal::Opaque);
                let go = self.eval(g_body, &env2);
                Out {
                    val: eo.val,
                    emit: eo.emit.add(go.emit.star()),
                    shape: eo.shape.seq(go.shape.star()),
                }
            }
            Code::Reset(e) => {
                // Emissions inside route to a junk buffer, persistently
                // across resumptions: they never reach any live buffer.
                self.purity.resets = true;
                self.suppress += 1;
                let eo = self.eval(e, env);
                self.suppress -= 1;
                Out { val: eo.val, emit: LossAbs::zero(), shape: eo.shape }
            }
        }
    }

    /// Abstract prim transfer. Prims never emit.
    fn prim(&mut self, name: &str, arg: &AbsVal) -> AbsVal {
        fn loss_of(v: &AbsVal) -> LossAbs {
            match v {
                AbsVal::Loss(a) => *a,
                _ => LossAbs::Top,
            }
        }
        fn pair_of(arg: &AbsVal) -> (LossAbs, LossAbs) {
            match arg {
                AbsVal::Tuple(vs) if vs.len() == 2 => (loss_of(&vs[0]), loss_of(&vs[1])),
                _ => (LossAbs::Top, LossAbs::Top),
            }
        }
        match name {
            "add" => {
                let (a, b) = pair_of(arg);
                AbsVal::Loss(a.add(b))
            }
            "sub" => {
                let (a, b) = pair_of(arg);
                AbsVal::Loss(a.add(b.neg()))
            }
            "mul" => {
                let (a, b) = pair_of(arg);
                AbsVal::Loss(a.mul(b))
            }
            "neg" => AbsVal::Loss(loss_of(arg).neg()),
            // A pair-loss's components are the operands' scalar readings;
            // their join (both intervals contain 0) bounds every component.
            "pair_loss" => {
                let (a, b) = pair_of(arg);
                AbsVal::Loss(a.join(b))
            }
            // Component reads: the operand interval contains all components
            // and 0, so it bounds any single component too.
            "fst_loss" | "snd_loss" => AbsVal::Loss(loss_of(arg)),
            "nat_to_loss" | "str_len" | "str_distinct" => AbsVal::Loss(LossAbs::NonNeg),
            // Comparisons and the rest produce non-loss ground values.
            _ => AbsVal::Opaque,
        }
    }

    /// Abstract application. The returned `Out.emit` is what the call
    /// emits into the caller's buffer.
    fn apply(&mut self, f: &AbsVal, arg: AbsVal) -> Out {
        if self.budget == 0 {
            return self.give_up();
        }
        self.budget -= 1;
        match f {
            AbsVal::Clos(body, captured) => {
                let mut env = captured.clone();
                env.push(arg);
                self.eval(body, &env)
            }
            AbsVal::Probe => {
                // `l(p', y)` re-runs the captured continuation with losses
                // folded into the verdict it returns. Only reachable in
                // live (non-decision) clauses; conservatively unknown.
                self.purity.probes = true;
                self.check_param_passing(&arg);
                Out {
                    val: AbsVal::Loss(LossAbs::Top),
                    emit: LossAbs::Top,
                    shape: DecisionShape::unknown(),
                }
            }
            AbsVal::Resume => {
                // `k(p', y)` resumes the continuation; future `loss` sites
                // are scanned at their own occurrence, but the resumed
                // segment's emission total is unknown here.
                self.check_param_passing(&arg);
                Out { val: AbsVal::Opaque, emit: LossAbs::Top, shape: DecisionShape::unknown() }
            }
            _ => {
                // Unknown callee: it may apply the argument in any context.
                self.escape(&arg);
                self.inconclusive = true;
                Out { val: AbsVal::Opaque, emit: LossAbs::Top, shape: DecisionShape::unknown() }
            }
        }
    }

    /// `k`/`l` receive `(p', y)`; resuming with a parameter that is not
    /// the one the clause received mutates handler state.
    fn check_param_passing(&mut self, arg: &AbsVal) {
        match arg {
            AbsVal::Tuple(vs) if !vs.is_empty() => {
                if !matches!(vs[0], AbsVal::Param) {
                    self.purity.mutates_param = true;
                }
            }
            AbsVal::Param => {}
            _ => self.purity.mutates_param = true,
        }
    }

    /// Scans a value that escapes to unknown code: closures inside may be
    /// applied later in an ambient context, so analyze their bodies
    /// unsuppressed (violations recorded) without trusting emission or
    /// shape totals.
    fn escape(&mut self, v: &AbsVal) {
        if self.budget == 0 {
            self.inconclusive = true;
            return;
        }
        match v {
            AbsVal::Clos(body, captured) => {
                self.budget -= 1;
                let saved = self.suppress;
                self.suppress = 0;
                let mut env = captured.clone();
                env.push(AbsVal::Opaque);
                let out = self.eval(body, &env);
                self.suppress = saved;
                self.escape(&out.val);
            }
            AbsVal::Tuple(vs) => {
                for v in vs {
                    self.escape(v);
                }
            }
            AbsVal::Sum(_, payload) => self.escape(payload),
            _ => {}
        }
    }

    /// Analyzes dead code (decision-op clause bodies, bypassed by forced
    /// interception) for `loss` violations only: purity, emission, shape,
    /// and inconclusiveness contributions are discarded.
    fn scan_dead(&mut self, body: &Arc<Code>, env: &Env) {
        let purity = self.purity;
        let inconclusive = self.inconclusive;
        let _ = self.eval(body, env);
        self.purity = purity;
        self.inconclusive = inconclusive;
    }
}

/// Join of abstract values across branches.
fn join_val(a: AbsVal, b: AbsVal) -> AbsVal {
    match (a, b) {
        (AbsVal::Loss(x), AbsVal::Loss(y)) => AbsVal::Loss(x.join(y)),
        (AbsVal::Param, AbsVal::Param) => AbsVal::Param,
        (AbsVal::Resume, AbsVal::Resume) => AbsVal::Resume,
        (AbsVal::Probe, AbsVal::Probe) => AbsVal::Probe,
        (AbsVal::Tuple(xs), AbsVal::Tuple(ys)) if xs.len() == ys.len() => {
            AbsVal::Tuple(xs.into_iter().zip(ys).map(|(x, y)| join_val(x, y)).collect())
        }
        (AbsVal::Sum(l1, p1), AbsVal::Sum(l2, p2)) if l1 == l2 => {
            AbsVal::Sum(l1, Box::new(join_val(*p1, *p2)))
        }
        _ => AbsVal::Opaque,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::*;
    use crate::compile;
    use crate::testgen::{deep_decide_chain, gen_signature, ProgramGen};
    use crate::types::{Effect, Type};

    fn analyze_expr(e: &crate::syntax::Expr, ops: &[&str]) -> FlowReport {
        let prog = compile(e).expect("closed");
        analyze(&prog, ops)
    }

    #[test]
    fn interval_lattice_basics() {
        let five = LossAbs::constant(&LossVal::scalar(5.0));
        assert_eq!(five, LossAbs::Interval(0.0, 5.0));
        let neg = LossAbs::constant(&LossVal::scalar(-3.0));
        assert_eq!(neg, LossAbs::Interval(-3.0, 0.0));
        assert!(!neg.is_nonneg());
        assert_eq!(five.join(neg), LossAbs::Interval(-3.0, 5.0));
        assert_eq!(five.add(neg), LossAbs::Interval(-3.0, 5.0));
        assert_eq!(neg.neg(), LossAbs::Interval(0.0, 3.0));
        assert_eq!(LossAbs::constant(&LossVal::scalar(f64::NAN)), LossAbs::Top);
        assert_eq!(LossAbs::NonNeg.add(five), LossAbs::NonNeg);
        assert_eq!(LossAbs::Top.join(LossAbs::Bot), LossAbs::Top);
        assert!(LossAbs::Bot.join(neg).contains(&LossVal::scalar(-2.0)));
    }

    #[test]
    fn star_and_mul() {
        assert_eq!(LossAbs::zero().star(), LossAbs::zero());
        assert_eq!(LossAbs::Interval(0.0, 4.0).star(), LossAbs::NonNeg);
        assert_eq!(LossAbs::Interval(-1.0, 4.0).star(), LossAbs::Top);
        let a = LossAbs::Interval(0.0, 3.0);
        let b = LossAbs::Interval(-2.0, 0.0);
        assert_eq!(a.mul(b), LossAbs::Interval(-6.0, 0.0));
        assert_eq!(LossAbs::NonNeg.mul(a), LossAbs::NonNeg);
        assert_eq!(LossAbs::NonNeg.mul(b), LossAbs::Top);
    }

    #[test]
    fn constant_loss_is_certified() {
        let e = seq(Effect::empty(), Type::unit(), loss(lc(2.0)), loss(lc(3.0)));
        let r = analyze_expr(&e, &[]);
        assert!(r.certified(), "{:?}", r.violations);
        assert!(r.emitted.contains(&LossVal::scalar(5.0)));
        assert_eq!(r.shape, DecisionShape::zero());
    }

    #[test]
    fn negative_constant_is_refused() {
        let r = analyze_expr(&loss(lc(-1.0)), &[]);
        assert!(!r.certified());
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.violations[0].interval, LossAbs::Interval(-1.0, 0.0));
    }

    #[test]
    fn neg_and_sub_prims_are_refused() {
        let r = analyze_expr(&loss(prim1("neg", lc(3.0))), &[]);
        assert!(!r.certified());
        let r = analyze_expr(&loss(prim2("sub", lc(1.0), lc(4.0))), &[]);
        assert!(!r.certified());
        // ... but subtraction that stays provably non-negative only in
        // spirit is still refused: the interval keeps the negative part.
        let r = analyze_expr(&loss(prim2("sub", lc(4.0), lc(1.0))), &[]);
        assert!(!r.certified());
    }

    #[test]
    fn if_joins_branches() {
        let e = loss(if_(leq(lc(1.0), lc(2.0)), lc(3.0), lc(4.0)));
        let r = analyze_expr(&e, &[]);
        assert!(r.certified());
        assert!(r.emitted.contains(&LossVal::scalar(3.0)));
        assert!(r.emitted.contains(&LossVal::scalar(4.0)));
    }

    #[test]
    fn let_bound_loss_flows_precisely() {
        let eff = Effect::empty();
        let e = let_(eff.clone(), "x", Type::loss(), lc(2.0), loss(add(v("x"), lc(1.0))));
        let r = analyze_expr(&e, &[]);
        assert!(r.certified(), "{:?}", r.violations);
        let e = let_(eff, "x", Type::loss(), lc(-2.0), loss(v("x")));
        assert!(!analyze_expr(&e, &[]).certified());
    }

    #[test]
    fn then_folds_captures_into_the_verdict() {
        let eff = Effect::empty();
        // Verdict discarded: the captured negative never reaches ambient.
        let discarded = seq(
            eff.clone(),
            Type::loss(),
            then(loss(lc(-5.0)), eff.clone(), "x", Type::unit(), lc(0.0)),
            loss(lc(1.0)),
        );
        let r = analyze_expr(&discarded, &[]);
        assert!(r.certified(), "{:?}", r.violations);
        // Re-emitting the folded verdict ambiently is caught at that site.
        let leaked = loss(then(loss(lc(-5.0)), eff, "x", Type::unit(), lc(0.0)));
        assert!(!analyze_expr(&leaked, &[]).certified());
    }

    #[test]
    fn reset_discards_and_sets_purity() {
        let r = analyze_expr(&reset(loss(lc(-9.0))), &[]);
        assert!(r.certified(), "reset routes to junk: {:?}", r.violations);
        assert!(r.purity.resets);
        assert_eq!(r.emitted, LossAbs::zero());
    }

    #[test]
    fn escaping_closure_is_scanned() {
        // A lambda hiding a negative emission, passed to an unknown op:
        // must be refused even though the body is never applied here.
        let e = op("mystery", lam(Effect::empty(), "x", Type::unit(), loss(lc(-1.0))));
        let r = analyze_expr(&e, &[]);
        assert!(!r.certified());
        assert!(!r.violations.is_empty());
    }

    #[test]
    fn decision_shape_counts_chain() {
        let prog = compile(&deep_decide_chain(5).expr).unwrap();
        let r = analyze(&prog, &gen_signature().decision_ops());
        assert_eq!(r.shape, DecisionShape { min: 5, max: Some(5) });
        assert!(r.certified(), "{:?}", r.violations);
        assert!(r.certificate().unwrap().covers(&prog));
        // Probes live only in the (dead) decision clause.
        assert!(!r.purity.probes);
        assert!(r.purity.prefix_cache_safe());
    }

    #[test]
    fn certificate_is_tied_to_its_program() {
        let p1 = compile(&loss(lc(1.0))).unwrap();
        let p2 = compile(&loss(lc(1.0))).unwrap();
        let r = analyze(&p1, &[] as &[&str]);
        let cert = r.certificate().unwrap();
        assert!(cert.covers(&p1));
        assert!(!cert.covers(&p2), "identical syntax, different compilation");
    }

    #[test]
    fn counter_handler_mutates_param() {
        let eff = Effect::single("cnt");
        let body = seq(eff, Type::unit(), loss(op("tick", unit())), lc(0.0));
        let h = ProgramGen::new(0).cnt_handler(&Type::loss(), &Effect::empty());
        let prog = compile(&handle0(h, body)).unwrap();
        let r = analyze(&prog, &gen_signature().decision_ops());
        assert!(r.purity.mutates_param, "k(pair(Succ(p), ..)) mutates state");
        assert!(!r.purity.prefix_cache_safe());
        // `loss(tick())` emits an unknown op result: refused.
        assert!(!r.certified());
    }

    #[test]
    fn budget_exhaustion_is_inconclusive_not_wrong() {
        let prog = compile(&deep_decide_chain(8).expr).unwrap();
        let r = analyze_with(&prog, &gen_signature().decision_ops(), FlowConfig { budget: 10 });
        assert!(r.inconclusive);
        assert!(!r.certified());
    }

    #[test]
    fn nan_loss_is_refused() {
        let r = analyze_expr(&loss(lc(f64::NAN)), &[]);
        assert!(!r.certified());
    }
}
