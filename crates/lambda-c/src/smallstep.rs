//! The small-step operational semantics of λC (Fig 6 / Fig 11).
//!
//! The judgment `g ⊢ε e →r e'` says that under loss continuation `g` (a
//! lambda of type `σ → loss ! ε'`), expression `e` steps to `e'` emitting
//! loss `r`. The loss continuation is threaded *down* the derivation,
//! extended at regular frames with `λε x:τ. F[x] ◮ g` (rule F) and replaced
//! at special frames (rules S1–S4); it is consulted only when an operation
//! is handled (rule R5), where it seeds the *choice continuation* — the key
//! construct of the paper.
//!
//! Implementation notes:
//!
//! * Frames are implicit in the structural recursion of [`step`]; only
//!   stuck-expression decomposition ([`split_stuck`]) materialises a
//!   context ([`KFrame`] list) because rule R5 must rebuild `K[y]`.
//! * Rule S2 produces `r + (e' ◮ g1)`; we elide the wrapper when `r = 0`
//!   (the overwhelmingly common case), which is sound because `0 + x → x`
//!   is a primitive identity and keeps terms linear in size.
//! * Machine-built lambdas need type annotations (`λε x:τ. F[x] ◮ g`), so
//!   the stepper computes the hole type with the typechecker; stepping is
//!   therefore only defined on well-typed expressions, which is all the
//!   paper's theory covers (Theorem 3.2).

use crate::loss::LossVal;
use crate::prim::{ground_to_value, prim_lookup, value_to_ground};
use crate::sig::Signature;
use crate::subst::{fresh, subst};
use crate::syntax::{Const, Expr, Handler};
use crate::typecheck::{type_of, Env, TypeError};
use crate::types::{Effect, Type};
use std::fmt;
use std::rc::Rc;

/// Outcome of attempting one step.
#[derive(Clone, Debug, PartialEq)]
pub enum StepResult {
    /// `e` is a value — no transition (Theorem 3.2(1)).
    Value,
    /// `e` is stuck on an unhandled operation — no transition.
    Stuck {
        /// The unhandled operation.
        op: String,
    },
    /// `g ⊢ε e →loss expr`.
    Step {
        /// The emitted loss `r`.
        loss: LossVal,
        /// The successor expression.
        expr: Expr,
    },
}

/// A runtime error. On well-typed input none of these can occur (progress,
/// Theorem 3.2(3)); they surface gracefully for ill-formed input.
#[derive(Clone, Debug, PartialEq)]
pub enum EvalError {
    /// A primitive function failed (wrong ground shape).
    Prim(String),
    /// The expression is malformed (e.g. projection from a non-tuple value).
    Malformed(String),
    /// Typechecking a subterm failed while building a loss continuation.
    Type(TypeError),
    /// Fuel exhausted in [`crate::bigstep::eval`].
    OutOfFuel {
        /// Steps taken before giving up.
        steps: u64,
    },
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Prim(m) => write!(f, "primitive failed: {m}"),
            EvalError::Malformed(m) => write!(f, "malformed expression: {m}"),
            EvalError::Type(t) => write!(f, "{t}"),
            EvalError::OutOfFuel { steps } => write!(f, "out of fuel after {steps} steps"),
        }
    }
}

impl std::error::Error for EvalError {}

impl From<TypeError> for EvalError {
    fn from(t: TypeError) -> Self {
        EvalError::Type(t)
    }
}

/// One frame of a continuation context `K` (Fig 5), used only to rebuild
/// `K[y]` when handling an operation.
#[derive(Clone, Debug)]
pub enum KFrame {
    /// `f(□)`
    Prim(String),
    /// `(v1, …, vk, □, e_{k+2}, …, en)`
    Tuple {
        /// Values before the hole.
        before: Vec<Rc<Expr>>,
        /// Expressions after the hole.
        after: Vec<Rc<Expr>>,
    },
    /// `□.i`
    Proj(usize),
    /// `inl(□)`
    Inl {
        /// Left type.
        lty: Type,
        /// Right type.
        rty: Type,
    },
    /// `inr(□)`
    Inr {
        /// Left type.
        lty: Type,
        /// Right type.
        rty: Type,
    },
    /// `cases □ of …`
    Cases {
        /// Left binder.
        lvar: String,
        /// Left type.
        lty: Type,
        /// Left branch.
        lbody: Rc<Expr>,
        /// Right binder.
        rvar: String,
        /// Right type.
        rty: Type,
        /// Right branch.
        rbody: Rc<Expr>,
    },
    /// `succ(□)`
    Succ,
    /// `iter(□, e2, e3)`
    Iter1(Rc<Expr>, Rc<Expr>),
    /// `iter(v1, □, e3)`
    Iter2(Rc<Expr>, Rc<Expr>),
    /// `iter(v1, v2, □)`
    Iter3(Rc<Expr>, Rc<Expr>),
    /// `cons(□, e2)`
    Cons1(Rc<Expr>),
    /// `cons(v1, □)`
    Cons2(Rc<Expr>),
    /// `fold(□, e2, e3)`
    Fold1(Rc<Expr>, Rc<Expr>),
    /// `fold(v1, □, e3)`
    Fold2(Rc<Expr>, Rc<Expr>),
    /// `fold(v1, v2, □)`
    Fold3(Rc<Expr>, Rc<Expr>),
    /// `□ e`
    AppFun(Rc<Expr>),
    /// `v □`
    AppArg(Rc<Expr>),
    /// `op(□)`
    OpArg(String),
    /// `loss(□)`
    LossArg,
    /// `with h from □ handle e` (a *regular* frame)
    HandleFrom(Rc<Handler>, Rc<Expr>),
    /// `with h from v handle □` (a *special* frame)
    HandleBody(Rc<Handler>, Rc<Expr>),
    /// `□ ◮ λx. e` (special)
    ThenLhs(Rc<Expr>),
    /// `⟨□⟩^ε_g` (special)
    Local {
        /// The annotation `ε1`.
        eff: Effect,
        /// The loss continuation.
        g: Rc<Expr>,
    },
    /// `reset □` (special)
    Reset,
}

impl KFrame {
    /// Plugs `e` into the frame's hole.
    pub fn plug(&self, e: Expr) -> Expr {
        let e = e.rc();
        match self {
            KFrame::Prim(name) => Expr::Prim(name.clone(), e),
            KFrame::Tuple { before, after } => {
                let mut es = before.clone();
                es.push(e);
                es.extend(after.iter().cloned());
                Expr::Tuple(es)
            }
            KFrame::Proj(i) => Expr::Proj(e, *i),
            KFrame::Inl { lty, rty } => Expr::Inl { lty: lty.clone(), rty: rty.clone(), e },
            KFrame::Inr { lty, rty } => Expr::Inr { lty: lty.clone(), rty: rty.clone(), e },
            KFrame::Cases { lvar, lty, lbody, rvar, rty, rbody } => Expr::Cases {
                scrut: e,
                lvar: lvar.clone(),
                lty: lty.clone(),
                lbody: Rc::clone(lbody),
                rvar: rvar.clone(),
                rty: rty.clone(),
                rbody: Rc::clone(rbody),
            },
            KFrame::Succ => Expr::Succ(e),
            KFrame::Iter1(e2, e3) => Expr::Iter(e, Rc::clone(e2), Rc::clone(e3)),
            KFrame::Iter2(v1, e3) => Expr::Iter(Rc::clone(v1), e, Rc::clone(e3)),
            KFrame::Iter3(v1, v2) => Expr::Iter(Rc::clone(v1), Rc::clone(v2), e),
            KFrame::Cons1(e2) => Expr::Cons(e, Rc::clone(e2)),
            KFrame::Cons2(v1) => Expr::Cons(Rc::clone(v1), e),
            KFrame::Fold1(e2, e3) => Expr::Fold(e, Rc::clone(e2), Rc::clone(e3)),
            KFrame::Fold2(v1, e3) => Expr::Fold(Rc::clone(v1), e, Rc::clone(e3)),
            KFrame::Fold3(v1, v2) => Expr::Fold(Rc::clone(v1), Rc::clone(v2), e),
            KFrame::AppFun(arg) => Expr::App(e, Rc::clone(arg)),
            KFrame::AppArg(f) => Expr::App(Rc::clone(f), e),
            KFrame::OpArg(op) => Expr::OpCall { op: op.clone(), arg: e },
            KFrame::LossArg => Expr::Loss(e),
            KFrame::HandleFrom(h, body) => {
                Expr::Handle { handler: Rc::clone(h), from: e, body: Rc::clone(body) }
            }
            KFrame::HandleBody(h, from) => {
                Expr::Handle { handler: Rc::clone(h), from: Rc::clone(from), body: e }
            }
            KFrame::ThenLhs(lam) => Expr::Then { e, lam: Rc::clone(lam) },
            KFrame::Local { eff, g } => Expr::Local { eff: eff.clone(), g: Rc::clone(g), e },
            KFrame::Reset => Expr::Reset(e),
        }
    }
}

/// Plugs `e` through a context given outermost-first.
pub fn plug_all(path: &[KFrame], e: Expr) -> Expr {
    path.iter().rev().fold(e, |acc, f| f.plug(acc))
}

/// A stuck-expression decomposition `e = K[op(v)]` with `op ∉ hop(K)`
/// (Lemma 3.1 case 2).
#[derive(Clone, Debug)]
pub struct StuckOp {
    /// The context `K`, outermost frame first.
    pub path: Vec<KFrame>,
    /// The unhandled operation.
    pub op: String,
    /// Its (value) argument.
    pub arg: Expr,
}

/// Finds the evaluation-position child of `e` together with its frame, if
/// evaluation descends into a proper subterm. Returns `None` when `e` is a
/// value, a redex, or an operation call with value argument.
fn active_split(e: &Expr) -> Option<(KFrame, Expr)> {
    let go = |e: &Rc<Expr>| (**e).clone();
    match e {
        Expr::Prim(name, a) if !a.is_value() => Some((KFrame::Prim(name.clone()), go(a))),
        Expr::Tuple(es) => {
            let i = es.iter().position(|e| !e.is_value())?;
            Some((
                KFrame::Tuple { before: es[..i].to_vec(), after: es[i + 1..].to_vec() },
                go(&es[i]),
            ))
        }
        Expr::Proj(a, i) if !a.is_value() => Some((KFrame::Proj(*i), go(a))),
        Expr::Inl { lty, rty, e } if !e.is_value() => {
            Some((KFrame::Inl { lty: lty.clone(), rty: rty.clone() }, go(e)))
        }
        Expr::Inr { lty, rty, e } if !e.is_value() => {
            Some((KFrame::Inr { lty: lty.clone(), rty: rty.clone() }, go(e)))
        }
        Expr::Cases { scrut, lvar, lty, lbody, rvar, rty, rbody } if !scrut.is_value() => Some((
            KFrame::Cases {
                lvar: lvar.clone(),
                lty: lty.clone(),
                lbody: Rc::clone(lbody),
                rvar: rvar.clone(),
                rty: rty.clone(),
                rbody: Rc::clone(rbody),
            },
            go(scrut),
        )),
        Expr::Succ(a) if !a.is_value() => Some((KFrame::Succ, go(a))),
        Expr::Iter(a, b, c) => {
            if !a.is_value() {
                Some((KFrame::Iter1(Rc::clone(b), Rc::clone(c)), go(a)))
            } else if !b.is_value() {
                Some((KFrame::Iter2(Rc::clone(a), Rc::clone(c)), go(b)))
            } else if !c.is_value() {
                Some((KFrame::Iter3(Rc::clone(a), Rc::clone(b)), go(c)))
            } else {
                None
            }
        }
        Expr::Cons(a, b) => {
            if !a.is_value() {
                Some((KFrame::Cons1(Rc::clone(b)), go(a)))
            } else if !b.is_value() {
                Some((KFrame::Cons2(Rc::clone(a)), go(b)))
            } else {
                None
            }
        }
        Expr::Fold(a, b, c) => {
            if !a.is_value() {
                Some((KFrame::Fold1(Rc::clone(b), Rc::clone(c)), go(a)))
            } else if !b.is_value() {
                Some((KFrame::Fold2(Rc::clone(a), Rc::clone(c)), go(b)))
            } else if !c.is_value() {
                Some((KFrame::Fold3(Rc::clone(a), Rc::clone(b)), go(c)))
            } else {
                None
            }
        }
        Expr::App(a, b) => {
            if !a.is_value() {
                Some((KFrame::AppFun(Rc::clone(b)), go(a)))
            } else if !b.is_value() {
                Some((KFrame::AppArg(Rc::clone(a)), go(b)))
            } else {
                None
            }
        }
        Expr::OpCall { op, arg } if !arg.is_value() => Some((KFrame::OpArg(op.clone()), go(arg))),
        Expr::Loss(a) if !a.is_value() => Some((KFrame::LossArg, go(a))),
        Expr::Handle { handler, from, body } => {
            if !from.is_value() {
                Some((KFrame::HandleFrom(Rc::clone(handler), Rc::clone(body)), go(from)))
            } else if !body.is_value() {
                Some((KFrame::HandleBody(Rc::clone(handler), Rc::clone(from)), go(body)))
            } else {
                None
            }
        }
        Expr::Then { e, lam } if !e.is_value() => Some((KFrame::ThenLhs(Rc::clone(lam)), go(e))),
        Expr::Local { eff, g, e } if !e.is_value() => {
            Some((KFrame::Local { eff: eff.clone(), g: Rc::clone(g) }, go(e)))
        }
        Expr::Reset(a) if !a.is_value() => Some((KFrame::Reset, go(a))),
        _ => None,
    }
}

/// Decomposes a stuck expression as `K[op(v)]` with `op ∉ hop(K)`. Returns
/// `None` if `e` is a value, a redex, or reducible.
pub fn split_stuck(e: &Expr) -> Option<StuckOp> {
    if e.is_value() {
        return None;
    }
    if let Expr::OpCall { op, arg } = e {
        if arg.is_value() {
            return Some(StuckOp { path: Vec::new(), op: op.clone(), arg: (**arg).clone() });
        }
    }
    let (frame, sub) = active_split(e)?;
    let inner = split_stuck(&sub)?;
    // If this frame is a handler that handles the stuck op, `e` is the R5
    // redex, not stuck.
    if let KFrame::HandleBody(h, _) = &frame {
        if h.clause(&inner.op).is_some() {
            return None;
        }
    }
    let mut path = inner.path;
    path.insert(0, frame);
    Some(StuckOp { path, op: inner.op, arg: inner.arg })
}

fn type_of_closed(sig: &Signature, e: &Expr, eff: &Effect) -> Result<Type, EvalError> {
    Ok(type_of(sig, &Env::new(), e, eff)?)
}

/// Builds the extended loss continuation `λε x:τ. F[x] ◮ g` of rule (F).
fn extend_g(
    sig: &Signature,
    g: &Rc<Expr>,
    eff: &Effect,
    sub: &Expr,
    frame: &KFrame,
) -> Result<Rc<Expr>, EvalError> {
    let tau = type_of_closed(sig, sub, eff)?;
    let x = fresh("f");
    let body = Expr::Then { e: frame.plug(Expr::Var(x.clone())).rc(), lam: Rc::clone(g) };
    Ok(Expr::Lam { eff: eff.clone(), var: x, ty: tau, body: body.rc() }.rc())
}

/// One transition of the judgment `g ⊢ε e →r e'` (Fig 6).
///
/// # Errors
///
/// Returns [`EvalError`] only on ill-typed or ill-formed input; on
/// well-typed input the function is total (progress).
pub fn step(
    sig: &Signature,
    g: &Rc<Expr>,
    eff: &Effect,
    e: &Expr,
) -> Result<StepResult, EvalError> {
    if e.is_value() {
        return Ok(StepResult::Value);
    }

    // ---- redex rules --------------------------------------------------
    match e {
        // (R1) primitive reduction
        Expr::Prim(name, a) if a.is_value() => {
            let def = prim_lookup(name)
                .ok_or_else(|| EvalError::Malformed(format!("unknown primitive `{name}`")))?;
            let garg = value_to_ground(a)
                .ok_or_else(|| EvalError::Malformed(format!("non-ground prim argument {a}")))?;
            let out = (def.eval)(&garg).map_err(EvalError::Prim)?;
            return Ok(StepResult::Step {
                loss: LossVal::zero(),
                expr: ground_to_value(&out, &def.ret_ty),
            });
        }
        // (R2) projection
        Expr::Proj(a, i) if a.is_value() => {
            if let Expr::Tuple(vs) = a.as_ref() {
                let v = vs.get(*i).ok_or_else(|| {
                    EvalError::Malformed(format!("projection .{} out of range", i + 1))
                })?;
                return Ok(StepResult::Step { loss: LossVal::zero(), expr: (**v).clone() });
            }
            return Err(EvalError::Malformed(format!("projection from non-tuple {a}")));
        }
        // (R3) beta
        Expr::App(f, a) if f.is_value() && a.is_value() => {
            if let Expr::Lam { var, body, .. } = f.as_ref() {
                return Ok(StepResult::Step { loss: LossVal::zero(), expr: subst(body, var, a) });
            }
            return Err(EvalError::Malformed(format!("application of non-lambda {f}")));
        }
        // cases redexes
        Expr::Cases { scrut, lvar, lbody, rvar, rbody, .. } if scrut.is_value() => {
            let expr = match scrut.as_ref() {
                Expr::Inl { e, .. } => subst(lbody, lvar, e),
                Expr::Inr { e, .. } => subst(rbody, rvar, e),
                other => {
                    return Err(EvalError::Malformed(format!("cases on non-sum value {other}")))
                }
            };
            return Ok(StepResult::Step { loss: LossVal::zero(), expr });
        }
        // iter redexes
        Expr::Iter(a, b, c) if a.is_value() && b.is_value() && c.is_value() => {
            let expr = match a.as_ref() {
                Expr::Zero => (**b).clone(),
                Expr::Succ(n) => Expr::App(
                    Rc::clone(c),
                    Expr::Iter(Rc::clone(n), Rc::clone(b), Rc::clone(c)).rc(),
                ),
                other => return Err(EvalError::Malformed(format!("iter on non-nat {other}"))),
            };
            return Ok(StepResult::Step { loss: LossVal::zero(), expr });
        }
        // fold redexes
        Expr::Fold(a, b, c) if a.is_value() && b.is_value() && c.is_value() => {
            let expr = match a.as_ref() {
                Expr::Nil(_) => (**b).clone(),
                Expr::Cons(h, t) => Expr::App(
                    Rc::clone(c),
                    Expr::Tuple(vec![
                        Rc::clone(h),
                        Expr::Fold(Rc::clone(t), Rc::clone(b), Rc::clone(c)).rc(),
                    ])
                    .rc(),
                ),
                other => return Err(EvalError::Malformed(format!("fold on non-list {other}"))),
            };
            return Ok(StepResult::Step { loss: LossVal::zero(), expr });
        }
        // (R4) loss emission
        Expr::Loss(a) if a.is_value() => {
            if let Expr::Const(Const::Loss(r)) = a.as_ref() {
                return Ok(StepResult::Step { loss: r.clone(), expr: Expr::unit() });
            }
            return Err(EvalError::Malformed(format!("loss of non-loss value {a}")));
        }
        // (R5)/(R6) handling
        Expr::Handle { handler, from, body } if from.is_value() => {
            if body.is_value() {
                // (R6): return clause
                let e1 = subst(&handler.ret.body, &handler.ret.p, from);
                let expr = subst(&e1, &handler.ret.x, body);
                return Ok(StepResult::Step { loss: LossVal::zero(), expr });
            }
            if let Some(stuck) = split_stuck(body) {
                if let Some(clause) = handler.clause(&stuck.op) {
                    // (R5): build f_l and f_k and invoke the clause.
                    let osig = sig.op_sig(&stuck.op).ok_or_else(|| {
                        EvalError::Malformed(format!("operation `{}` not in signature", stuck.op))
                    })?;
                    let pair_ty = Type::Tuple(vec![handler.par_ty.clone(), osig.ret.clone()]);
                    let mk_resume = |z: &str| -> Expr {
                        Expr::Handle {
                            handler: Rc::clone(handler),
                            from: Expr::Proj(Expr::Var(z.to_owned()).rc(), 0).rc(),
                            body: plug_all(
                                &stuck.path,
                                Expr::Proj(Expr::Var(z.to_owned()).rc(), 1),
                            )
                            .rc(),
                        }
                    };
                    // f_k = λε (p,y). ⟨with h from p handle K[y]⟩^ε_g
                    let zk = fresh("z");
                    let f_k = Expr::Lam {
                        eff: eff.clone(),
                        var: zk.clone(),
                        ty: pair_ty.clone(),
                        body: Expr::Local {
                            eff: eff.clone(),
                            g: Rc::clone(g),
                            e: mk_resume(&zk).rc(),
                        }
                        .rc(),
                    };
                    // f_l = λε (p,y). (with h from p handle K[y]) ◮ g
                    let zl = fresh("z");
                    let f_l = Expr::Lam {
                        eff: eff.clone(),
                        var: zl.clone(),
                        ty: pair_ty,
                        body: Expr::Then { e: mk_resume(&zl).rc(), lam: Rc::clone(g) }.rc(),
                    };
                    let b0 = subst(&clause.body, &clause.p, from);
                    let b1 = subst(&b0, &clause.x, &stuck.arg);
                    let b2 = subst(&b1, &clause.l, &f_l);
                    let expr = subst(&b2, &clause.k, &f_k);
                    return Ok(StepResult::Step { loss: LossVal::zero(), expr });
                }
                // stuck on an op this handler does not handle
                return Ok(StepResult::Stuck { op: stuck.op });
            }
            // fall through to the context rules below (S1)
        }
        // (R7) then with value lhs
        Expr::Then { e: lhs, lam } if lhs.is_value() => {
            if let Expr::Lam { eff: leff, var, body, .. } = lam.as_ref() {
                let expr = Expr::Local {
                    eff: leff.clone(),
                    g: Expr::zero_cont(Type::loss(), leff.clone()).rc(),
                    e: subst(body, var, lhs).rc(),
                };
                return Ok(StepResult::Step { loss: LossVal::zero(), expr });
            }
            return Err(EvalError::Malformed(format!("then-continuation is not a lambda: {lam}")));
        }
        // (R8) local over a value
        Expr::Local { e: inner, .. } if inner.is_value() => {
            return Ok(StepResult::Step { loss: LossVal::zero(), expr: (**inner).clone() });
        }
        // (R9) reset over a value
        Expr::Reset(inner) if inner.is_value() => {
            return Ok(StepResult::Step { loss: LossVal::zero(), expr: (**inner).clone() });
        }
        _ => {}
    }

    // ---- context rules -------------------------------------------------
    let Some((frame, sub)) = active_split(e) else {
        // No redex applied and no active subterm: only op(v) remains.
        if let Expr::OpCall { op, .. } = e {
            return Ok(StepResult::Stuck { op: op.clone() });
        }
        return Err(EvalError::Malformed(format!("no rule applies to {e}")));
    };

    match &frame {
        // (S1): evaluate the handled computation under the return-extended
        // loss continuation, at effect εℓ.
        KFrame::HandleBody(h, from) => {
            let ret_body = subst(&h.ret.body, &h.ret.p, from);
            let g1 = Expr::Lam {
                eff: eff.clone(),
                var: h.ret.x.clone(),
                ty: h.body_ty.clone(),
                body: Expr::Then { e: ret_body.rc(), lam: Rc::clone(g) }.rc(),
            }
            .rc();
            let inner_eff = eff.plus(h.label.clone());
            match step(sig, &g1, &inner_eff, &sub)? {
                StepResult::Step { loss, expr } => {
                    Ok(StepResult::Step { loss, expr: frame.plug(expr) })
                }
                StepResult::Stuck { op } => Ok(StepResult::Stuck { op }),
                StepResult::Value => Err(EvalError::Malformed("active subterm was a value".into())),
            }
        }
        // (S2): evaluate the lhs of ◮ under its own continuation; fold the
        // emitted loss into the result.
        KFrame::ThenLhs(lam) => match step(sig, lam, eff, &sub)? {
            StepResult::Step { loss, expr } => {
                let rebuilt = frame.plug(expr);
                let expr = if loss.is_zero() {
                    rebuilt
                } else {
                    Expr::Prim(
                        "add".into(),
                        Expr::Tuple(vec![Expr::Const(Const::Loss(loss)).rc(), rebuilt.rc()]).rc(),
                    )
                };
                Ok(StepResult::Step { loss: LossVal::zero(), expr })
            }
            StepResult::Stuck { op } => Ok(StepResult::Stuck { op }),
            StepResult::Value => Err(EvalError::Malformed("active subterm was a value".into())),
        },
        // (S3): evaluate under the localised continuation at effect ε1;
        // losses are exported.
        KFrame::Local { eff: eff1, g: g1 } => match step(sig, g1, eff1, &sub)? {
            StepResult::Step { loss, expr } => {
                Ok(StepResult::Step { loss, expr: frame.plug(expr) })
            }
            StepResult::Stuck { op } => Ok(StepResult::Stuck { op }),
            StepResult::Value => Err(EvalError::Malformed("active subterm was a value".into())),
        },
        // (S4): reset — same continuation, losses suppressed.
        KFrame::Reset => match step(sig, g, eff, &sub)? {
            StepResult::Step { expr, .. } => {
                Ok(StepResult::Step { loss: LossVal::zero(), expr: frame.plug(expr) })
            }
            StepResult::Stuck { op } => Ok(StepResult::Stuck { op }),
            StepResult::Value => Err(EvalError::Malformed("active subterm was a value".into())),
        },
        // (F): regular frames extend the loss continuation.
        _ => {
            let g1 = extend_g(sig, g, eff, &sub, &frame)?;
            match step(sig, &g1, eff, &sub)? {
                StepResult::Step { loss, expr } => {
                    Ok(StepResult::Step { loss, expr: frame.plug(expr) })
                }
                StepResult::Stuck { op } => Ok(StepResult::Stuck { op }),
                StepResult::Value => Err(EvalError::Malformed("active subterm was a value".into())),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sig::OpSig;
    use crate::syntax::{OpClause, RetClause};

    fn sig_amb() -> Signature {
        let mut sig = Signature::new();
        sig.declare("amb", vec![("decide".into(), OpSig { arg: Type::unit(), ret: Type::bool() })])
            .unwrap();
        sig
    }

    fn zero_g(ty: Type) -> Rc<Expr> {
        Expr::zero_cont(ty, Effect::empty()).rc()
    }

    fn run_steps(sig: &Signature, e: Expr, ty: Type, eff: Effect) -> (LossVal, Expr) {
        let g = Expr::zero_cont(ty, Effect::empty()).rc();
        let mut cur = e;
        let mut total = LossVal::zero();
        for _ in 0..10_000 {
            match step(sig, &g, &eff, &cur).unwrap() {
                StepResult::Step { loss, expr } => {
                    total = total.add(&loss);
                    cur = expr;
                }
                _ => return (total, cur),
            }
        }
        panic!("did not terminate");
    }

    #[test]
    fn values_do_not_step() {
        let sig = Signature::new();
        let g = zero_g(Type::loss());
        assert_eq!(step(&sig, &g, &Effect::empty(), &Expr::lossc(1.0)).unwrap(), StepResult::Value);
    }

    #[test]
    fn prim_step() {
        let sig = Signature::new();
        let e = Expr::Prim(
            "add".into(),
            Expr::Tuple(vec![Expr::lossc(1.0).rc(), Expr::lossc(2.0).rc()]).rc(),
        );
        let (loss, v) = run_steps(&sig, e, Type::loss(), Effect::empty());
        assert!(loss.is_zero());
        assert_eq!(v, Expr::lossc(3.0));
    }

    #[test]
    fn loss_emits_label() {
        let sig = Signature::new();
        let e = Expr::Loss(Expr::lossc(2.5).rc());
        let (loss, v) = run_steps(&sig, e, Type::unit(), Effect::empty());
        assert_eq!(loss, LossVal::scalar(2.5));
        assert_eq!(v, Expr::unit());
    }

    #[test]
    fn beta_and_frames() {
        let sig = Signature::new();
        // (λx. x + x) (1 + 2) → 6... with loss arithmetic: (λx. add(x,x)) (add(1,2))
        let f = Expr::Lam {
            eff: Effect::empty(),
            var: "x".into(),
            ty: Type::loss(),
            body: Expr::Prim(
                "add".into(),
                Expr::Tuple(vec![Expr::Var("x".into()).rc(), Expr::Var("x".into()).rc()]).rc(),
            )
            .rc(),
        };
        let arg = Expr::Prim(
            "add".into(),
            Expr::Tuple(vec![Expr::lossc(1.0).rc(), Expr::lossc(2.0).rc()]).rc(),
        );
        let e = Expr::App(f.rc(), arg.rc());
        let (_, v) = run_steps(&sig, e, Type::loss(), Effect::empty());
        assert_eq!(v, Expr::lossc(6.0));
    }

    #[test]
    fn unhandled_op_is_stuck() {
        let sig = sig_amb();
        let g = zero_g(Type::bool());
        let e = Expr::OpCall { op: "decide".into(), arg: Expr::unit().rc() };
        assert_eq!(
            step(&sig, &g, &Effect::single("amb"), &e).unwrap(),
            StepResult::Stuck { op: "decide".into() }
        );
        // also stuck under a frame
        let e2 = Expr::Loss(
            Expr::Prim(
                "add".into(),
                Expr::Tuple(vec![
                    Expr::lossc(0.0).rc(),
                    Expr::Cases {
                        scrut: e.rc(),
                        lvar: "t".into(),
                        lty: Type::unit(),
                        lbody: Expr::lossc(1.0).rc(),
                        rvar: "f".into(),
                        rty: Type::unit(),
                        rbody: Expr::lossc(2.0).rc(),
                    }
                    .rc(),
                ])
                .rc(),
            )
            .rc(),
        );
        assert!(matches!(
            step(&sig, &zero_g(Type::unit()), &Effect::single("amb"), &e2).unwrap(),
            StepResult::Stuck { .. }
        ));
    }

    #[test]
    fn split_stuck_finds_context() {
        let e = Expr::Succ(Expr::OpCall { op: "decide".into(), arg: Expr::unit().rc() }.rc());
        let s = split_stuck(&e).unwrap();
        assert_eq!(s.op, "decide");
        assert_eq!(s.path.len(), 1);
        let rebuilt = plug_all(&s.path, Expr::OpCall { op: s.op.clone(), arg: s.arg.clone().rc() });
        assert_eq!(rebuilt, e);
    }

    /// A handler that resumes `decide` with `true` via the delimited
    /// continuation: `decide ↦ k (p, true)`.
    fn h_const_true(eff: Effect) -> Rc<Handler> {
        Rc::new(Handler {
            label: "amb".into(),
            par_ty: Type::unit(),
            body_ty: Type::bool(),
            res_ty: Type::bool(),
            eff,
            clauses: vec![OpClause {
                op: "decide".into(),
                p: "p".into(),
                x: "x".into(),
                l: "l".into(),
                k: "k".into(),
                body: Expr::App(
                    Expr::Var("k".into()).rc(),
                    Expr::Tuple(vec![Expr::Var("p".into()).rc(), Expr::tt().rc()]).rc(),
                )
                .rc(),
            }],
            ret: RetClause { p: "p".into(), x: "x".into(), body: Expr::Var("x".into()).rc() },
        })
    }

    #[test]
    fn handle_resumes_with_true() {
        let sig = sig_amb();
        let e = Expr::Handle {
            handler: h_const_true(Effect::empty()),
            from: Expr::unit().rc(),
            body: Expr::OpCall { op: "decide".into(), arg: Expr::unit().rc() }.rc(),
        };
        let (loss, v) = run_steps(&sig, e, Type::bool(), Effect::empty());
        assert!(loss.is_zero());
        assert_eq!(v, Expr::tt());
    }

    #[test]
    fn handle_return_clause_applies() {
        let sig = sig_amb();
        let e = Expr::Handle {
            handler: h_const_true(Effect::empty()),
            from: Expr::unit().rc(),
            body: Expr::ff().rc(),
        };
        let (_, v) = run_steps(&sig, e, Type::bool(), Effect::empty());
        assert_eq!(v, Expr::ff());
    }

    #[test]
    fn losses_propagate_through_handlers() {
        let sig = sig_amb();
        // with h handle (loss(3); decide()) — loss escapes eagerly.
        let body = Expr::App(
            Expr::Lam {
                eff: Effect::single("amb"),
                var: "_".into(),
                ty: Type::unit(),
                body: Expr::OpCall { op: "decide".into(), arg: Expr::unit().rc() }.rc(),
            }
            .rc(),
            Expr::Loss(Expr::lossc(3.0).rc()).rc(),
        );
        let e = Expr::Handle {
            handler: h_const_true(Effect::empty()),
            from: Expr::unit().rc(),
            body: body.rc(),
        };
        let (loss, v) = run_steps(&sig, e, Type::bool(), Effect::empty());
        assert_eq!(loss, LossVal::scalar(3.0));
        assert_eq!(v, Expr::tt());
    }

    #[test]
    fn reset_suppresses_losses() {
        let sig = Signature::new();
        let e = Expr::Reset(Expr::Loss(Expr::lossc(5.0).rc()).rc());
        let (loss, v) = run_steps(&sig, e, Type::unit(), Effect::empty());
        assert!(loss.is_zero());
        assert_eq!(v, Expr::unit());
    }

    #[test]
    fn local_exports_losses() {
        let sig = Signature::new();
        let e = Expr::Local {
            eff: Effect::empty(),
            g: Expr::zero_cont(Type::unit(), Effect::empty()).rc(),
            e: Expr::Loss(Expr::lossc(5.0).rc()).rc(),
        };
        let (loss, v) = run_steps(&sig, e, Type::unit(), Effect::empty());
        assert_eq!(loss, LossVal::scalar(5.0));
        assert_eq!(v, Expr::unit());
    }

    #[test]
    fn then_folds_losses_into_value() {
        let sig = Signature::new();
        // (loss(2); 7) ◮ λx. x   ⇒ value 2 + 7 = 9, ambient loss 0
        let lhs = Expr::App(
            Expr::Lam {
                eff: Effect::empty(),
                var: "_".into(),
                ty: Type::unit(),
                body: Expr::lossc(7.0).rc(),
            }
            .rc(),
            Expr::Loss(Expr::lossc(2.0).rc()).rc(),
        );
        let lam = Expr::Lam {
            eff: Effect::empty(),
            var: "x".into(),
            ty: Type::loss(),
            body: Expr::Var("x".into()).rc(),
        };
        let e = Expr::Then { e: lhs.rc(), lam: lam.rc() };
        let (loss, v) = run_steps(&sig, e, Type::loss(), Effect::empty());
        assert!(loss.is_zero());
        assert_eq!(v, Expr::lossc(9.0));
    }
}
