//! Loss values.
//!
//! The paper takes the loss set `R` to be a commutative monoid — usually the
//! reals under addition, but the Nash-equilibrium example (§4.3) uses pairs
//! of reals and §6 suggests locally varying the reward monoid. [`LossVal`]
//! covers all the paper's uses with a single machine type: a small vector of
//! `f64` added element-wise, where missing components count as `0`. The
//! empty vector is the monoid unit, a 1-vector is a scalar loss, a 2-vector
//! is a prisoner's-dilemma-style pair.

use std::fmt;

/// An element of the loss monoid `R`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LossVal(pub Vec<f64>);

impl LossVal {
    /// The monoid unit `0`.
    pub fn zero() -> Self {
        LossVal(Vec::new())
    }

    /// A scalar loss.
    pub fn scalar(x: f64) -> Self {
        LossVal(vec![x])
    }

    /// A pair loss (used for two-player objectives).
    pub fn pair(a: f64, b: f64) -> Self {
        LossVal(vec![a, b])
    }

    /// Element-wise addition, padding the shorter vector with zeros.
    pub fn add(&self, other: &LossVal) -> LossVal {
        let n = self.0.len().max(other.0.len());
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let a = self.0.get(i).copied().unwrap_or(0.0);
            let b = other.0.get(i).copied().unwrap_or(0.0);
            out.push(a + b);
        }
        LossVal(out)
    }

    /// The scalar reading of this loss: its first component (`0.0` if empty).
    pub fn as_scalar(&self) -> f64 {
        self.0.first().copied().unwrap_or(0.0)
    }

    /// The *total* order on scalar readings used by every comparison an
    /// argmin/argmax handler can make (the `leq`/`lt` primitives) and by
    /// the engine bridge's candidate reduction: [`f64::total_cmp`] on
    /// [`LossVal::as_scalar`]. Unlike the partial `<=` on `f64`, this
    /// orders NaN (above `+∞`) and `-0.0 < +0.0` deterministically, so
    /// winners are identical across the smallstep, bigstep, and compiled
    /// evaluators and across sequential and parallel searches — the same
    /// contract as `selc::OrderedLoss` for `f64`.
    pub fn cmp_scalar(&self, other: &LossVal) -> std::cmp::Ordering {
        self.as_scalar().total_cmp(&other.as_scalar())
    }

    /// Component `i`, defaulting to `0.0`.
    pub fn component(&self, i: usize) -> f64 {
        self.0.get(i).copied().unwrap_or(0.0)
    }

    /// True iff every component is zero (the canonical zero is the empty
    /// vector, but padded arithmetic can produce explicit zeros).
    pub fn is_zero(&self) -> bool {
        self.0.iter().all(|x| *x == 0.0)
    }

    /// Approximate equality up to `eps`, treating missing components as 0.
    pub fn approx_eq(&self, other: &LossVal, eps: f64) -> bool {
        let n = self.0.len().max(other.0.len());
        (0..n).all(|i| (self.component(i) - other.component(i)).abs() <= eps)
    }
}

impl fmt::Display for LossVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0.len() {
            0 => write!(f, "0"),
            1 => write!(f, "{}", self.0[0]),
            _ => {
                write!(f, "(")?;
                for (i, x) in self.0.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_identity() {
        let a = LossVal::pair(1.0, -2.0);
        assert_eq!(a.add(&LossVal::zero()), a);
        assert_eq!(LossVal::zero().add(&a), a);
    }

    #[test]
    fn add_pads_with_zeros() {
        let a = LossVal::scalar(3.0);
        let b = LossVal::pair(1.0, 2.0);
        assert_eq!(a.add(&b), LossVal::pair(4.0, 2.0));
        assert_eq!(b.add(&a), LossVal::pair(4.0, 2.0));
    }

    #[test]
    fn add_is_commutative_and_associative() {
        let a = LossVal(vec![1.0, 2.0, 3.0]);
        let b = LossVal::scalar(-1.0);
        let c = LossVal::pair(0.5, 0.5);
        assert_eq!(a.add(&b), b.add(&a));
        assert_eq!(a.add(&b).add(&c), a.add(&b.add(&c)));
    }

    #[test]
    fn scalar_reading() {
        assert_eq!(LossVal::zero().as_scalar(), 0.0);
        assert_eq!(LossVal::scalar(7.5).as_scalar(), 7.5);
        assert_eq!(LossVal::pair(1.0, 9.0).as_scalar(), 1.0);
    }

    #[test]
    fn is_zero_recognises_padded_zero() {
        assert!(LossVal::zero().is_zero());
        assert!(LossVal(vec![0.0, 0.0]).is_zero());
        assert!(!LossVal::scalar(0.1).is_zero());
    }

    #[test]
    fn display_formats() {
        assert_eq!(LossVal::zero().to_string(), "0");
        assert_eq!(LossVal::scalar(2.0).to_string(), "2");
        assert_eq!(LossVal::pair(3.0, 4.0).to_string(), "(3, 4)");
    }

    #[test]
    fn cmp_scalar_is_total_and_orders_nan_last() {
        use std::cmp::Ordering;
        let one = LossVal::scalar(1.0);
        let two = LossVal::scalar(2.0);
        let nan = LossVal::scalar(f64::NAN);
        let inf = LossVal::scalar(f64::INFINITY);
        assert_eq!(one.cmp_scalar(&two), Ordering::Less);
        assert_eq!(two.cmp_scalar(&one), Ordering::Greater);
        assert_eq!(one.cmp_scalar(&LossVal::pair(1.0, 9.0)), Ordering::Equal, "scalar reading");
        assert_eq!(inf.cmp_scalar(&nan), Ordering::Less, "NaN sorts above +inf");
        assert_eq!(nan.cmp_scalar(&nan), Ordering::Equal, "total: NaN equals itself");
        assert_eq!(
            LossVal::scalar(-0.0).cmp_scalar(&LossVal::scalar(0.0)),
            Ordering::Less,
            "-0.0 sorts below +0.0 under the total order"
        );
    }

    #[test]
    fn approx_eq_with_padding() {
        assert!(LossVal::zero().approx_eq(&LossVal(vec![0.0]), 1e-12));
        assert!(LossVal::scalar(1.0).approx_eq(&LossVal(vec![1.0 + 1e-13]), 1e-12));
        assert!(!LossVal::scalar(1.0).approx_eq(&LossVal::scalar(1.1), 1e-12));
    }
}
