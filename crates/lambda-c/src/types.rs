//! Types and effects of λC (Fig 2 and Appendix A.1).
//!
//! Types are base types, n-ary products, binary sums, naturals, lists, and
//! effect-annotated function types. Effects are **multisets** of effect
//! labels; multiplicity matters because handling removes one occurrence of
//! the handled label (rule HANDLE) and the denotational semantics indexes
//! operation nodes by handler depth.

use std::collections::BTreeMap;
use std::fmt;

/// Base types. `Loss` is the distinguished type of the loss monoid; `Char`
/// and `Str` support the paper's character/password examples.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BaseTy {
    /// The loss monoid `R`.
    Loss,
    /// Characters (`'a'`, `'b'` in §2.3).
    Char,
    /// Strings (the password example of §4.3).
    Str,
}

impl fmt::Display for BaseTy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaseTy::Loss => write!(f, "loss"),
            BaseTy::Char => write!(f, "char"),
            BaseTy::Str => write!(f, "str"),
        }
    }
}

/// A λC type (Fig 2, extended with the appendix's sums, naturals, lists).
#[derive(Clone, Debug, PartialEq)]
pub enum Type {
    /// A base type.
    Base(BaseTy),
    /// An n-ary product `(σ1, …, σn)`; `n = 0` is the unit type.
    Tuple(Vec<Type>),
    /// A binary sum `σ + τ`.
    Sum(Box<Type>, Box<Type>),
    /// Natural numbers.
    Nat,
    /// Lists `list(σ)`.
    List(Box<Type>),
    /// A function type `σ → τ ! ε`.
    Fun(Box<Type>, Box<Type>, Effect),
}

impl Type {
    /// The unit type `()` — the empty product.
    pub fn unit() -> Type {
        Type::Tuple(Vec::new())
    }

    /// The `loss` base type.
    pub fn loss() -> Type {
        Type::Base(BaseTy::Loss)
    }

    /// Booleans, encoded as `() + ()` with `inl` = true, `inr` = false.
    pub fn bool() -> Type {
        Type::Sum(Box::new(Type::unit()), Box::new(Type::unit()))
    }

    /// Function type constructor.
    pub fn fun(arg: Type, res: Type, eff: Effect) -> Type {
        Type::Fun(Box::new(arg), Box::new(res), eff)
    }

    /// Is this a first-order type (no function space anywhere)?
    pub fn is_first_order(&self) -> bool {
        match self {
            Type::Base(_) | Type::Nat => true,
            Type::Tuple(ts) => ts.iter().all(Type::is_first_order),
            Type::Sum(a, b) => a.is_first_order() && b.is_first_order(),
            Type::List(t) => t.is_first_order(),
            Type::Fun(..) => false,
        }
    }

    /// Size `|σ|` of a type, as in §3.4 (functions count their effect too).
    pub fn size(&self) -> usize {
        match self {
            Type::Base(_) | Type::Nat => 1,
            Type::Tuple(ts) => 1 + ts.iter().map(Type::size).sum::<usize>(),
            Type::Sum(a, b) => 1 + a.size() + b.size(),
            Type::List(t) => 1 + t.size(),
            Type::Fun(a, b, eff) => 1 + a.size() + b.size() + eff.card(),
        }
    }

    /// The set of effect labels appearing in the type (`e(σ)` in §3.4).
    pub fn effect_labels(&self, out: &mut std::collections::BTreeSet<String>) {
        match self {
            Type::Base(_) | Type::Nat => {}
            Type::Tuple(ts) => ts.iter().for_each(|t| t.effect_labels(out)),
            Type::Sum(a, b) => {
                a.effect_labels(out);
                b.effect_labels(out);
            }
            Type::List(t) => t.effect_labels(out),
            Type::Fun(a, b, eff) => {
                a.effect_labels(out);
                b.effect_labels(out);
                for l in eff.labels() {
                    out.insert(l.to_owned());
                }
            }
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Base(b) => write!(f, "{b}"),
            Type::Tuple(ts) => {
                write!(f, "(")?;
                for (i, t) in ts.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, ")")
            }
            Type::Sum(a, b) => write!(f, "({a} + {b})"),
            Type::Nat => write!(f, "nat"),
            Type::List(t) => write!(f, "list({t})"),
            Type::Fun(a, b, eff) => write!(f, "({a} -> {b} ! {eff})"),
        }
    }
}

/// A multiset of effect labels (Fig 2: `ε ::= {} | ε ℓ`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Effect(BTreeMap<String, u32>);

impl Effect {
    /// The empty effect `{}`.
    pub fn empty() -> Effect {
        Effect(BTreeMap::new())
    }

    /// The singleton effect `{ℓ}`.
    pub fn single(label: impl Into<String>) -> Effect {
        let mut m = BTreeMap::new();
        m.insert(label.into(), 1);
        Effect(m)
    }

    /// Builds an effect from labels (with multiplicity: repeats count).
    pub fn from_labels<I, S>(labels: I) -> Effect
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut e = Effect::empty();
        for l in labels {
            e.add(l.into());
        }
        e
    }

    /// Adds one occurrence of `ℓ` (multiset union with a singleton, the
    /// juxtaposition `ε ℓ` of the paper).
    pub fn add(&mut self, label: impl Into<String>) {
        *self.0.entry(label.into()).or_insert(0) += 1;
    }

    /// `ε ℓ` as a new value.
    pub fn plus(&self, label: impl Into<String>) -> Effect {
        let mut e = self.clone();
        e.add(label);
        e
    }

    /// Multiset union `ε ε'`.
    pub fn union(&self, other: &Effect) -> Effect {
        let mut e = self.clone();
        for (l, n) in &other.0 {
            *e.0.entry(l.clone()).or_insert(0) += n;
        }
        e
    }

    /// Removes one occurrence of `ℓ`; returns `false` if absent.
    pub fn remove_one(&mut self, label: &str) -> bool {
        match self.0.get_mut(label) {
            Some(n) if *n > 1 => {
                *n -= 1;
                true
            }
            Some(_) => {
                self.0.remove(label);
                true
            }
            None => false,
        }
    }

    /// Multiplicity `ε(ℓ)`.
    pub fn multiplicity(&self, label: &str) -> u32 {
        self.0.get(label).copied().unwrap_or(0)
    }

    /// Does `ℓ ∈ ε` hold?
    pub fn contains(&self, label: &str) -> bool {
        self.multiplicity(label) > 0
    }

    /// Sub-multiset test `ε ⊆ ε'`.
    pub fn subset_of(&self, other: &Effect) -> bool {
        self.0.iter().all(|(l, n)| other.multiplicity(l) >= *n)
    }

    /// Total cardinality `|ε|` counting multiplicity.
    pub fn card(&self) -> usize {
        self.0.values().map(|n| *n as usize).sum()
    }

    /// Is this the empty effect?
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The distinct labels of the multiset.
    pub fn labels(&self) -> impl Iterator<Item = &str> {
        self.0.keys().map(String::as_str)
    }

    /// Iterates over `(label, multiplicity)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u32)> {
        self.0.iter().map(|(l, n)| (l.as_str(), *n))
    }
}

impl fmt::Display for Effect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for (l, n) in &self.0 {
            for _ in 0..*n {
                if !first {
                    write!(f, ", ")?;
                }
                write!(f, "{l}")?;
                first = false;
            }
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_is_empty_tuple() {
        assert_eq!(Type::unit(), Type::Tuple(vec![]));
        assert_eq!(Type::unit().to_string(), "()");
    }

    #[test]
    fn bool_is_unit_sum() {
        assert_eq!(Type::bool().to_string(), "(() + ())");
        assert!(Type::bool().is_first_order());
    }

    #[test]
    fn fun_is_not_first_order() {
        let t = Type::fun(Type::loss(), Type::loss(), Effect::empty());
        assert!(!t.is_first_order());
        assert!(!Type::Tuple(vec![Type::loss(), t.clone()]).is_first_order());
    }

    #[test]
    fn type_size_counts_effects() {
        let eff = Effect::from_labels(["amb", "amb", "st"]);
        let t = Type::fun(Type::loss(), Type::loss(), eff);
        assert_eq!(t.size(), 1 + 1 + 1 + 3);
    }

    #[test]
    fn effect_labels_of_nested_fun() {
        let inner = Type::fun(Type::unit(), Type::unit(), Effect::single("a"));
        let outer = Type::fun(inner, Type::unit(), Effect::single("b"));
        let mut s = std::collections::BTreeSet::new();
        outer.effect_labels(&mut s);
        assert_eq!(s.into_iter().collect::<Vec<_>>(), vec!["a".to_owned(), "b".to_owned()]);
    }

    #[test]
    fn multiset_semantics() {
        let mut e = Effect::empty();
        e.add("amb");
        e.add("amb");
        e.add("st");
        assert_eq!(e.multiplicity("amb"), 2);
        assert_eq!(e.card(), 3);
        assert!(Effect::single("amb").subset_of(&e));
        assert!(!e.subset_of(&Effect::single("amb")));
        assert!(e.remove_one("amb"));
        assert_eq!(e.multiplicity("amb"), 1);
        assert!(e.remove_one("amb"));
        assert!(!e.remove_one("amb"));
        assert!(!e.contains("amb"));
        assert!(e.contains("st"));
    }

    #[test]
    fn union_adds_multiplicities() {
        let a = Effect::from_labels(["x", "y"]);
        let b = Effect::from_labels(["y", "z"]);
        let u = a.union(&b);
        assert_eq!(u.multiplicity("x"), 1);
        assert_eq!(u.multiplicity("y"), 2);
        assert_eq!(u.multiplicity("z"), 1);
    }

    #[test]
    fn display_effect_with_multiplicity() {
        let e = Effect::from_labels(["b", "a", "a"]);
        assert_eq!(e.to_string(), "{a, a, b}");
        assert_eq!(Effect::empty().to_string(), "{}");
    }

    #[test]
    fn subset_reflexive_and_empty() {
        let e = Effect::from_labels(["q", "q"]);
        assert!(e.subset_of(&e));
        assert!(Effect::empty().subset_of(&e));
    }
}
