//! λC — the model calculus of *Handling the Selection Monad* (Plotkin &
//! Xie, PLDI 2025), §3 and Appendix A.
//!
//! λC is a higher-order calculus of algebraic effect handlers whose
//! handlers receive, besides the usual delimited continuation, a **choice
//! continuation** giving the loss that each candidate operation result
//! would entail. Losses are produced by a built-in `loss` writer effect and
//! scoped with `⟨·⟩_g` (*local*) and `reset`.
//!
//! The crate provides, faithfully to the paper:
//!
//! * [`types`] — types and multiset effects (Fig 2);
//! * [`sig`] — signatures and the §3.4 well-foundedness check;
//! * [`syntax`] — expressions, handlers, loss-continuation expressions
//!   (Fig 3);
//! * [`typecheck`] — the type-and-effect system (Fig 4);
//! * [`smallstep`] — the loss-continuation-threading small-step semantics
//!   (Fig 6), including the choice-continuation construction of rule R5;
//! * [`bigstep`] — the big-step evaluator (Fig 7) with fuel;
//! * [`build`] — a builder DSL mirroring the paper's syntactic sugar;
//! * [`examples`] — the paper's example programs, ready to run.
//!
//! # Quick example
//!
//! The §2.3 program `pgm` under the loss-minimising handler:
//!
//! ```
//! use lambda_c::examples;
//!
//! let ex = examples::pgm_with_argmin_handler();
//! let out = lambda_c::bigstep::eval_closed(
//!     &ex.sig, ex.expr, ex.ty, lambda_c::types::Effect::empty(),
//! ).unwrap();
//! assert_eq!(out.loss, lambda_c::loss::LossVal::scalar(2.0));
//! assert_eq!(out.terminal, lambda_c::syntax::Expr::Const(lambda_c::syntax::Const::Char('a')));
//! ```

pub mod bigstep;
pub mod build;
pub mod compile;
pub mod examples;
pub mod flow;
pub mod giantstep;
pub mod loss;
pub mod machine;
pub mod prim;
pub mod sig;
pub mod smallstep;
pub mod subst;
pub mod syntax;
pub mod testgen;
pub mod typecheck;
pub mod types;

pub use bigstep::{eval, eval_closed, EvalOutcome};
pub use compile::{compile, CompileError, CompiledProgram};
pub use flow::{DecisionShape, FlowReport, LossAbs, NonNegLosses, Purity};
pub use loss::LossVal;
pub use machine::{MachError, MachineOutcome};
pub use sig::{OpSig, SigError, Signature};
pub use smallstep::{step, EvalError, StepResult};
pub use syntax::{Const, Expr, Handler};
pub use typecheck::{check_program, type_of, TypeError};
pub use types::{BaseTy, Effect, Type};
