//! Abstract syntax of λC expressions and handlers (Fig 3, Appendix A.1).
//!
//! Two presentational choices differ from the paper, both standard sugar:
//!
//! * Handler clauses bind their four arguments `(p, x, l, k)` (parameter,
//!   operation argument, choice continuation, delimited continuation) as
//!   four named variables rather than one product-typed variable — the
//!   paper itself writes `decide ↦ λx k l. …` in examples.
//! * Loss continuations `g` are represented as ordinary lambda expressions
//!   `λε x:σ. e` whose body has type `loss`; the grammar's
//!   `g ::= λx.0 | λx. e ◮ g` is the subset the machine actually builds.
//!   This keeps substitution and typing uniform.

use crate::loss::LossVal;
use crate::types::{Effect, Type};
use std::fmt;
use std::rc::Rc;

/// Constants `c : b`.
#[derive(Clone, Debug, PartialEq)]
pub enum Const {
    /// A loss constant `r : loss` (for all `r ∈ R`).
    Loss(LossVal),
    /// A character constant.
    Char(char),
    /// A string constant.
    Str(String),
}

impl Const {
    /// The base type of the constant.
    pub fn ty(&self) -> Type {
        match self {
            Const::Loss(_) => Type::loss(),
            Const::Char(_) => Type::Base(crate::types::BaseTy::Char),
            Const::Str(_) => Type::Base(crate::types::BaseTy::Str),
        }
    }
}

impl fmt::Display for Const {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Const::Loss(l) => write!(f, "{l}"),
            Const::Char(c) => write!(f, "'{c}'"),
            Const::Str(s) => write!(f, "{s:?}"),
        }
    }
}

/// λC expressions (Fig 3 plus the appendix's sums, naturals and lists).
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// A constant `c`.
    Const(Const),
    /// A primitive-function application `f(e)`.
    Prim(String, Rc<Expr>),
    /// A variable.
    Var(String),
    /// An abstraction `λε x:σ. e`, annotated with its result effect.
    Lam {
        /// Result effect of the body.
        eff: Effect,
        /// Bound variable.
        var: String,
        /// Argument type.
        ty: Type,
        /// Body.
        body: Rc<Expr>,
    },
    /// Application `e1 e2`.
    App(Rc<Expr>, Rc<Expr>),
    /// Tuple `(e1, …, en)`.
    Tuple(Vec<Rc<Expr>>),
    /// Projection `e.i` (0-based; the paper counts from 1).
    Proj(Rc<Expr>, usize),
    /// Left injection `inl_{σ,τ}(e)`.
    Inl {
        /// Left summand type (the type of `e`).
        lty: Type,
        /// Right summand type.
        rty: Type,
        /// Payload.
        e: Rc<Expr>,
    },
    /// Right injection `inr_{σ,τ}(e)`.
    Inr {
        /// Left summand type.
        lty: Type,
        /// Right summand type (the type of `e`).
        rty: Type,
        /// Payload.
        e: Rc<Expr>,
    },
    /// Case analysis `cases e of x1:σ1. e1 ▯ x2:σ2. e2`.
    Cases {
        /// Scrutinee.
        scrut: Rc<Expr>,
        /// Left binder.
        lvar: String,
        /// Left binder type.
        lty: Type,
        /// Left branch.
        lbody: Rc<Expr>,
        /// Right binder.
        rvar: String,
        /// Right binder type.
        rty: Type,
        /// Right branch.
        rbody: Rc<Expr>,
    },
    /// The natural number zero.
    Zero,
    /// Successor `succ(e)`.
    Succ(Rc<Expr>),
    /// Iteration `iter(e1, e2, e3)`: apply `e3` to `e2`, `e1` times.
    Iter(Rc<Expr>, Rc<Expr>, Rc<Expr>),
    /// The empty list `nil_σ`.
    Nil(Type),
    /// List cons `cons(e1, e2)`.
    Cons(Rc<Expr>, Rc<Expr>),
    /// List fold `fold(e1, e2, e3)`: fold `e3` over list `e1` with seed `e2`.
    Fold(Rc<Expr>, Rc<Expr>, Rc<Expr>),
    /// Operation call `op(e)`.
    OpCall {
        /// Operation name (determines the label via the signature).
        op: String,
        /// Argument.
        arg: Rc<Expr>,
    },
    /// The built-in writer effect `loss(e)`.
    Loss(Rc<Expr>),
    /// Parameterized handling `with h from e1 handle e2`.
    Handle {
        /// The handler.
        handler: Rc<Handler>,
        /// Initial parameter value.
        from: Rc<Expr>,
        /// Handled computation.
        body: Rc<Expr>,
    },
    /// The "then" construct `e1 ◮ λε x:σ. e2`, accumulating losses.
    Then {
        /// The computation whose losses are captured.
        e: Rc<Expr>,
        /// The continuation lambda `λε x:σ. e2` (body type `loss`).
        lam: Rc<Expr>,
    },
    /// Loss-continuation localisation `⟨e⟩^ε1_g`.
    Local {
        /// The inner effect annotation `ε1`.
        eff: Effect,
        /// The loss continuation `g : σ → loss ! ε2` (a lambda).
        g: Rc<Expr>,
        /// The localised expression.
        e: Rc<Expr>,
    },
    /// Loss localisation `reset e` — losses inside do not escape.
    Reset(Rc<Expr>),
}

/// One operation clause `op ↦ λε (p, x, l, k). e` of a handler.
#[derive(Clone, Debug, PartialEq)]
pub struct OpClause {
    /// Operation name.
    pub op: String,
    /// Parameter binder.
    pub p: String,
    /// Operation-argument binder.
    pub x: String,
    /// Choice-continuation binder (`l : (par, in) → loss ! ε`).
    pub l: String,
    /// Delimited-continuation binder (`k : (par, in) → σ' ! ε`).
    pub k: String,
    /// Clause body (type `σ' ! ε`).
    pub body: Rc<Expr>,
}

/// The return clause `return ↦ λε (p, x). e`.
#[derive(Clone, Debug, PartialEq)]
pub struct RetClause {
    /// Parameter binder.
    pub p: String,
    /// Result binder (type `σ`).
    pub x: String,
    /// Clause body (type `σ' ! ε`).
    pub body: Rc<Expr>,
}

/// A parameterized handler for one effect label (Fig 3).
///
/// All the typing data of the judgment
/// `Γ ⊢ h : par, σ ! εℓ ⇒ σ' ! ε` is stored explicitly so that evaluation
/// and the denotational semantics never need inference.
#[derive(Clone, Debug, PartialEq)]
pub struct Handler {
    /// The label `ℓ` this handler handles.
    pub label: String,
    /// Parameter type `par`.
    pub par_ty: Type,
    /// Handled-computation result type `σ`.
    pub body_ty: Type,
    /// Handler result type `σ'`.
    pub res_ty: Type,
    /// Result effect `ε`.
    pub eff: Effect,
    /// One clause per operation of `Op(ℓ)`.
    pub clauses: Vec<OpClause>,
    /// The return clause.
    pub ret: RetClause,
}

impl Handler {
    /// Looks up the clause for `op`.
    pub fn clause(&self, op: &str) -> Option<&OpClause> {
        self.clauses.iter().find(|c| c.op == op)
    }
}

impl Expr {
    /// Convenience: wrap in `Rc`.
    pub fn rc(self) -> Rc<Expr> {
        Rc::new(self)
    }

    /// Is this expression a value (Fig 5 / Appendix A.3)?
    pub fn is_value(&self) -> bool {
        match self {
            Expr::Var(_) | Expr::Const(_) | Expr::Lam { .. } | Expr::Zero | Expr::Nil(_) => true,
            Expr::Tuple(es) => es.iter().all(|e| e.is_value()),
            Expr::Inl { e, .. } | Expr::Inr { e, .. } | Expr::Succ(e) => e.is_value(),
            Expr::Cons(a, b) => a.is_value() && b.is_value(),
            _ => false,
        }
    }

    /// The unit value `()`.
    pub fn unit() -> Expr {
        Expr::Tuple(Vec::new())
    }

    /// The boolean `true`, i.e. `inl_{(), ()}(())`.
    pub fn tt() -> Expr {
        Expr::Inl { lty: Type::unit(), rty: Type::unit(), e: Expr::unit().rc() }
    }

    /// The boolean `false`, i.e. `inr_{(), ()}(())`.
    pub fn ff() -> Expr {
        Expr::Inr { lty: Type::unit(), rty: Type::unit(), e: Expr::unit().rc() }
    }

    /// A boolean value.
    pub fn bool(b: bool) -> Expr {
        if b {
            Expr::tt()
        } else {
            Expr::ff()
        }
    }

    /// A scalar loss constant.
    pub fn lossc(x: f64) -> Expr {
        Expr::Const(Const::Loss(LossVal::scalar(x)))
    }

    /// A loss-vector constant.
    pub fn lossv(v: LossVal) -> Expr {
        Expr::Const(Const::Loss(v))
    }

    /// A natural-number literal built from `succ`/`zero`.
    pub fn nat(n: u64) -> Expr {
        let mut e = Expr::Zero;
        for _ in 0..n {
            e = Expr::Succ(e.rc());
        }
        e
    }

    /// A list literal.
    pub fn list(elem_ty: Type, items: Vec<Expr>) -> Expr {
        let mut e = Expr::Nil(elem_ty);
        for item in items.into_iter().rev() {
            e = Expr::Cons(item.rc(), e.rc());
        }
        e
    }

    /// The zero loss continuation `0_{σ,ε} = λε x:σ. 0`.
    pub fn zero_cont(ty: Type, eff: Effect) -> Expr {
        Expr::Lam {
            eff,
            var: "_0".to_owned(),
            ty,
            body: Expr::Const(Const::Loss(LossVal::zero())).rc(),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Const(c) => write!(f, "{c}"),
            Expr::Prim(name, e) => write!(f, "{name}({e})"),
            Expr::Var(x) => write!(f, "{x}"),
            Expr::Lam { var, ty, body, .. } => write!(f, "(\\{var}:{ty}. {body})"),
            Expr::App(a, b) => write!(f, "({a} {b})"),
            Expr::Tuple(es) => {
                write!(f, "(")?;
                for (i, e) in es.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, ")")
            }
            Expr::Proj(e, i) => write!(f, "{e}.{}", i + 1),
            Expr::Inl { e, .. } => write!(f, "inl({e})"),
            Expr::Inr { e, .. } => write!(f, "inr({e})"),
            Expr::Cases { scrut, lvar, lbody, rvar, rbody, .. } => {
                write!(f, "(cases {scrut} of {lvar}. {lbody} | {rvar}. {rbody})")
            }
            Expr::Zero => write!(f, "zero"),
            Expr::Succ(e) => write!(f, "succ({e})"),
            Expr::Iter(a, b, c) => write!(f, "iter({a}, {b}, {c})"),
            Expr::Nil(_) => write!(f, "nil"),
            Expr::Cons(a, b) => write!(f, "cons({a}, {b})"),
            Expr::Fold(a, b, c) => write!(f, "fold({a}, {b}, {c})"),
            Expr::OpCall { op, arg } => write!(f, "{op}({arg})"),
            Expr::Loss(e) => write!(f, "loss({e})"),
            Expr::Handle { handler, from, body } => {
                write!(f, "(with <{}-handler> from {from} handle {body})", handler.label)
            }
            Expr::Then { e, lam } => write!(f, "({e} |> {lam})"),
            Expr::Local { e, .. } => write!(f, "<{e}>_g"),
            Expr::Reset(e) => write!(f, "reset({e})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_recognition() {
        assert!(Expr::unit().is_value());
        assert!(Expr::tt().is_value());
        assert!(Expr::nat(3).is_value());
        assert!(Expr::lossc(1.0).is_value());
        assert!(Expr::list(Type::bool(), vec![Expr::tt(), Expr::ff()]).is_value());
        assert!(!Expr::Loss(Expr::lossc(1.0).rc()).is_value());
        assert!(!Expr::App(Expr::tt().rc(), Expr::ff().rc()).is_value());
        let half = Expr::Tuple(vec![Expr::tt().rc(), Expr::Loss(Expr::lossc(1.0).rc()).rc()]);
        assert!(!half.is_value());
    }

    #[test]
    fn nat_literals_unroll() {
        assert_eq!(Expr::nat(0), Expr::Zero);
        assert_eq!(Expr::nat(2), Expr::Succ(Expr::Succ(Expr::Zero.rc()).rc()));
    }

    #[test]
    fn list_literals_nest_right() {
        let l = Expr::list(Type::unit(), vec![Expr::unit(), Expr::unit()]);
        match l {
            Expr::Cons(_, rest) => match rest.as_ref() {
                Expr::Cons(_, nil) => assert!(matches!(nil.as_ref(), Expr::Nil(_))),
                other => panic!("expected cons, got {other:?}"),
            },
            other => panic!("expected cons, got {other:?}"),
        }
    }

    #[test]
    fn display_round_trips_sensibly() {
        let e = Expr::App(
            Expr::Lam {
                eff: Effect::empty(),
                var: "x".into(),
                ty: Type::loss(),
                body: Expr::Var("x".into()).rc(),
            }
            .rc(),
            Expr::lossc(2.0).rc(),
        );
        assert_eq!(e.to_string(), "((\\x:loss. x) 2)");
    }

    #[test]
    fn zero_cont_shape() {
        let g = Expr::zero_cont(Type::bool(), Effect::empty());
        match g {
            Expr::Lam { body, .. } => assert_eq!(*body, Expr::Const(Const::Loss(LossVal::zero()))),
            other => panic!("expected lambda, got {other:?}"),
        }
    }
}
