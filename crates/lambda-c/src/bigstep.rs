//! Big-step evaluation (Fig 7): iterate the small-step relation,
//! accumulating emitted losses, until a terminal expression is reached.
//!
//! The paper proves termination for well-founded signatures (Theorem 3.5);
//! we nevertheless evaluate with *fuel* so that non-well-founded programs
//! (such as the `moo` example of §3.4) fail gracefully with
//! [`EvalError::OutOfFuel`] rather than looping.

use crate::loss::LossVal;
use crate::sig::Signature;
use crate::smallstep::{step, EvalError, StepResult};
use crate::syntax::Expr;
use crate::types::{Effect, Type};
use std::rc::Rc;

/// Result of big-step evaluation `g ⊢ e ⇒r w`.
#[derive(Clone, Debug, PartialEq)]
pub struct EvalOutcome {
    /// The total emitted loss `r`.
    pub loss: LossVal,
    /// The terminal expression `w` — a value, or a stuck expression.
    pub terminal: Expr,
    /// `Some(op)` iff the terminal is stuck on `op`.
    pub stuck_on: Option<String>,
    /// Number of small steps taken.
    pub steps: u64,
}

impl EvalOutcome {
    /// True iff evaluation reached a value.
    pub fn is_value(&self) -> bool {
        self.stuck_on.is_none()
    }
}

/// Default fuel for [`eval_closed`]: ample for every paper program.
pub const DEFAULT_FUEL: u64 = 2_000_000;

/// Evaluates `e` under loss continuation `g` at effect `eff`, with at most
/// `fuel` small steps.
///
/// # Errors
///
/// Propagates [`EvalError`] from stepping, or [`EvalError::OutOfFuel`].
pub fn eval(
    sig: &Signature,
    g: &Rc<Expr>,
    eff: &Effect,
    e: Expr,
    fuel: u64,
) -> Result<EvalOutcome, EvalError> {
    let mut cur = e;
    let mut total = LossVal::zero();
    let mut steps: u64 = 0;
    loop {
        match step(sig, g, eff, &cur)? {
            StepResult::Step { loss, expr } => {
                total = total.add(&loss);
                cur = expr;
                steps += 1;
                if steps >= fuel {
                    return Err(EvalError::OutOfFuel { steps });
                }
            }
            StepResult::Value => {
                return Ok(EvalOutcome { loss: total, terminal: cur, stuck_on: None, steps })
            }
            StepResult::Stuck { op } => {
                return Ok(EvalOutcome { loss: total, terminal: cur, stuck_on: Some(op), steps })
            }
        }
    }
}

/// Evaluates a closed program of result type `ty` under the zero loss
/// continuation `0_{σ,{}}` — how program execution starts (§3.3).
///
/// # Errors
///
/// Propagates [`EvalError`] from [`eval`].
pub fn eval_closed(
    sig: &Signature,
    e: Expr,
    ty: Type,
    eff: Effect,
) -> Result<EvalOutcome, EvalError> {
    let g = Expr::zero_cont(ty, eff.clone()).rc();
    eval(sig, &g, &eff, e, DEFAULT_FUEL)
}

/// One entry of an evaluation trace.
#[derive(Clone, Debug)]
pub struct TraceStep {
    /// Loss emitted by this step.
    pub loss: LossVal,
    /// The expression after the step.
    pub expr: Expr,
}

/// Evaluates like [`eval`] but records every intermediate expression.
/// Intended for small programs (the worked example of §3.3) and debugging.
///
/// # Errors
///
/// Propagates [`EvalError`] from stepping; stops after `fuel` steps.
pub fn eval_traced(
    sig: &Signature,
    g: &Rc<Expr>,
    eff: &Effect,
    e: Expr,
    fuel: u64,
) -> Result<(Vec<TraceStep>, EvalOutcome), EvalError> {
    let mut cur = e;
    let mut total = LossVal::zero();
    let mut trace = Vec::new();
    let mut steps: u64 = 0;
    loop {
        match step(sig, g, eff, &cur)? {
            StepResult::Step { loss, expr } => {
                total = total.add(&loss);
                trace.push(TraceStep { loss, expr: expr.clone() });
                cur = expr;
                steps += 1;
                if steps >= fuel {
                    return Err(EvalError::OutOfFuel { steps });
                }
            }
            StepResult::Value => {
                let out = EvalOutcome { loss: total, terminal: cur, stuck_on: None, steps };
                return Ok((trace, out));
            }
            StepResult::Stuck { op } => {
                let out = EvalOutcome { loss: total, terminal: cur, stuck_on: Some(op), steps };
                return Ok((trace, out));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_pure_value() {
        let sig = Signature::new();
        let out = eval_closed(&sig, Expr::lossc(4.0), Type::loss(), Effect::empty()).unwrap();
        assert!(out.is_value());
        assert_eq!(out.terminal, Expr::lossc(4.0));
        assert_eq!(out.steps, 0);
    }

    #[test]
    fn eval_accumulates_losses() {
        let sig = Signature::new();
        // loss(1); loss(2); ()  encoded with lambdas
        let e = Expr::App(
            Expr::Lam {
                eff: Effect::empty(),
                var: "_a".into(),
                ty: Type::unit(),
                body: Expr::App(
                    Expr::Lam {
                        eff: Effect::empty(),
                        var: "_b".into(),
                        ty: Type::unit(),
                        body: Expr::unit().rc(),
                    }
                    .rc(),
                    Expr::Loss(Expr::lossc(2.0).rc()).rc(),
                )
                .rc(),
            }
            .rc(),
            Expr::Loss(Expr::lossc(1.0).rc()).rc(),
        );
        let out = eval_closed(&sig, e, Type::unit(), Effect::empty()).unwrap();
        assert_eq!(out.loss, LossVal::scalar(3.0));
        assert_eq!(out.terminal, Expr::unit());
    }

    #[test]
    fn fuel_exhaustion_is_reported() {
        let sig = Signature::new();
        // Ω is not typeable in λC, but fuel still guards: give a long loop
        // via iter with a big literal and tiny fuel.
        let step_fn = Expr::Lam {
            eff: Effect::empty(),
            var: "x".into(),
            ty: Type::loss(),
            body: Expr::Var("x".into()).rc(),
        };
        let e = Expr::Iter(Expr::nat(64).rc(), Expr::lossc(0.0).rc(), step_fn.rc());
        let g = Expr::zero_cont(Type::loss(), Effect::empty()).rc();
        let r = eval(&sig, &g, &Effect::empty(), e, 10);
        assert!(matches!(r, Err(EvalError::OutOfFuel { .. })));
    }

    #[test]
    fn traced_eval_records_steps() {
        let sig = Signature::new();
        let e = Expr::Prim(
            "add".into(),
            Expr::Tuple(vec![Expr::lossc(1.0).rc(), Expr::lossc(1.0).rc()]).rc(),
        );
        let g = Expr::zero_cont(Type::loss(), Effect::empty()).rc();
        let (trace, out) = eval_traced(&sig, &g, &Effect::empty(), e, 100).unwrap();
        assert_eq!(trace.len() as u64, out.steps);
        assert_eq!(out.terminal, Expr::lossc(2.0));
    }
}
